"""Ablation: measurement density.  "With larger N, E_opt converges better."

Subsample one session's probes to different counts and watch localization
quality and the head-parameter estimate as N grows.
"""

from repro.eval import ablation_measurement_density
from repro.eval.common import format_table


def test_ablation_measurement_density(benchmark):
    result = benchmark.pedantic(ablation_measurement_density, rounds=1, iterations=1)

    rows = [
        [n, float(err), float(loc), float(res)]
        for n, err, loc, res in zip(
            result.probe_counts,
            result.head_param_error_mm,
            result.localization_median_deg,
            result.residual_deg,
        )
    ]
    print()
    print("Ablation — fusion quality vs probe count N")
    print(
        format_table(
            ["N probes", "|E err| (mm)", "loc med (deg)", "residual (deg)"], rows
        )
    )

    # Localization quality must not degrade as measurements accumulate, and
    # the densest sweep must localize well in absolute terms.
    assert (
        result.localization_median_deg[-1]
        <= result.localization_median_deg[0] + 1.0
    )
    assert result.localization_median_deg[-1] < 6.0
