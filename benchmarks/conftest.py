"""Benchmark-suite configuration.

The expensive shared fixture is the personalized 5-volunteer cohort; it is
memoized inside :mod:`repro.eval.common`, so the first benchmark that needs
it pays the cost and the rest reuse it within the same pytest process.
"""
