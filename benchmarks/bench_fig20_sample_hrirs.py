"""Figure 20: raw best / average / worst estimated HRIRs.

Paper: even in the worst case UNIQ decodes channel taps at the correct
positions (corr 0.43-0.96); the global HRIR makes frequent tap mistakes.
"""

from repro.eval import fig20_sample_hrirs


def test_fig20_sample_hrirs(benchmark):
    result = benchmark.pedantic(fig20_sample_hrirs, rounds=1, iterations=1)

    print()
    print("Figure 20 — example HRIRs (left ear, first-tap aligned)")
    for case in (result.best, result.average, result.worst):
        print(
            f"{case.label:>7}: {case.subject_name} @ {case.angle_deg:.0f} deg — "
            f"UNIQ corr {case.uniq_correlation:.2f}, "
            f"global corr {case.global_correlation:.2f}"
        )

    # Paper shape: best near-perfect, worst still structured; UNIQ beats the
    # global template in the best and average cases.
    assert result.best.uniq_correlation > 0.8
    assert result.average.uniq_correlation > 0.6
    assert result.worst.uniq_correlation > 0.2
    assert result.best.uniq_correlation > result.best.global_correlation
    assert result.average.uniq_correlation > result.average.global_correlation
