"""Figure 17: phone localization accuracy during the hand rotation.

Paper: estimated vs ground-truth polar angle hugs the diagonal; the error
CDF has a median of 4.8 degrees with rare excursions toward ~15 degrees.
"""

import numpy as np

from repro.eval import fig17_localization


def test_fig17_localization(benchmark):
    result = benchmark.pedantic(fig17_localization, rounds=1, iterations=1)

    print()
    print("Figure 17 — phone angular error (all volunteers, all probes)")
    print(f"probes   : {result.errors_deg.shape[0]}")
    print(f"median   : {result.median_error_deg:.1f} deg (paper: 4.8)")
    print(f"90th pct : {result.p90_error_deg:.1f} deg")
    print(f"max      : {result.max_error_deg:.1f} deg (paper: ~15)")
    for q in (0.25, 0.5, 0.75, 0.9):
        print(f"  CDF {q:.2f} @ {np.percentile(result.errors_deg, 100 * q):.1f} deg")

    # Paper shape: single-digit median, bounded tail.
    assert result.median_error_deg < 8.0
    assert result.max_error_deg < 25.0
    # Estimates track truth: correlation of the scatter plot near 1.
    r = np.corrcoef(result.truth_angles_deg, result.estimated_angles_deg)[0, 1]
    assert r > 0.99
