"""Extension benchmark: perceptual cue errors of UNIQ vs the global template.

Section 7 of the paper argues that externalization ultimately needs
perceptually weighted HRTF metrics, citing the JASA distance-metric
framework.  This benchmark scores the cohort on the three classic cues
(ITD, ILD, spectral shape) instead of waveform correlation: personalization
must reduce every cue error, not just the correlation score.
"""

import numpy as np

from repro.eval.common import format_table, get_cohort
from repro.hrtf.perceptual import table_perceptual_distance


def run_perceptual_comparison():
    cohort = get_cohort()
    rows = {"uniq": [], "global": []}
    for member in cohort:
        rows["uniq"].append(
            table_perceptual_distance(member.personalization.table, member.ground_truth)
        )
        rows["global"].append(
            table_perceptual_distance(cohort.global_template, member.ground_truth)
        )
    return rows


def test_perceptual_distance(benchmark):
    rows = benchmark.pedantic(run_perceptual_comparison, rounds=1, iterations=1)

    def mean(key, attr):
        return float(np.mean([getattr(d, attr) for d in rows[key]]))

    table_rows = []
    for label, key in (("UNIQ personalized", "uniq"), ("global template", "global")):
        table_rows.append(
            [
                label,
                mean(key, "itd_error_s") * 1e6,
                mean(key, "ild_error_db"),
                mean(key, "spectral_distortion_db"),
                mean(key, "composite"),
            ]
        )
    print()
    print("Perceptual cue errors vs ground truth (cohort mean)")
    print(
        format_table(
            ["table", "ITD err (us)", "ILD err (dB)", "spectral (dB)", "JNDs"],
            table_rows,
        )
    )

    # Personalization must win on ITD, spectral shape, and the composite.
    # Broadband ILD is largely head-size-generic (shadowing dominates it and
    # heads vary little), so the global template is already near parity
    # there; we only require UNIQ not to be meaningfully worse.
    assert mean("uniq", "itd_error_s") < mean("global", "itd_error_s")
    assert mean("uniq", "ild_error_db") < mean("global", "ild_error_db") + 1.0
    assert mean("uniq", "spectral_distortion_db") < mean(
        "global", "spectral_distortion_db"
    )
    assert mean("uniq", "composite") < mean("global", "composite")
