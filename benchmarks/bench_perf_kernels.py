"""Performance benchmarks for the library's hot kernels.

The figure benchmarks above time whole experiments once; these time the
individual computational kernels with proper repetition, so regressions in
the numerics (the batch path solver, channel estimation, delay-map builds,
AoA scoring, rendering) are visible.  On the paper's own terms the whole
personalization must stay interactive — "users can get their personalized
HRTF ... in a couple of minutes" — which these budgets add up to.
"""

import numpy as np
import pytest

from repro.geometry.batch import binaural_delays_batch
from repro.geometry.head import HeadGeometry
from repro.geometry.vec import polar_to_cartesian
from repro.hrtf.reference import ground_truth_table
from repro.simulation.person import VirtualSubject
from repro.simulation.propagation import record_far_field, record_near_field
from repro.signals.channel import estimate_channel
from repro.signals.waveforms import probe_chirp, white_noise
from repro.simulation.session import MeasurementSession
from repro.signals.channel import ProbeChannelBank
from repro.core.aoa import KnownSourceAoAEstimator, UnknownSourceAoAEstimator
from repro.core.localize import DelayMap, cached_delay_map, clear_delay_map_cache
from repro.core.pipeline import Uniq, UniqConfig

FS = 48_000


@pytest.fixture(scope="module")
def head():
    return HeadGeometry.average()


@pytest.fixture(scope="module")
def subject():
    return VirtualSubject.random(7)


@pytest.fixture(scope="module")
def table(subject):
    return ground_truth_table(subject, np.arange(0.0, 181.0, 5.0), FS)


def test_perf_batch_delays(benchmark, head):
    """~2000-source batch delay solve: the fusion optimizer's inner loop."""
    rng = np.random.default_rng(0)
    sources = polar_to_cartesian(
        rng.uniform(0.2, 1.2, 2000), rng.uniform(-180, 180, 2000)
    )
    result = benchmark(binaural_delays_batch, head, sources)
    assert np.isfinite(result[0]).all()


def test_perf_delay_map_build(benchmark, head):
    """One DelayMap construction (per optimizer iteration)."""
    small_head = HeadGeometry(
        a=head.a, b=head.b, c=head.c, n_boundary=240
    )
    result = benchmark(
        DelayMap, small_head, (0.16, 1.2, 24), (-40.0, 220.0, 88)
    )
    assert result.t_left.shape == (24, 88)


def test_perf_delay_map_invert(benchmark, head):
    """One delay-pair inversion (per probe per optimizer iteration)."""
    delay_map = DelayMap(head)
    from repro.geometry.paths import binaural_delays

    t_left, t_right = binaural_delays(head, polar_to_cartesian(0.45, 60.0))
    candidate = benchmark(delay_map.locate, t_left, t_right, 60.0)
    assert candidate is not None


def test_perf_delay_map_cached(benchmark, head):
    """A cached_delay_map hit: what the optimizer pays on a revisited vertex."""
    clear_delay_map_cache()
    params = head.parameters
    cached_delay_map(params, 240, (0.16, 1.2, 24), (-40.0, 220.0, 88))

    def hit():
        return cached_delay_map(params, 240, (0.16, 1.2, 24), (-40.0, 220.0, 88))

    result = benchmark(hit)
    assert result.t_left.shape == (24, 88)


def test_perf_channel_bank_hit(benchmark, subject):
    """Serving an already-deconvolved channel out of the session bank."""
    chirp = probe_chirp(FS)
    left, _ = record_near_field(
        subject, polar_to_cartesian(0.45, 50.0), chirp, FS,
        rng=np.random.default_rng(1),
    )
    bank = ProbeChannelBank(chirp)
    bank.channel((0, "left"), left, 576)
    channel = benchmark(bank.channel, (0, "left"), left, 576)
    assert channel.shape == (576,)


def test_perf_personalize_end_to_end(benchmark, subject):
    """The whole pipeline on a short capture, min-of-N over warm repeats.

    The first (cold) round pays the DelayMap builds; later rounds measure
    the cached steady state the acceptance budget tracks.
    """
    session = MeasurementSession(subject, seed=3, probe_interval_s=0.8).run()
    uniq = Uniq(UniqConfig(angle_grid_deg=tuple(np.arange(0.0, 181.0, 20.0))))
    clear_delay_map_cache()
    result = benchmark.pedantic(
        uniq.personalize, args=(session,), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert np.isfinite(result.fusion.radii_m).all()


def test_perf_channel_estimation(benchmark, subject):
    """Deconvolving one probe recording (twice per probe)."""
    chirp = probe_chirp(FS)
    left, _ = record_near_field(
        subject, polar_to_cartesian(0.45, 50.0), chirp, FS,
        rng=np.random.default_rng(1),
    )
    channel = benchmark(estimate_channel, left, chirp, 576)
    assert channel.shape == (576,)


def test_perf_known_aoa(benchmark, subject, table):
    """One known-source AoA estimate (37 template comparisons)."""
    chirp = probe_chirp(FS, duration_s=0.05)
    left, right = record_far_field(
        subject, 60.0, chirp, FS, rng=np.random.default_rng(2), noise_std=0.003
    )
    estimator = KnownSourceAoAEstimator(table)
    estimate = benchmark(estimator.estimate, left, right, chirp, FS)
    assert abs(estimate - 60.0) < 20.0


def test_perf_unknown_aoa(benchmark, subject, table):
    """One unknown-source AoA estimate on 0.5 s of audio."""
    signal = white_noise(0.5, FS, rng=np.random.default_rng(3))
    left, right = record_far_field(
        subject, 60.0, signal, FS, rng=np.random.default_rng(4), noise_std=0.003
    )
    estimator = UnknownSourceAoAEstimator(table)
    estimate = benchmark(estimator.estimate, left, right, FS)
    assert abs(estimate - 60.0) < 25.0


def test_perf_binaural_render(benchmark, table):
    """Rendering one second of audio through the table."""
    signal = white_noise(1.0, FS, rng=np.random.default_rng(5))
    left, right = benchmark(table.binauralize, signal, 60.0)
    assert left.shape == right.shape


def test_perf_table_lookup_interpolated(benchmark, table):
    """One off-grid (interpolating) table lookup."""
    entry = benchmark(table.lookup, 47.3, "far")
    assert entry.n_samples == table.far[0].n_samples
