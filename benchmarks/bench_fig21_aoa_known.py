"""Figure 21: known-source AoA with personalized vs global HRTF.

Paper: personalized median error 7.8 deg vs 45.3 deg for the global
template; global suffers front-back confusion in 29% of trials, personalized
max error stays bounded.
"""

import numpy as np

from repro.eval import fig21_aoa_known_source


def test_fig21_aoa_known_source(benchmark):
    result = benchmark.pedantic(fig21_aoa_known_source, rounds=1, iterations=1)

    med_personal, med_global = result.median_errors
    fb_personal, fb_global = result.front_back_accuracy
    print()
    print("Figure 21 — known-source AoA error")
    print(f"trials                 : {result.truth_deg.shape[0]}")
    print(f"median error personal  : {med_personal:.1f} deg (paper: 7.8)")
    print(f"median error global    : {med_global:.1f} deg (paper: 45.3)")
    print(f"front-back acc personal: {fb_personal:.0%}")
    print(f"front-back acc global  : {fb_global:.0%} (paper: 71%)")
    for q in (50, 80, 95):
        print(
            f"  p{q}: personal "
            f"{np.percentile(result.personalized_errors, q):.1f} deg, global "
            f"{np.percentile(result.global_errors, q):.1f} deg"
        )

    # Paper shape: personalized sharply better, global confused front/back.
    assert med_personal < 12.0
    assert med_global > 2.5 * med_personal
    assert fb_personal > fb_global
    assert fb_personal > 0.9
