"""Load-generate the batch service and record BENCH_PR3.json.

Three ways to run the same 32-job workload (8 distinct specs, so request
coalescing has something to do), most expensive first:

- **per-process** (the status-quo workflow this PR replaces): every job
  pays a fresh interpreter, imports, and stone-cold caches, like looping
  ``uniq-personalize`` in a shell script.  Sampled (a few real spawns) and
  extrapolated to the full job count.
- **serial service**: one :class:`repro.serve.BatchServer` with a single
  worker — long-lived process, warm caches, coalescing.
- **batch service**: the same server at 4 workers.

The record keeps both baselines honest and separate: ``speedup_vs_
per_process`` is the headline (the workflow actually being replaced) and
``speedup_vs_serial_service`` shows what worker parallelism adds on this
machine (~1x on a single-core box — the cache and coalescing wins are
already in the serial service number).

Also verifies on every run that the 4-worker batch is bit-identical to the
serial run, that turning the telemetry flight recorder on costs under 5% of
throughput (and changes no deterministic result), that a batch survives
one injected worker crash, and — the PR 7 cold-start phase — that a fresh
worker forked cold serves its first job from a pre-baked DelayMap artifact
store within 2x the warm single-process personalize time, bit-identically
to the empty-store run (record it with ``--pr7-output BENCH_PR7.json``).

The PR 8 fleet phase pushes a synthetic evaluation population through the
same serve layer and records subjects/second — the number that sizes the
CI fleet tier — plus a bit-identity check of the multi-worker
:class:`~repro.eval.fleet.FleetReport` against a serial run (record it
with ``--pr8-output BENCH_PR8.json``).

The PR 10 adverse phase checks the deconvolution ladder's two serve-side
contracts: ``auto`` costs under 2% over pinned ``inverse`` on a clean
capture (the ladder is free when it does nothing), and a batch of noisy/
reverberant jobs completes with zero failures, each payload carrying the
method/rung it settled on (record it with ``--pr10-output
BENCH_PR10.json``).

    PYTHONPATH=src python benchmarks/bench_serve.py --output BENCH_PR3.json \
        --pr7-output BENCH_PR7.json --pr8-output BENCH_PR8.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

from repro import __version__, obs
from repro.serve import BatchServer, Job

#: The golden-case pipeline configuration (small grid, sparse probes).
SPEC = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}

_PER_PROCESS_SNIPPET = """
import time
from repro.core.pipeline import personalize_capture
started = time.perf_counter()
personalize_capture(subject_seed={seed}, probe_interval_s={probe}, \
angle_step_deg={step})
print(time.perf_counter() - started)
"""


def make_jobs(n_jobs: int, n_specs: int) -> list[Job]:
    """``n_jobs`` jobs cycling through ``n_specs`` distinct subject seeds."""
    return [
        Job(job_id=f"user-{i:03d}", subject_seed=1 + (i % n_specs), **SPEC)
        for i in range(n_jobs)
    ]


def run_service(jobs: list[Job], workers: int) -> dict:
    with BatchServer(workers=workers) as server:
        report = server.run_batch(jobs)
    if report.n_ok != len(jobs):
        raise RuntimeError(f"batch had failures: {report.counts}")
    return {
        "workers": workers,
        "n_jobs": len(jobs),
        "wall_s": report.wall_s,
        "jobs_per_s": report.jobs_per_s,
        "coalesced_jobs": sum(1 for r in report.results if r.coalesced),
        "latency": report.latency_summary(),
        "results": [r.deterministic() for r in report.results],
    }


def run_per_process(jobs: list[Job], samples: int) -> dict:
    """Time a few real fresh-interpreter runs; extrapolate to the batch."""
    distinct = []
    seen = set()
    for job in jobs:
        if job.subject_seed not in seen:
            seen.add(job.subject_seed)
            distinct.append(job)
    sampled = distinct[: max(1, samples)]
    walls = []
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for job in sampled:
        snippet = _PER_PROCESS_SNIPPET.format(
            seed=job.subject_seed,
            probe=job.probe_interval_s,
            step=job.angle_step_deg,
        )
        started = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c", snippet], env=env, check=True,
            stdout=subprocess.DEVNULL,
        )
        walls.append(time.perf_counter() - started)
    mean_wall = sum(walls) / len(walls)
    return {
        "n_sampled": len(walls),
        "sample_walls_s": walls,
        "mean_job_wall_s": mean_wall,
        # Every job pays the full price: no shared process, no warm cache,
        # no coalescing.
        "extrapolated_wall_s": mean_wall * len(jobs),
        "extrapolated_jobs_per_s": len(jobs) / (mean_wall * len(jobs)),
    }


def run_telemetry_phase(
    jobs: list[Job], workers: int, baseline: dict, budget_frac: float = 0.05
) -> dict:
    """Telemetry-on vs telemetry-off throughput on the same workload.

    The observability bar: flight recorder + worker span capture + SLO
    tracking must cost under ``budget_frac`` of throughput.  Walls are
    noisy on shared CI boxes, so each side keeps its best (minimum) wall
    over up to two rounds before the budget is enforced; the first
    telemetry-off measurement is reused from the main batch phase.
    """
    best_off = baseline["wall_s"]
    best_on = float("inf")
    overhead = float("inf")
    n_events = 0
    on_results: list[dict] = []
    for round_index in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            stream = os.path.join(tmp, "telemetry.jsonl")
            with BatchServer(workers=workers, telemetry=stream) as server:
                report = server.run_batch(jobs)
            if report.n_ok != len(jobs):
                raise RuntimeError(f"telemetry batch failed: {report.counts}")
            from repro.serve import read_events

            n_events = len(read_events(stream))
        best_on = min(best_on, report.wall_s)
        on_results = [r.deterministic() for r in report.results]
        overhead = best_on / best_off - 1.0
        if overhead < budget_frac:
            break
        if round_index == 0:
            # Re-measure the off side too before judging: the baseline may
            # have been the noisy sample.
            best_off = min(best_off, run_service(jobs, workers)["wall_s"])
    if on_results != baseline["results"]:
        raise RuntimeError(
            "telemetry changed the deterministic results of the batch"
        )
    if overhead >= budget_frac:
        raise RuntimeError(
            f"telemetry overhead {overhead:.1%} exceeds the "
            f"{budget_frac:.0%} throughput budget"
        )
    return {
        "wall_off_s": best_off,
        "wall_on_s": best_on,
        "overhead_frac": overhead,
        "budget_frac": budget_frac,
        "n_events": n_events,
        "deterministic_vs_off": True,
    }


def run_cold_start_phase(
    jobs: list[Job],
    bound_factor: float = 2.0,
    bound_grace_s: float = 0.25,
) -> dict:
    """Fresh-server cold starts: empty map store vs pre-baked (BENCH_PR7).

    The question this answers: how long does a job take on a stone-cold
    worker process?  Both sides fork fresh single-worker servers from a
    parent whose in-memory DelayMap cache has been cleared, so the only
    difference is the artifact store's content — empty on the first run
    (whose build-on-miss persistence is exactly what pre-bakes the store),
    fully baked on the second.  Enforced here, not just recorded:

    - both phases produce identical deterministic results (store-loaded
      tables are bit-identical to freshly built ones);
    - the pre-baked run p50 lands within ``bound_factor`` x the warm
      single-process personalize time (plus a small absolute grace for
      scheduler noise) — the PR 7 acceptance bound.
    """
    from repro.core.localize import clear_delay_map_cache
    from repro.core.pipeline import personalize_capture

    distinct: list[Job] = []
    seen: set = set()
    for job in jobs:
        if job.subject_seed not in seen:
            seen.add(job.subject_seed)
            distinct.append(
                Job(job_id=f"cold-{job.subject_seed:03d}",
                    subject_seed=job.subject_seed, **SPEC)
            )
    # Warm single-process reference: the same unit of work with every
    # process-wide cache hot (first run warms, best of the rest counts).
    walls = []
    for _ in range(3):
        started = time.perf_counter()
        personalize_capture(subject_seed=distinct[0].subject_seed, **SPEC)
        walls.append(time.perf_counter() - started)
    warm_single = min(walls[1:])

    phases: dict[str, dict] = {}
    results: dict[str, list] = {}
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "maps")
        for label in ("empty_store", "prebaked_store"):
            clear_delay_map_cache()  # workers must fork cold in memory
            with BatchServer(workers=1, map_store=store) as server:
                report = server.run_batch(distinct)
            if report.n_ok != len(distinct):
                raise RuntimeError(f"{label} phase failed: {report.counts}")
            latency = report.latency_summary()
            stats = [
                (r.payload or {}).get("_stats") or {} for r in report.results
            ]
            phases[label] = {
                "n_jobs": len(distinct),
                "wall_s": report.wall_s,
                "run_p50_s": latency["run_p50_s"],
                "run_p95_s": latency["run_p95_s"],
                "map_store_hits": sum(s.get("map_store_hits", 0) for s in stats),
                "map_store_misses": sum(
                    s.get("map_store_misses", 0) for s in stats
                ),
            }
            results[label] = [r.deterministic() for r in report.results]
        from repro.core.mapstore import MapStore

        baked = MapStore(store)
        store_stats = {"artifacts": len(baked), "bytes": baked.size_bytes()}
    identical = results["empty_store"] == results["prebaked_store"]
    if not identical:
        raise RuntimeError(
            "store-loaded tables changed the deterministic results"
        )
    bound_s = bound_factor * warm_single + bound_grace_s
    warmed_p50 = phases["prebaked_store"]["run_p50_s"]
    if warmed_p50 > bound_s:
        raise RuntimeError(
            f"pre-baked cold-start p50 {warmed_p50:.2f} s exceeds the bound "
            f"{bound_s:.2f} s ({bound_factor:g} x warm single-process "
            f"{warm_single:.2f} s + {bound_grace_s:g} s grace)"
        )
    return {
        "warm_single_process_s": warm_single,
        "empty_store": phases["empty_store"],
        "prebaked_store": phases["prebaked_store"],
        "deterministic_empty_vs_prebaked": identical,
        "store": store_stats,
        "bound": {
            "factor": bound_factor,
            "grace_s": bound_grace_s,
            "bound_s": bound_s,
            "warmed_p50_s": warmed_p50,
            "within_bound": True,
        },
    }


def run_fleet_phase(subjects: int, seed: int, workers: int) -> dict:
    """Fleet-evaluation throughput through the serve layer (BENCH_PR8).

    The fleet tier's unit of work is tiny (a synthetic metric model, not a
    personalization), so this measures the serve layer's fixed per-job
    costs — queueing, dispatch, result marshalling — at population scale.
    The multi-worker report must be bit-identical to the serial one; the
    recorded ``subjects_per_s`` is what sizes the CI quick tier.
    """
    from repro.eval.fleet import run_fleet

    report_multi, ops_multi = run_fleet(subjects, seed, workers=workers)
    report_serial, ops_serial = run_fleet(subjects, seed, workers=1)
    multi = json.dumps(report_multi.to_dict(), sort_keys=True)
    serial = json.dumps(report_serial.to_dict(), sort_keys=True)
    if multi != serial:
        raise RuntimeError(
            f"{workers}-worker fleet report differs from the serial run"
        )
    return {
        "subjects": subjects,
        "seed": seed,
        "workers": workers,
        "wall_s": ops_multi["wall_s"],
        "subjects_per_s": ops_multi["subjects_per_s"],
        "serial_wall_s": ops_serial["wall_s"],
        "serial_subjects_per_s": ops_serial["subjects_per_s"],
        "statuses": dict(ops_multi["statuses"]),
        "serve_latency": ops_multi["serve_latency"],
        "deterministic_vs_serial": True,
    }


def run_adverse_phase(workers: int, budget_frac: float = 0.02) -> dict:
    """Adverse captures through the serve tier + rung-0 overhead (BENCH_PR10).

    Two contracts, enforced here rather than just recorded:

    - **rung-0 overhead**: on a clean capture, the ``auto`` ladder (with
      its sentinel reads and escalation bookkeeping) must cost under
      ``budget_frac`` of the pinned-``inverse`` wall time, warm, best of
      three per side — the ladder is free when it does nothing;
    - **graceful degradation at the serve tier**: a batch mixing clean,
      noisy, reverberant, and noisy+reverberant jobs completes with zero
      failures, every payload carries its method/rung, and at least one
      adverse job actually escalated.
    """
    from repro.core.pipeline import personalize_capture

    # Warm every process-wide cache, then alternate pinned/auto so both
    # sides see the same machine state; best-of-three per side before the
    # budget is enforced (walls are noisy on shared CI boxes).
    personalize_capture(subject_seed=1, deconv="inverse", **SPEC)
    walls = {"inverse": [], "auto": []}
    for _ in range(3):
        for mode in ("inverse", "auto"):
            started = time.perf_counter()
            personalize_capture(subject_seed=1, deconv=mode, **SPEC)
            walls[mode].append(time.perf_counter() - started)
    overhead = min(walls["auto"]) / min(walls["inverse"]) - 1.0
    if overhead >= budget_frac:
        raise RuntimeError(
            f"rung-0 ladder overhead {overhead:.1%} exceeds the "
            f"{budget_frac:.0%} budget"
        )

    adverse_jobs = [
        Job(job_id="adverse-clean", subject_seed=1, **SPEC),
        Job(job_id="adverse-noise", subject_seed=1,
            fault="mic_noise", fault_args={"std": 0.3}, **SPEC),
        Job(job_id="adverse-reverb", subject_seed=1,
            fault="reverberant_room",
            fault_args={"rt60_s": 0.9, "wet_level": 1.6}, **SPEC),
        Job(job_id="adverse-both", subject_seed=1,
            fault="noisy_reverberant",
            fault_args={"rt60_s": 0.9, "std": 0.3}, **SPEC),
    ]
    with BatchServer(workers=workers) as server:
        report = server.run_batch(adverse_jobs)
    if report.n_ok != len(adverse_jobs):
        raise RuntimeError(f"adverse batch had failures: {report.counts}")
    rungs = {
        r.job_id: dict((r.payload or {}).get("deconv") or {})
        for r in report.results
    }
    if rungs["adverse-clean"].get("rung") != 0:
        raise RuntimeError(f"clean job left rung 0: {rungs['adverse-clean']}")
    escalated = sum(1 for d in rungs.values() if d.get("rung", 0) > 0)
    if escalated == 0:
        raise RuntimeError("no adverse job escalated the ladder")
    return {
        "rung0_overhead": {
            "walls_inverse_s": walls["inverse"],
            "walls_auto_s": walls["auto"],
            "overhead_frac": overhead,
            "budget_frac": budget_frac,
        },
        "adverse_batch": {
            "n_jobs": len(adverse_jobs),
            "counts": report.counts,
            "wall_s": report.wall_s,
            "escalated_jobs": escalated,
            "deconv_by_job": rungs,
            "confidence_by_job": {
                r.job_id: (r.payload or {}).get("confidence")
                for r in report.results
            },
        },
    }


def run_crash_phase(workers: int) -> dict:
    """A small batch with one injected worker death must still complete."""
    with tempfile.TemporaryDirectory() as tmp:
        marker = os.path.join(tmp, "crash-marker")
        jobs = [
            Job(job_id="victim", subject_seed=1, crash_marker=marker, **SPEC),
            Job(job_id="bystander", subject_seed=2, **SPEC),
        ]
        with BatchServer(workers=workers) as server:
            report = server.run_batch(jobs)
        victim = next(r for r in report.results if r.job_id == "victim")
        crashed = os.path.exists(marker)
    if report.n_ok != len(jobs):
        raise RuntimeError(f"crash phase failed: {report.counts}")
    if not crashed or victim.attempts < 2:
        raise RuntimeError("crash was not actually injected/retried")
    return {
        "counts": report.counts,
        "victim_attempts": victim.attempts,
        "wall_s": report.wall_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the benchmark record here")
    parser.add_argument("--jobs", type=int, default=32)
    parser.add_argument("--specs", type=int, default=8,
                        help="distinct subject seeds among the jobs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--samples", type=int, default=3,
                        help="fresh-interpreter runs for the per-process baseline")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 8 jobs, 2 specs, 1 baseline sample")
    parser.add_argument("--pr7-output", default=None, metavar="PATH",
                        help="write the cold-start phase record "
                        "(BENCH_PR7.json) here")
    parser.add_argument("--pr8-output", default=None, metavar="PATH",
                        help="write the fleet-throughput phase record "
                        "(BENCH_PR8.json) here")
    parser.add_argument("--pr10-output", default=None, metavar="PATH",
                        help="write the adverse-capture phase record "
                        "(BENCH_PR10.json) here")
    parser.add_argument("--fleet-subjects", type=int, default=2000,
                        help="population size for the fleet phase")
    args = parser.parse_args(argv)
    if args.quick:
        args.jobs, args.specs, args.samples = 8, 2, 1
        args.fleet_subjects = min(args.fleet_subjects, 500)

    jobs = make_jobs(args.jobs, args.specs)
    print(f"workload       : {len(jobs)} jobs over {args.specs} distinct specs")

    print(f"per-process    : sampling {args.samples} fresh-interpreter runs ...")
    per_process = run_per_process(jobs, args.samples)
    print(f"                 {per_process['mean_job_wall_s']:.2f} s/job -> "
          f"{per_process['extrapolated_wall_s']:.1f} s extrapolated")

    print("serial service : 1 worker ...")
    serial = run_service(jobs, workers=1)
    print(f"                 {serial['wall_s']:.1f} s "
          f"({serial['jobs_per_s']:.2f} jobs/s, "
          f"{serial['coalesced_jobs']} coalesced)")

    print(f"batch service  : {args.workers} workers ...")
    batch = run_service(jobs, workers=args.workers)
    print(f"                 {batch['wall_s']:.1f} s "
          f"({batch['jobs_per_s']:.2f} jobs/s)")

    identical = batch["results"] == serial["results"]
    print(f"determinism    : batch == serial results: {identical}")
    if not identical:
        raise RuntimeError("4-worker batch results differ from serial run")

    print("telemetry      : same workload with the flight recorder on ...")
    telemetry = run_telemetry_phase(jobs, args.workers, batch)
    print(f"                 {telemetry['wall_on_s']:.1f} s on vs "
          f"{telemetry['wall_off_s']:.1f} s off "
          f"({telemetry['overhead_frac']:+.1%} overhead, "
          f"{telemetry['n_events']} events)")

    print("crash phase    : one injected worker death ...")
    crash = run_crash_phase(args.workers)
    print(f"                 recovered in {crash['victim_attempts']} attempts")

    print("cold start     : fresh workers, empty vs pre-baked map store ...")
    cold = run_cold_start_phase(jobs)
    print(f"                 empty store p50 "
          f"{cold['empty_store']['run_p50_s']:.2f} s -> pre-baked p50 "
          f"{cold['prebaked_store']['run_p50_s']:.2f} s "
          f"(warm single-process {cold['warm_single_process_s']:.2f} s, "
          f"bound {cold['bound']['bound_s']:.2f} s, "
          f"{cold['store']['artifacts']} artifacts)")

    print("adverse phase  : rung-0 overhead + adverse batch ...")
    adverse = run_adverse_phase(args.workers)
    print(f"                 rung-0 overhead "
          f"{adverse['rung0_overhead']['overhead_frac']:+.1%} "
          f"(budget {adverse['rung0_overhead']['budget_frac']:.0%}), "
          f"{adverse['adverse_batch']['escalated_jobs']}/"
          f"{adverse['adverse_batch']['n_jobs']} jobs escalated")

    print(f"fleet phase    : {args.fleet_subjects} synthetic subjects ...")
    fleet = run_fleet_phase(args.fleet_subjects, seed=7, workers=args.workers)
    print(f"                 {fleet['wall_s']:.1f} s "
          f"({fleet['subjects_per_s']:.0f} subjects/s at {fleet['workers']} "
          f"workers, {fleet['serial_subjects_per_s']:.0f} serial)")

    speedup_pp = per_process["extrapolated_wall_s"] / batch["wall_s"]
    speedup_serial = serial["wall_s"] / batch["wall_s"]
    print(f"speedup        : {speedup_pp:.2f}x vs per-process, "
          f"{speedup_serial:.2f}x vs serial service")

    record = {
        "benchmark": "serve_batch",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "spec": SPEC,
        "n_jobs": len(jobs),
        "n_distinct_specs": args.specs,
        "quick": args.quick,
        "per_process_baseline": per_process,
        "serial_service": {k: v for k, v in serial.items() if k != "results"},
        "batch_service": {k: v for k, v in batch.items() if k != "results"},
        "deterministic_vs_serial": identical,
        "telemetry_overhead": telemetry,
        "crash_recovery": crash,
        "cold_start": cold,
        "adverse": adverse,
        "fleet": fleet,
        "speedup_vs_per_process": speedup_pp,
        "speedup_vs_serial_service": speedup_serial,
        "metrics": obs.registry().snapshot(),
    }
    if args.output:
        from repro.ioutil import atomic_write

        with atomic_write(args.output, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record         : {args.output}")
    if args.pr7_output:
        from repro.ioutil import atomic_write

        pr7_record = {
            "benchmark": "serve_cold_start",
            "repro_version": __version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "spec": SPEC,
            "quick": args.quick,
            **cold,
        }
        with atomic_write(args.pr7_output, "w") as handle:
            json.dump(pr7_record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record         : {args.pr7_output}")
    if args.pr8_output:
        from repro.ioutil import atomic_write

        pr8_record = {
            "benchmark": "fleet_throughput",
            "repro_version": __version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            **fleet,
        }
        with atomic_write(args.pr8_output, "w") as handle:
            json.dump(pr8_record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record         : {args.pr8_output}")
    if args.pr10_output:
        from repro.ioutil import atomic_write

        pr10_record = {
            "benchmark": "adverse_capture",
            "repro_version": __version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "spec": SPEC,
            "quick": args.quick,
            **adverse,
        }
        with atomic_write(args.pr10_output, "w") as handle:
            json.dump(pr10_record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record         : {args.pr10_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
