"""Extension benchmark: the Section 7 3D HRTF via multi-ring capture.

The paper's 2D prototype cannot place sounds off the horizontal plane.
This benchmark runs the implemented 3D extension — three tilted capture
rings, cross-ring head fitting, and the elevation HRTF field — and
measures what the extension buys: for elevated sources, compare the 3D
field lookup against using the flat (eye-level) 2D table, both against the
true 3D rendering.
"""

import numpy as np

from repro.eval.common import format_table
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.metrics import hrir_correlation
from repro.simulation.person3d import VirtualSubject3D, render_far_field_hrir_3d
from repro.core.elevation import SphericalPersonalizer, capture_rings

FS = 48_000
TEST_AZIMUTHS = (30.0, 60.0, 90.0, 120.0, 150.0)
TEST_ELEVATIONS = (0.0, 25.0, -25.0)


def run_3d_extension():
    subject = VirtualSubject3D.random(31)
    sessions = capture_rings(subject, tilts_deg=(-30.0, 0.0, 30.0), seed=5)
    result = SphericalPersonalizer().personalize(sessions)
    flat_table = result.ring_results[0.0].table

    per_elevation = {}
    for elevation in TEST_ELEVATIONS:
        corr_field, corr_flat, itd_field, itd_flat = [], [], [], []
        for azimuth in TEST_AZIMUTHS:
            truth_l, truth_r = render_far_field_hrir_3d(
                subject, azimuth, elevation, FS
            )
            truth = BinauralIR(left=truth_l, right=truth_r, fs=FS)
            field_entry = result.field.lookup(azimuth, elevation)
            flat_entry = flat_table.lookup(azimuth, "far")
            corr_field.append(np.mean(hrir_correlation(field_entry, truth)))
            corr_flat.append(np.mean(hrir_correlation(flat_entry, truth)))
            itd_field.append(
                abs(field_entry.interaural_delay_s() - truth.interaural_delay_s())
            )
            itd_flat.append(
                abs(flat_entry.interaural_delay_s() - truth.interaural_delay_s())
            )
        per_elevation[elevation] = {
            "corr_field": float(np.mean(corr_field)),
            "corr_flat": float(np.mean(corr_flat)),
            "itd_field_us": float(np.mean(itd_field) * 1e6),
            "itd_flat_us": float(np.mean(itd_flat) * 1e6),
        }
    true_params = np.asarray(subject.head.parameters)
    est_params = np.asarray(result.head_parameters)
    return {
        "per_elevation": per_elevation,
        "head_error_mm": float(np.linalg.norm(est_params - true_params) * 1e3),
    }


def test_ext_3d_elevation(benchmark):
    result = benchmark.pedantic(run_3d_extension, rounds=1, iterations=1)

    rows = []
    for elevation, stats in result["per_elevation"].items():
        rows.append(
            [
                f"{elevation:+.0f}",
                stats["corr_field"],
                stats["corr_flat"],
                f"{stats['itd_field_us']:.0f}",
                f"{stats['itd_flat_us']:.0f}",
            ]
        )
    print()
    print("3D extension — elevation-aware field vs flat 2D table")
    print(
        format_table(
            ["elev", "corr 3D", "corr 2D", "ITD 3D (us)", "ITD 2D (us)"], rows
        )
    )
    print(f"E3 = (a,b,c,d) joint error: {result['head_error_mm']:.1f} mm")

    for elevation, stats in result["per_elevation"].items():
        if elevation == 0.0:
            continue
        # Off the horizontal plane, the 3D field must beat the flat table
        # on both the waveform and the interaural timing.
        assert stats["corr_field"] > stats["corr_flat"]
        assert stats["itd_field_us"] < stats["itd_flat_us"]
    # On the horizontal plane, the field must not be worse than the flat
    # table (it *is* the flat ring there).
    flat_plane = result["per_elevation"][0.0]
    assert flat_plane["corr_field"] >= flat_plane["corr_flat"] - 0.02
