"""Figure 22: unknown-source AoA (white noise / music / speech).

Paper: personalized HRTF wins for every signal category; the 80th-percentile
error is within ~20 deg for white noise and music; front-back accuracy
averages 82.8% personalized vs 59.8% global, with speech the hardest signal.
"""

from repro.eval import fig22_aoa_unknown_source
from repro.eval.common import format_table


def test_fig22_aoa_unknown_source(benchmark):
    result = benchmark.pedantic(fig22_aoa_unknown_source, rounds=1, iterations=1)

    rows = []
    for comparison in result.categories():
        med_p, med_g = comparison.median_errors
        p80_p, p80_g = comparison.p80_errors
        fb_p, fb_g = comparison.front_back_accuracy
        rows.append(
            [
                comparison.label,
                med_p,
                med_g,
                p80_p,
                p80_g,
                f"{fb_p:.0%}",
                f"{fb_g:.0%}",
            ]
        )
    print()
    print("Figure 22 — unknown-source AoA error and front-back accuracy")
    print(
        format_table(
            ["signal", "med P", "med G", "p80 P", "p80 G", "fb P", "fb G"], rows
        )
    )
    fb_personal, fb_global = result.mean_front_back_accuracy
    print(f"mean front-back: personal {fb_personal:.0%} (paper 82.8%), "
          f"global {fb_global:.0%} (paper 59.8%)")

    for comparison in result.categories():
        med_p, med_g = comparison.median_errors
        fb_p, fb_g = comparison.front_back_accuracy
        # Personalized HRTF wins in every category.
        assert med_p <= med_g
        assert fb_p >= fb_g
    # Aggregate front-back gap, the paper's headline for this figure.
    assert fb_personal > 0.75
    assert fb_personal - fb_global > 0.1
