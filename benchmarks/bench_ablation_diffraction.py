"""Ablation: why model diffraction?  (Section 2's motivation.)

The identical fusion pipeline run with straight-line (through-the-head)
delays instead of wrap-around diffraction delays: the geometric model no
longer matches how sound actually reaches the shadowed ear, so both the
optimizer residual and the localization error inflate.
"""

from repro.eval import ablation_diffraction_model


def test_ablation_diffraction_model(benchmark):
    result = benchmark.pedantic(ablation_diffraction_model, rounds=1, iterations=1)

    print()
    print("Ablation — delay model inside sensor fusion")
    print(
        f"diffraction: median {result.diffraction_median_deg:.1f} deg, "
        f"residual {result.diffraction_residual_deg:.1f} deg"
    )
    print(
        f"euclidean  : median {result.euclidean_median_deg:.1f} deg, "
        f"residual {result.euclidean_residual_deg:.1f} deg"
    )

    assert result.diffraction_median_deg < result.euclidean_median_deg
    assert result.diffraction_residual_deg < result.euclidean_residual_deg
