"""Ablation: the paper's "Attempt 2" blind ray/pinna decoupling is ill-posed.

The bilinear model (ray train convolved with a pinna kernel) fits any
measured channel essentially perfectly — yet independent solver restarts
recover *different* factorizations, so the decomposition cannot feed an
exact near-far conversion.  This reproduces the paper's negative result
quantitatively.
"""

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.core.decomposition import decoupling_consistency
from repro.geometry.vec import polar_to_cartesian
from repro.geometry.paths import propagation_path
from repro.geometry.head import Ear
from repro.simulation.person import VirtualSubject
from repro.simulation.propagation import record_near_field
from repro.signals.channel import estimate_channel
from repro.signals.waveforms import probe_chirp

FS = 48_000


def run_decoupling_study():
    subject = VirtualSubject.random(21)
    position = polar_to_cartesian(0.45, 50.0)
    chirp = probe_chirp(FS)
    left, _ = record_near_field(
        subject, position, chirp, FS,
        rng=np.random.default_rng(3), room=None, noise_std=0.001,
    )
    channel = estimate_channel(left, chirp, 260)

    # Window the channel to the head-multipath region (the same truncation
    # the pipeline applies) so residuals measure model misfit, not
    # deconvolution ripple outside the model's support.
    base_samples = (
        propagation_path(subject.head, position, Ear.LEFT).length
        / SPEED_OF_SOUND
        * FS
    )
    start = int(base_samples) - 12
    channel = channel[start : start + 96]

    # Candidate ray delays from diffraction geometry (paper: "delta(tau_i)
    # can be estimated from diffraction geometry"): the direct/diffracted
    # first arrival plus hypothesized rays that wrap slightly further
    # around the head, i.e. arrive a few samples later.
    first_arrival = base_samples - start
    delays = first_arrival + np.array([0.0, 1.0, 2.0, 4.0, 8.0])

    study = decoupling_consistency(channel, delays, n_restarts=6)
    return {
        "best_error": study.best_error,
        "mean_error": study.mean_error,
        "kernel_consistency": study.kernel_agreement,
        "first_arrival_samples": base_samples,
    }


def test_ablation_blind_decoupling(benchmark):
    result = benchmark.pedantic(run_decoupling_study, rounds=1, iterations=1)

    print()
    print("Ablation — Attempt 2 (blind ray/pinna decoupling)")
    print(f"best reconstruction error      : {result['best_error']:.3f}")
    print(f"mean reconstruction error      : {result['mean_error']:.3f}")
    print(f"cross-restart kernel agreement : {result['kernel_consistency']:.2f}")
    print("-> the bilinear model fits the channel, but independent restarts")
    print("   recover different factorizations — Attempt 2 is ill-posed,")
    print("   matching the paper's negative result.")

    # The bilinear model can explain the channel...
    assert result["best_error"] < 0.25
    # ...but restarts disagree sharply on the recovered pinna kernel:
    # the factorization is not unique, so it cannot drive an exact
    # near-far conversion.
    assert result["kernel_consistency"] < 0.7
