"""Figure 14: the L/R relative channel of an unknown source has many peaks.

Paper: pinna multipath autocorrelates poorly, so the relative channel shows
multiple taps — each yielding candidate AoAs that Eq. 11 must disambiguate.
"""

from repro.eval import fig14_relative_channel


def test_fig14_relative_channel(benchmark):
    result = benchmark.pedantic(fig14_relative_channel, rounds=1, iterations=1)

    print()
    print("Figure 14 — relative channel between left and right recordings")
    print(f"peaks found          : {result.n_peaks}")
    print(f"true interaural delay: {result.true_itd_ms:.3f} ms")
    print(f"strongest peak lag   : {result.strongest_peak_ms:.3f} ms")

    # Multiple peaks (the figure's point) ...
    assert result.n_peaks >= 2
    # ... and the true ITD is among them (strongest peak within 0.15 ms).
    assert abs(result.strongest_peak_ms - result.true_itd_ms) < 0.15
