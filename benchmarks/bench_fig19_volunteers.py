"""Figure 19: the personalization gain holds for every volunteer.

Paper: all 5 volunteers see higher correlation with UNIQ than with the
global template, for both ears.
"""

import numpy as np

from repro.eval import fig19_volunteers
from repro.eval.common import format_table


def test_fig19_volunteers(benchmark):
    result = benchmark.pedantic(fig19_volunteers, rounds=1, iterations=1)

    rows = [
        [
            name,
            float(ul),
            float(gl),
            float(ur),
            float(gr),
            f"{gain:.2f}x",
        ]
        for name, ul, gl, ur, gr, gain in zip(
            result.names,
            result.uniq_left,
            result.global_left,
            result.uniq_right,
            result.global_right,
            result.per_volunteer_gain,
        )
    ]
    print()
    print("Figure 19 — per-volunteer mean correlation to ground truth")
    print(
        format_table(
            ["volunteer", "UNIQ L", "glob L", "UNIQ R", "glob R", "gain"], rows
        )
    )

    # Personalization wins for every volunteer and both ears.
    assert np.all(result.uniq_left > result.global_left)
    assert np.all(result.uniq_right > result.global_right)
    assert np.all(result.per_volunteer_gain > 1.1)
