"""Emit one machine-readable benchmark record for the BENCH_*.json trajectory.

Runs a seeded end-to-end personalization under the :mod:`repro.obs` tracer
and writes a single JSON document with the run's wall clock, its per-stage
durations (flattened from the span tree), and the full metrics snapshot —
the shape every future perf PR reports its numbers through.  A second,
telemetry-enabled batch-service phase adds the serve-side latency breakdown
(queue wait vs attempt wall, from the SLO tracker's percentiles) and folds
the workers' ``serve.*`` / ``quality.*`` metrics into the snapshot::

    PYTHONPATH=src python benchmarks/export_metrics.py --output BENCH_personalize.json
    PYTHONPATH=src python benchmarks/export_metrics.py --repeat 3   # min-of-N stages
    PYTHONPATH=src python benchmarks/export_metrics.py --skip-serve # pipeline only

Because subject, session, and pipeline are all seeded, stage *counts* are
bit-stable across machines; only the durations vary.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

import numpy as np

from repro import __version__, obs
from repro.obs.report import span_to_dict, stage_durations
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession
from repro.core.localize import clear_delay_map_cache
from repro.core.pipeline import Uniq, UniqConfig


def run_benchmark(
    subject_seed: int = 1,
    session_seed: int = 0,
    angle_step_deg: float = 5.0,
    probe_interval_s: float = 0.4,
    repeat: int = 1,
) -> dict:
    """One benchmark record: min-of-``repeat`` stage timings + metrics."""
    subject = VirtualSubject.random(subject_seed)
    session = MeasurementSession(
        subject, seed=session_seed, probe_interval_s=probe_interval_s
    ).run()
    grid = tuple(np.arange(0.0, 180.0 + 1e-9, angle_step_deg))

    obs.registry().reset()
    # Start from an empty DelayMap store so the first iteration measures a
    # genuine cold run; later iterations measure the cached steady state.
    clear_delay_map_cache()
    best_stages: dict[str, float] = {}
    best_wall = float("inf")
    wall_cold = None
    best_trace = None
    for _ in range(max(repeat, 1)):
        with obs.capturing():
            result = Uniq(UniqConfig(angle_grid_deg=grid)).personalize(session)
        stages = stage_durations(result.trace)
        wall = result.trace.duration_s or 0.0
        if wall_cold is None:
            wall_cold = wall
        if wall < best_wall:
            best_wall, best_trace = wall, result.trace
        for name, duration in stages.items():
            best_stages[name] = min(best_stages.get(name, float("inf")), duration)

    return {
        "benchmark": "uniq_personalize",
        "repro_version": __version__,
        "python": platform.python_version(),
        "subject_seed": subject_seed,
        "session_seed": session_seed,
        "n_probes": session.n_probes,
        "n_grid_angles": len(grid),
        "repeat": repeat,
        "wall_s": best_wall,
        "wall_cold_s": wall_cold,
        "residual_deg": float(result.fusion.residual_deg),
        "stages_s": {name: best_stages[name] for name in sorted(best_stages)},
        "trace": span_to_dict(best_trace),
        "metrics": obs.registry().snapshot(),
    }


def run_serve_benchmark(
    n_jobs: int = 6,
    workers: int = 2,
    angle_step_deg: float = 15.0,
    probe_interval_s: float = 0.6,
) -> dict:
    """A telemetry-enabled batch: the per-stage serve latency breakdown.

    Runs the real pipeline through a :class:`repro.serve.BatchServer` with
    the flight recorder on, and reports where each job's wall clock went —
    queue wait (admission/backpressure) vs attempt wall (worker compute) —
    straight from the SLO tracker's percentiles.  Worker metrics deltas
    merge into this process's registry, so the final snapshot carries the
    fleet-wide ``serve.*`` and ``quality.*`` series too.
    """
    import tempfile

    from repro.serve import BatchServer, Job, read_events

    jobs = [
        Job(
            job_id=f"bench-{i:02d}",
            subject_seed=1 + i,
            angle_step_deg=angle_step_deg,
            probe_interval_s=probe_interval_s,
        )
        for i in range(n_jobs)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        stream = os.path.join(tmp, "telemetry.jsonl")
        with BatchServer(workers=workers, telemetry=stream) as server:
            report = server.run_batch(jobs)
        n_events = len(read_events(stream))
    if report.n_ok != len(jobs):
        raise RuntimeError(f"serve benchmark batch failed: {report.counts}")
    summary = (report.slo or {}).get("summary", {})
    return {
        "n_jobs": len(jobs),
        "workers": workers,
        "wall_s": report.wall_s,
        "jobs_per_s": report.jobs_per_s,
        "n_telemetry_events": n_events,
        "cold_start_fraction": summary.get("cold_start_fraction"),
        "latency": {
            "queue_wait_p50_s": summary.get("queue_wait_p50_s"),
            "queue_wait_p95_s": summary.get("queue_wait_p95_s"),
            "queue_wait_p99_s": summary.get("queue_wait_p99_s"),
            "attempt_wall_p50_s": summary.get("job_p50_s"),
            "attempt_wall_p95_s": summary.get("job_p95_s"),
            "attempt_wall_p99_s": summary.get("job_p99_s"),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/export_metrics.py",
        description="Run one traced personalization and write a BENCH JSON record.",
    )
    parser.add_argument("--subject-seed", type=int, default=1)
    parser.add_argument("--session-seed", type=int, default=0)
    parser.add_argument("--angle-step", type=float, default=5.0)
    parser.add_argument("--probe-interval", type=float, default=0.4)
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions; stage timings keep the minimum")
    parser.add_argument("--serve-jobs", type=int, default=6,
                        help="jobs in the telemetry-enabled serve phase")
    parser.add_argument("--serve-workers", type=int, default=2)
    parser.add_argument("--skip-serve", action="store_true",
                        help="omit the batch-service latency breakdown")
    parser.add_argument("--output", default="BENCH_personalize.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        subject_seed=args.subject_seed,
        session_seed=args.session_seed,
        angle_step_deg=args.angle_step,
        probe_interval_s=args.probe_interval,
        repeat=args.repeat,
    )
    if not args.skip_serve:
        record["serve"] = run_serve_benchmark(
            n_jobs=args.serve_jobs, workers=args.serve_workers
        )
        # Re-snapshot after the batch: the workers' metrics deltas (merged
        # home by the telemetry path) put serve.* and quality.* series in.
        record["metrics"] = obs.registry().snapshot()
    from repro.ioutil import atomic_write

    with atomic_write(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output}: wall {record['wall_s']:.2f} s "
        f"(cold {record['wall_cold_s']:.2f} s) over "
        f"{len(record['stages_s'])} stages, {record['n_probes']} probes"
    )
    if "serve" in record:
        serve = record["serve"]
        latency = serve["latency"]
        print(
            f"serve breakdown: {serve['n_jobs']} jobs @ "
            f"{serve['workers']} workers, queue wait p95 "
            f"{latency['queue_wait_p95_s']:.3f} s vs attempt wall p95 "
            f"{latency['attempt_wall_p95_s']:.3f} s "
            f"({serve['n_telemetry_events']} events)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
