"""Emit one machine-readable benchmark record for the BENCH_*.json trajectory.

Runs a seeded end-to-end personalization under the :mod:`repro.obs` tracer
and writes a single JSON document with the run's wall clock, its per-stage
durations (flattened from the span tree), and the full metrics snapshot —
the shape every future perf PR reports its numbers through::

    PYTHONPATH=src python benchmarks/export_metrics.py --output BENCH_personalize.json
    PYTHONPATH=src python benchmarks/export_metrics.py --repeat 3   # min-of-N stages

Because subject, session, and pipeline are all seeded, stage *counts* are
bit-stable across machines; only the durations vary.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

import numpy as np

from repro import __version__, obs
from repro.obs.report import span_to_dict, stage_durations
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession
from repro.core.localize import clear_delay_map_cache
from repro.core.pipeline import Uniq, UniqConfig


def run_benchmark(
    subject_seed: int = 1,
    session_seed: int = 0,
    angle_step_deg: float = 5.0,
    probe_interval_s: float = 0.4,
    repeat: int = 1,
) -> dict:
    """One benchmark record: min-of-``repeat`` stage timings + metrics."""
    subject = VirtualSubject.random(subject_seed)
    session = MeasurementSession(
        subject, seed=session_seed, probe_interval_s=probe_interval_s
    ).run()
    grid = tuple(np.arange(0.0, 180.0 + 1e-9, angle_step_deg))

    obs.registry().reset()
    # Start from an empty DelayMap store so the first iteration measures a
    # genuine cold run; later iterations measure the cached steady state.
    clear_delay_map_cache()
    best_stages: dict[str, float] = {}
    best_wall = float("inf")
    wall_cold = None
    best_trace = None
    for _ in range(max(repeat, 1)):
        with obs.capturing():
            result = Uniq(UniqConfig(angle_grid_deg=grid)).personalize(session)
        stages = stage_durations(result.trace)
        wall = result.trace.duration_s or 0.0
        if wall_cold is None:
            wall_cold = wall
        if wall < best_wall:
            best_wall, best_trace = wall, result.trace
        for name, duration in stages.items():
            best_stages[name] = min(best_stages.get(name, float("inf")), duration)

    return {
        "benchmark": "uniq_personalize",
        "repro_version": __version__,
        "python": platform.python_version(),
        "subject_seed": subject_seed,
        "session_seed": session_seed,
        "n_probes": session.n_probes,
        "n_grid_angles": len(grid),
        "repeat": repeat,
        "wall_s": best_wall,
        "wall_cold_s": wall_cold,
        "residual_deg": float(result.fusion.residual_deg),
        "stages_s": {name: best_stages[name] for name in sorted(best_stages)},
        "trace": span_to_dict(best_trace),
        "metrics": obs.registry().snapshot(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/export_metrics.py",
        description="Run one traced personalization and write a BENCH JSON record.",
    )
    parser.add_argument("--subject-seed", type=int, default=1)
    parser.add_argument("--session-seed", type=int, default=0)
    parser.add_argument("--angle-step", type=float, default=5.0)
    parser.add_argument("--probe-interval", type=float, default=0.4)
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions; stage timings keep the minimum")
    parser.add_argument("--output", default="BENCH_personalize.json")
    args = parser.parse_args(argv)

    record = run_benchmark(
        subject_seed=args.subject_seed,
        session_seed=args.session_seed,
        angle_step_deg=args.angle_step,
        probe_interval_s=args.probe_interval,
        repeat=args.repeat,
    )
    from repro.ioutil import atomic_write

    with atomic_write(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output}: wall {record['wall_s']:.2f} s "
        f"(cold {record['wall_cold_s']:.2f} s) over "
        f"{len(record['stages_s'])} stages, {record['n_probes']} probes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
