"""Application benchmark: hearing-aid beamforming with personalized HRTFs.

Section 4.5's motivating application ("Alice and Bob could listen to each
other more clearly by wearing headphones in a noisy bar"), quantified: a
speech target and a noise interferer around each cohort member, beamformed
with (a) the member's UNIQ-estimated table, (b) the member's exact ground
truth (ceiling), and (c) the global template (baseline).

Null-steering quality decomposes into two numbers this benchmark reports
separately:

- **interferer suppression** — how deep the null lands on the *true*
  interferer (needs accurate steering phase; personalization's win);
- **target distortion** — how much the wanted signal is attenuated by
  template/reality mismatch (hurts any imperfect table).

The matched (no-null) mode is phase-robust and serves as the floor.
"""

import numpy as np

from repro.core.beamforming import BinauralBeamformer, signal_to_interference_gain
from repro.eval.common import format_table, get_cohort
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import speech_like, white_noise

FS = 48_000
SCENES = ((40.0, 120.0), (20.0, 95.0), (70.0, 160.0))


def _db(ratio: float) -> float:
    return float(10.0 * np.log10(max(ratio, 1e-30)))


def run_beamforming_comparison():
    cohort = get_cohort()
    results = {
        key: {"suppression": [], "distortion": [], "matched_sir": []}
        for key in ("uniq", "truth", "global")
    }
    for m_idx, member in enumerate(cohort):
        beams = {
            "uniq": BinauralBeamformer(member.personalization.table),
            "truth": BinauralBeamformer(member.ground_truth),
            "global": BinauralBeamformer(cohort.global_template),
        }
        rng = np.random.default_rng(600 + m_idx)
        for s_idx, (target_deg, null_deg) in enumerate(SCENES):
            speech = speech_like(0.5, FS, rng=np.random.default_rng(s_idx))
            noise = white_noise(0.5, FS, rng=np.random.default_rng(50 + s_idx))
            tl, tr = record_far_field(
                member.subject, target_deg, speech, FS, rng=rng, noise_std=0.0
            )
            il, ir = record_far_field(
                member.subject, null_deg, noise, FS, rng=rng, noise_std=0.0
            )
            # The LCMV output is *distortionless* toward the target: a
            # perfect beamformer reproduces the dry source.  Distortion is
            # therefore scored against the dry speech, band-limited to the
            # beamformer's analysis band.
            spectrum = np.fft.rfft(speech)
            freqs = np.fft.rfftfreq(speech.shape[0], d=1.0 / FS)
            in_band = (freqs >= 150.0) & (freqs <= 16_000.0)
            dry_energy = float(
                np.sum(np.abs(spectrum[in_band]) ** 2) / speech.shape[0] * 2
            )
            for key, beam in beams.items():
                out_t = beam.extract(tl, tr, FS, target_deg, null_deg)
                out_i = beam.extract(il, ir, FS, target_deg, null_deg)
                results[key]["suppression"].append(
                    _db(np.sum(out_i**2) / np.sum(il**2))
                )
                results[key]["distortion"].append(
                    _db(np.sum(out_t**2) / dry_energy)
                )
                results[key]["matched_sir"].append(
                    signal_to_interference_gain(
                        beam, tl, tr, il, ir, FS, target_deg
                    )
                )
    return results


def test_app_beamforming(benchmark):
    results = benchmark.pedantic(run_beamforming_comparison, rounds=1, iterations=1)

    def median(key, field):
        return float(np.median(results[key][field]))

    rows = [
        [
            label,
            median(key, "suppression"),
            median(key, "distortion"),
            median(key, "matched_sir"),
        ]
        for label, key in (
            ("UNIQ personalized", "uniq"),
            ("exact ground truth", "truth"),
            ("global template", "global"),
        )
    ]
    print()
    print("Hearing-aid beamforming (median over cohort x scenes, dB)")
    print(
        format_table(
            ["steering table", "null: interferer", "null: target", "matched SIR gain"],
            rows,
        )
    )

    # The exact table is the ceiling: deep nulls, near-unity target passage.
    assert median("truth", "suppression") < -20.0
    assert median("truth", "distortion") > -3.0
    # Personalized nulls land deeper on the true interferer than global
    # ones — steering accuracy is the personalization win.
    assert median("uniq", "suppression") < median("global", "suppression")
    # The phase-robust matched mode helps for every table.
    assert median("uniq", "matched_sir") > 0.0
    assert median("global", "matched_sir") > 0.0
