"""CI chaos scenario: SIGKILL a journaled batch at ~50%, resume, diff digests.

The end-to-end crash drill for the durable-batch machinery, run from CI's
``chaos`` job and writable locally::

    PYTHONPATH=src python benchmarks/kill_resume.py \\
        --output kill_resume_report.json --workdir artifacts/

Five acts, all through the real ``python -m repro.cli batch`` entry point
and the real :func:`repro.serve.worker.execute_job` runner:

1. **reference** — the batch runs uninterrupted (journaled); its per-job
   table digests are the ground truth.  One job is a poison pill
   (``synthetic-failure``), so the run also demonstrates the dead-letter
   exit code 3.
2. **victim** — the same batch against a fresh journal is SIGKILLed once
   the journal shows roughly half the specs done — the untrappable crash
   the write-ahead journal exists for.
3. **resume** — ``--resume`` replays the victim's journal: done jobs (and
   the dead letter) are restored, the rest execute.
4. **diff** — the resumed report must be bit-identical to the reference on
   every deterministic field (status, payload, table digest, error), the
   dead letter must appear exactly once with one attempt, and no spec done
   before the kill may have been re-executed.
5. **timeline** — every run records a ``--telemetry`` flight-recorder
   stream; the victim's (fsync'd, so it survives the SIGKILL) must render
   through ``repro.cli timeline`` into a per-worker Gantt chart.

The report, both journals, the telemetry streams, and the rendered timeline
are uploaded as CI artifacts, so every commit carries a reviewable record
of an actual kill-and-recover cycle.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

from repro.ioutil import atomic_write
from repro.serve import Job, dump_jobs, replay_journal

#: The golden-case pipeline configuration (small grid, sparse probes).
SPEC = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}

#: Four healthy seeded jobs plus one poison pill (a permanent failure).
JOBS = [
    Job(job_id="u1", subject_seed=1, session_seed=0, **SPEC),
    Job(job_id="u2", subject_seed=2, session_seed=0, **SPEC),
    Job(job_id="u3", subject_seed=1, session_seed=3, **SPEC),
    Job(job_id="u4", subject_seed=7, session_seed=0, **SPEC),
    Job(job_id="poison", subject_seed=1, fault="synthetic-failure", **SPEC),
]

#: Exit code the CLI uses for "completed, but with dead letters".
EXIT_DEAD_LETTERS = 3


def _batch_cmd(
    jobs_path: str,
    report_path: str,
    journal: str,
    resume: bool = False,
    telemetry: str | None = None,
) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro.cli", "batch",
        "--jobs", jobs_path,
        "--workers", "2",
        "--journal", journal,
        "--report", report_path,
        "--retries", "3",
    ]
    if telemetry is not None:
        cmd += ["--telemetry", telemetry]
    if resume:
        cmd.append("--resume")
    return cmd


def _deterministic(report_path: str) -> dict[str, dict]:
    """job_id -> the scheduling-independent slice of each result."""
    with open(report_path) as handle:
        report = json.load(handle)
    return {
        r["job_id"]: {k: r[k] for k in ("status", "payload", "error")}
        for r in report["results"]
    }


def run_scenario(workdir: str) -> dict:
    os.makedirs(workdir, exist_ok=True)
    jobs_path = os.path.join(workdir, "jobs.jsonl")
    dump_jobs(JOBS, jobs_path)
    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        print(("ok   " if condition else "FAIL ") + message, flush=True)
        if not condition:
            failures.append(message)

    # Act 1: the uninterrupted reference run.
    ref_report = os.path.join(workdir, "reference_report.json")
    ref_journal = os.path.join(workdir, "reference.journal")
    ref_stream = os.path.join(workdir, "reference.telemetry.jsonl")
    print("kill_resume: reference run ...", flush=True)
    reference = subprocess.run(
        _batch_cmd(jobs_path, ref_report, ref_journal, telemetry=ref_stream),
        check=False,
    )
    check(
        reference.returncode == EXIT_DEAD_LETTERS,
        f"reference exits {EXIT_DEAD_LETTERS} (completed with dead letters), "
        f"got {reference.returncode}",
    )

    # Act 2: SIGKILL at ~50% done.
    victim_report = os.path.join(workdir, "victim_report.json")
    victim_journal = os.path.join(workdir, "batch.journal")
    victim_stream = os.path.join(workdir, "victim.telemetry.jsonl")
    print("kill_resume: victim run (will be SIGKILLed) ...", flush=True)
    # Own process group: SIGKILLing the group takes the CLI *and* its
    # forked workers down together — otherwise orphaned workers outlive
    # the kill, blocked forever on their dead executor's call queue.
    victim = subprocess.Popen(
        _batch_cmd(
            jobs_path, victim_report, victim_journal, telemetry=victim_stream
        ),
        start_new_session=True,
    )
    half = len({job.spec_key() for job in JOBS}) // 2
    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline and victim.poll() is None:
        if len(replay_journal(victim_journal).done) >= half:
            break
        time.sleep(0.2)
    try:
        os.killpg(victim.pid, signal.SIGKILL)
    except ProcessLookupError:  # pragma: no cover - batch won the race
        pass
    victim.wait(timeout=60)
    check(victim.returncode != 0, f"victim was killed (rc {victim.returncode})")
    done_before = set(replay_journal(victim_journal).done)
    check(
        0 < len(done_before) < len(JOBS),
        f"kill landed mid-batch ({len(done_before)}/{len(JOBS)} specs done)",
    )

    # Act 3: resume from the survivor journal.
    resumed_report = os.path.join(workdir, "resumed_report.json")
    resume_stream = os.path.join(workdir, "resume.telemetry.jsonl")
    print("kill_resume: resume run ...", flush=True)
    resumed = subprocess.run(
        _batch_cmd(
            jobs_path, resumed_report, victim_journal, resume=True,
            telemetry=resume_stream,
        ),
        check=False,
    )
    check(
        resumed.returncode == EXIT_DEAD_LETTERS,
        f"resume completes with the replayed dead letter (exit "
        f"{EXIT_DEAD_LETTERS}), got {resumed.returncode}",
    )

    # Act 4: diff the deterministic fields and the journal's history.
    want = _deterministic(ref_report)
    got = _deterministic(resumed_report)
    check(got == want, "resumed results bit-identical to the reference")
    digests = {
        job_id: (fields["payload"] or {}).get("table_digest")
        for job_id, fields in got.items()
    }
    check(
        all(
            digests[job_id] == (want[job_id]["payload"] or {}).get("table_digest")
            for job_id in want
        ),
        "table digests identical across kill and resume",
    )
    with open(resumed_report) as handle:
        full = json.load(handle)
    replayed = {r["job_id"] for r in full["results"] if r["replayed"]}
    executed_keys = {
        job.spec_key()
        for job in JOBS
        if job.job_id not in replayed
    }
    check(
        executed_keys.isdisjoint(done_before),
        f"zero done specs re-executed ({len(replayed)} replayed)",
    )
    state = replay_journal(victim_journal)
    dead = list(state.dead_letters.values())
    check(len(dead) == 1, f"exactly one dead-letter record, got {len(dead)}")
    check(
        dead and dead[0].get("attempts") == 1,
        "dead letter recorded with a single attempt (zero retries)",
    )
    check(full["dead_letters"] == ["poison"], "report names the dead letter")

    # Act 5: the observability drill riding on the chaos drill — the
    # victim's fsync'd flight-recorder stream survived the SIGKILL (with at
    # worst one torn final line) and must render as a per-worker timeline.
    timeline_txt = os.path.join(workdir, "victim_timeline.txt")
    print("kill_resume: rendering the victim's telemetry timeline ...",
          flush=True)
    rendered = subprocess.run(
        [sys.executable, "-m", "repro.cli", "timeline", victim_stream,
         "--output", timeline_txt],
        check=False,
    )
    check(
        rendered.returncode == 0 and os.path.exists(timeline_txt),
        "timeline renders from the SIGKILLed run's telemetry stream",
    )

    return {
        "record": "kill_resume",
        "jobs": len(JOBS),
        "specs_done_at_kill": sorted(done_before),
        "victim_exit": victim.returncode,
        "resume_exit": resumed.returncode,
        "replayed_jobs": sorted(replayed),
        "dead_letters": full["dead_letters"],
        "table_digests": digests,
        "telemetry_streams": {
            "reference": ref_stream,
            "victim": victim_stream,
            "resume": resume_stream,
        },
        "victim_timeline": timeline_txt,
        "failures": failures,
        "ok": not failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/kill_resume.py",
        description="SIGKILL a journaled batch at ~50%, resume it, and "
        "verify bit-identical results.",
    )
    parser.add_argument("--output", default="kill_resume_report.json")
    parser.add_argument(
        "--workdir", default="kill_resume_artifacts",
        help="directory for the jobs file, journals, and per-run reports",
    )
    args = parser.parse_args(argv)
    record = run_scenario(args.workdir)
    with atomic_write(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output}: "
        + ("OK" if record["ok"] else f"FAILURES: {record['failures']}")
    )
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
