"""Figure 5: acoustic TDoA follows the diffracted path, not the Euclidean one.

Paper: ``v * dt`` measured between an ear-reference mic and a test mic moved
along the face matches the along-the-face (diffracted) distance, diverging
from the straight-line distance as the mic moves into the shadow.
"""

from repro.eval import fig5_diffraction_evidence
from repro.eval.common import format_table


def test_fig05_diffraction_evidence(benchmark):
    result = benchmark.pedantic(fig5_diffraction_evidence, rounds=1, iterations=1)

    rows = [
        [
            f"{x:.1f}",
            float(m),
            float(d),
            float(e),
        ]
        for x, m, d, e in zip(
            result.mic_positions_cm,
            result.measured_delta_d_cm,
            result.diffracted_delta_d_cm,
            result.euclidean_delta_d_cm,
        )
    ]
    print()
    print("Figure 5 — path difference (cm) vs test-mic position")
    print(format_table(["mic x (cm)", "v*dt", "diffracted", "euclidean"], rows))
    print(f"RMS error vs diffracted path: {result.rms_error_diffracted_cm:.2f} cm")
    print(f"RMS error vs euclidean path : {result.rms_error_euclidean_cm:.2f} cm")

    # The acoustic measurement must match the diffracted hypothesis several
    # times better than the Euclidean one.
    assert result.rms_error_diffracted_cm < 0.5
    assert result.rms_error_euclidean_cm > 3 * result.rms_error_diffracted_cm
