"""Figure 9: deconvolved binaural channel — first tap is the diffraction path.

Paper: the estimated channel has multiple taps; the first tap at each ear
corresponds to the head-diffraction path and anchors phone localization.
"""

from repro.eval import fig9_channel_response


def test_fig09_channel_response(benchmark):
    result = benchmark.pedantic(fig9_channel_response, rounds=1, iterations=1)

    err_left, err_right = result.first_tap_error_samples
    print()
    print("Figure 9 — binaural channel impulse response (one probe at 45 deg)")
    print(
        f"left ear : first tap @ {result.first_tap_left} "
        f"(true {result.true_delay_left_samples:.1f}), {result.n_taps_left} taps"
    )
    print(
        f"right ear: first tap @ {result.first_tap_right} "
        f"(true {result.true_delay_right_samples:.1f}), {result.n_taps_right} taps"
    )

    # First taps land on the true diffraction delays (sub-3-sample = ~60 us)
    # and the channel is multipath-rich (several taps).
    assert err_left < 3.0
    assert err_right < 3.0
    assert result.n_taps_left >= 2
    assert result.n_taps_right >= 2
    # Interaural order: the source is on the left, so the left tap is earlier.
    assert result.first_tap_left < result.first_tap_right
