"""Figure 18: HRIR correlation vs angle — UNIQ vs global vs re-measured truth.

Paper: UNIQ averages 0.74 (left) / 0.71 (right); the global template sits
near 0.41; re-measured ground truth is the ceiling.  UNIQ is ~1.75x more
similar to the truth than the global template.
"""

from repro.eval import fig18_hrir_correlation
from repro.eval.common import format_table


def test_fig18_hrir_correlation(benchmark):
    result = benchmark.pedantic(fig18_hrir_correlation, rounds=1, iterations=1)

    rows = []
    step = max(1, result.angles_deg.shape[0] // 9)
    for i in range(0, result.angles_deg.shape[0], step):
        rows.append(
            [
                f"{result.angles_deg[i]:.0f}",
                float(result.uniq_left[i]),
                float(result.global_left[i]),
                float(result.remeasured_left[i]),
                float(result.uniq_right[i]),
                float(result.global_right[i]),
                float(result.remeasured_right[i]),
            ]
        )
    print()
    print("Figure 18 — correlation to ground truth vs angle (cohort mean)")
    print(
        format_table(
            ["angle", "UNIQ L", "glob L", "gnd L", "UNIQ R", "glob R", "gnd R"],
            rows,
        )
    )
    print(f"mean UNIQ      : {result.mean_uniq[0]:.2f} / {result.mean_uniq[1]:.2f}"
          "   (paper: 0.74 / 0.71)")
    print(f"mean global    : {result.mean_global[0]:.2f} / {result.mean_global[1]:.2f}"
          "   (paper: 0.41 / 0.41)")
    print(f"mean re-meas   : {result.mean_remeasured[0]:.2f} / "
          f"{result.mean_remeasured[1]:.2f}")
    print(f"improvement    : {result.improvement_factor:.2f}x   (paper: ~1.75x)")

    # The paper's ordering: global < UNIQ < re-measured ground truth.
    for uniq, template, ceiling in zip(
        result.mean_uniq, result.mean_global, result.mean_remeasured
    ):
        assert template < uniq < ceiling
    # The headline factor: UNIQ meaningfully closer to truth than global.
    assert result.improvement_factor > 1.3
