"""Ablation: why sensor fusion?  (Section 4.1's motivation.)

IMU-only localization drifts with gyro bias; acoustics with an assumed
average head mis-models diffraction for individual heads.  Jointly solving
for head parameters and location beats both.
"""

from repro.eval import ablation_sensor_fusion


def test_ablation_sensor_fusion(benchmark):
    result = benchmark.pedantic(ablation_sensor_fusion, rounds=1, iterations=1)

    print()
    print("Ablation — localization strategy (median angular error)")
    print(f"IMU only (gyro integration) : {result.imu_only_deg:.1f} deg")
    print(f"acoustic + average head     : {result.acoustic_average_head_deg:.1f} deg")
    print(f"diffraction-aware fusion    : {result.fused_deg:.1f} deg")

    # Fusion must clearly beat dead-reckoning on the gyro.  The acoustic
    # strategy with an assumed average head can match fusion on *angle*
    # (delays pin the angle well even with head mismatch — and it still
    # borrows the IMU for front/back disambiguation); fusion's further wins
    # are the personal head parameters that downstream stages consume, so
    # here we only require it to stay competitive.
    assert result.fused_deg < result.imu_only_deg
    assert result.fused_deg < result.acoustic_average_head_deg + 1.5
