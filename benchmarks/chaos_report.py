"""Run the fault matrix end to end and write the aggregated quality reports.

The chaos record: one seeded capture (the golden-case configuration) is
personalized clean and then under every fault registered in
``repro.testing.faults.FAULTS``, and each run's quality verdict is written
to one JSON document — the confidence, every flag, the salvage record, or
the typed error that rejected the capture.  CI's ``chaos`` job uploads the
result as an artifact, so every commit carries a reviewable record of how
the pipeline degrades (see ``docs/ROBUSTNESS.md``).

    PYTHONPATH=src python benchmarks/chaos_report.py --output chaos_report.json
    PYTHONPATH=src python benchmarks/chaos_report.py --quick   # audio faults only
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro import __version__
from repro.errors import ReproError
from repro.core.pipeline import personalize_capture
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession
from repro.ioutil import atomic_write
from repro.testing.faults import FAULTS, PROCESS_FAULTS, apply_fault

#: The golden-case pipeline configuration (small grid, sparse probes).
SPEC = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}

#: Fault severities, matching the calibrated matrix in tests/test_quality.py
#: (``peak`` is the largest probe amplitude of the clean capture).
SEVERITIES = {
    "clipped": lambda peak: {"level": 0.2 * peak},
    "dropout": lambda peak: {"keep_every": 3},
    "mic_noise": lambda peak: {"std": 0.6},
    "zeroed": lambda peak: {},
    "gyro_saturation": lambda peak: {"limit_dps": 6.0},
    "gyro_dropout": lambda peak: {"start_frac": 0.25, "duration_frac": 0.3},
    "gyro_bias_drift": lambda peak: {"drift_dps_per_s": 1.0},
    "clock_skew": lambda peak: {"skew": 0.2},
    "synthetic-failure": lambda peak: {},
    "reverberant_room": lambda peak: {"rt60_s": 0.9, "wet_level": 1.6},
    "noisy_reverberant": lambda peak: {"rt60_s": 0.9, "std": 0.3},
}

#: The cheap audio-only subset for CI smoke runs.
QUICK_FAULTS = ("clipped", "dropout", "zeroed", "synthetic-failure")

#: The adverse sweep grid for ``--adverse``: room RT60 x broadband noise
#: sigma.  The (0, 0) cell is the clean reference row; pure-reverb and
#: pure-noise rows use the single-axis faults so each axis is attributable.
ADVERSE_RT60S = (0.0, 0.3, 0.6, 0.9)
ADVERSE_STDS = (0.0, 0.05, 0.3)


def adverse_fault(rt60_s: float, std: float) -> tuple[str | None, dict]:
    if rt60_s == 0.0 and std == 0.0:
        return None, {}
    if rt60_s == 0.0:
        return "mic_noise", {"std": std}
    if std == 0.0:
        return "reverberant_room", {"rt60_s": rt60_s, "wet_level": 1.6}
    return "noisy_reverberant", {"rt60_s": rt60_s, "std": std}


def run_case(session, name: str | None, kwargs: dict) -> dict:
    """Personalize ``session`` under one fault; never raises."""
    record: dict = {"fault": name, "fault_args": kwargs}
    started = time.perf_counter()
    try:
        faulted = session if name is None else apply_fault(session, name, **kwargs)
        _, result = personalize_capture(
            1, 0, angle_step_deg=SPEC["angle_step_deg"], session=faulted
        )
    except ReproError as error:
        record.update(
            status="rejected",
            error_type=type(error).__name__,
            error=str(error),
        )
    else:
        salvage = (result.quality.salvage or {}) if result.quality else {}
        record.update(
            status="ok",
            confidence=result.confidence,
            deconv_method=str(salvage.get("deconv_method", "inverse")),
            deconv_rung=int(salvage.get("deconv_rung", 0)),
            quality=result.quality.to_dict(),
        )
    record["wall_s"] = round(time.perf_counter() - started, 3)
    return record


def generate(quick: bool = False) -> dict:
    # Process-level faults kill or stall the executing process — running
    # them here would take the report generator down; the kill-resume CI
    # scenario (benchmarks/kill_resume.py) covers them on a real pool.
    missing = sorted(set(FAULTS) - set(SEVERITIES) - PROCESS_FAULTS)
    if missing:
        raise SystemExit(
            f"faults without a chaos severity: {missing}; add them to "
            "SEVERITIES (and to tests/test_quality.py)"
        )
    subject = VirtualSubject.random(1)
    session = MeasurementSession(
        subject, seed=0, probe_interval_s=SPEC["probe_interval_s"]
    ).run()
    peak = max(float(np.max(np.abs(p.left))) for p in session.probes)

    names = QUICK_FAULTS if quick else sorted(SEVERITIES)
    cases = [run_case(session, None, {})]
    for name in names:
        print(f"chaos: {name} ...", flush=True)
        cases.append(run_case(session, name, SEVERITIES[name](peak)))

    baseline = cases[0]
    degraded = [c for c in cases[1:] if c["status"] == "ok"]
    rejected = [c for c in cases[1:] if c["status"] == "rejected"]
    return {
        "record": "chaos_report",
        "version": __version__,
        "python": platform.python_version(),
        "spec": SPEC,
        "quick": quick,
        "baseline_confidence": baseline.get("confidence"),
        "summary": {
            "n_faults": len(cases) - 1,
            "n_degraded": len(degraded),
            "n_rejected": len(rejected),
            "min_confidence": min(
                (c["confidence"] for c in degraded), default=None
            ),
            "rejected_errors": sorted(
                {c["error_type"] for c in rejected}
            ),
        },
        "cases": cases,
    }


def generate_adverse() -> dict:
    """Sweep the reverb x noise grid and tabulate the rung each cell used.

    The per-rung outcome table: every cell either completes (with the
    ladder rung, method, and confidence it settled on) or is rejected with
    a typed error — an unhandled exception anywhere in the grid fails the
    sweep, which is the chaos contract for adverse captures.
    """
    subject = VirtualSubject.random(1)
    session = MeasurementSession(
        subject, seed=0, probe_interval_s=SPEC["probe_interval_s"]
    ).run()
    rows = []
    for rt60_s in ADVERSE_RT60S:
        for std in ADVERSE_STDS:
            name, kwargs = adverse_fault(rt60_s, std)
            print(f"chaos: rt60={rt60_s} std={std} ({name or 'clean'}) ...", flush=True)
            record = run_case(session, name, kwargs)
            row = {
                "rt60_s": rt60_s,
                "std": std,
                "fault": name,
                "status": record["status"],
                "wall_s": record["wall_s"],
            }
            if record["status"] == "ok":
                row.update(
                    deconv_method=record["deconv_method"],
                    deconv_rung=record["deconv_rung"],
                    confidence=record["confidence"],
                )
            else:
                row.update(error_type=record["error_type"])
            rows.append(row)
    rungs = [r["deconv_rung"] for r in rows if r["status"] == "ok"]
    return {
        "record": "chaos_rung_table",
        "version": __version__,
        "python": platform.python_version(),
        "spec": SPEC,
        "grid": {"rt60_s": list(ADVERSE_RT60S), "std": list(ADVERSE_STDS)},
        "summary": {
            "n_cells": len(rows),
            "n_completed": len(rungs),
            "n_rejected": len(rows) - len(rungs),
            "n_escalated": sum(1 for r in rungs if r > 0),
            "max_rung": max(rungs, default=None),
        },
        "rows": rows,
    }


def print_rung_table(report: dict) -> None:
    header = f"{'rt60_s':>7} {'std':>6} {'status':<9} {'method':<8} {'rung':>4} {'confidence':>11}"
    print(header)
    print("-" * len(header))
    for row in report["rows"]:
        if row["status"] == "ok":
            method, rung = row["deconv_method"], str(row["deconv_rung"])
            tail = f"{row['confidence']:11.3f}"
        else:
            method, rung = row["error_type"], "-"
            tail = f"{'-':>11}"
        print(
            f"{row['rt60_s']:>7.2f} {row['std']:>6.2f} {row['status']:<9} "
            f"{method:<8} {rung:>4} {tail}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/chaos_report.py",
        description="Personalize one capture under every registered fault "
        "and write the aggregated quality reports.",
    )
    parser.add_argument("--output", default="chaos_report.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="audio faults only (skips the slow gyro rejections)",
    )
    parser.add_argument(
        "--adverse", action="store_true",
        help="sweep the reverb x noise grid instead of the fault matrix "
        "and write the per-rung outcome table",
    )
    args = parser.parse_args(argv)
    if args.adverse:
        report = generate_adverse()
        with atomic_write(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print_rung_table(report)
        summary = report["summary"]
        print(
            f"wrote {args.output}: {summary['n_completed']}/{summary['n_cells']} "
            f"cells completed ({summary['n_escalated']} above rung 0), "
            f"{summary['n_rejected']} rejected"
        )
        # The adverse contract: the clean cell stays rung 0 at full
        # confidence, and at least one adverse cell actually escalates.
        clean_row = report["rows"][0]
        if clean_row.get("deconv_rung") != 0 or clean_row.get("confidence") != 1.0:
            print(f"ERROR: clean cell not pristine: {clean_row}")
            return 1
        if summary["n_escalated"] == 0:
            print("ERROR: no adverse cell escalated the ladder")
            return 1
        return 0
    report = generate(quick=args.quick)
    with atomic_write(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.output}: {summary['n_faults']} faults, "
        f"{summary['n_degraded']} degraded "
        f"(min confidence {summary['min_confidence']}), "
        f"{summary['n_rejected']} rejected {summary['rejected_errors']}"
    )
    # The chaos contract, machine-checked here too: every fault degraded
    # or was rejected with a typed error.
    clean = [
        c["fault"]
        for c in report["cases"][1:]
        if c["status"] == "ok"
        and c["confidence"] >= report["baseline_confidence"]
    ]
    if clean:
        print(f"ERROR: faults with un-degraded confidence: {clean}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
