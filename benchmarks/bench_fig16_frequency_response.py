"""Figure 16: speaker-microphone chain frequency response.

Paper: the response is unstable below 50 Hz and reasonably stable over
100 Hz - 10 kHz; the co-located calibration measurement recovers it well
enough to compensate (Section 4.6).
"""

import numpy as np

from repro.eval import fig16_frequency_response


def test_fig16_frequency_response(benchmark):
    result = benchmark.pedantic(fig16_frequency_response, rounds=1, iterations=1)

    print()
    print("Figure 16 — speaker/microphone frequency response")
    for f_target in (20, 50, 100, 1000, 10_000, 20_000):
        idx = int(np.argmin(np.abs(result.freqs - f_target)))
        print(
            f"  {result.freqs[idx]:8.0f} Hz : true {result.true_db[idx]:7.1f} dB, "
            f"measured {result.measured_db[idx]:7.1f} dB"
        )
    print(f"std below 50 Hz      : {result.low_band_std_db:.1f} dB (unstable)")
    print(f"std 100 Hz - 10 kHz  : {result.mid_band_std_db:.1f} dB (stable)")
    print(f"calibration RMS error: {result.measurement_rms_error_db:.2f} dB")

    # The paper's shape: wild low end, stable mid band.
    assert result.low_band_std_db > 3 * result.mid_band_std_db
    assert result.mid_band_std_db < 3.0
    # The calibration procedure must recover the mid band within ~2 dB RMS.
    assert result.measurement_rms_error_db < 2.0
