"""Ablation: why convert near-field to far-field?  (Section 4.3's motivation.)

Using the near-field HRTF directly for far-field rendering gets the
interaural timing wrong (point-source rays are not parallel).  The converted
far field must match the true far-field interaural delays better.
"""

from repro.eval import ablation_near_far_conversion


def test_ablation_near_far_conversion(benchmark):
    result = benchmark.pedantic(ablation_near_far_conversion, rounds=1, iterations=1)

    print()
    print("Ablation — far-field synthesis strategy")
    print(
        f"near-far converted : corr {result.converted_correlation:.2f}, "
        f"ITD error {result.converted_itd_error_ms:.3f} ms"
    )
    print(
        f"near used as far   : corr {result.near_as_far_correlation:.2f}, "
        f"ITD error {result.near_as_far_itd_error_ms:.3f} ms"
    )

    # The conversion's main win is interaural geometry (timing).
    assert result.converted_itd_error_ms < result.near_as_far_itd_error_ms
    # And it should not cost correlation.
    assert result.converted_correlation >= result.near_as_far_correlation - 0.05
