"""Figure 2: pinna response correlation, same-user vs cross-user.

Paper: the same-user matrix is strongly diagonal (pinna resolves angle at
~20 degree resolution); the cross-user matrix is not (global HRTFs can do no
better than ~60 degrees across people).
"""

import numpy as np

from repro.eval import fig2_pinna_correlation
from repro.eval.common import format_table


def test_fig02_pinna_correlation(benchmark):
    result = benchmark.pedantic(fig2_pinna_correlation, rounds=1, iterations=1)

    n = result.angles_deg.shape[0]
    rows = []
    for i in range(0, n, max(1, n // 6)):
        rows.append(
            [
                f"{result.angles_deg[i]:.0f}",
                float(result.same_user[i, i]),
                float(result.cross_user[i, i]),
            ]
        )
    print()
    print("Figure 2 — pinna correlation at matching angles")
    print(format_table(["angle(deg)", "same-user", "cross-user"], rows))
    print(f"same-user diagonal dominance : {result.diagonal_dominance:.2f}")
    print(f"cross-user same-angle mean   : {result.cross_user_diagonal_mean:.2f}")

    # Shape assertions from the paper: the same-user matrix is diagonal
    # (angle-selective pinna) and the cross-user diagonal is much weaker.
    assert result.diagonal_dominance > 0.15
    same_diag = float(result.same_user.diagonal().mean())
    assert same_diag > 0.85
    assert result.cross_user_diagonal_mean < same_diag - 0.2
    # Symmetric-ish matrix sanity.
    assert np.all(result.same_user <= 1.0 + 1e-9)
