"""Sharded serve-tier tests: routing, brownouts, and journal merging.

The contract under test: sharding is an *operational* choice — any shard
count produces the same deterministic results as a bare
:class:`~repro.serve.server.BatchServer` — and a shard is a *failure
domain* — ejecting one reroutes its work, probing brings it back, and the
per-shard journals always fold into one resumable artifact.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.errors import ReproError
from repro.serve import (
    BatchServer,
    Job,
    RetryPolicy,
    ShardedServer,
    merge_journals,
    replay_journal,
    shard_journal_path,
    shard_of,
)
from repro.serve.shard import _namespaced_policy
from repro.testing.workloads import digest_runner

#: Retry knobs that keep crash-path tests fast.
QUICK_RETRY = dict(max_transient_retries=1, base_backoff_s=0.01,
                   max_backoff_s=0.02)


def _job(job_id: str, seed: int = 1, **kw) -> Job:
    return Job(job_id=job_id, subject_seed=seed, **kw)


def _det(results) -> list:
    return [r.deterministic() for r in results]


def _jobs_homed_on(shard: int, shards: int, count: int, **kw) -> list[Job]:
    """Clean jobs whose spec keys all route to ``shard`` of ``shards``."""
    jobs = []
    seed = 0
    while len(jobs) < count:
        seed += 1
        job = _job(f"h{shard}-{seed}", seed=seed, **kw)
        if shard_of(job.spec_key(), shards) == shard:
            jobs.append(job)
    return jobs


class TestRouting:
    def test_shard_of_is_crc32_mod(self):
        key = _job("a", seed=3).spec_key()
        assert shard_of(key, 4) == zlib.crc32(key.encode()) % 4
        assert all(0 <= shard_of(key, n) < n for n in (1, 2, 3, 7))

    def test_shard_of_is_stable_across_calls(self):
        keys = [_job(f"j{i}", seed=i + 1).spec_key() for i in range(20)]
        first = [shard_of(k, 3) for k in keys]
        assert [shard_of(k, 3) for k in keys] == first

    def test_shard_journal_path(self, tmp_path):
        base = tmp_path / "b.journal"
        assert shard_journal_path(base, 0, 1) == str(base)
        assert shard_journal_path(base, 2, 4) == f"{base}.shard2"

    def test_namespaced_policy(self):
        policy = RetryPolicy(seed=5)
        assert _namespaced_policy(policy, 3, 1) is policy
        assert _namespaced_policy(None, 3, 4) is None
        shard3 = _namespaced_policy(policy, 3, 4)
        assert shard3.namespace == "shard3"
        assert shard3.seed == policy.seed


class TestDeterminism:
    def test_single_shard_is_bit_identical_to_bare_server(self, tmp_path):
        jobs = [_job(f"j{i}", seed=20 + i) for i in range(8)]
        with BatchServer(workers=2, runner=digest_runner) as server:
            bare = _det(server.run_batch(jobs).results)
        with ShardedServer(workers=2, runner=digest_runner) as server:
            sharded = _det(server.run_batch(jobs).results)
        assert sharded == bare

    def test_single_shard_journals_at_the_plain_base_path(self, tmp_path):
        base = tmp_path / "one.journal"
        jobs = [_job(f"j{i}", seed=i + 1) for i in range(4)]
        with ShardedServer(
            workers=1, runner=digest_runner, journal=base
        ) as server:
            server.run_batch(jobs)
        assert base.exists()
        assert not (tmp_path / "one.journal.shard0").exists()

    def test_any_shard_count_same_results(self):
        jobs = [_job(f"j{i}", seed=40 + i) for i in range(9)]
        outcomes = []
        for shards in (1, 2, 3):
            with ShardedServer(
                workers=1, shards=shards, runner=digest_runner
            ) as server:
                outcomes.append(_det(server.run_batch(jobs).results))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_coalescing_survives_sharding_even_across_tenants(self):
        twins = [
            _job("first", seed=77, tenant="acme"),
            _job("second", seed=77, tenant="globex"),
        ]
        with ShardedServer(
            workers=1, shards=3, runner=digest_runner
        ) as server:
            report = server.run_batch(twins)
        by_id = {r.job_id: r for r in report.results}
        assert by_id["first"].ok and by_id["second"].ok
        assert by_id["second"].coalesced
        assert (
            by_id["first"].deterministic()["payload"]
            == by_id["second"].deterministic()["payload"]
        )

    def test_report_counts_all_shards(self):
        with ShardedServer(
            workers=2, shards=2, runner=digest_runner
        ) as server:
            report = server.run_batch([_job("a", seed=1)])
        assert report.workers == 4


class TestJournalMerge:
    def test_merged_journal_resumes_on_a_bare_server(self, tmp_path):
        base = tmp_path / "b.journal"
        jobs = [_job(f"j{i}", seed=60 + i) for i in range(9)]
        with ShardedServer(
            workers=1, shards=3, runner=digest_runner, journal=base
        ) as server:
            first = _det(server.run_batch(jobs).results)
        for k in range(3):
            assert (tmp_path / f"b.journal.shard{k}").exists()
        assert base.exists()

        with BatchServer(
            workers=1, runner=digest_runner, journal=base, resume=True
        ) as server:
            report = server.run_batch(jobs)
        assert all(r.replayed for r in report.results)
        assert _det(report.results) == first

    def test_sharded_resume_replays_done_work(self, tmp_path):
        base = tmp_path / "b.journal"
        jobs = [_job(f"j{i}", seed=80 + i) for i in range(6)]
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner, journal=base
        ) as server:
            first = _det(server.run_batch(jobs).results)
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner, journal=base,
            resume=True,
        ) as server:
            report = server.run_batch(jobs)
        assert all(r.replayed for r in report.results)
        assert _det(report.results) == first

    def test_resume_survives_a_shard_count_change(self, tmp_path):
        # The merged base journal is the portable artifact: a 3-shard
        # resume of a 2-shard run still replays every done record.
        base = tmp_path / "b.journal"
        jobs = [_job(f"j{i}", seed=90 + i) for i in range(6)]
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner, journal=base
        ) as server:
            first = _det(server.run_batch(jobs).results)
        with ShardedServer(
            workers=1, shards=3, runner=digest_runner, journal=base,
            resume=True,
        ) as server:
            report = server.run_batch(jobs)
        assert all(r.replayed for r in report.results)
        assert _det(report.results) == first

    def test_merge_journals_prefers_ok_over_dead_letter(self, tmp_path):
        from repro.serve.journal import Journal

        left = tmp_path / "left.journal"
        right = tmp_path / "right.journal"
        with Journal(left, fsync=False) as journal:
            journal.append("submitted", spec_key="k", job_id="a")
            journal.append(
                "failed", spec_key="k", job_id="a", status="crashed",
                error="worker died",
            )
        with Journal(right, fsync=False) as journal:
            journal.append("submitted", spec_key="k", job_id="a")
            journal.append(
                "done", spec_key="k", job_id="a", status="ok",
                payload={"digest": "d"},
            )
        merged = tmp_path / "merged.journal"
        state = merge_journals([left, right], merged)
        assert state.done["k"]["status"] == "ok"
        again = replay_journal(merged)
        assert again.done["k"]["status"] == "ok"
        assert not again.pending()

    def test_merge_tolerates_missing_inputs(self, tmp_path):
        from repro.serve.journal import Journal

        only = tmp_path / "only.journal"
        with Journal(only, fsync=False) as journal:
            journal.append("submitted", spec_key="k", job_id="a")
            journal.append(
                "done", spec_key="k", job_id="a", status="ok", payload={}
            )
        merged = tmp_path / "merged.journal"
        state = merge_journals(
            [only, tmp_path / "never-written.journal"], merged
        )
        assert set(state.done) == {"k"}

    def test_merged_header_names_its_sources(self, tmp_path):
        from repro.serve.journal import Journal

        paths = []
        for k in range(2):
            path = tmp_path / f"s{k}.journal"
            with Journal(path, fsync=False) as journal:
                journal.append("submitted", spec_key=f"k{k}", job_id=f"j{k}")
            paths.append(path)
        merged = tmp_path / "merged.journal"
        merge_journals(paths, merged)
        with open(merged) as handle:
            header = json.loads(handle.readline())
        assert header["event"] == "checkpoint"
        assert header["merged_from"] == 2


class TestBrownout:
    def test_consecutive_transients_eject_and_reroute(self):
        # Markerless worker_kill poison: every attempt dies, the result is
        # transient "crashed", and two of them trip the shard-0 breaker.
        poison = []
        seed = 200
        while len(poison) < 2:
            seed += 1
            job = _job(f"p{seed}", seed=seed, fault="worker_kill")
            if shard_of(job.spec_key(), 2) == 0:
                poison.append(job)
        clean = _jobs_homed_on(0, 2, 4)
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner,
            retry_policy=RetryPolicy(**QUICK_RETRY),
            breaker_threshold=2, probe_backoff_s=60.0,
        ) as server:
            for job in poison:
                server.submit(job)
            server.drain()
            states = {s["shard"]: s for s in server.shard_states()}
            assert states[0]["state"] == "open"
            assert states[0]["ejections"] == 1
            # Shard 0's home traffic now routes around the open breaker.
            for job in clean:
                server.submit(job)
            server.drain()
            results = {r.job_id: r for r in server.results()}
        for job in poison:
            assert results[job.job_id].status == "crashed"
        for job in clean:
            assert results[job.job_id].ok

    def test_forced_eject_probes_back_and_recovers(self):
        clock_now = [0.0]
        clean = _jobs_homed_on(0, 2, 2)
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner,
            breaker_threshold=2, probe_backoff_s=0.5,
            clock=lambda: clock_now[0],
        ) as server:
            server.inject_shard_failure(0)
            states = {s["shard"]: s for s in server.shard_states()}
            assert states[0]["state"] == "open"
            # Before the backoff elapses the shard stays ejected ...
            server.submit(clean[0])
            server.drain()
            assert server.shard_states()[0]["state"] == "open"
            # ... after it, the next home job probes the shard half-open
            # and its success closes the breaker.
            clock_now[0] = 1.0
            server.submit(clean[1])
            server.drain()
            states = {s["shard"]: s for s in server.shard_states()}
            results = {r.job_id: r for r in server.results()}
        assert states[0]["state"] == "closed"
        assert states[0]["ejections"] == 0
        assert all(r.ok for r in results.values())

    def test_every_shard_down_is_a_typed_rejection(self):
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner,
            probe_backoff_s=3600.0,
        ) as server:
            server.inject_shard_failure(0)
            server.inject_shard_failure(1)
            server.submit(_job("stranded", seed=5))
            server.drain()
            results = {r.job_id: r for r in server.results()}
        stranded = results["stranded"]
        assert stranded.status == "rejected"
        assert stranded.reason == "shard_down"

    def test_inject_shard_failure_validation(self):
        with ShardedServer(workers=1, runner=digest_runner) as server:
            with pytest.raises(ReproError, match="only shard"):
                server.inject_shard_failure(0)
        with ShardedServer(
            workers=1, shards=2, runner=digest_runner
        ) as server:
            with pytest.raises(ReproError, match="no shard"):
                server.inject_shard_failure(9)

    def test_single_shard_never_arms_the_breaker(self):
        with ShardedServer(
            workers=1, runner=digest_runner, breaker_threshold=1
        ) as server:
            assert server._breaker_threshold is None


class TestValidation:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ReproError, match="shards"):
            ShardedServer(workers=1, shards=0, runner=digest_runner)
        with pytest.raises(ReproError, match="resume"):
            ShardedServer(workers=1, resume=True, runner=digest_runner)
        with pytest.raises(ReproError, match="probe_backoff_s"):
            ShardedServer(
                workers=1, shards=2, runner=digest_runner,
                probe_backoff_s=0.0,
            )

    def test_duplicate_and_closed_submissions_raise(self):
        server = ShardedServer(workers=1, shards=2, runner=digest_runner)
        with server:
            server.submit(_job("a", seed=1))
            with pytest.raises(ReproError, match="duplicate"):
                server.submit(_job("a", seed=2))
            server.drain()
        with pytest.raises(ReproError, match="closed"):
            server.submit(_job("b", seed=3))
