"""Tests for the 3D head model and its section planes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.head import Ear
from repro.geometry.head3d import (
    HeadGeometry3D,
    direction_from_angles,
    direction_to_section,
    section_coordinates,
)


@pytest.fixture(scope="module")
def head3d():
    return HeadGeometry3D.average()


class TestSections:
    def test_horizontal_section_matches_2d(self, head3d):
        section = head3d.section(0.0)
        assert section.parameters == pytest.approx(
            (head3d.a, head3d.b, head3d.c)
        )

    def test_vertical_section_uses_d(self, head3d):
        b_eff, c_eff = head3d.effective_depths(90.0)
        assert b_eff == pytest.approx(head3d.d)
        assert c_eff == pytest.approx(head3d.d)

    def test_effective_depth_monotone_toward_d(self, head3d):
        """b < d for the average head: tilting up grows the front depth."""
        depths = [head3d.effective_depths(t)[0] for t in (0.0, 30.0, 60.0, 90.0)]
        assert np.all(np.diff(depths) > 0)

    def test_sections_cached(self, head3d):
        assert head3d.section(30.0) is head3d.section(30.0)

    def test_invalid_tilt(self, head3d):
        with pytest.raises(GeometryError):
            head3d.effective_depths(120.0)

    def test_invalid_axes(self):
        with pytest.raises(GeometryError):
            HeadGeometry3D(a=0.09, b=0.11, c=0.095, d=0.5)


class TestSectionCoordinates:
    def test_horizontal_point(self):
        tilt, u, v = section_coordinates(np.array([0.1, 0.4, 0.0]))
        assert tilt == pytest.approx(0.0)
        assert u == pytest.approx(0.1)
        assert v == pytest.approx(0.4)

    def test_elevated_point(self):
        tilt, u, v = section_coordinates(np.array([0.0, 0.3, 0.3]))
        assert tilt == pytest.approx(45.0)
        assert v == pytest.approx(np.hypot(0.3, 0.3))

    def test_behind_point_wraps_to_negative_v(self):
        tilt, u, v = section_coordinates(np.array([0.0, -0.4, 0.0]))
        assert -90.0 < tilt <= 90.0
        assert v == pytest.approx(-0.4)

    def test_on_ear_axis(self):
        tilt, u, v = section_coordinates(np.array([0.3, 0.0, 0.0]))
        assert tilt == 0.0
        assert u == pytest.approx(0.3)
        assert v == 0.0

    @given(
        x=st.floats(-1, 1), y=st.floats(-1, 1), z=st.floats(-1, 1)
    )
    @settings(max_examples=50, deadline=None)
    def test_coordinates_reconstruct_point(self, x, y, z):
        point = np.array([x, y, z])
        tilt, u, v = section_coordinates(point)
        w = np.array([0.0, np.cos(np.deg2rad(tilt)), np.sin(np.deg2rad(tilt))])
        reconstructed = u * np.array([1.0, 0.0, 0.0]) + v * w
        np.testing.assert_allclose(reconstructed, point, atol=1e-9)


class TestDelays3D:
    def test_horizontal_matches_2d(self, head3d):
        from repro.geometry.paths import path_delay
        from repro.geometry.vec import polar_to_cartesian

        source2d = polar_to_cartesian(0.5, 40.0)
        source3d = np.array([source2d[0], source2d[1], 0.0])
        for ear in Ear:
            expected = path_delay(head3d.section(0.0), source2d, ear)
            assert head3d.path_delay(source3d, ear) == pytest.approx(expected)

    def test_overhead_source_symmetric(self, head3d):
        """A source straight above reaches both ears simultaneously."""
        left, right = head3d.plane_wave_delays(0.0, 90.0)
        assert left == pytest.approx(right, abs=1e-7)

    def test_itd_shrinks_with_elevation(self, head3d):
        """The cone of confusion: higher elevation -> smaller lateral ITD."""
        itds = [
            abs(head3d.interaural_delay(70.0, el)) for el in (0.0, 30.0, 60.0)
        ]
        assert np.all(np.diff(itds) < 0)

    def test_elevation_symmetry_of_itd(self, head3d):
        """Up/down symmetric head: same ITD above and below (the classic
        elevation ambiguity that pinna cues must break)."""
        up = head3d.interaural_delay(60.0, 25.0)
        down = head3d.interaural_delay(60.0, -25.0)
        assert up == pytest.approx(down, abs=2e-6)


class TestDirectionMapping:
    def test_horizontal_direction(self):
        tilt, in_plane = direction_to_section(40.0, 0.0)
        assert tilt == pytest.approx(0.0)
        assert in_plane == pytest.approx(40.0)

    def test_front_elevated(self):
        tilt, in_plane = direction_to_section(0.0, 30.0)
        assert tilt == pytest.approx(30.0)
        assert in_plane == pytest.approx(0.0)

    def test_back_elevated_uses_negative_tilt(self):
        """A back-upper direction lies on a ring tilted down in front."""
        tilt, in_plane = direction_to_section(150.0, 20.0)
        assert tilt < 0.0
        assert 90.0 < in_plane <= 180.0

    @given(az=st.floats(1.0, 179.0), el=st.floats(-45.0, 45.0))
    @settings(max_examples=50, deadline=None)
    def test_mapping_roundtrip(self, az, el):
        tilt, in_plane = direction_to_section(az, el)
        w = np.array([0.0, np.cos(np.deg2rad(tilt)), np.sin(np.deg2rad(tilt))])
        direction = (
            np.sin(np.deg2rad(in_plane)) * np.array([1.0, 0.0, 0.0])
            + np.cos(np.deg2rad(in_plane)) * w
        )
        np.testing.assert_allclose(
            direction, direction_from_angles(az, el), atol=1e-9
        )
