"""Serve telemetry tests: span export, flight recorder, SLO gate, timeline.

The cross-process tentpole is exercised end to end with the millisecond
runners from :mod:`repro.testing.workloads`: a telemetry-enabled batch must
produce a causally-complete trace per job (server-side submit → queue →
attempt spans with the worker-captured tree grafted under the final
attempt), a replayable flight-recorder stream, merged worker metrics, and
an SLO verdict — while a telemetry-off batch stays bit-identical to the
pre-telemetry outputs.
"""

from __future__ import annotations

import json
import os
import threading

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError, SignalError
from repro.ioutil import JsonlAppender
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Counter, MetricsRegistry, diff_snapshots
from repro.obs.report import self_durations
from repro.obs.trace import Span
from repro.serve import BatchServer, Job
from repro.serve.telemetry import (
    FlightRecorder,
    ServeTelemetry,
    SloPolicy,
    SloTracker,
    iter_attempt_bars,
    read_events,
)
from repro.testing.workloads import digest_runner
from repro.textplot import gantt


def _jobs(n: int, **kw) -> list[Job]:
    return [Job(job_id=f"j{i}", subject_seed=i, **kw) for i in range(n)]


# ---------------------------------------------------------------------------
# Span serialization
# ---------------------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghij.", min_size=1, max_size=12
).filter(lambda s: s.strip())
_finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
_attr_values = st.one_of(
    st.integers(-1000, 1000), _finite, st.booleans(),
    st.text(max_size=8), st.none(),
)
_attrs = st.dictionaries(
    st.text(alphabet="abcxyz_", min_size=1, max_size=6),
    _attr_values,
    max_size=3,
)


def _make_span(name, attributes, start_s, duration_s, children) -> Span:
    span = Span(name, attributes)
    span.start_s = start_s
    span.duration_s = duration_s
    span.children = list(children)
    return span


_span_args = (_names, _attrs, _finite, st.one_of(st.none(), _finite))
_spans = st.recursive(
    st.builds(_make_span, *_span_args, st.just(())),
    lambda inner: st.builds(_make_span, *_span_args, st.lists(inner, max_size=3)),
    max_leaves=12,
)


class TestSpanSerialization:
    @given(_spans)
    def test_round_trip_is_bit_identical(self, root):
        # Arbitrary nested trees must survive to_dict → JSON → from_dict →
        # to_dict with a byte-for-byte identical serialization — the
        # contract the cross-process graft (worker → server) rests on.
        first = root.to_dict()
        rebuilt = Span.from_dict(json.loads(json.dumps(first)))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            first, sort_keys=True
        )

    @given(_spans)
    def test_span_ids_are_stable_and_unique_per_tree(self, root):
        ids: list[str] = []

        def collect(data):
            ids.append(data["span_id"])
            for child in data["children"]:
                collect(child)

        first = root.to_dict()
        collect(first)
        assert all(isinstance(i, str) and len(i) == 12 for i in ids)
        assert len(set(ids)) == len(ids)
        # Ids are cached on the spans: serializing again changes nothing.
        assert root.to_dict() == first

    def test_same_shape_same_ids_across_processes(self):
        # Ids derive from tree structure, not object identity — two
        # processes serializing the same logical trace agree on ids.
        def build():
            root = Span("a")
            root.duration_s = 1.0
            child = Span("b")
            child.duration_s = 0.5
            root.children = [child]
            return root.to_dict()

        assert build() == build()


# ---------------------------------------------------------------------------
# Metrics: thread safety (regression) and snapshot deltas
# ---------------------------------------------------------------------------

class TestMetricsThreadSafety:
    def test_counter_inc_hammered_from_threads_is_exact(self):
        # Regression: serve pool callbacks bump counters from several
        # threads at once; the unsynchronized `value += 1` read-modify-
        # write used to lose increments under that interleaving.
        counter = Counter("hammer")
        per_thread, n_threads = 5000, 8

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == per_thread * n_threads


class TestSnapshotDeltas:
    def test_diff_then_merge_reconstructs_the_movement(self):
        source = MetricsRegistry()
        source.counter("jobs").inc(3)
        source.histogram("lat", (1.0, 2.0)).observe(0.5)
        before = source.snapshot()
        source.counter("jobs").inc(4)
        source.counter("idle").inc()  # appears only after `before`
        source.gauge("depth").set(7.0)
        source.histogram("lat", (1.0, 2.0)).observe(1.5)
        delta = diff_snapshots(before, source.snapshot())
        assert delta["counters"] == {"jobs": 4.0, "idle": 1.0}
        assert delta["gauges"] == {"depth": 7.0}
        assert delta["histograms"]["lat"]["count"] == 1

        target = MetricsRegistry()
        target.counter("jobs").inc(10)
        target.merge_delta(delta)
        assert target.counter("jobs").value == 14.0
        assert target.gauge("depth").value == 7.0
        assert target.histogram("lat", (1.0, 2.0)).count == 1

    def test_unmoved_metrics_drop_out_of_the_delta(self):
        registry = MetricsRegistry()
        registry.counter("still").inc(5)
        snap = registry.snapshot()
        delta = diff_snapshots(snap, snap)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_bucket_mismatch_is_counted_not_merged(self):
        target = MetricsRegistry()
        target.histogram("lat", (1.0, 2.0)).observe(0.5)
        target.merge_delta(
            {"histograms": {"lat": {
                "buckets": [5.0, 10.0], "counts": [1, 0, 0],
                "sum": 3.0, "count": 1, "non_finite": 0,
            }}}
        )
        assert target.histogram("lat", (1.0, 2.0)).count == 1  # unchanged
        assert target.counter("obs.merge.bucket_mismatch").value == 1.0


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_events_round_trip_with_seq_and_t(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with FlightRecorder(path) as recorder:
            recorder.record("enqueue", job_id="a", queue_depth=1)
            recorder.record("dispatch", job_id="a")
        events = read_events(path)
        assert [e["event"] for e in events] == ["enqueue", "dispatch"]
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["t"] > 0 for e in events)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with FlightRecorder(path) as recorder:
            recorder.record("enqueue", job_id="a")
        with open(path, "a") as handle:
            handle.write('{"event": "dispa')  # crash mid-append
        assert [e["event"] for e in read_events(path)] == ["enqueue"]

    def test_rollup_snapshot_is_written(self, tmp_path):
        path = tmp_path / "t.jsonl"
        recorder = FlightRecorder(path, rollup_every=2)
        recorder.record("enqueue")
        assert not recorder.due_for_rollup()
        recorder.record("dispatch")
        assert recorder.due_for_rollup()
        recorder.close({"extra": 1})
        rollup = json.loads((tmp_path / "t.jsonl.rollup.json").read_text())
        assert rollup["n_events"] == 2
        assert rollup["by_event"] == {"dispatch": 1, "enqueue": 1}
        assert rollup["summary"] == {"extra": 1}

    def test_appender_refuses_after_close(self, tmp_path):
        appender = JsonlAppender(tmp_path / "a.jsonl")
        appender.append({"x": 1})
        appender.close()
        with pytest.raises(ValueError):
            appender.append({"x": 2})


# ---------------------------------------------------------------------------
# SLO tracker and policy
# ---------------------------------------------------------------------------

def _done(job_id: str, t: float, run_s: float = 0.1, **kw) -> dict:
    record = {"event": "done", "job_id": job_id, "t": t, "status": "ok",
              "attempts": 1, "queue_wait_s": 0.01, "run_s": run_s}
    record.update(kw)
    return record


class TestSloTracker:
    def test_stats_over_a_synthetic_stream(self):
        tracker = SloTracker()
        tracker.observe({"event": "enqueue", "t": 0.0, "queue_depth": 2})
        tracker.observe({"event": "enqueue", "t": 0.1, "queue_depth": 4})
        tracker.observe({"event": "dispatch", "t": 0.2, "queue_wait_s": 0.2})
        tracker.observe(_done("a", 1.0, run_s=0.5, cold_start=True))
        tracker.observe(_done("b", 2.0, run_s=1.5, attempts=3,
                              cold_start=False))
        tracker.observe({"event": "done", "job_id": "c", "t": 2.5,
                         "status": "failed", "attempts": 1, "run_s": 0.1})
        tracker.observe({"event": "dead_letter", "job_id": "c", "t": 2.5})
        stats = tracker.stats()
        assert stats["n_jobs"] == 3
        assert stats["counts"] == {"failed": 1, "ok": 2}
        assert stats["queue_depth_peak"] == 4
        assert stats["job_p50_s"] == pytest.approx(1.0)
        assert stats["retry_rate"] == pytest.approx(1 / 3)
        assert stats["dead_letter_rate"] == pytest.approx(1 / 3)
        assert stats["cold_start_fraction"] == pytest.approx(0.5)
        assert stats["throughput_jobs_per_s"] == pytest.approx(3 / 2.5)

    def test_replayed_jobs_do_not_pollute_latency(self):
        tracker = SloTracker()
        tracker.observe(_done("replayed", 1.0, attempts=0, run_s=0.0))
        stats = tracker.stats()
        assert stats["n_jobs"] == 1
        assert stats["n_executed"] == 0


class TestSloPolicy:
    def test_violations_fire_in_both_directions(self):
        policy = SloPolicy({
            "max_job_p95_s": 1.0,
            "min_throughput_jobs_per_s": 10.0,
            "max_dead_letter_rate": 0.5,
        })
        violations = policy.evaluate({
            "job_p95_s": 2.0,
            "throughput_jobs_per_s": 1.0,
            "dead_letter_rate": 0.0,
        })
        assert {v["threshold"] for v in violations} == {
            "max_job_p95_s", "min_throughput_jobs_per_s"
        }
        worst = next(v for v in violations if v["stat"] == "job_p95_s")
        assert worst["limit"] == 1.0 and worst["actual"] == 2.0

    def test_nan_stats_violate_nothing(self):
        policy = SloPolicy({"min_throughput_jobs_per_s": 1.0})
        assert policy.evaluate({"throughput_jobs_per_s": float("nan")}) == []

    def test_unknown_stat_and_bad_prefix_are_rejected(self):
        with pytest.raises(ReproError, match="unknown statistic"):
            SloPolicy({"max_job_p42_s": 1.0})
        with pytest.raises(ReproError, match="max_ or min_"):
            SloPolicy({"job_p95_s": 1.0})

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"max_retry_rate": 0.25}\n')
        policy = SloPolicy.from_json_file(path)
        assert policy.thresholds == {"max_retry_rate": 0.25}


# ---------------------------------------------------------------------------
# End-to-end: telemetry-enabled batch
# ---------------------------------------------------------------------------

class TestBatchTelemetry:
    @pytest.fixture()
    def run(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with BatchServer(
            workers=2, runner=digest_runner, telemetry=path,
            slo={"max_dead_letter_rate": 0.0},
        ) as server:
            report = server.run_batch(_jobs(5))
        return report, path

    def test_stream_holds_the_whole_job_lifecycle(self, run):
        report, path = run
        events = read_events(path)
        kinds = {e["event"] for e in events}
        assert {"batch_start", "enqueue", "dispatch", "attempt_start",
                "attempt_end", "done", "batch_done"} <= kinds
        done = [e for e in events if e["event"] == "done"]
        assert {e["job_id"] for e in done} == {f"j{i}" for i in range(5)}
        assert report.counts == {"ok": 5}

    def test_results_carry_cross_process_traces(self, run):
        report, _ = run
        for result in report.results:
            names = [child["name"] for child in result.trace["children"]]
            assert names[0] == "serve.queue"
            assert "serve.attempt" in names
            attempt = next(
                c for c in result.trace["children"]
                if c["name"] == "serve.attempt"
            )
            # The worker-captured tree is grafted under the final attempt.
            grafted = [c["name"] for c in attempt["children"]]
            assert grafted == ["serve.worker.job"]
            assert attempt["attributes"]["worker_pid"] > 0

    def test_worker_metrics_merge_into_the_parent_registry(self, tmp_path):
        registry = obs_metrics.registry()
        before = registry.snapshot()
        with BatchServer(
            workers=2, runner=digest_runner,
            telemetry=tmp_path / "t.jsonl",
        ) as server:
            server.run_batch(_jobs(3))
        delta = diff_snapshots(before, registry.snapshot())
        # The counter only workers bump reached this process via the
        # payload's metrics delta — the cross-process export path.
        assert delta["counters"].get("workload.digest_jobs") == 3.0

    def test_slo_report_lands_in_the_batch_report(self, run):
        report, _ = run
        assert report.slo is not None
        assert report.slo_violations == []
        record = report.to_dict()
        assert record["slo_violations"] == []
        assert record["slo_summary"]["n_jobs"] == 5

    def test_telemetry_off_outputs_are_bit_identical(self, tmp_path):
        jobs = _jobs(4)
        with BatchServer(workers=2, runner=digest_runner) as server:
            plain = server.run_batch(jobs)
        with BatchServer(
            workers=2, runner=digest_runner, telemetry=tmp_path / "t.jsonl"
        ) as server:
            traced = server.run_batch(jobs)
        # Same deterministic results either way...
        assert [r.deterministic() for r in plain.results] == [
            r.deterministic() for r in traced.results
        ]
        # ...and the telemetry-off report exposes none of the new keys.
        record = json.dumps(plain.to_dict(), sort_keys=True, default=str)
        assert "slo_" not in record
        assert '"trace"' not in record
        assert plain.slo is None and plain.slo_violations == []

    def test_slo_without_telemetry_path_still_judges(self):
        with BatchServer(
            workers=1, runner=digest_runner,
            slo={"max_queue_depth_peak": -1.0},
        ) as server:
            report = server.run_batch(_jobs(2))
        assert report.slo_violations  # depth >= 0 > -1 by construction


# ---------------------------------------------------------------------------
# Timeline rendering
# ---------------------------------------------------------------------------

class TestGantt:
    def test_bars_marks_and_axis(self):
        text = gantt(
            [("pid 1", [(0.0, 4.0, "█")], [(2.0, "K")]),
             ("pid 2", [(4.0, 8.0, "░")], [])],
            0.0, 8.0, width=20,
        )
        lines = text.splitlines()
        assert lines[0].startswith("pid 1 |")
        assert "K" in lines[0]
        assert "░" in lines[1]
        assert "+8.00s" in lines[-1]

    def test_open_bar_extends_to_the_window_edge(self):
        text = gantt([("w", [(5.0, None, "─")], [])], 0.0, 8.0, width=20)
        assert text.splitlines()[0].rstrip("|").endswith("─")

    def test_rejects_degenerate_input(self):
        with pytest.raises(SignalError):
            gantt([], 0.0, 1.0)
        with pytest.raises(SignalError):
            gantt([("w", [], [])], 1.0, 1.0)
        with pytest.raises(SignalError):
            gantt([("w", [], [])], 0.0, 1.0, width=4)


class TestIterAttemptBars:
    def test_pairs_starts_with_ends_and_flags_open(self):
        events = [
            {"event": "attempt_start", "event_key": "a", "attempt": 1, "t": 0.0},
            {"event": "attempt_end", "event_key": "a", "attempt": 1, "t": 1.0,
             "status": "crashed", "worker_pid": 11},
            {"event": "attempt_start", "event_key": "a", "attempt": 2, "t": 2.0},
        ]
        bars = list(iter_attempt_bars(events))
        assert bars[0]["status"] == "crashed" and bars[0]["end_t"] == 1.0
        assert bars[1]["status"] == "open" and bars[1]["end_t"] is None


class TestTimelineCli:
    def test_renders_gantt_critical_path_and_slo(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "telemetry.jsonl"
        with BatchServer(
            workers=2, runner=digest_runner, telemetry=path
        ) as server:
            server.run_batch(_jobs(4))
        out_path = tmp_path / "timeline.txt"
        rc = main(["timeline", str(path), "--output", str(out_path)])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "legend:" in printed
        assert "pid " in printed
        assert "critical path" in printed
        assert "slo stats" in printed
        assert out_path.read_text().strip() in printed

    def test_empty_or_missing_stream_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["timeline", str(tmp_path / "nope.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["timeline", str(empty)]) == 2
        assert "error" in capsys.readouterr().err


class TestSelfDurations:
    def test_self_time_subtracts_children(self):
        root = Span("root")
        root.duration_s = 10.0
        child = Span("child")
        child.duration_s = 4.0
        grand = Span("grand")
        grand.duration_s = 6.0  # longer than parent: clamps to zero
        child.children = [grand]
        root.children = [child]
        totals = self_durations(root)
        assert totals["root"] == pytest.approx(6.0)
        assert totals["child"] == pytest.approx(0.0)
        assert totals["grand"] == pytest.approx(6.0)
