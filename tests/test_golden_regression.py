"""Golden-trace regression suite: seeded pipelines vs committed fixtures.

Each case in ``tests/golden/`` pins a fully seeded personalization (head
parameters, per-angle HRTF magnitudes, AoA errors, table digest).  These
tests recompute each case and compare within the documented tolerances —
see ``docs/TESTING.md`` for how the tolerances were chosen and for the
regeneration workflow (``python -m repro.testing.regen_golden``).
"""

from __future__ import annotations

import copy
import os

import pytest

from repro.testing.golden import (
    ADVERSE_CASES,
    DEFAULT_CASES,
    DEFAULT_TOLERANCES,
    adverse_fixture_path,
    compare_summaries,
    fixture_path,
    load_summary,
    summarize_adverse_case,
    summarize_case,
)

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module", params=DEFAULT_CASES, ids=lambda c: f"s{c[0]}r{c[1]}")
def case(request):
    subject_seed, session_seed = request.param
    path = fixture_path(subject_seed, session_seed)
    assert os.path.exists(path), (
        f"missing golden fixture {path} — run "
        "`python -m repro.testing.regen_golden`"
    )
    expected = load_summary(path)
    actual = summarize_case(subject_seed, session_seed)
    return expected, actual


class TestGoldenCases:
    def test_pipeline_matches_committed_fixture(self, case):
        expected, actual = case
        violations = compare_summaries(expected, actual)
        assert not violations, "golden regression:\n" + "\n".join(
            f"  - {v}" for v in violations
        )

    def test_exact_digest_matches_on_this_platform(self, case):
        # The float summaries passing but the digest moving would mean a
        # bit-level change below every tolerance; on the machine that
        # generated the fixtures that still deserves a look.  Opt-in via
        # REPRO_GOLDEN_EXACT=1 so cross-platform runs are not flaky.
        if os.environ.get("REPRO_GOLDEN_EXACT", "") != "1":
            pytest.skip("exact-digest check is opt-in (REPRO_GOLDEN_EXACT=1)")
        expected, actual = case
        assert actual["table_digest"] == expected["table_digest"]


@pytest.fixture(scope="module", params=sorted(ADVERSE_CASES))
def adverse_case(request):
    path = adverse_fixture_path(request.param)
    assert os.path.exists(path), (
        f"missing golden fixture {path} — run "
        "`python -m repro.testing.regen_golden`"
    )
    expected = load_summary(path)
    actual = summarize_adverse_case(request.param)
    return expected, actual


class TestAdverseGoldenCases:
    """Faulted captures must keep producing the *same* degraded result.

    The ladder handling of an adverse capture is pinned end to end: which
    rung it settled on, which flags it raised, the reduced confidence, and
    the digest of the robust-rung table.  A refactor that silently changes
    any of those — e.g. a sentinel threshold drift that stops escalation —
    fails here even though the clean cases stay bit-identical.
    """

    def test_ladder_handling_matches_committed_fixture(self, adverse_case):
        expected, actual = adverse_case
        violations = compare_summaries(expected, actual)
        assert not violations, "adverse golden regression:\n" + "\n".join(
            f"  - {v}" for v in violations
        )

    def test_adverse_cases_escalate_with_reduced_confidence(self, adverse_case):
        # Not just "matches the fixture": the fixtures themselves must keep
        # describing rescued captures, not captures the ladder stopped
        # noticing were adverse.
        _, actual = adverse_case
        assert actual["deconv_rung"] > 0
        assert actual["deconv_method"] != "inverse"
        assert 0.0 < actual["confidence"] < 1.0
        assert actual["quality_flags"]

    def test_exact_digest_matches_on_this_platform(self, adverse_case):
        if os.environ.get("REPRO_GOLDEN_EXACT", "") != "1":
            pytest.skip("exact-digest check is opt-in (REPRO_GOLDEN_EXACT=1)")
        expected, actual = adverse_case
        assert actual["table_digest"] == expected["table_digest"]


class TestComparatorSensitivity:
    """The comparator itself must catch the regressions it exists for."""

    @pytest.fixture(scope="class")
    def expected(self):
        return load_summary(fixture_path(*DEFAULT_CASES[0]))

    def test_identical_summaries_agree(self, expected):
        assert compare_summaries(expected, copy.deepcopy(expected)) == []

    def test_one_millimeter_head_shift_fails(self, expected):
        # The ISSUE's litmus test: +1 mm on the head half-width must trip
        # the 0.5 mm tolerance (verified end-to-end once against a real
        # perturbed run; see docs/TESTING.md).
        actual = copy.deepcopy(expected)
        actual["head_parameters_m"][0] += 1e-3
        violations = compare_summaries(expected, actual)
        assert any("head_parameters_m" in v for v in violations)

    def test_sub_tolerance_float_drift_passes(self, expected):
        actual = copy.deepcopy(expected)
        actual["head_parameters_m"][0] += 1e-7
        actual["residual_deg"] += 1e-6
        for values in actual["magnitude_rms_db"].values():
            values[0] += 1e-6
        assert compare_summaries(expected, actual) == []

    def test_magnitude_regression_fails(self, expected):
        actual = copy.deepcopy(expected)
        actual["magnitude_rms_db"]["far_left"][2] += 0.5
        violations = compare_summaries(expected, actual)
        assert any("magnitude_rms_db[far_left]" in v for v in violations)

    def test_aoa_regression_fails(self, expected):
        actual = copy.deepcopy(expected)
        actual["aoa_error_deg"][1] += 5.0
        violations = compare_summaries(expected, actual)
        assert any("aoa_error_deg" in v for v in violations)

    def test_digest_only_checked_when_exact(self, expected):
        actual = copy.deepcopy(expected)
        actual["table_digest"] = "0" * 64
        assert compare_summaries(expected, actual, exact_digest=False) == []
        violations = compare_summaries(expected, actual, exact_digest=True)
        assert any("table_digest" in v for v in violations)

    def test_config_drift_is_reported_as_fixture_staleness(self, expected):
        actual = copy.deepcopy(expected)
        actual["case"]["angle_step_deg"] = 5.0
        violations = compare_summaries(expected, actual)
        assert any("regenerate" in v for v in violations)

    def test_tolerances_documented_fields_exist(self, expected):
        for field in DEFAULT_TOLERANCES:
            assert field in expected

    def test_field_missing_from_actual_fails(self, expected):
        # The latent gap this guards against: a summary losing a field
        # (e.g. confidence disappearing from the pipeline output) used to
        # pass silently because comparisons were keyed off `expected`.
        actual = copy.deepcopy(expected)
        del actual["confidence"]
        violations = compare_summaries(expected, actual)
        assert any(
            "confidence" in v and "missing" in v for v in violations
        )

    def test_field_missing_from_fixture_fails(self, expected):
        # ...and the dual: a stale fixture missing a field the summary now
        # computes must demand regeneration, not shrink the comparison.
        stale = copy.deepcopy(expected)
        del stale["confidence"]
        violations = compare_summaries(stale, expected)
        assert any(
            "confidence" in v and "regenerate" in v for v in violations
        )

    def test_unknown_field_in_actual_fails(self, expected):
        actual = copy.deepcopy(expected)
        actual["brand_new_metric"] = 1.0
        violations = compare_summaries(expected, actual)
        assert any("brand_new_metric" in v for v in violations)

    def test_deconv_outcome_drift_fails(self):
        expected = load_summary(adverse_fixture_path(sorted(ADVERSE_CASES)[0]))
        actual = copy.deepcopy(expected)
        actual["deconv_rung"] = 0
        actual["deconv_method"] = "inverse"
        violations = compare_summaries(expected, actual)
        assert any("deconv_rung" in v for v in violations)
        assert any("deconv_method" in v for v in violations)

    def test_missing_magnitude_bank_fails(self, expected):
        actual = copy.deepcopy(expected)
        del actual["magnitude_rms_db"]["far_left"]
        violations = compare_summaries(expected, actual)
        assert any(
            "magnitude_rms_db[far_left]" in v and "missing" in v
            for v in violations
        )
