"""Tests for the image-source room model and binaural room rendering."""

import numpy as np
import pytest

from repro.errors import GeometryError, SignalError
from repro.hrtf.reference import ground_truth_table
from repro.room_acoustics import BinauralRoomRenderer, ShoeboxRoom
from repro.signals.waveforms import tone

FS = 48_000


@pytest.fixture(scope="module")
def room():
    return ShoeboxRoom(width=5.0, depth=4.0, absorption=0.35)


@pytest.fixture(scope="module")
def renderer(subject, room):
    table = ground_truth_table(subject, np.arange(0.0, 181.0, 10.0), FS)
    return BinauralRoomRenderer(table=table, room=room, max_order=2)


class TestShoebox:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(GeometryError):
            ShoeboxRoom(width=0.0, depth=4.0)

    def test_rejects_bad_absorption(self):
        with pytest.raises(GeometryError):
            ShoeboxRoom(width=5.0, depth=4.0, absorption=0.0)

    def test_direct_sound_first_and_strongest(self, room):
        images = room.image_sources(
            np.array([1.0, 1.0]), np.array([4.0, 3.0]), max_order=2
        )
        assert images[0].order == 0
        assert images[0].delay_s == min(img.delay_s for img in images)
        assert images[0].gain == max(img.gain for img in images)

    def test_direct_geometry(self, room):
        source = np.array([1.0, 1.0])
        listener = np.array([4.0, 1.0])
        direct = room.image_sources(source, listener, max_order=0)[0]
        assert direct.delay_s == pytest.approx(3.0 / 343.0)
        # Source is directly "west" of a north-facing listener: -90 deg.
        assert direct.arrival_angle_deg == pytest.approx(-90.0)

    def test_first_order_count(self, room):
        images = room.image_sources(
            np.array([2.0, 2.0]), np.array([3.0, 2.5]), max_order=1, min_gain=0.0
        )
        # Direct + 4 first-order walls.
        assert len(images) == 5
        assert sum(1 for img in images if img.order == 1) == 4

    def test_higher_order_weaker(self, room):
        images = room.image_sources(
            np.array([2.0, 2.0]), np.array([3.0, 2.5]), max_order=3, min_gain=0.0
        )
        by_order = {}
        for img in images:
            by_order.setdefault(img.order, []).append(img.gain)
        assert max(by_order[2]) < max(by_order[0])

    def test_source_outside_raises(self, room):
        with pytest.raises(GeometryError):
            room.image_sources(np.array([9.0, 1.0]), np.array([2.0, 2.0]))

    def test_mirror_coordinates(self):
        assert ShoeboxRoom._image_coordinate(1.0, 5.0, 0) == 1.0
        assert ShoeboxRoom._image_coordinate(1.0, 5.0, 1) == 9.0  # across x=5
        assert ShoeboxRoom._image_coordinate(1.0, 5.0, -1) == -1.0  # across x=0
        assert ShoeboxRoom._image_coordinate(1.0, 5.0, 2) == 11.0

    def test_facing_rotates_arrivals(self, room):
        source = np.array([4.0, 2.0])
        listener = np.array([2.0, 2.0])
        facing_north = room.image_sources(source, listener, 0.0, max_order=0)[0]
        facing_east = room.image_sources(source, listener, 90.0, max_order=0)[0]
        assert facing_north.arrival_angle_deg == pytest.approx(90.0)
        assert facing_east.arrival_angle_deg == pytest.approx(0.0)

    def test_rt60_positive_and_monotone_in_absorption(self):
        live = ShoeboxRoom(5.0, 4.0, absorption=0.1).reverberation_time_s()
        dead = ShoeboxRoom(5.0, 4.0, absorption=0.8).reverberation_time_s()
        assert live > dead > 0


class TestBinauralRoomRenderer:
    def test_output_longer_than_anechoic(self, renderer):
        signal = tone(1000.0, 0.05, FS)
        left, right = renderer.render(
            signal, np.array([1.0, 3.0]), np.array([3.5, 1.5])
        )
        assert left.shape == right.shape
        # Output covers the longest echo path, well beyond the dry signal.
        assert left.shape[0] > signal.shape[0] + 0.01 * FS

    def test_reflections_add_late_energy(self, renderer, subject, room):
        """Compare against an order-0 (anechoic) render of the same scene."""
        dry_renderer = BinauralRoomRenderer(
            table=renderer.table, room=room, max_order=0
        )
        signal = tone(1000.0, 0.03, FS)
        source = np.array([1.0, 3.0])
        listener = np.array([3.5, 1.5])
        wet_l, _ = renderer.render(signal, source, listener)
        dry_l, _ = dry_renderer.render(signal, source, listener)
        n = dry_l.shape[0]
        late = slice(signal.shape[0] + int(0.004 * FS), n)
        assert np.sum(wet_l[late] ** 2) > 5 * np.sum(dry_l[late] ** 2)

    def test_lateral_source_keeps_ild(self, renderer):
        """Even with reflections, a hard-left source favors the left ear."""
        signal = tone(2000.0, 0.05, FS)
        # Source directly left of a north-facing listener.
        left, right = renderer.render(
            signal, np.array([4.5, 2.0]), np.array([2.0, 2.0])
        )
        assert np.sum(left**2) > 1.5 * np.sum(right**2)

    def test_mirror_symmetry_of_sides(self, renderer):
        """A source to the right renders as the left's mirror (swap ears)."""
        signal = tone(1500.0, 0.04, FS)
        listener = np.array([2.5, 2.0])
        left_src = np.array([4.0, 2.0])
        right_src = np.array([1.0, 2.0])
        room_is_symmetric = abs(
            (renderer.room.width - listener[0]) - listener[0]
        ) < 1e-9
        if not room_is_symmetric:
            pytest.skip("listener not centered; mirror comparison invalid")
        l1, r1 = renderer.render(signal, left_src, listener)
        l2, r2 = renderer.render(signal, right_src, listener)
        np.testing.assert_allclose(l1, r2, atol=1e-9)
        np.testing.assert_allclose(r1, l2, atol=1e-9)

    def test_rejects_empty_signal(self, renderer):
        with pytest.raises(SignalError):
            renderer.render(np.zeros(1), np.array([1.0, 1.0]), np.array([2.0, 2.0]))

    def test_echo_summary_matches_room(self, renderer):
        images = renderer.echo_summary(np.array([1.0, 3.0]), np.array([3.5, 1.5]))
        assert images[0].order == 0
        assert all(img.order <= renderer.max_order for img in images)
