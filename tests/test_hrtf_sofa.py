"""Tests for the SOFA-convention interchange layer."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.hrtf.reference import ground_truth_table
from repro.hrtf.sofa import export_sofa_like, import_sofa_like

FS = 48_000
ANGLES = np.array([0.0, 45.0, 90.0, 135.0, 180.0])


@pytest.fixture(scope="module")
def table(subject):
    return ground_truth_table(subject, ANGLES, FS)


class TestRoundtrip:
    def test_far_field_roundtrip(self, table, tmp_path):
        path = tmp_path / "hrtf_sofa.npz"
        export_sofa_like(table, path)
        azimuths, pairs, fs = import_sofa_like(path)
        np.testing.assert_allclose(azimuths, ANGLES)
        assert fs == FS
        assert len(pairs) == ANGLES.shape[0]
        np.testing.assert_allclose(pairs[2].left, table.far[2].left)
        np.testing.assert_allclose(pairs[2].right, table.far[2].right)

    def test_near_field_distance_recorded(self, table, tmp_path):
        path = tmp_path / "near.npz"
        export_sofa_like(table, path, field="near")
        with np.load(path) as data:
            assert data["SourcePosition"][0, 2] == pytest.approx(0.45)

    def test_layout_fields_present(self, table, tmp_path):
        path = tmp_path / "layout.npz"
        export_sofa_like(table, path)
        with np.load(path) as data:
            assert str(data["GLOBAL_SOFAConventions"][0]) == "SimpleFreeFieldHRIR"
            m, r, n = data["Data_IR"].shape
            assert (m, r) == (ANGLES.shape[0], 2)
            assert n == table.far[0].n_samples


class TestValidation:
    def test_bad_field_rejected(self, table, tmp_path):
        with pytest.raises(TableError):
            export_sofa_like(table, tmp_path / "x.npz", field="mid")

    def test_wrong_convention_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            GLOBAL_SOFAConventions=np.array(["GeneralFIR"]),
            Data_SamplingRate=np.array([48_000.0]),
            Data_IR=np.zeros((1, 2, 8)),
            SourcePosition=np.zeros((1, 3)),
        )
        with pytest.raises(TableError):
            import_sofa_like(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "empty.npz"
        np.savez(path, GLOBAL_SOFAConventions=np.array(["SimpleFreeFieldHRIR"]))
        with pytest.raises(TableError):
            import_sofa_like(path)

    def test_bad_shape_rejected(self, tmp_path):
        path = tmp_path / "shape.npz"
        np.savez(
            path,
            GLOBAL_SOFAConventions=np.array(["SimpleFreeFieldHRIR"]),
            Data_SamplingRate=np.array([48_000.0]),
            Data_IR=np.zeros((1, 3, 8)),  # 3 receivers: not binaural
            SourcePosition=np.zeros((1, 3)),
        )
        with pytest.raises(TableError):
            import_sofa_like(path)
