"""Tests for virtual subjects and the population builder."""

import numpy as np
import pytest

from repro.geometry.head import Ear
from repro.simulation.person import VirtualSubject
from repro.simulation.population import average_subject, make_population


class TestVirtualSubject:
    def test_reproducible_from_seed(self):
        a = VirtualSubject.random(7)
        b = VirtualSubject.random(7)
        assert a.head.parameters == b.head.parameters
        np.testing.assert_array_equal(
            a.left_pinna.base_delays, b.left_pinna.base_delays
        )

    def test_different_seeds_differ(self):
        a = VirtualSubject.random(7)
        b = VirtualSubject.random(8)
        assert a.head.parameters != b.head.parameters

    def test_ears_have_independent_pinnae(self):
        subject = VirtualSubject.random(7)
        assert not np.array_equal(
            subject.left_pinna.base_delays, subject.right_pinna.base_delays
        )

    def test_pinna_accessor(self):
        subject = VirtualSubject.random(7)
        assert subject.pinna(Ear.LEFT) is subject.left_pinna
        assert subject.pinna(Ear.RIGHT) is subject.right_pinna

    def test_head_parameters_plausible(self):
        for seed in range(20):
            head = VirtualSubject.random(seed).head
            assert 0.07 < head.a < 0.11
            assert 0.08 < head.b < 0.14
            assert 0.07 < head.c < 0.12

    def test_zero_dispersion_equals_average_head(self):
        subject = VirtualSubject.random(5, head_dispersion=0.0)
        average = VirtualSubject.average()
        assert subject.head.parameters == average.head.parameters

    def test_default_name(self):
        assert VirtualSubject.random(3).name == "subject-3"


class TestPopulation:
    def test_names_and_count(self):
        cohort = make_population(5)
        assert len(cohort) == 5
        assert [s.name for s in cohort] == [f"volunteer-{i}" for i in range(1, 6)]

    def test_reproducible(self):
        a = make_population(3)
        b = make_population(3)
        for left, right in zip(a, b):
            assert left.head.parameters == right.head.parameters

    def test_members_distinct(self):
        cohort = make_population(4)
        params = {s.head.parameters for s in cohort}
        assert len(params) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_population(0)

    def test_average_subject_is_average(self):
        assert average_subject().head.parameters == VirtualSubject.average().head.parameters
