"""Tests for fractional-delay kernels and tap placement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.signals.channel import first_tap_index, refine_tap_position
from repro.signals.delays import (
    add_tap,
    apply_fractional_delay,
    fractional_delay_kernel,
)


class TestKernel:
    def test_zero_fraction_is_identity(self):
        kernel = fractional_delay_kernel(0.0)
        center = kernel.shape[0] // 2
        assert kernel[center] == pytest.approx(1.0, abs=1e-6)
        off_center = np.delete(kernel, center)
        assert np.max(np.abs(off_center)) < 1e-6

    def test_kernel_sums_to_one(self):
        for fraction in (0.0, 0.25, 0.5, 0.9):
            assert fractional_delay_kernel(fraction).sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(SignalError):
            fractional_delay_kernel(bad)

    @given(fraction=st.floats(0.0, 0.999))
    @settings(max_examples=30, deadline=None)
    def test_delays_a_sine_correctly(self, fraction):
        """A delayed sine must match the analytically shifted sine."""
        fs = 48_000
        f0 = 2000.0
        t = np.arange(1024) / fs
        signal = np.sin(2 * np.pi * f0 * t)
        delayed = apply_fractional_delay(signal, fraction, output_length=1024)
        expected = np.sin(2 * np.pi * f0 * (t - fraction / fs))
        # Compare away from the edges (kernel support).
        middle = slice(64, 960)
        assert np.max(np.abs(delayed[middle] - expected[middle])) < 1e-3


class TestAddTap:
    def test_integer_tap_position(self):
        buffer = np.zeros(64)
        add_tap(buffer, 20.0, 0.5)
        assert buffer[20] == pytest.approx(0.5, abs=1e-6)

    def test_fractional_tap_refines_between_samples(self):
        buffer = np.zeros(128)
        add_tap(buffer, 50.37, 1.0)
        idx = first_tap_index(buffer)
        refined = refine_tap_position(buffer, idx)
        assert refined == pytest.approx(50.37, abs=0.25)

    def test_taps_superpose(self):
        one = np.zeros(128)
        two = np.zeros(128)
        both = np.zeros(128)
        add_tap(one, 30.0, 1.0)
        add_tap(two, 60.5, 0.5)
        add_tap(both, 30.0, 1.0)
        add_tap(both, 60.5, 0.5)
        np.testing.assert_allclose(both, one + two)

    def test_negative_delay_rejected(self):
        with pytest.raises(SignalError):
            add_tap(np.zeros(16), -1.0, 1.0)

    def test_edge_clipping_does_not_raise(self):
        buffer = np.zeros(8)
        add_tap(buffer, 7.5, 1.0)  # kernel extends past the end
        assert np.all(np.isfinite(buffer))


class TestApplyFractionalDelay:
    def test_integer_delay_shifts(self):
        signal = np.zeros(32)
        signal[0] = 1.0
        delayed = apply_fractional_delay(signal, 5.0, output_length=64)
        assert np.argmax(np.abs(delayed)) == 5

    def test_preserves_band_limited_energy(self):
        """Energy is preserved for in-band content (the kernel rolls off
        only near Nyquist, far above any audio the library processes)."""
        fs = 48_000
        t = np.arange(2048) / fs
        signal = np.sin(2 * np.pi * 3000.0 * t) + 0.5 * np.sin(2 * np.pi * 8000.0 * t)
        delayed = apply_fractional_delay(signal, 10.3)
        assert np.sum(delayed**2) == pytest.approx(np.sum(signal**2), rel=0.01)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            apply_fractional_delay(np.zeros((4, 4)), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(SignalError):
            apply_fractional_delay(np.zeros(16), -0.5)
