"""Admission-control tests: quotas, fair dequeue, value-based shedding.

The :class:`~repro.serve.frontdoor.FrontDoor` makes its decisions against
injectable time and a pluggable sink, so everything here is deterministic:
token buckets replay byte-identically, the stride dequeue order is pinned,
and the shed property tests prove lowest-value-first against the same
offline verifier CI's overload gate uses.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import ReproError
from repro.serve import (
    BatchServer,
    FrontDoor,
    Job,
    TenantQuota,
    TokenBucket,
    estimate_confidence,
    job_value,
    read_events,
    verify_shed_ordering,
)
from repro.serve.telemetry import ServeTelemetry
from repro.testing.workloads import digest_runner


def _job(job_id: str, seed: int = 1, **kw) -> Job:
    return Job(job_id=job_id, subject_seed=seed, **kw)


def _wait_backlog_empty(door: FrontDoor, timeout_s: float = 5.0) -> None:
    """Wait for the dispatcher to pop what it is going to pop.

    The shed tests gate the sink so the dispatcher blocks inside its first
    handoff; once the backlog is empty the set of waiting jobs is exactly
    what the test submits next — no races.
    """
    deadline = time.monotonic() + timeout_s
    while door.backlog_depth > 0:
        if time.monotonic() > deadline:
            raise AssertionError("dispatcher never picked up the lead job")
        time.sleep(0.002)


class _SinkStub:
    """A sink that records handoffs; optionally gated by a semaphore."""

    def __init__(self, gate: threading.Semaphore | None = None):
        self.gate = gate
        self.order: list[str] = []
        self._lock = threading.Lock()

    def submit(self, job: Job, block: bool = True) -> bool:
        if self.gate is not None:
            self.gate.acquire()
        with self._lock:
            self.order.append(job.job_id)
        return True

    def drain(self) -> None:
        pass

    def results(self):
        return ()


class TestTokenBucket:
    def test_starts_full_and_refills_at_rate(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]
        # 0.5 s at 2/s refills exactly one token.
        assert bucket.take(0.5)
        assert not bucket.take(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2.0)
        assert bucket.take(0.0)
        assert bucket.take(1000.0)
        assert bucket.take(1000.0)
        assert not bucket.take(1000.0)

    def test_time_going_backwards_does_not_mint_tokens(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert bucket.take(10.0)
        assert not bucket.take(5.0)
        assert not bucket.take(10.5)
        # Refill resumes from the latest timestamp seen.
        assert bucket.take(11.0)

    def test_two_replays_admit_identically(self):
        times = [i * 0.173 for i in range(50)]
        first = TokenBucket(rate_per_s=3.0, burst=4.0)
        second = TokenBucket(rate_per_s=3.0, burst=4.0)
        assert [first.take(t) for t in times] == [second.take(t) for t in times]

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestTenantQuota:
    def test_round_trip(self):
        quota = TenantQuota(rate_per_s=4.0, burst=8.0, weight=2.0)
        assert TenantQuota.from_dict(quota.to_dict()) == quota

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ReproError):
            TenantQuota(rate_per_s=1.0, burst=1.0, weight=0.0)


class TestPassthrough:
    def test_unconfigured_door_is_transparent(self):
        door = FrontDoor(_SinkStub())
        assert door.passthrough
        assert door._dispatcher is None
        door.close()

    def test_passthrough_results_bit_identical_to_bare_server(self):
        jobs = [_job(f"j{i}", seed=10 + i) for i in range(6)]
        with BatchServer(workers=2, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        bare = [r.deterministic() for r in report.results]

        with BatchServer(workers=2, runner=digest_runner) as server:
            with FrontDoor(server) as door:
                for job in jobs:
                    door.submit(job)
                door.drain()
                fronted = [r.deterministic() for r in door.results()]
        assert fronted == bare


class TestQuotas:
    def test_over_quota_is_a_typed_rejection(self):
        sink = _SinkStub()
        quota = TenantQuota(rate_per_s=1.0, burst=2.0)
        with FrontDoor(sink, quotas={"acme": quota}) as door:
            outcomes = [
                door.submit(_job(f"a{i}", seed=i + 1, tenant="acme"), now=0.0)
                for i in range(4)
            ]
            door.drain()
            results = {r.job_id: r for r in door.results()}
        assert outcomes == [True, True, False, False]
        assert door.n_over_quota == 2
        for job_id in ("a2", "a3"):
            result = results[job_id]
            assert result.status == "rejected"
            assert result.reason == "over_quota"
            assert result.attempts == 0
        assert sorted(sink.order) == ["a0", "a1"]

    def test_bucket_refills_between_arrivals(self):
        quota = TenantQuota(rate_per_s=2.0, burst=1.0)
        with FrontDoor(_SinkStub(), quotas={"acme": quota}) as door:
            assert door.submit(_job("a", tenant="acme"), now=0.0)
            assert not door.submit(_job("b", seed=2, tenant="acme"), now=0.0)
            assert door.submit(_job("c", seed=3, tenant="acme"), now=0.5)
            door.drain()

    def test_default_quota_covers_unlisted_tenants(self):
        default = TenantQuota(rate_per_s=1.0, burst=1.0)
        with FrontDoor(_SinkStub(), default_quota=default) as door:
            assert door.submit(_job("a", tenant="x"), now=0.0)
            assert not door.submit(_job("b", seed=2, tenant="x"), now=0.0)
            # A fresh tenant gets its own bucket, not x's empty one.
            assert door.submit(_job("c", seed=3, tenant="y"), now=0.0)
            door.drain()

    def test_one_tenants_burst_cannot_starve_another(self):
        quotas = {
            "greedy": TenantQuota(rate_per_s=100.0, burst=100.0),
            "modest": TenantQuota(rate_per_s=1.0, burst=2.0),
        }
        with FrontDoor(_SinkStub(), quotas=quotas) as door:
            for i in range(50):
                assert door.submit(
                    _job(f"g{i}", seed=i + 1, tenant="greedy"), now=0.0
                )
            assert door.submit(_job("m0", seed=200, tenant="modest"), now=0.0)
            assert door.submit(_job("m1", seed=201, tenant="modest"), now=0.0)
            door.drain()

    def test_unmetered_tenant_when_no_quota_matches(self):
        quotas = {"acme": TenantQuota(rate_per_s=1.0, burst=1.0)}
        with FrontDoor(_SinkStub(), quotas=quotas) as door:
            for i in range(20):
                assert door.submit(
                    _job(f"f{i}", seed=i + 1, tenant="free"), now=0.0
                )
            door.drain()


class TestWeightedFairDequeue:
    def test_stride_order_converges_to_weight_ratio(self):
        # Gate the sink so the dispatcher blocks after its first pop; the
        # full two-tenant backlog then drains in pure stride order.
        gate = threading.Semaphore(0)
        sink = _SinkStub(gate)
        quotas = {
            "a": TenantQuota(rate_per_s=1e9, burst=1e9, weight=1.0),
            "b": TenantQuota(rate_per_s=1e9, burst=1e9, weight=3.0),
        }
        with FrontDoor(sink, quotas=quotas) as door:
            for i in range(12):
                door.submit(_job(f"a{i}", seed=i + 1, tenant="a"), now=0.0)
                door.submit(_job(f"b{i}", seed=100 + i, tenant="b"), now=0.0)
            gate.release(100)
            door.drain()
        tenants = [job_id[0] for job_id in sink.order]
        # The first pop is 'a' (pass tie breaks on name); thereafter the
        # stride keeps every prefix within a constant of the 3:1 weight
        # ratio while both backlogs are non-empty (bounded unfairness —
        # exact boundaries wobble with float pass accumulation).
        assert tenants[0] == "a"
        for n in range(2, 15):
            a_count = tenants[:n].count("a")
            b_count = n - a_count
            assert abs(b_count - 3 * a_count) <= 4, (
                f"prefix {n}: {a_count} a vs {b_count} b drifted from 3:1"
            )
        assert tenants.count("a") == tenants.count("b") == 12

    def test_equal_weights_alternate(self):
        gate = threading.Semaphore(0)
        sink = _SinkStub(gate)
        quotas = {
            "a": TenantQuota(rate_per_s=1e9, burst=1e9),
            "b": TenantQuota(rate_per_s=1e9, burst=1e9),
        }
        with FrontDoor(sink, quotas=quotas) as door:
            for i in range(8):
                door.submit(_job(f"a{i}", seed=i + 1, tenant="a"), now=0.0)
                door.submit(_job(f"b{i}", seed=100 + i, tenant="b"), now=0.0)
            gate.release(100)
            door.drain()
        tenants = [job_id[0] for job_id in sink.order]
        assert tenants[:8] == ["a", "b"] * 4


class TestShedding:
    def _door(self, tmp_path, limit: int, shed: bool = True):
        telemetry = ServeTelemetry(tmp_path / "events.jsonl", fsync=False)
        gate = threading.Semaphore(0)
        sink = _SinkStub(gate)
        door = FrontDoor(
            sink, backlog_limit=limit, shed=shed, telemetry=telemetry
        )
        return door, sink, gate, telemetry

    def test_queue_full_without_shedding(self, tmp_path):
        door, _, gate, telemetry = self._door(tmp_path, limit=2, shed=False)
        with door:
            # The dispatcher pops the first job and blocks in the gated
            # sink; the next two fill the backlog; the rest find it full.
            assert door.submit(_job("a", seed=1), now=0.0)
            _wait_backlog_empty(door)
            assert door.submit(_job("b", seed=2), now=0.0)
            assert door.submit(_job("c", seed=3), now=0.0)
            accepted = [
                door.submit(_job(f"d{i}", seed=10 + i), now=0.0)
                for i in range(3)
            ]
            gate.release(100)
            door.drain()
            results = {r.job_id: r for r in door.results()}
        telemetry.close()
        assert not any(accepted)
        for i in range(3):
            assert results[f"d{i}"].reason == "queue_full"

    def test_sheds_exactly_the_lowest_values(self, tmp_path):
        door, sink, gate, telemetry = self._door(tmp_path, limit=8)
        values = {}
        with door:
            # Highest-value job first: the dispatcher pops it and blocks,
            # so the backlog contents are exactly what we submit next.
            lead = _job("lead", seed=99, priority=10)
            assert door.submit(lead, now=0.0)
            _wait_backlog_empty(door)
            jobs = []
            for i in range(20):
                job = _job(
                    f"j{i:02d}", seed=i + 1, priority=i % 3,
                    params={"expected_confidence": round(0.05 * i, 2)},
                )
                jobs.append(job)
                values[job.job_id] = job_value(job)
                door.submit(job, now=0.0)
            gate.release(100)
            door.drain()
            results = {r.job_id: r for r in door.results()}
        telemetry.close()

        shed = {j for j, r in results.items() if r.status == "rejected"}
        assert all(results[j].reason == "shed_overload" for j in shed)
        # 21 submitted, 1 in flight, 8 backlog slots: 12 must shed, and
        # they must be precisely the 12 lowest-valued.
        ranked = sorted(jobs, key=lambda job: values[job.job_id])
        assert shed == {job.job_id for job in ranked[:12]}
        events = read_events(telemetry.path)
        assert sum(1 for e in events if e.get("event") == "shed") == 12
        assert verify_shed_ordering(events) == []

    def test_incoming_job_can_be_the_victim(self, tmp_path):
        door, _, gate, telemetry = self._door(tmp_path, limit=2)
        with door:
            assert door.submit(_job("lead", seed=1, priority=9), now=0.0)
            _wait_backlog_empty(door)
            assert door.submit(_job("keep0", seed=2, priority=5), now=0.0)
            assert door.submit(_job("keep1", seed=3, priority=5), now=0.0)
            assert not door.submit(_job("low", seed=4, priority=-1), now=0.0)
            gate.release(100)
            door.drain()
            results = {r.job_id: r for r in door.results()}
        telemetry.close()
        assert results["low"].reason == "shed_overload"
        assert "keep0" not in results and "keep1" not in results

    def test_ties_evict_the_newest_admission(self, tmp_path):
        door, sink, gate, telemetry = self._door(tmp_path, limit=2)
        with door:
            assert door.submit(_job("lead", seed=1, priority=9), now=0.0)
            _wait_backlog_empty(door)
            assert door.submit(_job("old", seed=2), now=0.0)
            assert door.submit(_job("mid", seed=3), now=0.0)
            # Same value as the waiting jobs: the newcomer is the victim.
            assert not door.submit(_job("new", seed=4), now=0.0)
            gate.release(100)
            door.drain()
            results = {r.job_id: r for r in door.results()}
        telemetry.close()
        assert results["new"].reason == "shed_overload"
        assert "old" in sink.order and "mid" in sink.order

    def test_random_workloads_shed_lowest_value_first(self, tmp_path):
        rng = random.Random(7)
        for round_no in range(3):
            telemetry = ServeTelemetry(
                tmp_path / f"events{round_no}.jsonl", fsync=False
            )
            gate = threading.Semaphore(0)
            sink = _SinkStub(gate)
            door = FrontDoor(
                sink, backlog_limit=6, shed=True, telemetry=telemetry
            )
            with door:
                door.submit(_job("lead", seed=999, priority=10), now=0.0)
                _wait_backlog_empty(door)
                for i in range(25):
                    door.submit(
                        _job(
                            f"j{round_no}-{i:02d}", seed=i + 1,
                            priority=rng.randint(-2, 2),
                            params={
                                "expected_confidence": round(rng.random(), 6)
                            },
                        ),
                        now=0.0,
                    )
                gate.release(200)
                door.drain()
            telemetry.close()
            events = read_events(telemetry.path)
            assert verify_shed_ordering(events) == [], (
                f"round {round_no} broke the shed-ordering invariant"
            )


class TestVerifyShedOrdering:
    def test_flags_a_victim_worth_more_than_the_floor(self):
        events = [
            {"event": "shed", "job_id": "x", "value": 2.0,
             "backlog_min_value": 1.0, "seq": 4},
            {"event": "shed", "job_id": "y", "value": 1.0,
             "backlog_min_value": 1.0, "seq": 5},
        ]
        violations = verify_shed_ordering(events)
        assert [v["job_id"] for v in violations] == ["x"]

    def test_ignores_other_events_and_empty_backlogs(self):
        events = [
            {"event": "done", "job_id": "a"},
            {"event": "shed", "job_id": "b", "value": 3.0},
        ]
        assert verify_shed_ordering(events) == []


class TestConfidenceModel:
    def test_explicit_estimate_wins_and_clamps(self):
        job = _job("a", params={"expected_confidence": 1.7})
        assert estimate_confidence(job) == 1.0
        job = _job("b", params={"expected_confidence": -0.3})
        assert estimate_confidence(job) == 0.0

    def test_faulted_specs_degrade_and_clean_specs_trust(self):
        faulted = _job("a", fault="clipped", fault_args={"level": 0.2})
        assert estimate_confidence(faulted) == 0.5
        assert estimate_confidence(_job("b")) == 1.0

    def test_priority_dominates_confidence(self):
        low_conf_high_pri = _job(
            "a", priority=1, params={"expected_confidence": 0.0}
        )
        high_conf_low_pri = _job(
            "b", priority=0, params={"expected_confidence": 1.0}
        )
        assert job_value(low_conf_high_pri) == job_value(high_conf_low_pri)
        assert job_value(_job("c", priority=1)) > job_value(
            _job("d", priority=0)
        )


class TestLifecycle:
    def test_interrupt_resolves_backlog_as_interrupted(self):
        gate = threading.Semaphore(0)
        sink = _SinkStub(gate)
        with FrontDoor(sink, backlog_limit=10) as door:
            door.submit(_job("j0", seed=1), now=0.0)
            _wait_backlog_empty(door)
            for i in range(1, 4):
                door.submit(_job(f"j{i}", seed=i + 1), now=0.0)
            door.interrupt()
            gate.release(10)
            door.drain()
            results = door.results()
        # j0 is in the (result-less) stub sink; the three waiting jobs
        # resolve interrupted rather than vanishing.
        assert sink.order == ["j0"]
        assert [r.job_id for r in results] == ["j1", "j2", "j3"]
        assert {r.status for r in results} == {"interrupted"}

    def test_submit_after_interrupt_is_interrupted_not_lost(self):
        with FrontDoor(_SinkStub(), backlog_limit=4) as door:
            door.interrupt()
            assert not door.submit(_job("late"), now=0.0)
            results = {r.job_id: r for r in door.results()}
        assert results["late"].status == "interrupted"

    def test_duplicate_and_closed_submissions_raise(self):
        door = FrontDoor(_SinkStub(), backlog_limit=4)
        door.submit(_job("a"), now=0.0)
        with pytest.raises(ReproError, match="duplicate"):
            door.submit(_job("a", seed=2), now=0.0)
        door.drain()
        door.close()
        with pytest.raises(ReproError, match="closed"):
            door.submit(_job("b"), now=0.0)

    def test_stats_surface(self):
        with FrontDoor(
            _SinkStub(),
            quotas={"acme": TenantQuota(rate_per_s=1.0, burst=1.0)},
        ) as door:
            door.submit(_job("a", tenant="acme"), now=0.0)
            door.submit(_job("b", seed=2, tenant="acme"), now=0.0)
            door.drain()
            stats = door.stats()
        assert stats["passthrough"] is False
        assert stats["n_over_quota"] == 1
        assert stats["tenants"] == ["acme"]
