"""Public API surface tests."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for module in (
            "repro.geometry",
            "repro.signals",
            "repro.simulation",
            "repro.hrtf",
            "repro.core",
            "repro.eval",
            "repro.cli",
            "repro.physics",
        ):
            importlib.import_module(module)

    def test_errors_hierarchy(self):
        for error in (
            repro.GeometryError,
            repro.SignalError,
            repro.CalibrationError,
            repro.ConvergenceError,
            repro.TableError,
        ):
            assert issubclass(error, repro.ReproError)

    def test_constants_sane(self):
        assert repro.SPEED_OF_SOUND == pytest.approx(343.0)
        assert repro.DEFAULT_SAMPLE_RATE == 48_000
        assert repro.NEAR_FIELD_THRESHOLD_M == 1.0


class TestPhysics:
    def test_shadow_attenuation_decays(self):
        from repro.physics import shadow_attenuation

        assert shadow_attenuation(0.0) == pytest.approx(1.0)
        assert shadow_attenuation(0.08) == pytest.approx(1 / 2.718281828, rel=1e-6)
        assert shadow_attenuation(0.2) < shadow_attenuation(0.1)

    def test_spreading_gain(self):
        from repro.physics import spreading_gain

        assert spreading_gain(1.0) == pytest.approx(1.0)
        assert spreading_gain(2.0) == pytest.approx(0.5)
        assert spreading_gain(0.0) > 0  # clamped, never infinite

    def test_combined_gains(self):
        from repro.physics import (
            far_field_first_tap_gain,
            near_field_first_tap_gain,
        )

        assert near_field_first_tap_gain(0.5, 0.0) == pytest.approx(2.0)
        assert far_field_first_tap_gain(0.0) == pytest.approx(1.0)
        assert near_field_first_tap_gain(0.5, 0.1) < 2.0
