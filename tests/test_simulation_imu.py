"""Tests for the gyroscope model and integration."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.geometry.trajectory import circular_trajectory
from repro.simulation.imu import GyroscopeModel, IMUTrace, integrate_gyro


class TestIdealGyro:
    def test_ideal_integration_recovers_angles(self):
        trajectory = circular_trajectory(duration_s=10.0)
        trace = GyroscopeModel.ideal().measure(trajectory)
        angles = integrate_gyro(trace, initial_angle_deg=0.0)
        np.testing.assert_allclose(angles, trajectory.angles_deg, atol=0.05)

    def test_initial_angle_offsets(self):
        trajectory = circular_trajectory(duration_s=5.0)
        trace = GyroscopeModel.ideal().measure(trajectory)
        angles = integrate_gyro(trace, initial_angle_deg=30.0)
        assert angles[0] == pytest.approx(30.0)


class TestNoisyGyro:
    def test_bias_accumulates_linearly(self):
        trajectory = circular_trajectory(duration_s=20.0)
        gyro = GyroscopeModel(
            bias_dps=1.0, bias_walk_dps=0.0, noise_std_dps=0.0, scale_error=0.0
        )
        trace = gyro.measure(trajectory, np.random.default_rng(0))
        angles = integrate_gyro(trace)
        drift = angles - trajectory.angles_deg
        # After ~20 s of 1 deg/s bias, drift ~20 deg, growing linearly.
        assert drift[-1] == pytest.approx(trajectory.duration, rel=0.05)
        mid = len(drift) // 2
        assert drift[mid] == pytest.approx(drift[-1] / 2, rel=0.1)

    def test_scale_error_proportional(self):
        trajectory = circular_trajectory(duration_s=10.0)
        gyro = GyroscopeModel(
            bias_dps=0.0, bias_walk_dps=0.0, noise_std_dps=0.0, scale_error=0.02
        )
        trace = gyro.measure(trajectory, np.random.default_rng(0))
        angles = integrate_gyro(trace)
        assert angles[-1] == pytest.approx(1.02 * trajectory.angles_deg[-1], rel=0.01)

    def test_noise_reproducible_with_seed(self):
        trajectory = circular_trajectory(duration_s=5.0)
        gyro = GyroscopeModel()
        a = gyro.measure(trajectory, np.random.default_rng(7))
        b = gyro.measure(trajectory, np.random.default_rng(7))
        np.testing.assert_array_equal(a.rate_dps, b.rate_dps)

    def test_default_model_drift_is_realistic(self):
        """Default MEMS errors produce several degrees of drift over a sweep
        — the error scale that motivates acoustic fusion in the paper."""
        trajectory = circular_trajectory(duration_s=20.0)
        trace = GyroscopeModel().measure(trajectory, np.random.default_rng(1))
        angles = integrate_gyro(trace)
        final_error = abs(angles[-1] - trajectory.angles_deg[-1])
        assert 1.0 < final_error < 30.0


class TestValidation:
    def test_trace_requires_matching_shapes(self):
        with pytest.raises(SignalError):
            IMUTrace(times=np.arange(3.0), rate_dps=np.zeros(4))

    def test_trace_requires_monotone_times(self):
        with pytest.raises(SignalError):
            IMUTrace(times=np.array([0.0, 2.0, 1.0]), rate_dps=np.zeros(3))

    def test_integrate_empty_raises(self):
        with pytest.raises(SignalError):
            integrate_gyro(IMUTrace(times=np.zeros(0), rate_dps=np.zeros(0)))

    def test_integrate_single_sample(self):
        trace = IMUTrace(times=np.array([0.0]), rate_dps=np.array([5.0]))
        np.testing.assert_array_equal(integrate_gyro(trace, 10.0), [10.0])
