"""Tests for the measurement session simulator."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.geometry.trajectory import circular_trajectory
from repro.simulation.room import RoomModel
from repro.simulation.session import MeasurementSession


class TestSessionShape:
    def test_probe_count_matches_interval(self, subject):
        session = MeasurementSession(
            subject,
            seed=1,
            probe_interval_s=0.5,
            trajectory=circular_trajectory(duration_s=10.0),
        ).run()
        assert session.n_probes == 20

    def test_probe_times_increase(self, small_session):
        times = [p.time for p in small_session.probes]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_imu_covers_trajectory(self, small_session):
        assert len(small_session.imu) == len(small_session.truth.trajectory)

    def test_truth_angles_span_semicircle(self, small_session):
        angles = small_session.truth.probe_angles_deg()
        assert angles.min() < 10.0
        assert angles.max() > 160.0

    def test_recordings_nonempty_and_finite(self, small_session):
        for probe in small_session.probes:
            assert probe.left.shape[0] > small_session.probe_signal.shape[0]
            assert np.all(np.isfinite(probe.left))
            assert np.all(np.isfinite(probe.right))

    def test_truth_positions_match_angles(self, small_session):
        positions = small_session.truth.probe_positions()
        radii = np.linalg.norm(positions, axis=1)
        np.testing.assert_allclose(radii, small_session.truth.probe_radii())


class TestReproducibility:
    def test_same_seed_same_session(self, subject):
        a = MeasurementSession(subject, seed=5, probe_interval_s=1.0).run()
        b = MeasurementSession(subject, seed=5, probe_interval_s=1.0).run()
        np.testing.assert_array_equal(a.probes[0].left, b.probes[0].left)
        np.testing.assert_array_equal(a.imu.rate_dps, b.imu.rate_dps)

    def test_different_seed_differs(self, subject):
        a = MeasurementSession(subject, seed=5, probe_interval_s=1.0).run()
        b = MeasurementSession(subject, seed=6, probe_interval_s=1.0).run()
        assert not np.array_equal(a.probes[0].left, b.probes[0].left)


class TestValidation:
    def test_rejects_nonpositive_interval(self, subject):
        with pytest.raises(SignalError):
            MeasurementSession(subject, probe_interval_s=0.0).run()

    def test_rejects_too_few_probes(self, subject):
        with pytest.raises(SignalError):
            MeasurementSession(
                subject,
                probe_interval_s=9.0,
                trajectory=circular_trajectory(duration_s=10.0),
            ).run()

    def test_anechoic_session(self, subject):
        session = MeasurementSession(
            subject,
            seed=2,
            probe_interval_s=1.0,
            room=RoomModel.anechoic(),
            trajectory=circular_trajectory(duration_s=8.0),
        ).run()
        assert session.n_probes == 8


class TestRoomModel:
    def test_echo_taps_sorted_and_delayed(self):
        room = RoomModel.typical_living_room()
        delays, gains = room.echo_taps(np.random.default_rng(0))
        assert np.all(np.diff(delays) >= 0)
        assert delays.min() >= room.first_echo_s
        assert np.all(np.abs(gains) <= room.level)

    def test_energy_decays(self):
        room = RoomModel()
        delays, gains = room.echo_taps(np.random.default_rng(1))
        early = np.abs(gains[delays < delays.mean()]).mean()
        late = np.abs(gains[delays >= delays.mean()]).mean()
        assert early > late

    def test_rejects_bad_level(self):
        with pytest.raises(SignalError):
            RoomModel(level=1.5)
