"""Tests for phone trajectory generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.trajectory import (
    Trajectory,
    circular_trajectory,
    hand_motion_trajectory,
)


class TestCircular:
    def test_basic_shape(self):
        traj = circular_trajectory(radius=0.5, duration_s=10.0, rate_hz=100.0)
        assert len(traj) == 1000
        assert traj.duration == pytest.approx(9.99)
        np.testing.assert_allclose(traj.radii, 0.5)
        assert traj.angles_deg[0] == 0.0
        assert traj.angles_deg[-1] == 180.0

    def test_positions_on_circle(self):
        traj = circular_trajectory(radius=0.5)
        radii = np.linalg.norm(traj.positions(), axis=1)
        np.testing.assert_allclose(radii, 0.5)

    def test_constant_angular_velocity(self):
        traj = circular_trajectory(duration_s=18.0)
        rate = traj.angular_velocity_dps()
        np.testing.assert_allclose(rate, rate[0], rtol=1e-6)

    def test_invalid_duration(self):
        with pytest.raises(GeometryError):
            circular_trajectory(duration_s=0.0)


class TestHandMotion:
    def test_reproducible_from_seed(self):
        a = hand_motion_trajectory(np.random.default_rng(5))
        b = hand_motion_trajectory(np.random.default_rng(5))
        np.testing.assert_array_equal(a.angles_deg, b.angles_deg)
        np.testing.assert_array_equal(a.radii, b.radii)

    def test_angles_monotone(self):
        traj = hand_motion_trajectory(np.random.default_rng(0))
        assert np.all(np.diff(traj.angles_deg) >= 0)
        assert traj.angles_deg[0] == pytest.approx(0.0)
        assert traj.angles_deg[-1] == pytest.approx(180.0)

    def test_radius_wobbles_around_mean(self):
        traj = hand_motion_trajectory(
            np.random.default_rng(1), radius_mean=0.45, radius_wobble=0.03
        )
        assert abs(traj.radii.mean() - 0.45) < 0.03
        assert traj.radii.std() > 0.005

    def test_arm_drop_reduces_radius(self):
        base = hand_motion_trajectory(
            np.random.default_rng(2), arm_drop_probability=0.0
        )
        dropped = hand_motion_trajectory(
            np.random.default_rng(2), arm_drop_probability=1.0, arm_drop_depth=0.3
        )
        assert dropped.radii.min() < base.radii.min() - 0.05

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_always_valid(self, seed):
        traj = hand_motion_trajectory(np.random.default_rng(seed))
        assert np.all(traj.radii > 0.1)
        assert np.all(np.isfinite(traj.facing_error_deg))
        assert np.all(np.diff(traj.times) > 0)


class TestTrajectoryValidation:
    def test_mismatched_shapes_raise(self):
        with pytest.raises(GeometryError):
            Trajectory(
                times=np.arange(5.0),
                angles_deg=np.zeros(4),
                radii=np.ones(5),
                facing_error_deg=np.zeros(5),
            )

    def test_nonmonotone_times_raise(self):
        with pytest.raises(GeometryError):
            Trajectory(
                times=np.array([0.0, 2.0, 1.0]),
                angles_deg=np.zeros(3),
                radii=np.ones(3),
                facing_error_deg=np.zeros(3),
            )

    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            Trajectory(
                times=np.arange(3.0),
                angles_deg=np.zeros(3),
                radii=np.array([1.0, -0.1, 1.0]),
                facing_error_deg=np.zeros(3),
            )

    def test_subsample(self):
        traj = circular_trajectory(duration_s=10.0)
        sub = traj.subsample(np.array([0, 10, 20]))
        assert len(sub) == 3
        assert sub.angles_deg[0] == traj.angles_deg[0]

    def test_orientation_includes_facing_error(self):
        traj = Trajectory(
            times=np.arange(3.0),
            angles_deg=np.array([0.0, 10.0, 20.0]),
            radii=np.ones(3),
            facing_error_deg=np.array([1.0, -1.0, 0.5]),
        )
        np.testing.assert_allclose(traj.orientations_deg(), [1.0, 9.0, 20.5])
