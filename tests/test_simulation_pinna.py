"""Tests for the pinna micro-echo model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.simulation.pinna import PinnaModel


class TestConstruction:
    def test_random_is_reproducible(self):
        a = PinnaModel.random(np.random.default_rng(5))
        b = PinnaModel.random(np.random.default_rng(5))
        np.testing.assert_array_equal(a.base_delays, b.base_delays)
        np.testing.assert_array_equal(a.levels, b.levels)

    def test_n_echoes(self):
        model = PinnaModel.random(np.random.default_rng(0), n_echoes=4)
        assert model.n_echoes == 4

    def test_rejects_zero_echoes(self):
        with pytest.raises(SignalError):
            PinnaModel.random(np.random.default_rng(0), n_echoes=0)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(SignalError):
            PinnaModel(
                base_delays=np.array([1e-4, 2e-4]),
                delay_mod_amplitude=np.array([1e-5]),
                delay_mod_order=np.array([1.0, 2.0]),
                delay_mod_phase=np.zeros(2),
                levels=np.array([0.5, 0.3]),
                gain_mod_order=np.array([1.0, 1.0]),
                gain_mod_phase=np.zeros(2),
            )


class TestEchoBehaviour:
    def test_delays_within_physical_range(self):
        model = PinnaModel.random(np.random.default_rng(1))
        for angle in np.linspace(-180, 180, 19):
            delays, _ = model.echoes(float(angle))
            assert np.all(delays >= 0.05e-3)
            assert np.all(delays <= 0.9e-3)

    def test_smooth_angle_dependence(self):
        """Adjacent angles give nearly identical echo trains (paper Fig 2a)."""
        model = PinnaModel.random(np.random.default_rng(2))
        d1, g1 = model.echoes(40.0)
        d2, g2 = model.echoes(42.0)
        assert np.max(np.abs(d1 - d2)) < 0.03e-3
        assert np.max(np.abs(g1 - g2)) < 0.1

    def test_distinct_across_angles(self):
        """Far-apart angles differ (the pinna resolves direction)."""
        model = PinnaModel.random(np.random.default_rng(3))
        d1, _ = model.echoes(0.0)
        d2, _ = model.echoes(120.0)
        assert np.max(np.abs(d1 - d2)) > 0.01e-3

    def test_distinct_across_subjects(self):
        a = PinnaModel.random(np.random.default_rng(10))
        b = PinnaModel.random(np.random.default_rng(11))
        da, _ = a.echoes(50.0)
        db, _ = b.echoes(50.0)
        assert np.max(np.abs(da - db)) > 0.02e-3

    def test_zero_dispersion_is_population_center(self):
        a = PinnaModel.random(np.random.default_rng(20), dispersion=0.0)
        b = PinnaModel.random(np.random.default_rng(21), dispersion=0.0)
        np.testing.assert_allclose(a.base_delays, b.base_delays)
        np.testing.assert_allclose(a.levels, b.levels)

    def test_nan_angle_raises(self):
        model = PinnaModel.random(np.random.default_rng(4))
        with pytest.raises(SignalError):
            model.echoes(float("nan"))

    @given(angle=st.floats(-360, 360), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_gains_bounded(self, angle, seed):
        model = PinnaModel.random(np.random.default_rng(seed))
        _, gains = model.echoes(angle)
        assert np.all(gains >= 0.0)
        assert np.all(gains <= 1.5)
