"""Tests for spectral helpers."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signals.spectrum import (
    amplitude_spectrum,
    apply_frequency_response,
    band_energy_ratio,
)
from repro.signals.waveforms import tone, white_noise

FS = 48_000


class TestAmplitudeSpectrum:
    def test_tone_amplitude(self):
        signal = tone(1000.0, 0.5, FS, amplitude=0.8)
        freqs, amps = amplitude_spectrum(signal, FS)
        peak_freq = freqs[np.argmax(amps)]
        assert abs(peak_freq - 1000.0) < 5.0
        assert amps.max() == pytest.approx(0.8, rel=0.05)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            amplitude_spectrum(np.zeros(1), FS)

    def test_rejects_bad_fs(self):
        with pytest.raises(SignalError):
            amplitude_spectrum(np.zeros(16), 0)


class TestApplyFrequencyResponse:
    def test_flat_response_is_identity(self):
        signal = white_noise(0.1, FS, rng=np.random.default_rng(0))
        out = apply_frequency_response(
            signal, FS, np.array([10.0, 24_000.0]), np.array([1.0, 1.0])
        )
        np.testing.assert_allclose(out, signal, atol=1e-9)

    def test_notch_removes_band(self):
        signal = tone(1000.0, 0.2, FS) + tone(5000.0, 0.2, FS)
        response_f = np.array([10.0, 900.0, 1000.0, 1100.0, 24_000.0])
        response_g = np.array([1.0, 1.0, 0.0, 1.0, 1.0])
        out = apply_frequency_response(signal, FS, response_f, response_g)
        assert band_energy_ratio(out, FS, 950.0, 1050.0) < 0.02
        assert band_energy_ratio(out, FS, 4900.0, 5100.0) > 0.5

    def test_rejects_unsorted_freqs(self):
        with pytest.raises(SignalError):
            apply_frequency_response(
                np.ones(32), FS, np.array([100.0, 50.0]), np.array([1.0, 1.0])
            )

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(SignalError):
            apply_frequency_response(
                np.ones(32), FS, np.array([100.0, 200.0]), np.array([1.0])
            )


class TestBandEnergy:
    def test_tone_energy_in_its_band(self):
        signal = tone(2000.0, 0.2, FS)
        assert band_energy_ratio(signal, FS, 1900.0, 2100.0) > 0.95

    def test_total_energy_is_one(self):
        signal = white_noise(0.2, FS, rng=np.random.default_rng(1))
        assert band_energy_ratio(signal, FS, 0.0, FS / 2) == pytest.approx(1.0)

    def test_rejects_invalid_band(self):
        with pytest.raises(SignalError):
            band_energy_ratio(np.ones(64), FS, 100.0, 50.0)

    def test_rejects_zero_signal(self):
        with pytest.raises(SignalError):
            band_energy_ratio(np.zeros(64), FS, 0.0, 1000.0)
