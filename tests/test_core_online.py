"""Tests for online (incremental) sensor fusion."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.fusion import DiffractionAwareSensorFusion
from repro.core.online import OnlineFusion


def _feed_session(online: OnlineFusion, session, fusion_helper):
    """Push a session's probes through the online estimator in order."""
    alphas = fusion_helper.imu_angles(session)
    statuses = []
    for probe, alpha in zip(session.probes, alphas):
        statuses.append(
            online.add_probe(probe.left, probe.right, float(alpha), probe.time)
        )
    return statuses


@pytest.fixture(scope="module")
def helper():
    return DiffractionAwareSensorFusion()


@pytest.fixture(scope="module")
def fed(small_session, helper):
    online = OnlineFusion(
        fs=small_session.fs, probe_signal=small_session.probe_signal
    )
    statuses = _feed_session(online, small_session, helper)
    return online, statuses


class TestIncrementalBehaviour:
    def test_no_estimate_before_min_probes(self, fed):
        _, statuses = fed
        early = statuses[5]  # below the default min_probes of 10
        assert early.head is None
        assert not early.ready

    def test_estimate_appears_after_min_probes(self, fed):
        _, statuses = fed
        assert statuses[-1].head is not None

    def test_coverage_grows_monotonically(self, fed):
        _, statuses = fed
        coverage = [status.coverage_deg for status in statuses]
        assert all(b >= a for a, b in zip(coverage, coverage[1:]))

    def test_becomes_ready_during_sweep(self, fed):
        _, statuses = fed
        assert statuses[-1].ready
        first_ready = next(i for i, s in enumerate(statuses) if s.ready)
        # Ready before the very end: the app can tell the user to stop.
        assert first_ready < len(statuses) - 1

    def test_running_head_plausible(self, fed):
        online, _ = fed
        status = online.status()
        for value in status.head_parameters:
            assert 0.06 < value < 0.15


class TestFinalize:
    def test_finalize_matches_batch(self, small_session, helper, fed):
        online, _ = fed
        final = online.finalize()
        batch = helper.run(small_session)
        # Same data -> same solver family: the answers agree closely.
        np.testing.assert_allclose(
            final.head.parameters, batch.head.parameters, atol=0.01
        )
        truth = small_session.truth.probe_angles_deg()
        final_err = np.median(np.abs(final.fused_angles_deg - truth))
        batch_err = np.median(np.abs(batch.fused_angles_deg - truth))
        assert final_err < batch_err + 1.5

    def test_finalize_needs_probes(self):
        online = OnlineFusion()
        with pytest.raises(SignalError):
            online.finalize()


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(SignalError):
            OnlineFusion(refit_every=0)
        with pytest.raises(SignalError):
            OnlineFusion(min_probes=2)
