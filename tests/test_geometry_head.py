"""Tests for the two-half-ellipse head model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry

head_axes = st.floats(0.06, 0.15)


class TestConstruction:
    def test_average_head_parameters(self, average_head):
        a, b, c = average_head.parameters
        assert a == pytest.approx(0.0875)
        assert b == pytest.approx(0.110)
        assert c == pytest.approx(0.095)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 0.5, float("nan"), float("inf")])
    def test_rejects_bad_axes(self, bad):
        with pytest.raises(GeometryError):
            HeadGeometry(a=bad, b=0.11, c=0.095)

    @pytest.mark.parametrize("n", [0, 7, 15, 18])
    def test_rejects_bad_boundary_count(self, n):
        with pytest.raises(GeometryError):
            HeadGeometry(a=0.09, b=0.11, c=0.095, n_boundary=n)

    def test_with_parameters_keeps_resolution(self, average_head):
        other = average_head.with_parameters(0.09, 0.12, 0.10)
        assert other.n_boundary == average_head.n_boundary
        assert other.parameters == (0.09, 0.12, 0.10)


class TestEars:
    def test_ear_positions_on_x_axis(self, average_head):
        np.testing.assert_allclose(
            average_head.ear_position(Ear.LEFT), [average_head.a, 0.0]
        )
        np.testing.assert_allclose(
            average_head.ear_position(Ear.RIGHT), [-average_head.a, 0.0]
        )

    def test_ear_vertices_match_positions(self, average_head):
        for ear in Ear:
            vertex = average_head.boundary.points[average_head.ear_index(ear)]
            np.testing.assert_allclose(
                vertex, average_head.ear_position(ear), atol=1e-12
            )

    def test_ear_sign_and_opposite(self):
        assert Ear.LEFT.sign == 1
        assert Ear.RIGHT.sign == -1
        assert Ear.LEFT.opposite is Ear.RIGHT


class TestBoundary:
    def test_radius_at_cardinal_angles(self, average_head):
        assert average_head.radius_at(0.0) == pytest.approx(average_head.b)
        assert average_head.radius_at(90.0) == pytest.approx(average_head.a)
        assert average_head.radius_at(180.0) == pytest.approx(average_head.c)
        assert average_head.radius_at(270.0) == pytest.approx(average_head.a)

    def test_boundary_points_satisfy_ellipse_equation(self, average_head):
        pts = average_head.boundary.points
        front = pts[pts[:, 1] >= 0]
        level = (front[:, 0] / average_head.a) ** 2 + (front[:, 1] / average_head.b) ** 2
        np.testing.assert_allclose(level, 1.0, atol=1e-9)

    def test_perimeter_plausible(self, average_head):
        # Between the inscribed and circumscribed circles.
        r_min = min(average_head.parameters)
        r_max = max(average_head.parameters)
        perimeter = average_head.boundary.perimeter
        assert 2 * np.pi * r_min < perimeter < 2 * np.pi * r_max + 0.01

    def test_normals_are_outward_units(self, average_head):
        boundary = average_head.boundary
        lengths = np.linalg.norm(boundary.normals, axis=1)
        np.testing.assert_allclose(lengths, 1.0, atol=1e-12)
        outward = np.einsum("ij,ij->i", boundary.normals, boundary.points)
        assert np.all(outward > 0)

    def test_arc_between_directions_sum_to_perimeter(self, average_head):
        boundary = average_head.boundary
        i, j = 10, 300
        forward = boundary.arc_between(i, j, +1)
        backward = boundary.arc_between(i, j, -1)
        assert forward + backward == pytest.approx(boundary.perimeter)

    @given(psi=st.floats(0, 360))
    def test_boundary_point_radius_consistency(self, psi):
        head = HeadGeometry.average()
        point = head.boundary_point(psi)
        assert np.linalg.norm(point) == pytest.approx(
            float(head.radius_at(psi)), rel=1e-9
        )


class TestContains:
    def test_center_inside(self, average_head):
        assert average_head.contains(np.zeros(2))

    def test_far_point_outside(self, average_head):
        assert not average_head.contains(np.array([1.0, 1.0]))

    def test_boundary_not_strictly_inside(self, average_head):
        nose = average_head.boundary_point(0.0)
        assert not average_head.contains(nose * 1.0001)

    def test_margin_shrinks(self, average_head):
        just_inside = average_head.boundary_point(0.0) * 0.995
        assert average_head.contains(just_inside)
        assert not average_head.contains(just_inside, margin=0.02)

    @given(psi=st.floats(0, 360), scale=st.floats(0.1, 0.95))
    def test_scaled_boundary_points_inside(self, psi, scale):
        head = HeadGeometry.average()
        assert head.contains(head.boundary_point(psi) * scale)
