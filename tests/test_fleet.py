"""Fleet-evaluation tier tests: sketches, drift classes, populations, CLI.

The load-bearing properties, in suite order: the quantile sketch is exactly
mergeable (order- and shard-invariant — the property future serve sharding
rests on), the drift detector classifies deviations the documented way, the
synthetic population and per-subject metrics are pure functions of their
seeds, a fleet run through the real :class:`BatchServer` is bit-identical
for any worker count, and the ``fleet`` CLI gates against the pinned
baseline: exit 0 clean, exit 1 with a classified diff table under the
canonical 10%-biased-population perturbation.
"""

from __future__ import annotations

import copy
import json
import os

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import cli
from repro.errors import ReproError
from repro.eval.drift import (
    DEFAULT_TOLERANCES,
    classify_drift,
    compare_digests,
    render_drift_table,
)
from repro.eval.fleet import (
    DEFAULT_STRATA,
    FleetReport,
    METRIC_EDGES,
    OVERALL,
    Stratum,
    compare_reports,
    generate_population,
    run_fleet,
    subject_metrics,
)
from repro.eval.sketch import QuantileSketch
from repro.serve.job import Job
from repro.testing.golden import golden_dir
from repro.testing.workloads import FAILING_FAULT


# -- quantile sketch ----------------------------------------------------------


class TestQuantileSketch:
    def test_exact_accumulators(self):
        sketch = QuantileSketch([0.0, 1.0, 2.0])
        sketch.add_many([0.5, 1.5, 1.5, 3.0])
        assert sketch.count == 4
        assert sketch.total == pytest.approx(6.5)
        assert sketch.low == 0.5
        assert sketch.high == 3.0
        assert sketch.mean == pytest.approx(6.5 / 4)

    def test_quantile_endpoints_are_exact(self):
        sketch = QuantileSketch(np.linspace(0, 10, 11))
        values = [0.3, 2.2, 5.5, 9.9]
        sketch.add_many(values)
        assert sketch.quantile(0.0) == 0.3
        assert sketch.quantile(1.0) == 9.9

    def test_quantiles_within_one_bin_of_exact(self):
        rng = np.random.default_rng(5)
        values = rng.normal(5.0, 1.5, 2000).clip(0.0, 10.0)
        edges = np.linspace(0.0, 10.0, 101)
        sketch = QuantileSketch(edges)
        sketch.add_many(values)
        bin_width = 0.1
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            assert sketch.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), abs=bin_width
            )

    def test_std_tracks_sample_std(self):
        rng = np.random.default_rng(6)
        values = rng.normal(5.0, 1.5, 2000).clip(0.0, 10.0)
        sketch = QuantileSketch(np.linspace(0.0, 10.0, 101))
        sketch.add_many(values)
        assert sketch.std() == pytest.approx(float(np.std(values)), abs=0.1)

    def test_empty_sketch_statistics(self):
        sketch = QuantileSketch([0.0, 1.0])
        assert np.isnan(sketch.mean)
        assert np.isnan(sketch.quantile(0.5))
        assert sketch.std() == 0.0
        record = sketch.to_dict()
        assert record["min"] is None and record["max"] is None

    def test_saturating_end_bins_keep_outliers(self):
        sketch = QuantileSketch([0.0, 1.0])
        sketch.add_many([-5.0, 0.5, 99.0])
        assert sketch.count == 3
        assert sketch.low == -5.0 and sketch.high == 99.0
        assert sketch.quantile(1.0) == 99.0

    def test_validation(self):
        with pytest.raises(ReproError):
            QuantileSketch([1.0])
        with pytest.raises(ReproError):
            QuantileSketch([1.0, 1.0])
        with pytest.raises(ReproError):
            QuantileSketch([0.0, float("inf")])
        sketch = QuantileSketch([0.0, 1.0])
        with pytest.raises(ReproError):
            sketch.add(float("nan"))
        with pytest.raises(ReproError):
            sketch.quantile(1.5)
        with pytest.raises(ReproError):
            sketch.merge(QuantileSketch([0.0, 2.0]))

    def test_dict_round_trip(self):
        sketch = QuantileSketch(np.linspace(0, 4, 9))
        sketch.add_many([0.1, 1.3, 2.7, 3.9, 2.0])
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert np.array_equal(clone.counts, sketch.counts)
        assert clone.count == sketch.count
        assert clone.total == sketch.total
        assert clone.low == sketch.low and clone.high == sketch.high
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=45.0, allow_nan=False),
            min_size=1,
            max_size=120,
        ),
        n_shards=st.integers(min_value=1, max_value=5),
        order_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_merge_is_order_and_shard_invariant(
        self, values, n_shards, order_seed
    ):
        # The property the harness needs to survive serve sharding: any
        # partition of the stream into shards, merged in any order, equals
        # the monolithic sketch — counts/min/max exactly, the float total
        # within accumulation tolerance.
        edges = METRIC_EDGES["error_deg"]
        mono = QuantileSketch(edges)
        mono.add_many(values)
        shards = [QuantileSketch(edges) for _ in range(n_shards)]
        for i, value in enumerate(values):
            shards[i % n_shards].add(value)
        merged = QuantileSketch(edges)
        for index in np.random.default_rng(order_seed).permutation(n_shards):
            merged.merge(shards[index])
        assert np.array_equal(merged.counts, mono.counts)
        assert merged.count == mono.count
        assert merged.low == mono.low and merged.high == mono.high
        assert merged.total == pytest.approx(mono.total, rel=1e-12, abs=1e-9)
        for q in (0.05, 0.5, 0.95):
            assert merged.quantile(q) == pytest.approx(
                mono.quantile(q), abs=1e-9
            )
        assert merged.std() == pytest.approx(mono.std(), abs=1e-9)


# -- drift classification -----------------------------------------------------


def _digest(**overrides):
    base = {
        "count": 100, "mean": 2.0, "std": 0.5,
        "p5": 1.0, "p25": 1.5, "p50": 2.0, "p75": 2.5, "p95": 3.0,
    }
    base.update(overrides)
    return base


class TestDriftClassification:
    def test_in_band_returns_none(self):
        assert classify_drift(_digest(), _digest(mean=2.1), "error_deg") is None

    def test_sign_consistent_mean_violation_is_shift(self):
        finding = classify_drift(
            _digest(), _digest(mean=2.4, p95=3.8), "error_deg"
        )
        assert finding.classification == "shift"
        assert set(finding.violations) == {"mean", "p95"}

    def test_std_without_mean_is_spread(self):
        finding = classify_drift(
            _digest(), _digest(std=0.9, p5=0.4, p95=3.6), "error_deg"
        )
        assert finding.classification == "spread"

    def test_extreme_quantiles_only_is_tail(self):
        finding = classify_drift(_digest(), _digest(p95=3.8), "error_deg")
        assert finding.classification == "tail"

    def test_interior_quantile_only_is_mixed(self):
        finding = classify_drift(_digest(), _digest(p25=2.3), "error_deg")
        assert finding.classification == "mixed"

    def test_unknown_metric_has_no_tolerance_hence_no_finding(self):
        assert (
            classify_drift(_digest(), _digest(mean=99.0), "no_such_metric")
            is None
        )

    def test_compare_digests_flags_structural_mismatches(self):
        expected = {"clean": {"error_deg": _digest(), "confidence": _digest()}}
        actual = {
            "clean": {"error_deg": _digest()},
            "extra_stratum": {"error_deg": _digest()},
        }
        violations, findings = compare_digests(expected, actual)
        assert findings == []
        assert any("confidence" in v and "missing" in v for v in violations)
        assert any("extra_stratum" in v for v in violations)

    def test_compare_digests_flags_count_mismatch(self):
        violations, _ = compare_digests(
            {"clean": {"error_deg": _digest()}},
            {"clean": {"error_deg": _digest(count=99)}},
        )
        assert any("count" in v for v in violations)

    def test_render_drift_table(self):
        finding = classify_drift(
            _digest(), _digest(mean=2.4, p95=3.8), "error_deg",
            stratum="clean",
        )
        table = render_drift_table([finding])
        assert "stratum" in table and "clean" in table
        assert "shift" in table and "error_deg" in table
        assert render_drift_table([]) == "no drift findings"

    def test_default_tolerances_cover_every_fleet_metric(self):
        for metric in METRIC_EDGES:
            assert metric in DEFAULT_TOLERANCES
        for rate in ("salvage_rate", "retry_rate", "failure_rate"):
            assert rate in DEFAULT_TOLERANCES


# -- population generation and the subject model ------------------------------


class TestPopulation:
    def test_generation_is_deterministic(self):
        a = generate_population(300, 11)
        b = generate_population(300, 11)
        assert [job.spec_key() for job in a] == [job.spec_key() for job in b]

    def test_subject_seeds_are_distinct(self):
        jobs = generate_population(300, 11)
        seeds = {job.subject_seed for job in jobs}
        assert len(seeds) == 300

    def test_every_stratum_is_populated(self):
        jobs = generate_population(500, 11)
        strata = {job.params["stratum"] for job in jobs}
        assert strata == {s.name for s in DEFAULT_STRATA}

    def test_bias_marks_subpopulation_without_moving_strata(self):
        clean = generate_population(500, 11)
        biased = generate_population(
            500, 11, bias_fraction=0.1, head_bias_m=1e-3
        )
        # Same subjects in the same strata — only the bias tag differs.
        assert [j.params["stratum"] for j in clean] == [
            j.params["stratum"] for j in biased
        ]
        marked = [j for j in biased if "head_bias_m" in j.params]
        assert 0.05 * 500 < len(marked) < 0.15 * 500
        assert all(j.params["head_bias_m"] == 1e-3 for j in marked)
        assert not any("head_bias_m" in j.params for j in clean)

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_population(0, 1)
        with pytest.raises(ReproError):
            generate_population(10, 1, bias_fraction=1.5)
        with pytest.raises(ReproError):
            generate_population(10, 1, strata=[])
        with pytest.raises(ReproError):
            generate_population(
                10, 1, strata=[Stratum("a", 0.5), Stratum("a", 0.5)]
            )
        with pytest.raises(ReproError):
            generate_population(10, 1, strata=[Stratum(OVERALL, 1.0)])


class TestSubjectMetrics:
    SPEC = {
        "job_id": "j", "subject_seed": 1_700_123,
        "params": {"stratum": "clean"},
    }

    def test_pure_function_of_spec(self):
        assert subject_metrics(self.SPEC) == subject_metrics(dict(self.SPEC))

    def test_head_bias_shifts_error_additively(self):
        biased = dict(self.SPEC)
        biased["params"] = {"stratum": "clean", "head_bias_m": 1e-3}
        clean = subject_metrics(self.SPEC)
        shifted = subject_metrics(biased)
        # 1 mm at ~4 deg/mm — additive, outside the rng stream.
        assert shifted["error_deg"] - clean["error_deg"] == pytest.approx(
            4.0, abs=1e-6
        )
        assert shifted["confidence"] < clean["confidence"]

    def test_faulted_strata_degrade_on_average(self):
        def mean_error(fault, fault_args, stratum):
            return float(np.mean([
                subject_metrics({
                    "subject_seed": 1_700_000 + i, "fault": fault,
                    "fault_args": fault_args,
                    "params": {"stratum": stratum},
                })["error_deg"]
                for i in range(60)
            ]))

        clean = mean_error(None, {}, "clean")
        noisy = mean_error("mic_noise", {"std": 0.01}, "noisy_room")
        assert noisy > clean

    def test_metrics_within_sketch_ladders(self):
        for i in range(40):
            payload = subject_metrics({
                "subject_seed": 1_700_000 + i,
                "params": {"stratum": "clean"},
            })
            assert 0.0 <= payload["error_deg"] <= 45.0
            assert 0.0 <= payload["confidence"] <= 1.0
            assert payload["latency_ms"] > 0.0


class TestJobParams:
    def test_empty_params_keep_legacy_spec_key(self):
        job = Job(job_id="a", subject_seed=1)
        assert "params" not in job.spec_key()
        assert "params" not in job.to_dict()

    def test_params_distinguish_computations(self):
        plain = Job(job_id="a", subject_seed=1)
        tagged = Job(job_id="a", subject_seed=1, params={"stratum": "clean"})
        assert plain.spec_key() != tagged.spec_key()

    def test_params_round_trip_through_dict(self):
        job = Job(
            job_id="a", subject_seed=1,
            params={"stratum": "clean", "head_bias_m": 1e-3},
        )
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.spec_key() == job.spec_key()
        assert dict(clone.params) == dict(job.params)


# -- fleet runs through the serve layer ---------------------------------------


class TestFleetRun:
    def test_bit_identical_across_worker_counts(self):
        one, _ = run_fleet(200, 3, workers=1)
        two, _ = run_fleet(200, 3, workers=2)
        assert json.dumps(one.to_dict(), sort_keys=True) == json.dumps(
            two.to_dict(), sort_keys=True
        )

    def test_failed_subjects_feed_the_failure_rate(self):
        strata = (
            Stratum("clean", 0.5),
            Stratum("broken", 0.5, FAILING_FAULT),
        )
        report, _ = run_fleet(60, 3, workers=1, strata=strata)
        assert report.statuses.get("failed", 0) > 0
        digest = report.digest()
        assert digest["broken"]["failure_rate"]["mean"] == 1.0
        assert digest["clean"]["failure_rate"]["mean"] == 0.0
        # Failed subjects contribute no metric samples.
        assert "error_deg" not in digest["broken"]

    def test_report_round_trips_and_digest_survives(self):
        report, _ = run_fleet(120, 5, workers=1)
        clone = FleetReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.digest() == report.digest()
        assert OVERALL in report.digest()

    def test_report_save_is_canonical(self, tmp_path):
        report, _ = run_fleet(60, 5, workers=1)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        report.save(a)
        report.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_overall_row_equals_merged_strata(self):
        report, _ = run_fleet(200, 3, workers=1)
        digest = report.digest()
        total = sum(
            digest[s]["error_deg"]["count"]
            for s in digest
            if s != OVERALL
        )
        assert digest[OVERALL]["error_deg"]["count"] == total


class TestBaselineCompare:
    def test_report_matches_itself(self):
        report, _ = run_fleet(120, 5, workers=1)
        violations, findings = compare_reports(
            report.to_dict(), report.to_dict()
        )
        assert violations == [] and findings == []

    def test_config_mismatch_is_a_violation(self):
        report, _ = run_fleet(60, 5, workers=1)
        other = copy.deepcopy(report.to_dict())
        other["config"]["subjects"] = 61
        violations, _ = compare_reports(report.to_dict(), other)
        assert any(v.startswith("config/subjects") for v in violations)

    def test_bias_knobs_are_not_config_drift(self):
        report, _ = run_fleet(60, 5, workers=1)
        perturbed = copy.deepcopy(report.to_dict())
        perturbed["config"]["bias_fraction"] = 0.1
        perturbed["config"]["head_bias_m"] = 1e-3
        violations, _ = compare_reports(report.to_dict(), perturbed)
        assert not any(v.startswith("config/") for v in violations)


# -- end to end through the CLI ----------------------------------------------


BASELINE = os.path.join(golden_dir(), "fleet_baseline.json")


@pytest.fixture(scope="module")
def cli_report(tmp_path_factory):
    """One CLI fleet run at the pinned baseline configuration."""
    path = tmp_path_factory.mktemp("fleet") / "report.json"
    code = cli.main([
        "fleet", "run", "--subjects", "1000", "--seed", "7",
        "--output", str(path),
    ])
    assert code == 0
    return path


class TestFleetCli:
    def test_runs_are_bit_identical(self, cli_report, tmp_path):
        # The acceptance criterion verbatim: same config, different worker
        # count, byte-equal report files.
        again = tmp_path / "again.json"
        code = cli.main([
            "fleet", "run", "--subjects", "1000", "--seed", "7",
            "--workers", "1", "--output", str(again),
        ])
        assert code == 0
        assert again.read_bytes() == cli_report.read_bytes()

    def test_compare_against_pinned_baseline_is_clean(self, cli_report):
        assert os.path.exists(BASELINE), (
            f"missing pinned baseline {BASELINE} — run `python -m repro.cli "
            f"fleet regen-baseline`"
        )
        code = cli.main(["fleet", "compare", "--report", str(cli_report)])
        assert code == 0

    def test_biased_population_trips_the_detector(self, capsys):
        # The canonical fleet regression: +1 mm head half-width in 10% of
        # subjects must exit non-zero with a rendered diff table and a
        # `shift` classification on localization error.
        code = cli.main([
            "fleet", "compare", "--subjects", "1000", "--seed", "7",
            "--bias-fraction", "0.1", "--head-bias-mm", "1.0",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "shift" in err and "error_deg" in err
        assert "stratum" in err and "baseline" in err  # the diff table

    def test_shift_classification_via_api(self):
        baseline = json.load(open(BASELINE))
        biased, _ = run_fleet(
            1000, 7, workers=2, bias_fraction=0.1, head_bias_m=1e-3
        )
        violations, findings = compare_reports(baseline, biased.to_dict())
        assert violations
        by_key = {(f.stratum, f.metric): f.classification for f in findings}
        assert by_key[("clean", "error_deg")] == "shift"
        assert by_key[(OVERALL, "error_deg")] == "shift"

    def test_unusable_inputs_exit_2(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert cli.main([
            "fleet", "compare", "--report", str(missing),
        ]) == 2
        assert cli.main([
            "fleet", "run", "--subjects", "0", "--output",
            str(tmp_path / "r.json"),
        ]) == 2

    def test_regen_baseline_round_trips(self, tmp_path, cli_report):
        pinned = tmp_path / "baseline.json"
        code = cli.main([
            "fleet", "regen-baseline", "--subjects", "1000", "--seed", "7",
            "--output", str(pinned),
        ])
        assert code == 0
        assert pinned.read_bytes() == cli_report.read_bytes()
