"""Tests for Section 4.6 compensation and gesture checks."""

import numpy as np
import pytest

from repro.errors import CalibrationError, SignalError
from repro.core.compensation import (
    check_gesture_quality,
    compensate_recording,
    estimate_system_response,
    remove_room_reflections,
)
from repro.core.fusion import FusionResult
from repro.geometry.head import HeadGeometry
from repro.signals.channel import first_tap_index
from repro.signals.delays import add_tap
from repro.signals.spectrum import amplitude_spectrum
from repro.signals.waveforms import chirp
from repro.simulation.hardware import SpeakerMicResponse

FS = 48_000


class TestSystemResponse:
    def test_measures_known_chain(self):
        hardware = SpeakerMicResponse.typical(np.random.default_rng(0))
        probe = chirp(30.0, 21_000.0, 0.5, FS)
        recording = hardware.apply(probe, FS)
        freqs, gains = estimate_system_response(recording, probe, FS)
        for f_test in (200.0, 1000.0, 5000.0):
            measured = np.interp(f_test, freqs, gains)
            true = float(hardware.gain_at(f_test))
            assert measured == pytest.approx(true, rel=0.3)

    def test_compensation_flattens_chain(self):
        hardware = SpeakerMicResponse.typical(np.random.default_rng(1))
        probe = chirp(30.0, 21_000.0, 0.5, FS)
        calibration = hardware.apply(probe, FS)
        freqs, gains = estimate_system_response(calibration, probe, FS)

        # A wideband test signal that actually exercises the colored ends of
        # the chain (LF instability and HF rolloff).
        test_signal = chirp(60.0, 20_000.0, 0.3, FS)
        colored = hardware.apply(test_signal, FS)
        flattened = compensate_recording(colored, FS, freqs, gains)
        grid, amps_orig = amplitude_spectrum(test_signal, FS)
        _, amps_flat = amplitude_spectrum(flattened, FS)
        _, amps_colored = amplitude_spectrum(colored, FS)
        band = (grid >= 80.0) & (grid <= 18_000.0) & (amps_orig > 0.05 * amps_orig.max())

        def db_error(amps):
            return np.mean(np.abs(20 * np.log10(amps[band] / amps_orig[band])))

        assert db_error(amps_flat) < db_error(amps_colored) / 2

    def test_zero_response_raises(self):
        with pytest.raises(SignalError):
            compensate_recording(
                np.ones(64), FS, np.array([10.0, 100.0]), np.array([0.0, 0.0])
            )


class TestRoomRemoval:
    def test_keeps_head_taps_drops_room(self):
        channel = np.zeros(1000)
        add_tap(channel, 60.0, 1.0)  # first tap
        add_tap(channel, 100.0, 0.5)  # pinna echo (~0.8 ms later)
        add_tap(channel, 500.0, 0.4)  # room echo (~9 ms later)
        cleaned = remove_room_reflections(channel, FS)
        assert abs(cleaned[100]) > 0.4
        assert np.all(np.abs(cleaned[400:]) < 1e-9)

    def test_first_tap_untouched(self):
        channel = np.zeros(1000)
        add_tap(channel, 60.0, 1.0)
        cleaned = remove_room_reflections(channel, FS)
        assert first_tap_index(cleaned) == 60


def _fusion_result(radius: float, residual: float, solved_fraction: float = 1.0):
    n = 10
    solved = np.arange(n) < int(solved_fraction * n)
    return FusionResult(
        head=HeadGeometry.average(),
        t_left=np.full(n, 1e-3),
        t_right=np.full(n, 1.2e-3),
        imu_angles_deg=np.linspace(0, 180, n),
        acoustic_angles_deg=np.linspace(0, 180, n),
        fused_angles_deg=np.linspace(0, 180, n),
        radii_m=np.full(n, radius),
        residual_deg=residual,
        solved=solved,
    )


class TestGestureCheck:
    def test_good_gesture_passes(self):
        check_gesture_quality(_fusion_result(radius=0.45, residual=3.0))

    def test_arm_drop_rejected(self):
        with pytest.raises(CalibrationError, match="too\\s+close"):
            check_gesture_quality(_fusion_result(radius=0.12, residual=3.0))

    def test_large_residual_rejected(self):
        with pytest.raises(CalibrationError, match="residual"):
            check_gesture_quality(_fusion_result(radius=0.45, residual=30.0))

    def test_unsolved_probes_rejected(self):
        with pytest.raises(CalibrationError, match="probes localized"):
            check_gesture_quality(
                _fusion_result(radius=0.45, residual=3.0, solved_fraction=0.2)
            )
