"""Shared fixtures for the test suite.

Expensive objects (sessions, personalization results) are session-scoped so
the whole suite pays for them once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.geometry.head import HeadGeometry
from repro.geometry.trajectory import circular_trajectory
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession

# Pinned hypothesis profiles: property tests must be reproducible in CI and
# cheap by default.  `derandomize=True` fixes the example sequence (a failure
# reproduces from the seed printed by hypothesis), `deadline=None` because
# the serve property tests spawn worker pools whose first example pays the
# pool start-up cost.  Select with HYPOTHESIS_PROFILE=thorough for a longer
# local soak.
settings.register_profile(
    "default",
    derandomize=True,
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    derandomize=False,
    deadline=None,
    max_examples=100,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def average_head() -> HeadGeometry:
    return HeadGeometry.average()


@pytest.fixture(scope="session")
def subject() -> VirtualSubject:
    return VirtualSubject.random(42, name="test-subject")


@pytest.fixture(scope="session")
def other_subject() -> VirtualSubject:
    return VirtualSubject.random(43, name="other-subject")


@pytest.fixture(scope="session")
def small_session(subject):
    """A compact but realistic capture: 16 s sweep, ~32 probes at 48 kHz."""
    return MeasurementSession(
        subject,
        seed=7,
        probe_interval_s=0.5,
        trajectory=None,
    ).run()


@pytest.fixture(scope="session")
def clean_session(subject):
    """An idealized capture: perfect circle, no room echo, low noise."""
    return MeasurementSession(
        subject,
        seed=8,
        probe_interval_s=0.5,
        trajectory=circular_trajectory(radius=0.45, duration_s=15.0),
        room=None,
        noise_std=0.001,
    ).run()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
