"""Tests for the observability subsystem (repro.obs) and its pipeline hooks."""

import json
import time

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import trace as obs_trace
from repro.simulation.session import MeasurementSession
from repro.core.pipeline import Uniq, UniqConfig

GRID = tuple(np.arange(0.0, 180.0 + 1e-9, 15.0))


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with tracing off and an empty stack."""
    obs_trace.set_enabled(False)
    obs_trace.clear()
    yield
    obs_trace.set_enabled(False)
    obs_trace.clear()


class TestSpanTracer:
    def test_nested_spans_build_a_tree(self):
        with obs_trace.capturing():
            with obs_trace.span("root", probes=3) as root:
                with obs_trace.span("child.a"):
                    with obs_trace.span("grandchild"):
                        pass
                with obs_trace.span("child.b") as b:
                    b.set("angle", 42.0)
        assert obs_trace.last_trace() is root
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attributes == {"probes": 3}
        assert root.children[1].attributes == {"angle": 42.0}

    def test_durations_are_recorded(self):
        with obs_trace.capturing():
            with obs_trace.span("timed") as sp:
                time.sleep(0.005)
        assert sp.duration_s is not None
        assert sp.duration_s >= 0.004

    def test_disabled_returns_shared_noop(self):
        assert not obs_trace.is_enabled()
        first = obs_trace.span("a", heavy=1)
        second = obs_trace.span("b")
        assert first is second is obs_trace.NULL_SPAN
        with first as handle:
            handle.set("key", "value")  # must swallow silently
            handle.update(more=2)
        assert obs_trace.last_trace() is None

    def test_exception_marks_span_and_propagates(self):
        with obs_trace.capturing():
            with pytest.raises(ValueError):
                with obs_trace.span("boom"):
                    raise ValueError("nope")
        root = obs_trace.last_trace()
        assert root.name == "boom"
        assert root.attributes["error"] == "ValueError"
        assert root.duration_s is not None

    def test_capturing_restores_previous_state(self):
        assert not obs_trace.is_enabled()
        with obs_trace.capturing():
            assert obs_trace.is_enabled()
            with obs_trace.capturing():
                assert obs_trace.is_enabled()
            assert obs_trace.is_enabled()
        assert not obs_trace.is_enabled()

    def test_traced_decorator(self):
        @obs_trace.traced("custom.name")
        def work(x):
            return x * 2

        assert work(3) == 6  # disabled: plain call
        with obs_trace.capturing():
            assert work(4) == 8
        assert obs_trace.last_trace().name == "custom.name"

    def test_walk_visits_depth_first(self):
        with obs_trace.capturing():
            with obs_trace.span("r"):
                with obs_trace.span("a"):
                    with obs_trace.span("a1"):
                        pass
                with obs_trace.span("b"):
                    pass
        visited = [(depth, s.name) for depth, s in obs_trace.walk(obs_trace.last_trace())]
        assert visited == [(0, "r"), (1, "a"), (2, "a1"), (1, "b")]

    def test_disabled_overhead_is_negligible(self):
        """The acceptance bar is <2%; the span() fast path must be a flag check."""
        import sys

        if sys.gettrace() is not None:
            pytest.skip("micro-timing is meaningless under a line tracer "
                        "(coverage gate run)")
        def loop(n):
            total = 0.0
            for i in range(n):
                with obs_trace.span("hot"):
                    total += i * 0.5
            return total

        def bare(n):
            total = 0.0
            for i in range(n):
                total += i * 0.5
            return total

        n = 50_000
        bare(n), loop(n)  # warm up
        t0 = time.perf_counter()
        bare(n)
        t_bare = time.perf_counter() - t0
        t0 = time.perf_counter()
        loop(n)
        t_loop = time.perf_counter() - t0
        # Per-iteration cost of a disabled span must stay under a couple of
        # microseconds — generous enough to be timer-noise-proof in CI while
        # still catching an accidentally-enabled slow path.
        assert (t_loop - t_bare) / n < 2e-6


class TestMetrics:
    def test_counter_monotonic(self):
        c = obs_metrics.Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_bucketing(self):
        h = obs_metrics.Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.2, 1.0, 3.0, 9.9, 50.0):
            h.observe(value)
        # 0.2 and 1.0 land in <=1.0; 3.0 in <=5.0; 9.9 in <=10.0; 50 overflows.
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(64.1)
        h.observe(float("nan"))
        h.observe(float("inf"))
        assert h.non_finite == 2
        assert h.count == 5  # non-finite never pollute count/sum

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            obs_metrics.Histogram("bad", buckets=(5.0, 1.0))

    def test_registry_snapshot_reset_roundtrip(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("runs").inc(3)
        reg.gauge("residual").set(7.25)
        reg.histogram("err", buckets=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["runs"] == 3
        assert snap["gauges"]["residual"] == 7.25
        assert snap["histograms"]["err"]["counts"] == [0, 1, 0]
        # JSON round-trip: exact same structure back.
        assert json.loads(reg.to_json()) == snap
        reg.reset()
        zeroed = reg.snapshot()
        assert zeroed["counters"]["runs"] == 0
        assert zeroed["gauges"]["residual"] == 0
        assert zeroed["histograms"]["err"]["counts"] == [0, 0, 0]
        # Registrations survive reset: same object, fresh numbers.
        assert reg.counter("runs").value == 0

    def test_get_or_create_is_stable(self):
        reg = obs_metrics.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")


class TestReportRendering:
    def _trace(self):
        with obs_trace.capturing():
            with obs_trace.span("root", n=2):
                with obs_trace.span("stage.one"):
                    pass
                with obs_trace.span("stage.two", share=0.5):
                    pass
        return obs_trace.last_trace()

    def test_render_span_tree(self):
        text = obs_report.render_span_tree(self._trace())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert any("stage.one" in line and "├─" in line for line in lines)
        assert any("stage.two" in line and "└─" in line for line in lines)
        assert "%" in lines[1]

    def test_trace_json_roundtrip(self):
        root = self._trace()
        data = json.loads(obs_report.trace_to_json(root))
        assert data["name"] == "root"
        assert [c["name"] for c in data["children"]] == ["stage.one", "stage.two"]
        assert data["attributes"] == {"n": 2}
        assert data["duration_s"] == pytest.approx(root.duration_s)

    def test_stage_durations_sum_repeats(self):
        with obs_trace.capturing():
            with obs_trace.span("root"):
                for _ in range(3):
                    with obs_trace.span("rep"):
                        pass
        totals = obs_report.stage_durations(obs_trace.last_trace())
        assert set(totals) == {"root", "rep"}
        assert totals["rep"] <= totals["root"]

    def test_render_metrics(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("pipeline.runs").inc(2)
        reg.gauge("residual_deg").set(5.5)
        reg.histogram("err").observe(3.0)
        text = obs_report.render_metrics(reg.snapshot())
        assert "pipeline.runs" in text and "counter" in text
        assert "residual_deg" in text and "gauge" in text
        assert "histogram count=1" in text
        assert obs_report.render_metrics({}) == "(no metrics recorded)"


class TestPipelineInstrumentation:
    @pytest.fixture(scope="class")
    def traced_result(self, small_session):
        with obs_trace.capturing():
            return Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(small_session)

    def test_personalize_root_span(self, traced_result):
        root = traced_result.trace
        assert root is not None
        assert root.name == "uniq.personalize"
        assert root.duration_s is not None and root.duration_s > 0
        child_names = {c.name for c in root.children}
        assert {
            "fusion.run",
            "uniq.gesture_check",
            "interpolation.extract_measurements",
            "interpolation.build_grid",
            "near_far.convert",
        } <= child_names
        assert len(root.children) >= 4
        assert all(c.duration_s is not None and c.duration_s > 0
                   for c in root.children)

    def test_fusion_span_has_stage_children(self, traced_result):
        fusion = next(c for c in traced_result.trace.children if c.name == "fusion.run")
        stages = {c.name for c in fusion.children}
        assert {"fusion.extract_delays", "fusion.imu_angles",
                "fusion.optimize", "fusion.final_localize"} <= stages
        optimize = next(c for c in fusion.children if c.name == "fusion.optimize")
        assert optimize.attributes["iterations"] > 0
        assert optimize.attributes["cost_evaluations"] > 0

    def test_pipeline_counters_accumulate(self, traced_result):
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["uniq.personalize.runs"] >= 1
        assert snap["counters"]["uniq.personalize.completed"] >= 1
        assert snap["counters"]["fusion.iterations"] > 0
        assert snap["counters"]["fusion.cost_evaluations"] > 0

    def test_untraced_run_attaches_no_trace(self, traced_result, small_session):
        del traced_result  # ordering only: class fixture ran under capturing
        assert not obs_trace.is_enabled()
        result = Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(small_session)
        assert result.trace is None


class TestGestureRejectionCounter:
    def test_rejection_raises_and_counts(self, subject):
        """A degraded sweep must both raise and increment the reject counter."""
        from repro.geometry.trajectory import hand_motion_trajectory

        rng = np.random.default_rng(31)
        trajectory = hand_motion_trajectory(
            rng,
            radius_mean=0.17,
            radius_wobble=0.02,
            arm_drop_probability=1.0,
            arm_drop_depth=0.4,
        )
        session = MeasurementSession(
            subject, seed=31, trajectory=trajectory, probe_interval_s=0.6
        ).run()
        before = obs_metrics.counter("uniq.gesture_rejections").value
        with pytest.raises(CalibrationError):
            Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(session)
        after = obs_metrics.counter("uniq.gesture_rejections").value
        # Every rung of the deconvolution ladder that still fails the
        # gesture check counts one rejection, so a hopeless capture
        # records at least one (and at most one per rung tried).
        assert after >= before + 1
