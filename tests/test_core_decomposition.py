"""Tests for the Attempt-2 blind decoupling solver."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.decomposition import (
    blind_decoupling_attempt,
    decoupling_consistency,
)
from repro.signals.delays import add_tap


def _bilinear_channel(
    amplitudes, delays, kernel, length: int = 128
) -> np.ndarray:
    train = np.zeros(length)
    for amplitude, delay in zip(amplitudes, delays):
        add_tap(train, delay, amplitude, half_width=8)
    return np.convolve(train, kernel)[:length]


@pytest.fixture()
def synthetic():
    rng = np.random.default_rng(0)
    kernel = np.zeros(24)
    kernel[0] = 1.0
    kernel[5] = -0.6
    kernel[11] = 0.4
    amplitudes = np.array([1.0, 0.5])
    delays = np.array([20.0, 27.0])
    channel = _bilinear_channel(amplitudes, delays, kernel)
    return channel, delays, kernel


class TestSolver:
    def test_fits_bilinear_data(self, synthetic):
        channel, delays, _ = synthetic
        result = blind_decoupling_attempt(
            channel, delays, kernel_length=24, rng=np.random.default_rng(1)
        )
        assert result.reconstruction_error < 0.05

    def test_scale_ambiguity_normalized(self, synthetic):
        channel, delays, _ = synthetic
        result = blind_decoupling_attempt(
            channel, delays, kernel_length=24, rng=np.random.default_rng(2)
        )
        assert np.linalg.norm(result.pinna_kernel) == pytest.approx(1.0)

    def test_single_ray_recovers_kernel_shape(self):
        """With ONE ray the factorization is unique up to scale/shift."""
        rng = np.random.default_rng(3)
        kernel = rng.standard_normal(24)
        channel = _bilinear_channel(np.array([1.0]), np.array([20.0]), kernel)
        result = blind_decoupling_attempt(
            channel, np.array([20.0]), kernel_length=24,
            rng=np.random.default_rng(4),
        )
        from repro.signals.correlation import max_normalized_correlation

        assert result.reconstruction_error < 0.05
        # Up to the inherent sign ambiguity (A, h) ~ (-A, -h).
        similarity = max(
            max_normalized_correlation(result.pinna_kernel, kernel),
            max_normalized_correlation(-result.pinna_kernel, kernel),
        )
        assert similarity > 0.95

    def test_validation(self, synthetic):
        channel, delays, _ = synthetic
        with pytest.raises(SignalError):
            blind_decoupling_attempt(np.zeros(10), delays, kernel_length=24)
        with pytest.raises(SignalError):
            blind_decoupling_attempt(channel, np.array([-1.0]))
        with pytest.raises(SignalError):
            blind_decoupling_attempt(np.zeros(128), delays)


class TestConsistencyStudy:
    def test_multi_ray_factorization_not_unique(self, synthetic):
        """The paper's negative result: restarts disagree with many rays."""
        channel, _, _ = synthetic
        # Offer the solver an overcomplete ray set.
        delays = np.array([18.0, 20.0, 23.0, 27.0, 31.0])
        study = decoupling_consistency(channel, delays, n_restarts=4)
        assert study.best_error < 0.1  # the model fits...
        assert study.kernel_agreement < 0.9  # ...but not uniquely

    def test_study_shapes(self, synthetic):
        channel, delays, _ = synthetic
        study = decoupling_consistency(channel, delays, n_restarts=3)
        assert len(study.results) == 3
        assert study.best_error <= study.mean_error
