"""Durability tests: journal, retries, watchdog, kill-resume bit-identity.

The contract under test (docs/ROBUSTNESS.md, "Durability & resume"):

- a batch killed at any point resumes from its write-ahead journal and
  produces results bit-identical (deterministic fields, table digests) to
  an uninterrupted run, with **zero completed jobs re-executed**;
- corrupt or truncated journal lines are detected by checksum and
  quarantined, never crash-looped;
- permanent failures dead-letter exactly once with zero retries, while
  process-level faults (``worker_kill``, ``worker_hang``) are retried with
  backoff and the batch completes;
- a clean batch with journaling enabled is bit-identical to one with
  journaling disabled.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError, WorkerDiedError
from repro.ioutil import atomic_write, atomic_write_json
from repro.obs import metrics as obs_metrics
from repro.serve import (
    BatchServer,
    Job,
    Journal,
    RetryPolicy,
    execute_job,
    replay_journal,
)
from repro.testing.workloads import digest_runner, sleepy_runner

#: The golden-case pipeline configuration, shared with tests/test_serve.py
#: so real-runner tests keep the delay-map caches warm across the suite.
FAST = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}

#: Fast retry policy for tests: real backoff shape, millisecond scale.
QUICK_RETRY = dict(max_transient_retries=3, base_backoff_s=0.01, max_backoff_s=0.05)


def _det(report):
    return [r.deterministic() for r in report.results]


def _counter(name: str) -> float:
    return obs_metrics.counter(name).value


# ---------------------------------------------------------------------------
# atomic_write
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json({"a": 1}, target)
        assert json.loads(target.read_text()) == {"a": 1}
        atomic_write_json({"a": 2}, target)
        assert json.loads(target.read_text()) == {"a": 2}

    def test_exception_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "original"
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_write(tmp_path / "x", "r"):
                pass


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify("crashed", WorkerDiedError("x")) == "transient"
        assert policy.classify("timeout") == "transient"
        assert policy.classify("error", ReproError("bad spec")) == "permanent"

    def test_permanent_failures_never_retry(self):
        policy = RetryPolicy(max_transient_retries=5)
        assert not policy.should_retry("error", attempts=1)

    def test_transient_retries_capped(self):
        policy = RetryPolicy(max_transient_retries=2)
        assert policy.should_retry("crashed", attempts=1)
        assert policy.should_retry("crashed", attempts=2)
        assert not policy.should_retry("crashed", attempts=3)

    def test_timeouts_retry_only_when_opted_in(self):
        assert not RetryPolicy().should_retry("timeout", attempts=1)
        assert RetryPolicy(retry_timeouts=True).should_retry("timeout", attempts=1)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.35,
            jitter_frac=0.25, seed=7,
        )
        again = RetryPolicy(
            base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.35,
            jitter_frac=0.25, seed=7,
        )
        for attempt in (1, 2, 3, 4):
            delay = policy.backoff_s(attempt, "job-key")
            assert delay == again.backoff_s(attempt, "job-key")
            base = min(0.1 * 2.0 ** (attempt - 1), 0.35)
            assert base <= delay <= base * 1.25
        # Different tokens must decorrelate (thundering-herd protection).
        assert policy.backoff_s(1, "a") != policy.backoff_s(1, "b")

    def test_namespace_decorrelates_without_moving_the_default(self):
        import hashlib

        kw = dict(base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.35,
                  jitter_frac=0.25, seed=7)
        plain = RetryPolicy(**kw)
        # The empty namespace must reproduce the historical digest input
        # byte for byte: existing schedules do not move.
        digest = hashlib.sha256(b"7:job-key:2").digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        assert plain.backoff_s(2, "job-key") == 0.2 * (1.0 + 0.25 * unit)
        # Shard namespaces each get their own jitter sequence, inside the
        # same envelope.
        schedules = {}
        for namespace in ("", "shard0", "shard1"):
            policy = RetryPolicy(**kw, namespace=namespace)
            schedule = tuple(
                policy.backoff_s(attempt, "job-key") for attempt in (1, 2, 3)
            )
            for attempt, delay in zip((1, 2, 3), schedule):
                base = min(0.1 * 2.0 ** (attempt - 1), 0.35)
                assert base <= delay <= base * 1.25
            schedules[namespace] = schedule
        assert len(set(schedules.values())) == 3

    def test_batch_budget_exhausts(self):
        policy = RetryPolicy(max_transient_retries=10, max_total_retries=2)
        assert policy.should_retry("crashed", attempts=1)
        assert policy.should_retry("crashed", attempts=1)
        assert not policy.should_retry("crashed", attempts=1)
        assert policy.retries_spent == 2


# ---------------------------------------------------------------------------
# Journal format, corruption, compaction
# ---------------------------------------------------------------------------


def _spec(i: int) -> str:
    return json.dumps({"k": i})


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False) as journal:
            journal.append("submitted", spec_key=_spec(1), job_id="a")
            journal.append("started", spec_key=_spec(1))
            journal.append(
                "done", spec_key=_spec(1), job_id="a", status="ok",
                payload={"x": 1.5},
            )
        state = replay_journal(path)
        assert state.done[_spec(1)]["payload"] == {"x": 1.5}
        assert state.submitted == {_spec(1): ["a"]}
        assert state.pending() == []
        assert state.corrupt == []

    def test_rejects_unknown_event(self, tmp_path):
        with Journal(tmp_path / "j", fsync=False) as journal:
            with pytest.raises(ReproError, match="unknown journal event"):
                journal.append("exploded", spec_key=_spec(1))

    def test_corrupt_line_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False) as journal:
            journal.append("submitted", spec_key=_spec(1), job_id="a")
            journal.append(
                "done", spec_key=_spec(1), job_id="a", status="ok", payload={}
            )
        lines = path.read_text().splitlines()
        # Flip payload content without updating the checksum.
        lines[1] = lines[1].replace('"status":"ok"', '"status":"no"')
        path.write_text("\n".join(lines) + "\n")
        state = replay_journal(path)
        assert len(state.corrupt) == 1
        assert _spec(1) not in state.done  # tampered record not trusted
        assert state.pending() == [_spec(1)]  # ... so the job re-runs
        quarantine = (str(path) + ".quarantine")
        assert os.path.exists(quarantine)
        assert '"status":"no"' in open(quarantine).read()

    def test_truncated_final_line_quarantined(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False) as journal:
            journal.append("submitted", spec_key=_spec(1), job_id="a")
            journal.append(
                "done", spec_key=_spec(1), job_id="a", status="ok", payload={}
            )
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 20])  # torn mid-record by a crash
        state = replay_journal(path)
        assert len(state.corrupt) == 1
        assert state.submitted == {_spec(1): ["a"]}
        assert _spec(1) not in state.done

    def test_reopen_continues_appending(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False) as journal:
            journal.append("submitted", spec_key=_spec(1), job_id="a")
        with Journal(path, fsync=False) as journal:
            assert journal.state.submitted == {_spec(1): ["a"]}
            journal.append(
                "done", spec_key=_spec(1), job_id="a", status="ok", payload={}
            )
        state = replay_journal(path)
        assert state.done and state.pending() == []

    def test_checkpoint_compacts_and_preserves_state(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False) as journal:
            for i in range(4):
                journal.append("submitted", spec_key=_spec(i), job_id=f"job{i}")
                journal.append("started", spec_key=_spec(i))
                for attempt in range(3):  # retries bloat the raw log
                    journal.append(
                        "failed", spec_key=_spec(i), status="crashed",
                        classification="transient", error="worker died",
                        attempts=attempt + 1,
                    )
                if i < 2:
                    journal.append(
                        "done", spec_key=_spec(i), job_id=f"job{i}",
                        status="ok", payload={"i": i},
                    )
            before = journal.state
            n_lines_before = len(path.read_text().splitlines())
            journal.checkpoint()
            after = journal.state
            n_lines_after = len(path.read_text().splitlines())
        assert n_lines_after < n_lines_before
        assert after.done == {
            key: {k: v for k, v in rec.items() if k != "seq"}
            | {"seq": after.done[key]["seq"]}
            for key, rec in before.done.items()
        }
        assert after.pending() == before.pending()
        assert after.submitted == before.submitted
        # The compacted file replays clean from disk too.
        replayed = replay_journal(path)
        assert set(replayed.done) == set(before.done)
        assert replayed.pending() == before.pending()

    def test_auto_compaction_bounds_the_file(self, tmp_path):
        path = tmp_path / "j"
        with Journal(path, fsync=False, compact_every=10) as journal:
            for i in range(100):
                journal.append(
                    "done", spec_key=_spec(i % 3), job_id=f"j{i}",
                    status="ok", payload={},
                )
        # 100 appends over 3 live keys: the file stays near the live size.
        assert len(path.read_text().splitlines()) <= 10


# Hypothesis: replay of ANY journal prefix never forgets a terminal record
# ("done jobs are never re-executed") and never loses a submission
# ("submitted jobs are never dropped").  This is exactly the crash model:
# SIGKILL truncates the journal at an arbitrary line boundary (plus at most
# one torn line, covered above).

_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["submitted", "started", "done", "transient", "permanent"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=14,
)


class TestJournalPrefixProperty:
    @given(events=_EVENTS)
    def test_any_prefix_preserves_done_and_submitted(self, events, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("journal-prefix")
        path = tmp / "j"
        with Journal(path, fsync=False) as journal:
            for n, (kind, key) in enumerate(events):
                if kind == "submitted":
                    journal.append("submitted", spec_key=_spec(key), job_id=f"j{n}")
                elif kind == "started":
                    journal.append("started", spec_key=_spec(key))
                elif kind == "done":
                    journal.append(
                        "done", spec_key=_spec(key), job_id=f"j{n}",
                        status="ok", payload={"n": n},
                    )
                else:
                    journal.append(
                        "failed", spec_key=_spec(key), job_id=f"j{n}",
                        status="failed" if kind == "permanent" else "crashed",
                        classification=kind, error="x", attempts=1,
                    )
        lines = path.read_text().splitlines()
        prefix_path = tmp / "prefix"
        for cut in range(len(lines) + 1):
            prefix_path.write_text("\n".join(lines[:cut]) + "\n")
            state = replay_journal(prefix_path)
            seen = events[:cut]
            terminal = {k for kind, k in seen if kind in ("done", "permanent")}
            submitted = {k for kind, k in seen if kind == "submitted"}
            # Terminal records survive: these specs are never re-executed.
            assert {_spec(k) for k in terminal} <= set(state.done)
            # Submissions survive: pending ∪ done covers every one.
            covered = set(state.submitted) | set(state.done)
            assert {_spec(k) for k in submitted} <= covered


# ---------------------------------------------------------------------------
# Server-level durability (cheap runners)
# ---------------------------------------------------------------------------


def _jobs(n: int, **kw) -> list[Job]:
    return [Job(job_id=f"j{i}", subject_seed=i, **kw) for i in range(n)]


class TestServerJournal:
    def test_journaled_clean_batch_is_bit_identical_to_unjournaled(self, tmp_path):
        jobs = _jobs(6)
        with BatchServer(workers=2, runner=digest_runner) as server:
            plain = server.run_batch(jobs)
        with BatchServer(
            workers=2, runner=digest_runner, journal=tmp_path / "j"
        ) as server:
            journaled = server.run_batch(jobs)
        assert _det(journaled) == _det(plain)
        assert journaled.n_replayed == 0

    def test_resume_replays_done_jobs_without_reexecution(self, tmp_path):
        path = tmp_path / "j"
        jobs = _jobs(5)
        with BatchServer(workers=2, runner=digest_runner, journal=path) as server:
            first = server.run_batch(jobs)
        before = _counter("serve.journal.replayed_done")
        with BatchServer(
            workers=2, runner=digest_runner, journal=path, resume=True
        ) as server:
            again = server.run_batch(jobs)
        assert _det(again) == _det(first)
        assert again.n_replayed == len(jobs)
        assert all(r.replayed and r.attempts == 0 for r in again.results)
        assert _counter("serve.journal.replayed_done") - before == len(jobs)

    def test_fresh_server_refuses_a_stale_journal(self, tmp_path):
        path = tmp_path / "j"
        with BatchServer(workers=2, runner=digest_runner, journal=path) as server:
            server.run_batch(_jobs(2))
        with pytest.raises(ReproError, match="resume"):
            BatchServer(workers=2, runner=digest_runner, journal=path)

    def test_resume_requires_journal(self):
        with pytest.raises(ReproError, match="requires a journal"):
            BatchServer(workers=2, runner=digest_runner, resume=True)

    def test_interrupt_drains_and_resume_completes(self, tmp_path):
        import threading

        path = tmp_path / "j"
        jobs = [
            Job(job_id=f"j{i}", subject_seed=i, fault="slow_start",
                fault_args={"delay_s": 0.25})
            for i in range(8)
        ]
        with BatchServer(
            workers=2, runner=sleepy_runner, journal=path, coalesce=False
        ) as server:
            threading.Timer(0.4, server.interrupt).start()
            report = server.run_batch(jobs)
        assert report.interrupted
        assert report.n_interrupted >= 1
        assert report.counts.get("ok", 0) >= 1  # in-flight jobs finished
        done_before = set(replay_journal(path).done)
        with BatchServer(
            workers=2, runner=sleepy_runner, journal=path, resume=True,
            coalesce=False,
        ) as server:
            resumed = server.run_batch(jobs)
        assert resumed.counts == {"ok": len(jobs)}
        executed = {r.job_id for r in resumed.results if not r.replayed}
        replayed_keys = {
            job.spec_key() for job in jobs if job.job_id not in executed
        }
        assert replayed_keys <= done_before  # zero done jobs re-executed

    def test_dead_letter_exactly_once_and_replayed_on_resume(self, tmp_path):
        path = tmp_path / "j"
        jobs = [
            Job(job_id="good", subject_seed=1),
            Job(job_id="poison", subject_seed=2, fault="synthetic-failure"),
        ]
        policy = RetryPolicy(**QUICK_RETRY)
        with BatchServer(
            workers=2, runner=digest_runner, journal=path, retry_policy=policy
        ) as server:
            report = server.run_batch(jobs)
        poison = report.results[1]
        assert poison.status == "failed"
        assert poison.attempts == 1  # permanent: zero retries
        assert policy.retries_spent == 0
        assert [r.job_id for r in report.dead_letters] == ["poison"]
        state = replay_journal(path)
        assert len(state.dead_letters) == 1
        record = next(iter(state.dead_letters.values()))
        assert record["classification"] == "permanent"
        # Resume: the dead letter replays — the failing runner never re-runs.
        with BatchServer(
            workers=2, runner=digest_runner, journal=path, resume=True,
            retry_policy=RetryPolicy(**QUICK_RETRY),
        ) as server:
            again = server.run_batch(jobs)
        assert _det(again) == _det(report)
        assert all(r.replayed for r in again.results)

    def test_worker_kill_is_retried_with_backoff_and_completes(self, tmp_path):
        marker = tmp_path / "kill.marker"
        jobs = [
            Job(job_id="stable", subject_seed=1),
            Job(job_id="victim", subject_seed=2, fault="worker_kill",
                fault_args={"marker": str(marker)}),
        ]
        policy = RetryPolicy(**QUICK_RETRY)
        before = _counter("serve.pool.crash_retries")
        with BatchServer(
            workers=2, runner=digest_runner, journal=tmp_path / "j",
            retry_policy=policy,
        ) as server:
            report = server.run_batch(jobs)
        assert report.counts == {"ok": 2}
        victim = report.results[1]
        assert victim.attempts >= 2  # died once, completed on retry
        assert _counter("serve.pool.crash_retries") > before
        assert policy.retries_spent >= 1

    def test_worker_kill_without_marker_exhausts_retries(self, tmp_path):
        jobs = [Job(job_id="doomed", subject_seed=1, fault="worker_kill")]
        policy = RetryPolicy(max_transient_retries=1, base_backoff_s=0.01)
        with BatchServer(
            workers=1, runner=digest_runner, retry_policy=policy
        ) as server:
            report = server.run_batch(jobs)
        doomed = report.results[0]
        assert doomed.status == "crashed"
        assert doomed.attempts == 2  # initial + the one granted retry
        assert "retries exhausted" in doomed.error

    def test_worker_hang_killed_by_watchdog_and_retried(self, tmp_path):
        marker = tmp_path / "hang.marker"
        jobs = [
            Job(job_id="wedged", subject_seed=3, fault="worker_hang",
                fault_args={"hang_s": 20.0, "marker": str(marker)}),
        ]
        hangs_before = _counter("serve.watchdog.hangs")
        with BatchServer(
            workers=1, runner=digest_runner,
            retry_policy=RetryPolicy(**QUICK_RETRY),
            heartbeat_deadline_s=0.5, heartbeat_interval_s=0.1,
        ) as server:
            report = server.run_batch(jobs)
        assert report.counts == {"ok": 1}
        assert report.results[0].attempts >= 2
        assert _counter("serve.watchdog.hangs") > hangs_before

    def test_slow_start_is_not_killed_while_beating(self, tmp_path):
        # A slow but live worker must never trip the watchdog.
        jobs = [
            Job(job_id="sluggish", subject_seed=1, fault="slow_start",
                fault_args={"delay_s": 1.2}),
        ]
        with BatchServer(
            workers=1, runner=digest_runner,
            retry_policy=RetryPolicy(**QUICK_RETRY),
            heartbeat_deadline_s=0.5, heartbeat_interval_s=0.1,
        ) as server:
            report = server.run_batch(jobs)
        assert report.counts == {"ok": 1}
        assert report.results[0].attempts == 1


# ---------------------------------------------------------------------------
# Kill -9 at ~50% and resume: the end-to-end crash model
# ---------------------------------------------------------------------------

_CHILD = textwrap.dedent(
    """
    import sys
    from repro.serve import BatchServer, Job
    from repro.testing.workloads import sleepy_runner

    journal = sys.argv[1]
    jobs = [
        Job(job_id=f"j{i}", subject_seed=i, fault="slow_start",
            fault_args={"delay_s": 0.25})
        for i in range(8)
    ]
    with BatchServer(workers=2, runner=sleepy_runner, journal=journal,
                     coalesce=False) as server:
        server.run_batch(jobs)
    """
)


class TestKillResume:
    def test_sigkill_midway_then_resume_is_bit_identical(self, tmp_path):
        path = tmp_path / "kill.journal"
        jobs = [
            Job(job_id=f"j{i}", subject_seed=i, fault="slow_start",
                fault_args={"delay_s": 0.25})
            for i in range(8)
        ]
        # Reference: the uninterrupted run.
        with BatchServer(workers=2, runner=sleepy_runner, coalesce=False) as server:
            reference = server.run_batch(jobs)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        # Own process group so SIGKILL takes the forked workers down with
        # the batch — orphans would block forever on the dead call queue.
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            # SIGKILL the whole batch once roughly half the jobs are done.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:  # pragma: no cover - too fast
                    break
                if len(replay_journal(path).done) >= 3:
                    break
                time.sleep(0.05)
        finally:
            try:
                os.killpg(child.pid, 9)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
            child.wait(timeout=30)

        done_before = set(replay_journal(path).done)
        assert done_before, "child was killed before finishing any job"
        with BatchServer(
            workers=2, runner=sleepy_runner, journal=path, resume=True,
            coalesce=False,
        ) as server:
            resumed = server.run_batch(jobs)
        assert resumed.counts == {"ok": len(jobs)}
        assert _det(resumed) == _det(reference)
        # Zero completed jobs re-executed.
        executed = {
            job.spec_key()
            for job, result in zip(jobs, resumed.results)
            if not result.replayed
        }
        assert executed.isdisjoint(done_before)
        assert resumed.n_replayed >= len(done_before)


# ---------------------------------------------------------------------------
# Sharded tier: SIGTERM drain under saturation with an ejected shard
# ---------------------------------------------------------------------------


class TestShardedDrain:
    def test_sigterm_drains_saturated_tier_with_ejected_shard(self, tmp_path):
        """The worst-case graceful drain: a SIGTERM lands while the
        front-door backlog and both shard queues are saturated AND one
        shard is breaker-ejected mid-reroute.  Every job must resolve to a
        typed outcome, every shard journal must reach its final
        checkpoint, and a resume from the merged journal must complete the
        batch bit-identically with zero done work re-executed."""
        import signal
        import threading

        from repro.serve import FrontDoor, ShardedServer
        from repro.serve.job import REJECTION_REASONS

        jobs = [
            Job(job_id=f"j{i:02d}", subject_seed=100 + i,
                fault_args={"sleep_s": 0.15})
            for i in range(24)
        ]
        # Reference: the uninterrupted run (sleepy_runner's payload is a
        # pure function of the spec, so any schedule must reproduce it).
        with BatchServer(
            workers=2, runner=sleepy_runner, coalesce=False
        ) as server:
            reference = {
                r.job_id: r.deterministic()
                for r in server.run_batch(jobs).results
            }

        base = tmp_path / "sharded.journal"
        received = threading.Event()
        server = ShardedServer(
            workers=1, shards=2, queue_size=4, runner=sleepy_runner,
            coalesce=False, journal=base, probe_backoff_s=3600.0,
        )
        door = FrontDoor(server, backlog_limit=8, shed=True)

        def _on_sigterm(signum, frame):  # noqa: ARG001 - signal signature
            received.set()
            door.interrupt()

        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            with server, door:
                for job in jobs:
                    door.submit(job, now=0.0)
                # One shard dies while its queue is full; its jobs reroute
                # into the other shard's already-full queue.
                server.inject_shard_failure(0)
                os.kill(os.getpid(), signal.SIGTERM)
                assert received.wait(5.0)
                door.drain()
                server.checkpoint()
                results = {r.job_id: r for r in door.results()}
        finally:
            signal.signal(signal.SIGTERM, previous)

        # Every submitted job resolved to a typed outcome — nothing lost,
        # nothing still pending.
        assert set(results) == {job.job_id for job in jobs}
        for result in results.values():
            assert result.status in ("ok", "interrupted", "rejected")
            if result.status == "rejected":
                assert result.reason in REJECTION_REASONS
        done_ids = {j for j, r in results.items() if r.ok}

        # Both shard journals were checkpointed (compacted under a fresh
        # checkpoint header) and merged back into the base artifact.
        for k in range(2):
            shard_path = tmp_path / f"sharded.journal.shard{k}"
            assert shard_path.exists()
            with open(shard_path) as handle:
                assert json.loads(handle.readline())["event"] == "checkpoint"
        assert base.exists()
        merged_done = set(replay_journal(base).done)

        # Resume from the merged journal: the batch completes, done work
        # replays rather than re-executing, and the deterministic fields
        # match the uninterrupted reference bit for bit.
        with ShardedServer(
            workers=1, shards=2, runner=sleepy_runner, coalesce=False,
            journal=base, resume=True,
        ) as resumed_server:
            resumed = resumed_server.run_batch(jobs)
        assert resumed.counts == {"ok": len(jobs)}
        assert {
            r.job_id: r.deterministic() for r in resumed.results
        } == reference
        replayed_ids = {r.job_id for r in resumed.results if r.replayed}
        assert done_ids <= replayed_ids
        executed_keys = {
            job.spec_key()
            for job, result in zip(jobs, resumed.results)
            if not result.replayed
        }
        assert executed_keys.isdisjoint(merged_done)


# ---------------------------------------------------------------------------
# Real pipeline: table digests survive an interrupted-and-resumed batch
# ---------------------------------------------------------------------------


class TestRealRunnerResume:
    def test_partial_journal_resume_matches_uninterrupted_digests(self, tmp_path):
        jobs = [
            Job(job_id="u1", subject_seed=1, **FAST),
            Job(job_id="u2", subject_seed=7, session_seed=3, **FAST),
        ]
        full_path = tmp_path / "full.journal"
        with BatchServer(workers=2, runner=execute_job, journal=full_path) as server:
            reference = server.run_batch(jobs)
        assert reference.counts == {"ok": 2}

        # Rebuild a journal that witnessed only u1 finishing — byte-for-byte
        # the crash-at-50% artifact — and resume from it.
        partial_path = tmp_path / "partial.journal"
        u1_key = jobs[0].spec_key()
        state = replay_journal(full_path)
        with Journal(partial_path, fsync=False) as journal:
            for key, ids in state.submitted.items():
                for job_id in ids:
                    journal.append("submitted", spec_key=key, job_id=job_id)
            done = {
                k: v for k, v in state.done[u1_key].items()
                if k not in ("seq", "event")
            }
            journal.append("done", **done)

        with BatchServer(
            workers=2, runner=execute_job, journal=partial_path, resume=True
        ) as server:
            resumed = server.run_batch(jobs)
        assert resumed.counts == {"ok": 2}
        assert resumed.results[0].replayed
        assert not resumed.results[1].replayed
        assert _det(resumed) == _det(reference)
        for got, want in zip(resumed.results, reference.results):
            assert got.payload["table_digest"] == want.payload["table_digest"]


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


class TestCliExitCodes:
    def test_resume_without_journal_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main_batch

        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text('{"job_id": "a", "subject_seed": 1}\n')
        assert main_batch(["--jobs", str(jobs_file), "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_stale_journal_without_resume_is_refused(self, tmp_path, capsys):
        from repro.cli import main_batch

        path = tmp_path / "j"
        with BatchServer(workers=1, runner=digest_runner, journal=path) as server:
            server.run_batch(_jobs(1))
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text('{"job_id": "a", "subject_seed": 1}\n')
        rc = main_batch(
            ["--jobs", str(jobs_file), "--journal", str(path), "--workers", "1"]
        )
        assert rc == 2
        assert "resume" in capsys.readouterr().err

    def test_dead_letters_exit_3(self, tmp_path, capsys):
        from repro.cli import main_batch

        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            json.dumps(
                {
                    "job_id": "poison",
                    "subject_seed": 1,
                    "fault": "synthetic-failure",
                    **FAST,
                }
            )
            + "\n"
        )
        report_path = tmp_path / "report.json"
        rc = main_batch(
            [
                "--jobs", str(jobs_file),
                "--journal", str(tmp_path / "j"),
                "--report", str(report_path),
                "--workers", "1",
            ]
        )
        assert rc == 3
        assert "dead letters" in capsys.readouterr().err
        report = json.loads(report_path.read_text())
        assert report["dead_letters"] == ["poison"]
