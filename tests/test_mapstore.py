"""Tests for the on-disk DelayMap artifact store (repro.core.mapstore)."""

import logging
import os

import numpy as np
import pytest

from repro.constants import SPEED_OF_SOUND
from repro.core import mapstore
from repro.core.localize import (
    _map_cache_key,
    cached_delay_map,
    clear_delay_map_cache,
    delay_map_cache_size,
)
from repro.obs import metrics as obs_metrics

PARAMS = (0.0901, 0.1153, 0.0987)
GRID = {"radii": (0.2, 1.0, 10), "thetas": (-180.0, 180.0, 31)}


def _counter(name):
    return obs_metrics.counter(name)


@pytest.fixture
def store_path(tmp_path, monkeypatch):
    """A fresh activated store; both memory caches cleared around the test."""
    path = str(tmp_path / "maps")
    monkeypatch.setenv(mapstore.MAP_STORE_ENV, path)
    clear_delay_map_cache()
    yield path
    clear_delay_map_cache()


def _the_key():
    return _map_cache_key(
        PARAMS, 240, GRID["radii"], GRID["thetas"], SPEED_OF_SOUND,
        "diffraction", True,
    )


class TestRoundTrip:
    def test_build_persists_and_reload_is_bit_identical(self, store_path):
        saved = _counter("mapstore.saved")
        hits = _counter("mapstore.hits")
        loads = _counter("localize.delay_map_loads")
        builds = _counter("localize.delay_map_builds")
        s0, h0, l0, b0 = saved.value, hits.value, loads.value, builds.value

        built = cached_delay_map(PARAMS, 240, **GRID)
        assert saved.value - s0 == 1
        assert os.path.exists(mapstore.MapStore(store_path).path_for(_the_key()))

        clear_delay_map_cache()
        loaded = cached_delay_map(PARAMS, 240, **GRID)
        assert hits.value - h0 == 1
        assert loads.value - l0 == 1
        assert builds.value - b0 == 1  # only the original build
        assert isinstance(loaded.t_left, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(loaded.t_left), np.asarray(built.t_left)
        )
        np.testing.assert_array_equal(
            np.asarray(loaded.t_right), np.asarray(built.t_right)
        )

    def test_inversion_identical_from_store(self, store_path):
        from repro.geometry.paths import binaural_delays
        from repro.geometry.vec import polar_to_cartesian

        built = cached_delay_map(PARAMS, 240, **GRID)
        t1, t2 = binaural_delays(built.head, polar_to_cartesian(0.45, 40.0))
        clear_delay_map_cache()
        loaded = cached_delay_map(PARAMS, 240, **GRID)
        assert loaded is not built
        assert loaded.invert(t1, t2) == built.invert(t1, t2)

    def test_corrupt_artifact_is_rebuilt_not_fatal(self, store_path):
        built = cached_delay_map(PARAMS, 240, **GRID)
        artifact = mapstore.MapStore(store_path).path_for(_the_key())
        with open(artifact, "wb") as handle:
            handle.write(b"these are not the tables you are looking for")
        clear_delay_map_cache()
        corrupt = _counter("mapstore.corrupt")
        c0 = corrupt.value
        rebuilt = cached_delay_map(PARAMS, 240, **GRID)
        assert corrupt.value - c0 == 1
        np.testing.assert_array_equal(
            np.asarray(rebuilt.t_left), np.asarray(built.t_left)
        )
        # The rebuild re-persisted a valid artifact.
        clear_delay_map_cache()
        reloaded = cached_delay_map(PARAMS, 240, **GRID)
        assert isinstance(reloaded.t_left, np.memmap)

    def test_truncated_artifact_is_rebuilt_not_fatal(self, store_path):
        built = cached_delay_map(PARAMS, 240, **GRID)
        artifact = mapstore.MapStore(store_path).path_for(_the_key())
        size = os.path.getsize(artifact)
        with open(artifact, "rb+") as handle:
            handle.truncate(size // 2)
        clear_delay_map_cache()
        corrupt = _counter("mapstore.corrupt")
        c0 = corrupt.value
        rebuilt = cached_delay_map(PARAMS, 240, **GRID)
        assert corrupt.value - c0 == 1
        np.testing.assert_array_equal(
            np.asarray(rebuilt.t_left), np.asarray(built.t_left)
        )

    def test_wrong_shape_artifact_counts_as_corrupt(self, store_path):
        store = mapstore.MapStore(store_path)
        key = _the_key()
        store.save(key, np.zeros((3, 4)), np.zeros((3, 4)))
        corrupt = _counter("mapstore.corrupt")
        c0 = corrupt.value
        assert store.load(key) is None
        assert corrupt.value - c0 == 1
        assert not os.path.exists(store.path_for(key))


class TestActivation:
    def test_unusable_path_warns_and_disables(self, tmp_path, monkeypatch, caplog):
        """A bad REPRO_MAP_STORE must degrade to storeless, never raise."""
        blocker = tmp_path / "a-regular-file"
        blocker.write_text("not a directory")
        monkeypatch.setenv(mapstore.MAP_STORE_ENV, str(blocker))
        disabled = _counter("mapstore.disabled")
        d0 = disabled.value
        with caplog.at_level(logging.WARNING, logger="repro.core.mapstore"):
            assert mapstore.active_store() is None
        assert disabled.value - d0 == 1
        assert any("mapstore.invalid_path" in r.message for r in caplog.records)
        # The personalization path still works without a store.
        clear_delay_map_cache()
        assert cached_delay_map(PARAMS, 240, **GRID) is not None
        clear_delay_map_cache()

    def test_unset_env_means_no_store(self, monkeypatch):
        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)
        assert mapstore.active_store() is None

    def test_resolution_follows_env_changes(self, tmp_path, monkeypatch):
        first = tmp_path / "one"
        second = tmp_path / "two"
        monkeypatch.setenv(mapstore.MAP_STORE_ENV, str(first))
        assert mapstore.active_store().root == str(first)
        monkeypatch.setenv(mapstore.MAP_STORE_ENV, str(second))
        assert mapstore.active_store().root == str(second)
        monkeypatch.delenv(mapstore.MAP_STORE_ENV)
        assert mapstore.active_store() is None


class TestKeyQuantization:
    def test_nudged_parameters_share_key_and_artifact(self, store_path):
        """Satellite regression: two keys within the quantization tolerance
        (1-ulp-ish arithmetic noise) address the same memory entry AND the
        same on-disk artifact."""
        a, b, c = PARAMS
        nudged = (a + 1e-10, b - 1e-10, c + 1e-10)
        key = _the_key()
        key_nudged = _map_cache_key(
            nudged, 240, GRID["radii"], GRID["thetas"], SPEED_OF_SOUND,
            "diffraction", True,
        )
        assert key_nudged == key
        store = mapstore.MapStore(store_path)
        assert store.path_for(key_nudged) == store.path_for(key)

        first = cached_delay_map(PARAMS, 240, **GRID)
        assert cached_delay_map(nudged, 240, **GRID) is first
        assert delay_map_cache_size() == 1

    def test_distinct_parameters_get_distinct_artifacts(self, store_path):
        a, b, c = PARAMS
        key = _the_key()
        other = _map_cache_key(
            (a + 1e-5, b, c), 240, GRID["radii"], GRID["thetas"],
            SPEED_OF_SOUND, "diffraction", True,
        )
        store = mapstore.MapStore(store_path)
        assert store.path_for(other) != store.path_for(key)


class TestKillTheCache:
    """Store-loaded tables must change no bit of a PersonalizationResult."""

    SPEC = {"probe_interval_s": 1.1, "angle_step_deg": 30.0}

    def test_store_loaded_run_is_bit_identical(self, tmp_path, monkeypatch):
        from repro.core.pipeline import personalize_capture
        from repro.testing.golden import table_digest

        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)
        clear_delay_map_cache()
        _, baseline = personalize_capture(subject_seed=3, **self.SPEC)

        monkeypatch.setenv(mapstore.MAP_STORE_ENV, str(tmp_path / "maps"))
        clear_delay_map_cache()
        _, persisted = personalize_capture(subject_seed=3, **self.SPEC)

        clear_delay_map_cache()
        builds = _counter("localize.delay_map_builds")
        misses = _counter("mapstore.misses")
        b0, m0 = builds.value, misses.value
        _, loaded = personalize_capture(subject_seed=3, **self.SPEC)
        assert builds.value - b0 == 0  # everything came off the store
        assert misses.value - m0 == 0

        digests = {
            table_digest(r.table) for r in (baseline, persisted, loaded)
        }
        assert len(digests) == 1
        assert baseline.head_parameters == loaded.head_parameters
        assert (
            baseline.fusion.residual_deg == loaded.fusion.residual_deg
        )
        clear_delay_map_cache()


class TestServePlumbing:
    def test_inline_pool_activates_store(self, tmp_path, monkeypatch):
        from repro.serve.pool import WorkerPool

        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)
        path = str(tmp_path / "maps")
        with WorkerPool(1, inline=True, map_store=path):
            assert os.environ.get(mapstore.MAP_STORE_ENV) == path
        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)

    def test_server_rejects_unusable_store_leniently(self, tmp_path):
        from repro.serve import BatchServer

        blocker = tmp_path / "a-regular-file"
        blocker.write_text("not a directory")
        with BatchServer(workers=1, map_store=str(blocker)) as server:
            assert server.map_store is None

    def test_server_normalizes_store_path(self, tmp_path):
        from repro.serve import BatchServer

        path = tmp_path / "maps"
        with BatchServer(workers=1, map_store=path) as server:
            assert server.map_store == str(path)
            assert os.path.isdir(path)


class TestWarmupCli:
    def test_lattice_warmup_populates_store(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        path = str(tmp_path / "maps")
        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)
        assert main(["warmup", "--store", path, "--step-mm", "30"]) == 0
        store = mapstore.MapStore(path)
        assert len(store) > 0
        out = capsys.readouterr().out
        assert "lattice warmup" in out

        # A lattice corner is a store hit for a cold process.
        monkeypatch.setenv(mapstore.MAP_STORE_ENV, path)
        clear_delay_map_cache()
        from repro.core.fusion import _BOUNDS, DiffractionAwareSensorFusion

        fusion = DiffractionAwareSensorFusion()
        hits = _counter("mapstore.hits")
        h0 = hits.value
        cached_delay_map(
            tuple(float(lo) for lo, _ in _BOUNDS.values()),
            fusion.fusion_boundary_samples,
            fusion.map_radii,
            fusion.map_thetas,
            refine=False,
        )
        assert hits.value - h0 == 1
        clear_delay_map_cache()

    def test_warmup_requires_a_store(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv(mapstore.MAP_STORE_ENV, raising=False)
        assert main(["warmup"]) == 2
        assert "no store" in capsys.readouterr().err

    def test_lattice_cap_refuses_oversized_lattices(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "warmup", "--store", str(tmp_path / "maps"),
            "--step-mm", "1", "--max-maps", "10",
        ])
        assert code == 2
        assert "exceeds --max-maps" in capsys.readouterr().err
