"""Integration tests for the end-to-end UNIQ pipeline."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.core.pipeline import PersonalizationResult, Uniq, UniqConfig
from repro.core.compensation import estimate_system_response
from repro.hrtf.metrics import mean_table_correlation
from repro.hrtf.reference import global_template_table, ground_truth_table
from repro.simulation.hardware import SpeakerMicResponse
from repro.simulation.session import MeasurementSession
from repro.signals.waveforms import chirp

GRID = tuple(float(a) for a in range(0, 181, 15))


@pytest.fixture(scope="module")
def result(small_session) -> PersonalizationResult:
    return Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(small_session)


class TestPipelineOutput:
    def test_table_covers_grid(self, result):
        np.testing.assert_array_equal(result.table.angles_deg, GRID)
        assert len(result.table.near) == len(GRID)
        assert len(result.table.far) == len(GRID)

    def test_head_parameters_near_truth(self, result, small_session):
        truth = np.asarray(small_session.truth.subject.head.parameters)
        estimate = np.asarray(result.head_parameters)
        assert np.all(np.abs(estimate - truth) < 0.04)

    def test_measurements_match_probes(self, result, small_session):
        assert len(result.measurements) == small_session.n_probes

    def test_personalization_beats_global(self, result, small_session):
        """The paper's headline: UNIQ closer to truth than the template."""
        subject = small_session.truth.subject
        truth = ground_truth_table(subject, np.asarray(GRID), small_session.fs)
        template = global_template_table(np.asarray(GRID), small_session.fs)
        own = mean_table_correlation(result.table, truth)
        other = mean_table_correlation(template, truth)
        assert sum(own) > sum(other)

    def test_table_is_renderable(self, result):
        left, right = result.table.binauralize(np.ones(256), 47.0)
        assert np.max(np.abs(left)) > 0
        assert np.max(np.abs(right)) > 0


class TestSessionChannelBank:
    def test_deconvolution_happens_once_per_probe_ear(self, small_session):
        """Fusion and interpolation share the bank: 2*n_probes deconvolutions
        per run, and the interpolation pass is all cache hits."""
        from repro.obs import metrics as obs_metrics

        deconv = obs_metrics.counter("channel.bank_deconvolutions")
        hits = obs_metrics.counter("channel.bank_hits")
        d0, h0 = deconv.value, hits.value
        Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(small_session)
        assert deconv.value - d0 == 2 * small_session.n_probes
        assert hits.value - h0 == 2 * small_session.n_probes

    def test_cached_run_numerically_identical(self, small_session):
        """Cold (empty DelayMap cache) and warm runs agree bit-for-bit."""
        from repro.obs import metrics as obs_metrics
        from repro.core.localize import clear_delay_map_cache

        misses = obs_metrics.counter("localize.delay_map_cache_misses")
        hits = obs_metrics.counter("localize.delay_map_cache_hits")
        clear_delay_map_cache()
        uniq = Uniq(UniqConfig(angle_grid_deg=GRID))
        m0 = misses.value
        cold = uniq.personalize(small_session)
        cold_misses = misses.value - m0
        assert cold_misses > 0

        m0, h0 = misses.value, hits.value
        warm = uniq.personalize(small_session)
        warm_misses = misses.value - m0
        # The warm run replays the same optimizer trajectory out of cache.
        assert hits.value - h0 > 0
        assert warm_misses < cold_misses / 4

        assert cold.fusion.head.parameters == warm.fusion.head.parameters
        assert cold.fusion.gyro_bias_dps == warm.fusion.gyro_bias_dps
        np.testing.assert_array_equal(cold.fusion.radii_m, warm.fusion.radii_m)
        np.testing.assert_array_equal(
            cold.fusion.fused_angles_deg, warm.fusion.fused_angles_deg
        )
        for cold_entry, warm_entry in zip(cold.table.near, warm.table.near):
            np.testing.assert_array_equal(cold_entry.left, warm_entry.left)
            np.testing.assert_array_equal(cold_entry.right, warm_entry.right)
        for cold_entry, warm_entry in zip(cold.table.far, warm.table.far):
            np.testing.assert_array_equal(cold_entry.left, warm_entry.left)
            np.testing.assert_array_equal(cold_entry.right, warm_entry.right)


class TestGestureEnforcement:
    def test_bad_sweep_raises(self, subject):
        """An arm-drop sweep close to the head must be rejected."""
        from repro.geometry.trajectory import hand_motion_trajectory

        rng = np.random.default_rng(31)
        trajectory = hand_motion_trajectory(
            rng,
            radius_mean=0.17,
            radius_wobble=0.02,
            arm_drop_probability=1.0,
            arm_drop_depth=0.4,
        )
        session = MeasurementSession(
            subject, seed=31, trajectory=trajectory, probe_interval_s=0.6
        ).run()
        with pytest.raises(CalibrationError):
            Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(session)

    def test_check_can_be_disabled(self, subject):
        from repro.geometry.trajectory import hand_motion_trajectory

        rng = np.random.default_rng(31)
        trajectory = hand_motion_trajectory(
            rng,
            radius_mean=0.17,
            radius_wobble=0.02,
            arm_drop_probability=1.0,
            arm_drop_depth=0.4,
        )
        session = MeasurementSession(
            subject, seed=31, trajectory=trajectory, probe_interval_s=0.6
        ).run()
        config = UniqConfig(angle_grid_deg=GRID, enforce_gesture_check=False)
        result = Uniq(config).personalize(session)
        assert result.table.n_angles == len(GRID)


class TestCompensatedPipeline:
    def test_hardware_coloration_compensated(self, subject):
        """With a colored chain plus calibration, results stay close to the
        ideal-hardware run (Section 4.6 compensation)."""
        fs = 48_000
        hardware = SpeakerMicResponse.typical(np.random.default_rng(77))
        session = MeasurementSession(
            subject, seed=77, probe_interval_s=0.6, hardware=hardware
        ).run()
        probe = chirp(30.0, 21_000.0, 0.5, fs)
        calibration = hardware.apply(probe, fs)
        response = estimate_system_response(calibration, probe, fs)

        result = Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(
            session, system_response=response
        )
        truth = ground_truth_table(subject, np.asarray(GRID), fs)
        own = mean_table_correlation(result.table, truth)
        template = global_template_table(np.asarray(GRID), fs)
        other = mean_table_correlation(template, truth)
        assert sum(own) > sum(other)
