"""Tests for the speaker/microphone chain model."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.simulation.hardware import SpeakerMicResponse
from repro.signals.spectrum import band_energy_ratio
from repro.signals.waveforms import tone, white_noise

FS = 48_000


class TestIdeal:
    def test_flat_gains(self):
        ideal = SpeakerMicResponse.ideal()
        np.testing.assert_allclose(ideal.gains, 1.0)

    def test_apply_is_identity(self):
        signal = white_noise(0.1, FS, rng=np.random.default_rng(0))
        filtered = SpeakerMicResponse.ideal().apply(signal, FS)
        np.testing.assert_allclose(filtered, signal, atol=1e-9)


class TestTypical:
    def test_reproducible(self):
        a = SpeakerMicResponse.typical(np.random.default_rng(9))
        b = SpeakerMicResponse.typical(np.random.default_rng(9))
        np.testing.assert_array_equal(a.gains, b.gains)

    def test_figure16_shape(self):
        """Unstable below 50 Hz, stable 100 Hz - 10 kHz, HF rolloff."""
        response = SpeakerMicResponse.typical(np.random.default_rng(2021))
        freqs, db = response.response_db()
        low = db[(freqs >= 10) & (freqs < 50)]
        mid = db[(freqs >= 100) & (freqs <= 10_000)]
        assert np.std(low) > 3 * np.std(mid)
        assert np.mean(np.abs(mid)) < 4.0
        top = db[freqs > 20_000]
        assert np.mean(top) < np.mean(mid) - 3.0

    def test_suppresses_low_frequencies(self):
        response = SpeakerMicResponse.typical(np.random.default_rng(1))
        signal = tone(30.0, 0.2, FS) + tone(1000.0, 0.2, FS)
        filtered = response.apply(signal, FS)
        low_before = band_energy_ratio(signal, FS, 0.0, 60.0)
        low_after = band_energy_ratio(filtered, FS, 0.0, 60.0)
        assert low_after < low_before / 2

    def test_gain_at_interpolates(self):
        response = SpeakerMicResponse.typical(np.random.default_rng(3))
        gains = response.gain_at(np.array([100.0, 1000.0, 10_000.0]))
        assert gains.shape == (3,)
        assert np.all(gains > 0)


class TestValidation:
    def test_rejects_unsorted_freqs(self):
        with pytest.raises(SignalError):
            SpeakerMicResponse(
                freqs=np.array([100.0, 50.0]), gains=np.array([1.0, 1.0])
            )

    def test_rejects_negative_gain(self):
        with pytest.raises(SignalError):
            SpeakerMicResponse(
                freqs=np.array([50.0, 100.0]), gains=np.array([1.0, -0.5])
            )
