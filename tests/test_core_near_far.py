"""Tests for near-to-far HRTF conversion."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.fusion import DiffractionAwareSensorFusion
from repro.core.interpolation import NearFieldInterpolator
from repro.core.near_far import (
    NearFarConverter,
    critical_trajectory_angles,
    ray_decomposition_attempt,
)
from repro.geometry.plane_wave import interaural_delay
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.metrics import hrir_correlation
from repro.simulation.propagation import render_far_field_hrir

FS = 48_000


@pytest.fixture(scope="module")
def near_measurements(clean_session):
    fusion = DiffractionAwareSensorFusion().run(clean_session)
    interpolator = NearFieldInterpolator(clean_session.fs)
    return fusion, interpolator.extract_measurements(clean_session, fusion)


class TestCriticalAngles:
    def test_ordering_around_target(self, average_head):
        phi_b, phi_c, phi_d = critical_trajectory_angles(average_head, 45.0, 0.45)
        # C sits near the target direction; B (left ear) beyond it; D before.
        assert phi_d < phi_c < phi_b
        assert abs(phi_c - 45.0) < 20.0

    def test_frontal_target_symmetric(self, average_head):
        phi_b, phi_c, phi_d = critical_trajectory_angles(average_head, 0.0, 0.45)
        assert phi_c == pytest.approx(0.0, abs=3.0)
        assert phi_b == pytest.approx(-phi_d, abs=3.0)

    def test_radius_too_small_raises(self, average_head):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            critical_trajectory_angles(average_head, 45.0, 0.05)


class TestConversion:
    def test_far_itd_matches_model(self, near_measurements):
        fusion, measurements = near_measurements
        converter = NearFarConverter(fs=FS)
        for theta in (20.0, 60.0, 140.0):
            far = converter.convert_angle(measurements, fusion.head, theta, 0.45)
            expected = interaural_delay(fusion.head, theta)
            assert far.interaural_delay_s() == pytest.approx(expected, abs=4e-5)

    def test_far_entries_correlate_with_truth(self, clean_session, near_measurements):
        fusion, measurements = near_measurements
        subject = clean_session.truth.subject
        converter = NearFarConverter(fs=FS)
        grid = np.arange(15.0, 166.0, 30.0)
        entries = converter.convert(measurements, fusion.head, grid)
        scores = []
        for angle, entry in zip(grid, entries):
            truth_l, truth_r = render_far_field_hrir(subject, float(angle), FS)
            truth = BinauralIR(left=truth_l, right=truth_r, fs=FS)
            scores.append(np.mean(hrir_correlation(entry, truth)))
        assert np.mean(scores) > 0.55

    def test_conversion_beats_raw_near_itd(self, clean_session, near_measurements):
        """The module's purpose: far ITDs are wrong if near HRIRs are reused."""
        fusion, measurements = near_measurements
        converter = NearFarConverter(fs=FS)
        theta = 45.0
        far = converter.convert_angle(measurements, fusion.head, theta, 0.45)
        true_itd = interaural_delay(clean_session.truth.subject.head, theta)
        nearest = min(measurements, key=lambda m: abs(m.angle_deg - theta))
        near_itd_error = abs(nearest.hrir.interaural_delay_s() - true_itd)
        far_itd_error = abs(far.interaural_delay_s() - true_itd)
        assert far_itd_error < near_itd_error

    def test_empty_measurements_raise(self, near_measurements):
        fusion, _ = near_measurements
        converter = NearFarConverter(fs=FS)
        with pytest.raises(SignalError):
            converter.convert_angle([], fusion.head, 45.0, 0.45)


class TestRayDecomposition:
    def test_attempt_is_ill_conditioned(self):
        """The paper's Attempt 1 fails: two speakers cannot form narrow
        beams, so the decomposition system is catastrophically conditioned."""
        condition = ray_decomposition_attempt()
        # Solving a system conditioned worse than ~1e3 amplifies measurement
        # noise thousands-fold — unusable, exactly as the paper reports.
        assert condition > 1e3

    def test_rejects_degenerate_setup(self):
        with pytest.raises(SignalError):
            ray_decomposition_attempt(n_rays=1)
