"""Tests for diffraction-aware sensor fusion."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.fusion import DiffractionAwareSensorFusion

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def fusion():
    return DiffractionAwareSensorFusion()


@pytest.fixture(scope="module")
def fusion_result(fusion, small_session):
    return fusion.run(small_session)


class TestDelayExtraction:
    def test_delays_match_truth(self, fusion, small_session):
        t_left, t_right = fusion.extract_probe_delays(small_session)
        from repro.geometry.paths import binaural_delays

        positions = small_session.truth.probe_positions()
        head = small_session.truth.subject.head
        for i in (0, len(positions) // 2, len(positions) - 1):
            expect_l, expect_r = binaural_delays(head, positions[i])
            assert t_left[i] == pytest.approx(expect_l, abs=6e-5)
            assert t_right[i] == pytest.approx(expect_r, abs=6e-5)

    def test_imu_angles_track_truth(self, fusion, small_session):
        alphas = fusion.imu_angles(small_session)
        truth = small_session.truth.probe_angles_deg()
        # Gyro drift allows several degrees, but the sweep shape must hold.
        assert np.corrcoef(alphas, truth)[0, 1] > 0.995
        assert np.max(np.abs(alphas - truth)) < 25.0


class TestFusionRun:
    def test_localization_accuracy(self, fusion_result, small_session):
        truth = small_session.truth.probe_angles_deg()
        errors = np.abs(fusion_result.fused_angles_deg - truth)
        assert np.median(errors) < 6.0

    def test_head_parameters_plausible(self, fusion_result, small_session):
        true_params = np.asarray(small_session.truth.subject.head.parameters)
        estimated = np.asarray(fusion_result.head.parameters)
        assert np.all(np.abs(estimated - true_params) < 0.04)

    def test_radii_close_to_truth(self, fusion_result, small_session):
        true_radii = small_session.truth.probe_radii()
        solved = fusion_result.solved
        error = np.abs(fusion_result.radii_m[solved] - true_radii[solved])
        assert np.median(error) < 0.05

    def test_most_probes_solved(self, fusion_result):
        assert np.mean(fusion_result.solved) > 0.8

    def test_residual_finite_and_small(self, fusion_result):
        assert fusion_result.residual_deg < 12.0

    def test_gyro_bias_recovered(self, fusion_result):
        """The session gyro has ~0.3 dps bias; fusion should see O(that)."""
        assert abs(fusion_result.gyro_bias_dps) < 2.0

    def test_acoustic_angles_near_imu(self, fusion_result):
        solved = fusion_result.solved
        gap = np.abs(
            fusion_result.acoustic_angles_deg[solved]
            - fusion_result.imu_angles_deg[solved]
        )
        assert np.median(gap) < 10.0


class TestCleanSession:
    def test_near_perfect_on_clean_capture(self, clean_session):
        fusion = DiffractionAwareSensorFusion()
        result = fusion.run(clean_session)
        truth = clean_session.truth.probe_angles_deg()
        errors = np.abs(result.fused_angles_deg - truth)
        assert np.median(errors) < 3.0


class TestValidation:
    def test_too_few_probes_raises(self, fusion, small_session):
        from dataclasses import replace

        crippled = replace(small_session, probes=small_session.probes[:3])
        with pytest.raises(SignalError):
            fusion.run(crippled)
