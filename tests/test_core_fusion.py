"""Tests for diffraction-aware sensor fusion."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.fusion import MAX_GYRO_BIAS_DPS, DiffractionAwareSensorFusion

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def fusion():
    return DiffractionAwareSensorFusion()


@pytest.fixture(scope="module")
def fusion_result(fusion, small_session):
    return fusion.run(small_session)


class TestDelayExtraction:
    def test_delays_match_truth(self, fusion, small_session):
        t_left, t_right = fusion.extract_probe_delays(small_session)
        from repro.geometry.paths import binaural_delays

        positions = small_session.truth.probe_positions()
        head = small_session.truth.subject.head
        for i in (0, len(positions) // 2, len(positions) - 1):
            expect_l, expect_r = binaural_delays(head, positions[i])
            assert t_left[i] == pytest.approx(expect_l, abs=6e-5)
            assert t_right[i] == pytest.approx(expect_r, abs=6e-5)

    def test_imu_angles_track_truth(self, fusion, small_session):
        alphas = fusion.imu_angles(small_session)
        truth = small_session.truth.probe_angles_deg()
        # Gyro drift allows several degrees, but the sweep shape must hold.
        assert np.corrcoef(alphas, truth)[0, 1] > 0.995
        assert np.max(np.abs(alphas - truth)) < 25.0


class TestFusionRun:
    def test_localization_accuracy(self, fusion_result, small_session):
        truth = small_session.truth.probe_angles_deg()
        errors = np.abs(fusion_result.fused_angles_deg - truth)
        assert np.median(errors) < 6.0

    def test_head_parameters_plausible(self, fusion_result, small_session):
        true_params = np.asarray(small_session.truth.subject.head.parameters)
        estimated = np.asarray(fusion_result.head.parameters)
        assert np.all(np.abs(estimated - true_params) < 0.04)

    def test_radii_close_to_truth(self, fusion_result, small_session):
        true_radii = small_session.truth.probe_radii()
        solved = fusion_result.solved
        error = np.abs(fusion_result.radii_m[solved] - true_radii[solved])
        assert np.median(error) < 0.05

    def test_most_probes_solved(self, fusion_result):
        assert np.mean(fusion_result.solved) > 0.8

    def test_residual_finite_and_small(self, fusion_result):
        assert fusion_result.residual_deg < 12.0

    def test_gyro_bias_recovered(self, fusion_result):
        """The session gyro has ~0.3 dps bias; fusion should see O(that)."""
        assert abs(fusion_result.gyro_bias_dps) < 2.0

    def test_acoustic_angles_near_imu(self, fusion_result):
        solved = fusion_result.solved
        gap = np.abs(
            fusion_result.acoustic_angles_deg[solved]
            - fusion_result.imu_angles_deg[solved]
        )
        assert np.median(gap) < 10.0


class TestCleanSession:
    def test_near_perfect_on_clean_capture(self, clean_session):
        fusion = DiffractionAwareSensorFusion()
        result = fusion.run(clean_session)
        truth = clean_session.truth.probe_angles_deg()
        errors = np.abs(result.fused_angles_deg - truth)
        assert np.median(errors) < 3.0


def _fake_minimize(x_final):
    """A stand-in for ``optimize.minimize`` returning a fixed solution."""

    def runner(fun, x0, **kwargs):
        return SimpleNamespace(
            x=np.asarray(x_final, dtype=float), fun=4.0, success=True, nit=1
        )

    return runner


class TestGyroBiasClip:
    @pytest.mark.parametrize("raw_bias", [10.0, -10.0])
    def test_reported_bias_clipped(self, small_session, monkeypatch, raw_bias):
        """A runaway optimizer bias estimate must not leave ``run`` unclipped.

        The cost function rejects |bias| > MAX_GYRO_BIAS_DPS, but
        Nelder-Mead can still *terminate* on such a vertex; the reported
        estimate (and the angles debiased with it) must stay inside the
        physical gyro spec.
        """
        monkeypatch.setattr(
            "repro.core.fusion.optimize.minimize",
            _fake_minimize([0.09, 0.115, 0.0985, raw_bias]),
        )
        result = DiffractionAwareSensorFusion().run(small_session)
        assert abs(result.gyro_bias_dps) <= MAX_GYRO_BIAS_DPS
        assert result.gyro_bias_dps == np.sign(raw_bias) * MAX_GYRO_BIAS_DPS

    def test_in_range_bias_untouched(self, small_session, monkeypatch):
        monkeypatch.setattr(
            "repro.core.fusion.optimize.minimize",
            _fake_minimize([0.09, 0.115, 0.0985, 0.7]),
        )
        result = DiffractionAwareSensorFusion().run(small_session)
        assert result.gyro_bias_dps == pytest.approx(0.7)


class TestNoProbeSolvedFallback:
    def test_radii_finite_when_nothing_localizes(self, small_session, monkeypatch):
        """All-unsolved sessions must not hand out all-NaN radii."""
        monkeypatch.setattr(
            "repro.core.fusion.optimize.minimize",
            _fake_minimize([0.09, 0.115, 0.0985, 0.0]),
        )

        def nothing_solved(self, delay_map, t_left, t_right, alphas):
            n = t_left.shape[0]
            return np.full(n, np.nan), np.full(n, np.nan), np.zeros(n, dtype=bool)

        monkeypatch.setattr(
            DiffractionAwareSensorFusion, "_localize_all", nothing_solved
        )
        fusion = DiffractionAwareSensorFusion()
        result = fusion.run(small_session)
        assert not result.solved.any()
        assert result.residual_deg == float("inf")
        assert np.isfinite(result.radii_m).all()
        # The fallback is the final map's mid-radius.
        lo, hi, _ = fusion.final_map_radii
        assert np.all(result.radii_m >= lo) and np.all(result.radii_m <= hi)
        # Fused angles fall back to the (debiased) IMU angles.
        np.testing.assert_array_equal(
            result.fused_angles_deg, result.imu_angles_deg
        )


class TestValidation:
    def test_too_few_probes_raises(self, fusion, small_session):
        from dataclasses import replace

        crippled = replace(small_session, probes=small_session.probes[:3])
        with pytest.raises(SignalError):
            fusion.run(crippled)
