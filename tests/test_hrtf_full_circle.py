"""Tests for the full-circle mirror extension and signed AoA."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.hrtf.full_circle import FullCircleHRTF, signed_aoa
from repro.hrtf.reference import ground_truth_table
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import probe_chirp, white_noise
from repro.core.aoa import KnownSourceAoAEstimator, UnknownSourceAoAEstimator

FS = 48_000


@pytest.fixture(scope="module")
def full(subject):
    return FullCircleHRTF(ground_truth_table(subject, np.arange(0.0, 181.0, 5.0), FS))


class TestFullCircleLookup:
    def test_positive_angles_pass_through(self, full):
        direct = full.table.lookup(60.0, "far")
        wrapped = full.lookup(60.0)
        np.testing.assert_array_equal(wrapped.left, direct.left)

    def test_negative_angle_mirrors_ears(self, full):
        positive = full.lookup(60.0)
        negative = full.lookup(-60.0)
        np.testing.assert_array_equal(negative.left, positive.right)
        np.testing.assert_array_equal(negative.right, positive.left)

    def test_mirror_flips_itd_sign(self, full):
        assert full.lookup(60.0).interaural_delay_s() == pytest.approx(
            -full.lookup(-60.0).interaural_delay_s(), abs=1e-7
        )

    def test_angles_wrap(self, full):
        a = full.lookup(200.0)  # wraps to -160
        b = full.lookup(-160.0)
        np.testing.assert_array_equal(a.left, b.left)

    def test_binauralize_pans_correctly(self, full):
        signal = np.zeros(64)
        signal[0] = 1.0
        left_l, left_r = full.binauralize(signal, 70.0)
        right_l, right_r = full.binauralize(signal, -70.0)
        assert np.sum(left_l**2) > np.sum(left_r**2)
        assert np.sum(right_r**2) > np.sum(right_l**2)

    def test_rejects_partial_table(self, subject):
        partial = ground_truth_table(subject, np.arange(30.0, 151.0, 10.0), FS)
        with pytest.raises(TableError):
            FullCircleHRTF(partial)


class TestSignedAoA:
    @pytest.mark.parametrize("true_angle", [50.0, -50.0, 120.0, -120.0])
    def test_known_source_sides(self, subject, full, true_angle):
        estimator = KnownSourceAoAEstimator(full.table)
        chirp = probe_chirp(FS, duration_s=0.05)
        left, right = record_far_field(
            subject, abs(true_angle), chirp, FS,
            rng=np.random.default_rng(int(abs(true_angle))), noise_std=0.003,
        )
        if true_angle < 0:
            left, right = right, left
        estimate = signed_aoa(estimator, left, right, FS, source=chirp)
        assert estimate == pytest.approx(true_angle, abs=15.0)
        assert np.sign(estimate) == np.sign(true_angle)

    @pytest.mark.parametrize("true_angle", [45.0, -45.0])
    def test_unknown_source_sides(self, subject, full, true_angle):
        estimator = UnknownSourceAoAEstimator(full.table)
        signal = white_noise(0.5, FS, rng=np.random.default_rng(9))
        left, right = record_far_field(
            subject, abs(true_angle), signal, FS,
            rng=np.random.default_rng(10), noise_std=0.003,
        )
        if true_angle < 0:
            left, right = right, left
        estimate = signed_aoa(estimator, left, right, FS)
        # This test verifies the side-resolution wrapper; magnitude accuracy
        # (including the occasional front-back miss) is benchmarked in
        # bench_fig22_aoa_unknown.py.
        assert np.sign(estimate) == np.sign(true_angle)
        assert abs(estimate) <= 180.0
