"""Tests for the BinauralIR container."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.geometry.head import Ear
from repro.hrtf.hrir import BinauralIR
from repro.signals.delays import add_tap

FS = 48_000


def _make_pair(itd_samples: float = 6.0, n: int = 144) -> BinauralIR:
    left = np.zeros(n)
    right = np.zeros(n)
    add_tap(left, 20.0, 1.0)
    add_tap(left, 35.0, 0.5)
    add_tap(right, 20.0 + itd_samples, 0.7)
    add_tap(right, 40.0 + itd_samples, 0.4)
    return BinauralIR(left=left, right=right, fs=FS)


class TestValidation:
    def test_rejects_length_mismatch(self):
        with pytest.raises(SignalError):
            BinauralIR(left=np.zeros(10), right=np.zeros(12), fs=FS)

    def test_rejects_bad_fs(self):
        with pytest.raises(SignalError):
            BinauralIR(left=np.zeros(10), right=np.zeros(10), fs=0)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            BinauralIR(left=np.zeros((2, 5)), right=np.zeros((2, 5)), fs=FS)

    def test_properties(self):
        pair = _make_pair()
        assert pair.n_samples == 144
        assert pair.duration_s == pytest.approx(0.003)
        assert pair.ear(Ear.LEFT) is pair.left


class TestDelays:
    def test_interaural_delay(self):
        pair = _make_pair(itd_samples=6.0)
        assert pair.interaural_delay_s() == pytest.approx(-6.0 / FS, abs=0.3 / FS)

    def test_path_difference(self):
        pair = _make_pair(itd_samples=7.0)
        expected = -7.0 / FS * 343.0
        assert pair.interaural_path_difference_m() == pytest.approx(expected, rel=0.05)

    def test_aligned_removes_itd(self):
        pair = _make_pair(itd_samples=9.0).aligned()
        assert pair.interaural_delay_s() == pytest.approx(0.0, abs=0.5 / FS)


class TestApply:
    def test_apply_convolves(self):
        pair = _make_pair()
        impulse = np.zeros(32)
        impulse[0] = 1.0
        left, right = pair.apply(impulse)
        np.testing.assert_allclose(left[:144], pair.left, atol=1e-12)

    def test_apply_rejects_empty(self):
        with pytest.raises(SignalError):
            _make_pair().apply(np.zeros(0))

    def test_scaled(self):
        pair = _make_pair().scaled(2.0)
        assert np.max(np.abs(pair.left)) == pytest.approx(2.0, abs=0.01)

    def test_normalized_peak_is_one(self):
        pair = _make_pair().scaled(3.3).normalized()
        peak = max(np.max(np.abs(pair.left)), np.max(np.abs(pair.right)))
        assert peak == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(SignalError):
            BinauralIR(left=np.zeros(8), right=np.zeros(8), fs=FS).normalized()


class TestFrequency:
    def test_to_frequency_shapes(self):
        pair = _make_pair()
        freqs, h_left, h_right = pair.to_frequency()
        assert freqs.shape == h_left.shape == h_right.shape
        assert freqs[-1] == pytest.approx(FS / 2)

    def test_nfft_shorter_raises(self):
        with pytest.raises(SignalError):
            _make_pair().to_frequency(n_fft=32)

    def test_spectrum_inverts(self):
        pair = _make_pair()
        _, h_left, _ = pair.to_frequency(n_fft=256)
        back = np.fft.irfft(h_left, 256)[:144]
        np.testing.assert_allclose(back, pair.left, atol=1e-12)
