"""Quality-gating tests: preflight, sentinels, salvage, confidence, serve.

The contract under test (docs/ROBUSTNESS.md): a clean capture scores
confidence 1.0 with zero flags; every registered fault either lowers
confidence below that baseline with at least one stage-attributed
:class:`QualityFlag`, or raises a typed :class:`ReproError` — never silent
garbage.  The fault matrix below is asserted to cover the *whole*
``repro.testing.faults.FAULTS`` registry, so adding a fault without a
matrix entry fails this suite.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError, ReproError, SignalError
from repro.quality import (
    STAGES,
    QualityCollector,
    QualityFlag,
    QualityReport,
    combine_components,
    degradation_score,
    fitness_score,
    preflight,
)
from repro.core.pipeline import (
    Uniq,
    UniqConfig,
    grid_from_step,
    personalize_capture,
)
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession, ProbeMeasurement
from repro.testing.faults import (
    FAULTS,
    PROCESS_FAULTS,
    apply_fault,
    clipped,
    zeroed,
)

#: The golden-case configuration — small grid, sparse probes — shared with
#: tests/test_serve.py so the delay-map caches stay warm across the suite.
FAST = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}

#: Fault name -> kwargs builder (given the peak probe amplitude).  The
#: severities are calibrated so each fault clearly leaves the clean-capture
#: envelope on the base session: either confidence drops with flags, or the
#: pipeline raises a typed error.
FAULT_MATRIX = {
    "clipped": lambda peak: {"level": 0.2 * peak},
    "dropout": lambda peak: {"keep_every": 3},
    "mic_noise": lambda peak: {"std": 0.6},
    "reverberant_room": lambda peak: {"rt60_s": 0.9, "wet_level": 1.6},
    "noisy_reverberant": lambda peak: {"rt60_s": 0.9, "std": 0.3},
    "zeroed": lambda peak: {},
    "gyro_saturation": lambda peak: {"limit_dps": 6.0},
    "gyro_dropout": lambda peak: {"start_frac": 0.25, "duration_frac": 0.3},
    "gyro_bias_drift": lambda peak: {"drift_dps_per_s": 1.0},
    "clock_skew": lambda peak: {"skew": 0.2},
    "synthetic-failure": lambda peak: {},
}


@pytest.fixture(scope="module")
def base_session():
    """The golden-case capture: subject 1, session 0, sparse probes."""
    subject = VirtualSubject.random(1)
    return MeasurementSession(
        subject, seed=0, probe_interval_s=FAST["probe_interval_s"]
    ).run()


@pytest.fixture(scope="module")
def clean_result(base_session):
    _, result = personalize_capture(
        1, 0, angle_step_deg=FAST["angle_step_deg"], session=base_session
    )
    return result


def _peak(session) -> float:
    return max(float(np.max(np.abs(p.left))) for p in session.probes)


def _personalize(session):
    _, result = personalize_capture(
        1, 0, angle_step_deg=FAST["angle_step_deg"], session=session
    )
    return result


class TestScoreMaps:
    def test_degradation_score_shape(self):
        assert degradation_score(0.0, 1.0, 2.0) == 1.0
        assert degradation_score(1.0, 1.0, 2.0) == 1.0
        assert degradation_score(1.5, 1.0, 2.0) == pytest.approx(0.5)
        assert degradation_score(2.0, 1.0, 2.0) == 0.0
        assert degradation_score(99.0, 1.0, 2.0) == 0.0

    def test_fitness_score_shape(self):
        assert fitness_score(10.0, 2.0, 8.0) == 1.0
        assert fitness_score(8.0, 2.0, 8.0) == 1.0
        assert fitness_score(5.0, 2.0, 8.0) == pytest.approx(0.5)
        assert fitness_score(2.0, 2.0, 8.0) == 0.0
        assert fitness_score(-10.0, 2.0, 8.0) == 0.0

    def test_score_maps_reject_inverted_thresholds(self):
        with pytest.raises(ValueError):
            degradation_score(0.5, 2.0, 1.0)
        with pytest.raises(ValueError):
            fitness_score(0.5, 8.0, 2.0)

    def test_combine_is_product_and_clamped(self):
        assert combine_components({}) == 1.0
        assert combine_components({"a.x": 0.5, "a.y": 0.5}) == pytest.approx(0.25)
        assert combine_components({"a.x": 0.0, "a.y": 1.0}) == 0.0
        assert combine_components({"a.x": 7.0}) == 1.0  # clamped


class TestFlagsAndCollector:
    def test_flag_validates_stage_and_severity(self):
        with pytest.raises(ReproError, match="unknown quality stage"):
            QualityFlag("warp-core", "breach", "warn", "boom")
        with pytest.raises(ReproError, match="unknown severity"):
            QualityFlag("fusion", "residual_high", "catastrophic", "boom")

    def test_flag_round_trips_through_dict(self):
        flag = QualityFlag(
            "preflight", "clipping", "warn", "clip ratio 0.3",
            probe_index=4, value=0.3, threshold=0.005,
        )
        assert QualityFlag.from_dict(flag.to_dict()) == flag
        assert flag.key == "preflight.clipping"

    def test_collector_worst_report_wins(self):
        collector = QualityCollector()
        assert collector.component("fusion.residual", 0.8) == 0.8
        assert collector.component("fusion.residual", 0.95) == 0.8
        assert collector.component("fusion.residual", 0.3) == 0.3

    def test_collector_rejects_unnamespaced_component(self):
        with pytest.raises(ReproError, match="namespaced"):
            QualityCollector().component("residual", 0.5)

    def test_collector_extend_merges_min_wise(self):
        left, right = QualityCollector(), QualityCollector()
        left.component("fusion.residual", 0.9)
        right.component("fusion.residual", 0.4)
        right.flag("fusion", "residual_high", "warn", "high")
        left.extend(right)
        assert left.components["fusion.residual"] == 0.4
        assert [f.key for f in left.flags] == ["fusion.residual_high"]

    def test_report_round_trip_and_stage_table(self):
        collector = QualityCollector()
        collector.component("preflight.snr", 0.5)
        collector.component("fusion.residual", 0.8)
        collector.flag("preflight", "low_snr", "warn", "quiet")
        report = QualityReport(
            confidence=combine_components(collector.components),
            components=collector.components,
            flags=collector.flags,
            salvage={"retried": False},
        )
        again = QualityReport.from_dict(report.to_dict())
        assert again.confidence == report.confidence
        assert again.flags == report.flags
        assert report.worst_component == ("preflight.snr", 0.5)
        rows = {stage: (score, flags) for stage, score, flags in report.stage_table()}
        assert rows["preflight"] == (0.5, "low_snr(warn)")
        assert rows["fusion"] == (0.8, "-")


class TestPreflight:
    def test_clean_capture_scores_one_with_no_flags(self, base_session):
        collector = QualityCollector()
        health = preflight(base_session, collector=collector)
        assert health.score() == 1.0
        assert not collector.flags
        assert bool(np.all(health.weights == 1.0))

    def test_zeroed_capture_is_all_dead(self, small_session):
        health = preflight(zeroed(small_session))
        assert health.n_dead == small_session.n_probes
        assert health.n_usable == 0
        assert bool(np.all(health.weights == 0.0))

    def test_heavy_clipping_downweights_probes(self, small_session):
        session = clipped(small_session, 0.05 * _peak(small_session))
        health = preflight(session)
        assert health.n_suspect > 0
        assert set(np.unique(health.weights)) <= {0.0, 0.25, 1.0}
        assert health.score() < 1.0

    def test_empty_capture_rejected(self, small_session):
        with pytest.raises(SignalError, match="no probe recordings"):
            preflight(replace(small_session, probes=()))


class TestFaultMatrix:
    def test_matrix_covers_the_whole_registry(self):
        # Process-level faults (worker kill/hang/slow start) degrade the
        # executing worker, not the capture; they are covered on a real
        # pool by tests/test_durability.py instead.
        assert set(FAULT_MATRIX) == set(FAULTS) - PROCESS_FAULTS

    @pytest.mark.parametrize("name", sorted(FAULT_MATRIX))
    def test_every_fault_degrades_or_raises(self, name, base_session, clean_result):
        kwargs = FAULT_MATRIX[name](_peak(base_session))
        try:
            result = _personalize(apply_fault(base_session, name, **kwargs))
        except ReproError:
            return  # a typed rejection is an accepted outcome
        assert result.confidence < clean_result.confidence
        assert result.quality.flags, f"{name} degraded without any flag"
        assert all(flag.stage in STAGES for flag in result.quality.flags)
        assert 0.0 <= result.confidence <= 1.0

    def test_clean_baseline_is_perfect(self, clean_result):
        assert clean_result.confidence == 1.0
        assert clean_result.quality.n_flags == 0
        assert clean_result.quality.salvage["retried"] is False

    def test_flags_iff_confidence_below_one(self, base_session, clean_result):
        degraded = _personalize(apply_fault(base_session, "dropout", keep_every=3))
        for result in (clean_result, degraded):
            assert (result.confidence < 1.0) == bool(result.quality.flags)


class TestMonotoneConfidence:
    @given(
        fracs=st.lists(
            st.floats(min_value=0.02, max_value=1.0),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    def test_confidence_never_rises_with_clip_severity(self, small_session, fracs):
        """Harder clipping can only lower the capture confidence."""
        peak = _peak(small_session)
        scores = [
            preflight(clipped(small_session, frac * peak)).score()
            for frac in sorted(fracs, reverse=True)
        ]
        for milder, harsher in zip(scores, scores[1:]):
            assert harsher <= milder + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        rt60s=st.lists(
            st.floats(min_value=0.2, max_value=1.5),
            min_size=2,
            max_size=3,
            unique=True,
        )
    )
    def test_confidence_never_rises_with_rt60(self, small_session, rt60s):
        """A longer reverberation tail can only lower the capture confidence."""
        scores = [
            preflight(
                apply_fault(
                    small_session, "reverberant_room", rt60_s=rt, wet_level=1.6
                )
            ).score()
            for rt in sorted(rt60s)
        ]
        for milder, harsher in zip(scores, scores[1:]):
            assert harsher <= milder + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(
        stds=st.lists(
            st.floats(min_value=0.01, max_value=0.6),
            min_size=2,
            max_size=3,
            unique=True,
        )
    )
    def test_confidence_never_rises_with_noise_level(self, small_session, stds):
        """A higher broadband noise floor can only lower the confidence."""
        scores = [
            preflight(apply_fault(small_session, "mic_noise", std=std)).score()
            for std in sorted(stds)
        ]
        for milder, harsher in zip(scores, scores[1:]):
            assert harsher <= milder + 1e-9


def _clip_probe_subset(session, count: int, level: float):
    """Clip the first ``count`` probes hard, leave the rest untouched."""
    probes = list(session.probes)
    for i in range(count):
        p = probes[i]
        probes[i] = ProbeMeasurement(
            time=p.time,
            left=np.clip(p.left, -level, level),
            right=np.clip(p.right, -level, level),
        )
    return replace(session, probes=tuple(probes))


class TestProbeSalvage:
    def test_salvage_retry_recovers_a_rejected_solve(self, base_session):
        session = _clip_probe_subset(
            base_session, base_session.n_probes // 2, 0.03 * _peak(base_session)
        )
        result = _personalize(session)
        salvage = result.quality.salvage
        assert salvage["retried"] is True
        assert salvage["downweighted"] is True
        assert salvage["dropped_probes"]
        assert any(
            flag.key == "pipeline.salvage_retry" for flag in result.quality.flags
        )
        assert result.confidence < 1.0

    def test_salvage_disabled_propagates_the_error(self, base_session):
        session = _clip_probe_subset(
            base_session, base_session.n_probes // 2, 0.03 * _peak(base_session)
        )
        config = UniqConfig(
            angle_grid_deg=grid_from_step(FAST["angle_step_deg"]), salvage=False
        )
        with pytest.raises(CalibrationError):
            Uniq(config).personalize(session)


class TestImuFaultHelpers:
    def test_gyro_faults_never_mutate_the_original(self, small_session):
        times = small_session.imu.times.copy()
        rate = small_session.imu.rate_dps.copy()
        apply_fault(small_session, "gyro_saturation", limit_dps=5.0)
        apply_fault(small_session, "gyro_dropout")
        apply_fault(small_session, "gyro_bias_drift", drift_dps_per_s=0.5)
        apply_fault(small_session, "clock_skew", skew=0.1)
        np.testing.assert_array_equal(small_session.imu.times, times)
        np.testing.assert_array_equal(small_session.imu.rate_dps, rate)

    def test_gyro_faults_are_deterministic(self, small_session):
        one = apply_fault(small_session, "gyro_bias_drift", drift_dps_per_s=0.5)
        two = apply_fault(small_session, "gyro_bias_drift", drift_dps_per_s=0.5)
        np.testing.assert_array_equal(one.imu.rate_dps, two.imu.rate_dps)

    def test_gyro_dropout_keeps_timestamps_increasing(self, small_session):
        session = apply_fault(
            small_session, "gyro_dropout", start_frac=0.3, duration_frac=0.2
        )
        assert len(session.imu) < len(small_session.imu)
        assert bool(np.all(np.diff(session.imu.times) > 0))

    def test_invalid_fault_parameters_rejected(self, small_session):
        with pytest.raises(ReproError):
            apply_fault(small_session, "gyro_saturation", limit_dps=-1.0)
        with pytest.raises(ReproError):
            apply_fault(small_session, "clock_skew", skew=-1.5)
        with pytest.raises(ReproError):
            apply_fault(small_session, "gyro_dropout", start_frac=2.0)

    def test_synthetic_failure_always_raises(self, small_session):
        with pytest.raises(ReproError, match="synthetic failure"):
            apply_fault(small_session, "synthetic-failure")


class TestJobFaultValidation:
    """A bad JSONL job must fail at load time, not inside a worker."""

    def test_unknown_fault_rejected_at_construction(self):
        from repro.serve import Job

        with pytest.raises(ReproError, match="unknown fault"):
            Job(job_id="x", subject_seed=1, fault="gremlins")

    def test_misspelled_fault_args_rejected(self):
        from repro.serve import Job

        with pytest.raises(ReproError, match="fault_args"):
            Job(
                job_id="x", subject_seed=1, fault="clipped",
                fault_args={"lvel": 0.2},
            )

    def test_missing_required_fault_args_rejected(self):
        from repro.serve import Job

        with pytest.raises(ReproError, match="fault_args"):
            Job(job_id="x", subject_seed=1, fault="clipped")

    def test_valid_fault_specs_accepted(self):
        from repro.serve import Job

        Job(job_id="a", subject_seed=1, fault="dropout",
            fault_args={"keep_every": 2})
        Job(job_id="b", subject_seed=1, fault="zeroed")
        Job(job_id="c", subject_seed=1, fault="synthetic-failure")

    def test_bad_jsonl_fails_the_whole_file(self, tmp_path):
        from repro.serve import load_jobs

        path = tmp_path / "jobs.jsonl"
        path.write_text(
            '{"job_id": "good", "subject_seed": 1}\n'
            '{"job_id": "bad", "subject_seed": 1, "fault": "gremlins"}\n'
        )
        with pytest.raises(ReproError, match="unknown fault"):
            load_jobs(path)


@pytest.mark.slow
class TestServeQuality:
    """Quality reports flow through the batch service untouched."""

    def test_degraded_job_reports_flags_without_touching_siblings(self):
        from repro.serve import BatchServer, Job, execute_job

        jobs = [
            Job(job_id="healthy-1", subject_seed=1, **FAST),
            Job(job_id="degraded", subject_seed=1, fault="dropout",
                fault_args={"keep_every": 3}, **FAST),
            Job(job_id="healthy-2", subject_seed=7, session_seed=3, **FAST),
        ]
        with BatchServer(workers=2, runner=execute_job) as server:
            report = server.run_batch(jobs)
        by_id = {r.job_id: r for r in report.results}
        assert all(r.ok for r in report.results)

        degraded = by_id["degraded"].payload
        assert degraded["confidence"] < 1.0
        assert degraded["quality"]["flags"]
        assert all(f["stage"] in STAGES for f in degraded["quality"]["flags"])

        # Siblings are bit-identical to running the same spec directly,
        # and their quality is untouched by the corrupted neighbour.
        for job_id, job in (("healthy-1", jobs[0]), ("healthy-2", jobs[2])):
            direct = {
                key: value
                for key, value in execute_job(job.to_dict()).items()
                if not key.startswith("_")
            }
            assert by_id[job_id].deterministic()["payload"] == direct
            assert by_id[job_id].payload["confidence"] == 1.0
            assert by_id[job_id].payload["quality"]["flags"] == []

        summary = report.quality_summary()
        assert summary["graded_jobs"] == 3
        assert summary["flagged_jobs"] == ["degraded"]
        assert summary["min_confidence"] == degraded["confidence"]
        assert (
            summary["min_confidence"]
            <= summary["mean_confidence"]
            <= 1.0
        )
        assert all("." in key for key in summary["flag_counts"])
