"""Light-configuration smoke tests of the experiment harnesses.

The benchmarks run the full paper-scale experiments; these tests run scaled-
down configurations to validate harness structure and invariants quickly.
"""

import numpy as np
import pytest

from repro.eval.common import (
    _cohort_workers,
    cdf_points,
    format_table,
    get_cohort,
    measured_ground_truth_table,
)
from repro.eval.groundwork import fig2_pinna_correlation, fig5_diffraction_evidence
from repro.eval.channels import fig9_channel_response, fig14_relative_channel
from repro.eval.hardware import fig16_frequency_response
from repro.hrtf.metrics import mean_table_correlation
from repro.hrtf.reference import ground_truth_table


class TestCommonHelpers:
    def test_cdf_points(self):
        values, probs = cdf_points(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "value" in lines[0]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_measured_ground_truth_close_to_exact(self, subject):
        angles = np.array([30.0, 60.0, 90.0])
        exact = ground_truth_table(subject, angles)
        remeasured = measured_ground_truth_table(subject, angles, seed=3)
        c_left, c_right = mean_table_correlation(remeasured, exact)
        assert c_left > 0.8
        assert c_right > 0.8

    def test_measured_ground_truth_not_exact(self, subject):
        """Noise keeps the re-measurement below a perfect correlation."""
        angles = np.array([30.0, 60.0])
        exact = ground_truth_table(subject, angles)
        remeasured = measured_ground_truth_table(
            subject, angles, seed=3, noise_std=0.05
        )
        c_left, _ = mean_table_correlation(remeasured, exact)
        assert c_left < 0.999


class TestCohortWorkers:
    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COHORT_WORKERS", "8")
        assert _cohort_workers(2, n=5) == 2

    def test_env_opt_out_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_COHORT_WORKERS", "1")
        assert _cohort_workers(None, n=5) == 1
        monkeypatch.setenv("REPRO_COHORT_WORKERS", "0")
        assert _cohort_workers(None, n=5) == 1

    def test_capped_by_cohort_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_COHORT_WORKERS", raising=False)
        assert _cohort_workers(64, n=3) == 3

    def test_non_integer_env_warns_and_falls_back(self, monkeypatch, caplog):
        """``REPRO_COHORT_WORKERS=auto`` (or any typo) must not crash the
        evaluation: warn, count, fall back to the cpu-count default."""
        import logging
        import os

        from repro.obs import metrics as obs_metrics

        monkeypatch.setenv("REPRO_COHORT_WORKERS", "auto")
        counter = obs_metrics.counter("cohort.workers_env_invalid")
        before = counter.value
        with caplog.at_level(logging.WARNING, logger="repro.eval.common"):
            resolved = _cohort_workers(None, n=64)
        assert resolved == max(1, min(os.cpu_count() or 1, 64))
        assert counter.value - before == 1
        assert any(
            "cohort.workers_env_invalid" in r.message for r in caplog.records
        )


class TestParallelCohort:
    def test_parallel_bit_identical_to_serial(self):
        """Worker processes must not change a single bit of any member."""
        serial = get_cohort(2, 1.1, workers=1)
        parallel = get_cohort(2, 1.1, workers=2)
        assert len(serial) == len(parallel) == 2
        for ms, mp_ in zip(serial.members, parallel.members):
            assert ms.subject.name == mp_.subject.name
            fs_, fp = ms.personalization.fusion, mp_.personalization.fusion
            assert fs_.head.parameters == fp.head.parameters
            assert fs_.gyro_bias_dps == fp.gyro_bias_dps
            np.testing.assert_array_equal(fs_.radii_m, fp.radii_m)
            np.testing.assert_array_equal(
                fs_.fused_angles_deg, fp.fused_angles_deg
            )
            for table_s, table_p in (
                (ms.personalization.table, mp_.personalization.table),
                (ms.ground_truth, mp_.ground_truth),
            ):
                for es, ep in zip(table_s.far, table_p.far):
                    np.testing.assert_array_equal(es.left, ep.left)
                    np.testing.assert_array_equal(es.right, ep.right)
                for es, ep in zip(table_s.near, table_p.near):
                    np.testing.assert_array_equal(es.left, ep.left)
                    np.testing.assert_array_equal(es.right, ep.right)


class TestGroundworkHarness:
    def test_fig2_small_grid(self):
        result = fig2_pinna_correlation(angle_step_deg=45.0)
        n = result.angles_deg.shape[0]
        assert result.same_user.shape == (n, n)
        assert result.cross_user.shape == (n, n)
        # Self-measurement repeats correlate near 1 on the diagonal.
        assert result.same_user.diagonal().mean() > 0.85
        # Cross-user diagonal is clearly lower.
        assert result.cross_user_diagonal_mean < 0.8

    def test_fig5_diffraction_wins(self):
        result = fig5_diffraction_evidence(n_mic_positions=4)
        assert result.rms_error_diffracted_cm < result.rms_error_euclidean_cm
        # The measured curve grows with mic position (deeper shadow).
        assert np.all(np.diff(result.measured_delta_d_cm) > 0)


class TestChannelHarness:
    def test_fig9_taps_on_truth(self):
        result = fig9_channel_response()
        err_left, err_right = result.first_tap_error_samples
        assert err_left < 3.0 and err_right < 3.0
        assert result.n_taps_left >= 2

    def test_fig14_multiple_peaks(self):
        result = fig14_relative_channel()
        assert result.n_peaks >= 2
        assert abs(result.strongest_peak_ms - result.true_itd_ms) < 0.2


class TestHardwareHarness:
    def test_fig16_shape(self):
        result = fig16_frequency_response()
        assert result.low_band_std_db > result.mid_band_std_db
        assert result.measurement_rms_error_db < 3.0
