"""Tests for normalized cross-correlation and alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.signals.correlation import (
    align_to_first_tap,
    correlation_and_lag,
    cross_correlate_full,
    max_normalized_correlation,
)
from repro.signals.delays import add_tap


class TestCrossCorrelateFull:
    @given(
        n_a=st.integers(4, 200),
        n_b=st.integers(4, 200),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_small(self, n_a, n_b, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(n_a)
        b = rng.standard_normal(n_b)
        np.testing.assert_allclose(
            cross_correlate_full(a, b), np.correlate(a, b, mode="full"), atol=1e-9
        )

    def test_matches_numpy_above_fft_threshold(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(5000)
        b = rng.standard_normal(3000)
        np.testing.assert_allclose(
            cross_correlate_full(a, b), np.correlate(a, b, mode="full"), atol=1e-6
        )

    def test_empty_raises(self):
        with pytest.raises(SignalError):
            cross_correlate_full(np.zeros(0), np.ones(4))


class TestCorrelationAndLag:
    def test_identical_signals(self):
        rng = np.random.default_rng(0)
        signal = rng.standard_normal(256)
        c, lag = correlation_and_lag(signal, signal)
        assert c == pytest.approx(1.0)
        assert lag == 0

    def test_scaling_invariance(self):
        rng = np.random.default_rng(1)
        signal = rng.standard_normal(256)
        assert max_normalized_correlation(signal, 3.7 * signal) == pytest.approx(1.0)

    def test_known_lag(self):
        signal = np.zeros(128)
        signal[30] = 1.0
        shifted = np.zeros(128)
        shifted[40] = 1.0
        _, lag = correlation_and_lag(signal, shifted)
        assert lag == -10  # b happens later than a

    def test_uncorrelated_signals_low(self):
        rng = np.random.default_rng(2)
        c = max_normalized_correlation(
            rng.standard_normal(4096), rng.standard_normal(4096)
        )
        assert abs(c) < 0.15

    def test_zero_signal_raises(self):
        with pytest.raises(SignalError):
            correlation_and_lag(np.zeros(16), np.ones(16))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_bounded_by_one(self, seed):
        rng = np.random.default_rng(seed)
        c = max_normalized_correlation(
            rng.standard_normal(100), rng.standard_normal(120)
        )
        assert -1.0 - 1e-9 <= c <= 1.0 + 1e-9


class TestAlignToFirstTap:
    def test_tap_lands_at_pre_samples(self):
        impulse = np.zeros(128)
        add_tap(impulse, 50.0, 1.0)
        aligned = align_to_first_tap(impulse, 64, pre_samples=4)
        assert np.argmax(np.abs(aligned)) == 4

    def test_relative_structure_preserved(self):
        impulse = np.zeros(128)
        add_tap(impulse, 50.0, 1.0)
        add_tap(impulse, 62.0, 0.5)
        aligned = align_to_first_tap(impulse, 64, pre_samples=4)
        assert aligned[16] == pytest.approx(0.5, abs=0.02)

    def test_alignment_makes_shifts_equal(self):
        base = np.zeros(200)
        add_tap(base, 40.0, 1.0)
        add_tap(base, 55.0, -0.7)
        shifted = np.zeros(200)
        add_tap(shifted, 90.0, 1.0)
        add_tap(shifted, 105.0, -0.7)
        a = align_to_first_tap(base, 100)
        b = align_to_first_tap(shifted, 100)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_invalid_pre_samples(self):
        with pytest.raises(SignalError):
            align_to_first_tap(np.ones(16), 8, pre_samples=8)

    def test_invalid_length(self):
        with pytest.raises(SignalError):
            align_to_first_tap(np.ones(16), 0)
