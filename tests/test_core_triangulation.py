"""Tests for acoustic speaker triangulation."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.geometry.vec import angle_deg_of, wrap_angle_deg
from repro.hrtf.reference import ground_truth_table
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import chirp
from repro.core.triangulation import AcousticTriangulator, PoseEstimate, Speaker

FS = 48_000


def _speakers() -> list[Speaker]:
    """Three speakers playing mutually orthogonal noise signatures.

    Independent pseudo-noise sequences are the standard multi-beacon
    choice: a quarter second at 48 kHz gives ~40 dB of cross-speaker
    suppression after matched filtering.
    """
    from repro.signals.waveforms import white_noise

    return [
        Speaker(
            np.array([0.0, 8.0]),
            white_noise(0.25, FS, rng=np.random.default_rng(71)),
        ),
        Speaker(
            np.array([7.0, 2.0]),
            white_noise(0.25, FS, rng=np.random.default_rng(72)),
        ),
        Speaker(
            np.array([-6.0, 1.0]),
            white_noise(0.25, FS, rng=np.random.default_rng(73)),
        ),
    ]


@pytest.fixture(scope="module")
def triangulator(subject):
    table = ground_truth_table(subject, np.arange(0.0, 181.0, 5.0), FS)
    return AcousticTriangulator(table)


def _mixed_recording(subject, speakers, listener, facing_deg, rng):
    """Binaural mix of all speakers heard from one pose."""
    left = np.zeros(0)
    right = np.zeros(0)
    for speaker in speakers:
        offset = speaker.position - listener
        relative = float(wrap_angle_deg(angle_deg_of(offset) - facing_deg))
        # Left-semicircle table: render |angle| and mirror ears if needed.
        l_part, r_part = record_far_field(
            subject, abs(relative), speaker.signal, FS, rng=rng, noise_std=0.0
        )
        if relative < 0:
            l_part, r_part = r_part, l_part
        n = max(left.shape[0], l_part.shape[0])
        new_left = np.zeros(n)
        new_right = np.zeros(n)
        new_left[: left.shape[0]] = left
        new_right[: right.shape[0]] = right
        new_left[: l_part.shape[0]] += l_part
        new_right[: r_part.shape[0]] += r_part
        left, right = new_left, new_right
    left = left + rng.normal(0.0, 0.002, left.shape[0])
    right = right + rng.normal(0.0, 0.002, right.shape[0])
    return left, right


class TestPoseSolver:
    def test_exact_bearings_recover_pose(self):
        speakers = _speakers()
        truth_pos = np.array([1.0, 2.5])
        truth_psi = 25.0
        bearings = np.array(
            [
                wrap_angle_deg(angle_deg_of(s.position - truth_pos) - truth_psi)
                for s in speakers
            ]
        )
        pose = AcousticTriangulator.solve_pose(bearings, speakers)
        np.testing.assert_allclose(pose.position, truth_pos, atol=1e-6)
        assert pose.facing_deg == pytest.approx(truth_psi, abs=1e-6)
        assert pose.residual_deg < 1e-6

    def test_noisy_bearings_still_close(self):
        speakers = _speakers()
        truth_pos = np.array([-1.0, 3.0])
        rng = np.random.default_rng(0)
        bearings = np.array(
            [
                wrap_angle_deg(angle_deg_of(s.position - truth_pos) - 10.0)
                for s in speakers
            ]
        ) + rng.normal(0.0, 3.0, 3)
        pose = AcousticTriangulator.solve_pose(
            bearings, speakers, initial_facing_deg=0.0
        )
        assert np.linalg.norm(pose.position - truth_pos) < 1.0

    def test_requires_three_speakers(self):
        speakers = _speakers()[:2]
        with pytest.raises(SignalError):
            AcousticTriangulator.solve_pose(np.array([10.0, -20.0]), speakers)


class TestBearingMeasurement:
    def test_signed_bearing_sides(self, subject, triangulator):
        rng = np.random.default_rng(1)
        signal = chirp(500.0, 6000.0, 0.1, FS)
        left, right = record_far_field(subject, 50.0, signal, FS, rng=rng,
                                       noise_std=0.002)
        assert triangulator.signed_bearing(left, right, signal, FS) > 0
        # Mirror the ears: the source appears on the right.
        assert triangulator.signed_bearing(right, left, signal, FS) < 0

    def test_bearings_from_mix(self, subject, triangulator):
        speakers = _speakers()
        listener = np.array([0.5, 2.0])
        facing = 15.0
        rng = np.random.default_rng(2)
        left, right = _mixed_recording(subject, speakers, listener, facing, rng)
        bearings = triangulator.measure_bearings(left, right, speakers, FS)
        truth = np.array(
            [
                wrap_angle_deg(angle_deg_of(s.position - listener) - facing)
                for s in speakers
            ]
        )
        assert np.median(np.abs(wrap_angle_deg(bearings - truth))) < 10.0


class TestEndToEnd:
    def test_locate_from_recording(self, subject, triangulator):
        speakers = _speakers()
        listener = np.array([1.5, 3.0])
        facing = -20.0
        rng = np.random.default_rng(3)
        left, right = _mixed_recording(subject, speakers, listener, facing, rng)
        pose = triangulator.locate(
            left, right, speakers, FS,
            initial_position=np.array([0.0, 2.0]),
            initial_facing_deg=0.0,
        )
        assert isinstance(pose, PoseEstimate)
        assert np.linalg.norm(pose.position - listener) < 1.5
        assert abs(wrap_angle_deg(pose.facing_deg - facing)) < 15.0
