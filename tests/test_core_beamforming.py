"""Tests for HRTF-aware binaural beamforming."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.beamforming import BinauralBeamformer, signal_to_interference_gain
from repro.hrtf.reference import global_template_table, ground_truth_table
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import speech_like, white_noise

FS = 48_000
ANGLES = np.arange(0.0, 181.0, 5.0)


@pytest.fixture(scope="module")
def beamformer(subject):
    return BinauralBeamformer(ground_truth_table(subject, ANGLES, FS))


@pytest.fixture(scope="module")
def scene(subject):
    """Speech target at 40 deg, noise interferer at 120 deg, no mic noise."""
    rng = np.random.default_rng(0)
    target = speech_like(0.5, FS, rng=np.random.default_rng(1))
    interferer = white_noise(0.5, FS, rng=np.random.default_rng(2))
    t_pair = record_far_field(subject, 40.0, target, FS, rng=rng, noise_std=0.0)
    i_pair = record_far_field(subject, 120.0, interferer, FS, rng=rng, noise_std=0.0)
    return t_pair, i_pair


class TestMatched:
    def test_matched_improves_sir(self, beamformer, scene):
        (tl, tr), (il, ir) = scene
        gain = signal_to_interference_gain(beamformer, tl, tr, il, ir, FS, 40.0)
        assert gain > 3.0

    def test_target_passes_with_unit_scale(self, beamformer, subject):
        """A target from the steering direction survives beamforming."""
        signal = white_noise(0.3, FS, rng=np.random.default_rng(3))
        left, right = record_far_field(subject, 60.0, signal, FS,
                                       rng=np.random.default_rng(4), noise_std=0.0)
        out = beamformer.extract(left, right, FS, 60.0)
        assert np.sum(out**2) > 0.1 * np.sum(left**2)


class TestNullSteering:
    def test_exact_table_nulls_interferer(self, beamformer, subject):
        interferer = white_noise(0.3, FS, rng=np.random.default_rng(5))
        il, ir = record_far_field(subject, 120.0, interferer, FS,
                                  rng=np.random.default_rng(6), noise_std=0.0)
        out = beamformer.extract(il, ir, FS, target_deg=40.0, null_deg=120.0)
        suppression_db = 10 * np.log10(np.sum(out**2) / np.sum(il**2))
        # Nulls are exact on safe bins; the few degenerate bins fall back to
        # matched weights and bound the total suppression around -15 dB.
        assert suppression_db < -12.0

    def test_null_beats_matched_on_sir(self, beamformer, scene):
        (tl, tr), (il, ir) = scene
        matched = signal_to_interference_gain(beamformer, tl, tr, il, ir, FS, 40.0)
        nulled = signal_to_interference_gain(
            beamformer, tl, tr, il, ir, FS, 40.0, null_deg=120.0
        )
        assert nulled > matched

    def test_personal_beats_global(self, subject, scene):
        """The personalization claim: accurate steering vectors matter."""
        (tl, tr), (il, ir) = scene
        personal = BinauralBeamformer(ground_truth_table(subject, ANGLES, FS))
        template = BinauralBeamformer(global_template_table(ANGLES, FS))
        own = signal_to_interference_gain(
            personal, tl, tr, il, ir, FS, 40.0, null_deg=120.0
        )
        other = signal_to_interference_gain(
            template, tl, tr, il, ir, FS, 40.0, null_deg=120.0
        )
        assert own > other + 5.0


class TestValidation:
    def test_rate_mismatch_raises(self, beamformer):
        with pytest.raises(SignalError):
            beamformer.extract(np.ones(512), np.ones(512), 44_100, 40.0)

    def test_shape_mismatch_raises(self, beamformer):
        with pytest.raises(SignalError):
            beamformer.extract(np.ones(512), np.ones(256), FS, 40.0)
