"""Failure-injection tests: the pipeline under degraded captures.

A home measurement system meets clipped audio, missing probes, loud rooms,
and noisy sensors.  These tests assert either graceful degradation (results
get worse, not wrong) or an explicit :class:`CalibrationError` — never
silent garbage.
"""

import numpy as np
import pytest

from repro.errors import CalibrationError, SignalError
from repro.core.fusion import DiffractionAwareSensorFusion
from repro.core.pipeline import Uniq, UniqConfig
from repro.simulation.imu import GyroscopeModel
from repro.simulation.room import RoomModel
from repro.simulation.session import MeasurementSession
from repro.testing.faults import apply_fault, clipped, dropout, zeroed

GRID = tuple(float(a) for a in range(0, 181, 20))


class TestClipping:
    def test_mild_clipping_survivable(self, small_session):
        """Soft clipping distorts but the chirp structure survives."""
        peak = max(np.max(np.abs(p.left)) for p in small_session.probes)
        session = clipped(small_session, 0.6 * peak)
        fusion = DiffractionAwareSensorFusion().run(session)
        truth = session.truth.probe_angles_deg()
        assert np.median(np.abs(fusion.fused_angles_deg - truth)) < 8.0


class TestProbeDropout:
    def test_half_the_probes_still_personalizes(self, small_session):
        session = dropout(small_session, 2)
        result = Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(session)
        assert result.table.n_angles == len(GRID)

    def test_sparse_probes_still_fuse(self, small_session):
        session = dropout(small_session, 4)
        fusion = DiffractionAwareSensorFusion().run(session)
        truth = session.truth.probe_angles_deg()
        assert np.median(np.abs(fusion.fused_angles_deg - truth)) < 8.0


class TestHostileEnvironment:
    def test_loud_room_still_works(self, subject):
        """A very reverberant room: truncation protects the pipeline."""
        room = RoomModel(first_echo_s=0.005, decay_time_s=0.12, level=0.6)
        session = MeasurementSession(
            subject, seed=61, probe_interval_s=0.5, room=room
        ).run()
        fusion = DiffractionAwareSensorFusion().run(session)
        truth = session.truth.probe_angles_deg()
        assert np.median(np.abs(fusion.fused_angles_deg - truth)) < 8.0

    def test_heavy_mic_noise_degrades_gracefully(self, subject):
        quiet = MeasurementSession(
            subject, seed=62, probe_interval_s=0.5, noise_std=0.002
        ).run()
        noisy = MeasurementSession(
            subject, seed=62, probe_interval_s=0.5, noise_std=0.08
        ).run()
        fusion = DiffractionAwareSensorFusion()
        err_quiet = np.median(
            np.abs(
                fusion.run(quiet).fused_angles_deg
                - quiet.truth.probe_angles_deg()
            )
        )
        err_noisy = np.median(
            np.abs(
                fusion.run(noisy).fused_angles_deg
                - noisy.truth.probe_angles_deg()
            )
        )
        assert err_quiet <= err_noisy + 0.5  # noise never helps
        assert err_noisy < 15.0  # but it degrades, it does not break

    def test_terrible_gyro_rejected_or_flagged(self, subject):
        """A broken gyro (huge bias walk) must not silently succeed."""
        gyro = GyroscopeModel(
            bias_dps=8.0, bias_walk_dps=2.0, noise_std_dps=5.0, scale_error=0.1
        )
        session = MeasurementSession(
            subject, seed=63, probe_interval_s=0.5, gyro=gyro
        ).run()
        try:
            result = Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(session)
        except CalibrationError:
            return  # explicit rejection is the desired behaviour
        # If it passed the check, quality must actually be acceptable.
        truth = session.truth.probe_angles_deg()
        errors = np.abs(result.fusion.fused_angles_deg - truth)
        assert np.median(errors) < 10.0


class TestFaultHelpers:
    """The promoted repro.testing.faults module itself."""

    def test_faults_never_mutate_the_original(self, small_session):
        before = small_session.probes[0].left.copy()
        clipped(small_session, 0.001)
        zeroed(small_session)
        np.testing.assert_array_equal(small_session.probes[0].left, before)

    def test_zeroed_capture_raises_not_garbage(self, small_session):
        with pytest.raises(SignalError):
            Uniq(UniqConfig(angle_grid_deg=GRID)).personalize(
                zeroed(small_session)
            )

    def test_apply_fault_by_name_matches_direct_call(self, small_session):
        by_name = apply_fault(small_session, "dropout", keep_every=2)
        direct = dropout(small_session, 2)
        assert len(by_name.probes) == len(direct.probes)
        np.testing.assert_array_equal(
            by_name.probes[0].left, direct.probes[0].left
        )

    def test_apply_fault_rejects_unknown_name(self, small_session):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown fault"):
            apply_fault(small_session, "gremlins")
