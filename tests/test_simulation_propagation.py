"""Tests for the binaural propagation renderer."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_SOUND
from repro.errors import SignalError
from repro.geometry.head import Ear
from repro.geometry.paths import propagation_path
from repro.geometry.plane_wave import interaural_delay
from repro.geometry.vec import polar_to_cartesian
from repro.simulation.propagation import (
    HRIR_PRE_DELAY_S,
    record_at_boundary_point,
    record_far_field,
    record_near_field,
    render_far_field_hrir,
    render_near_field_hrir,
    taps_to_ir,
)
from repro.simulation.room import RoomModel
from repro.signals.channel import estimate_channel, first_tap_index, refine_tap_position
from repro.signals.waveforms import probe_chirp

FS = 48_000


class TestTapsToIr:
    def test_single_tap(self):
        ir = taps_to_ir(np.array([10.0 / FS]), np.array([0.8]), FS, 64)
        assert np.argmax(np.abs(ir)) == 10
        assert ir[10] == pytest.approx(0.8, abs=1e-6)

    def test_rejects_negative_delay(self):
        with pytest.raises(SignalError):
            taps_to_ir(np.array([-1.0]), np.array([1.0]), FS, 64)

    def test_rejects_mismatched(self):
        with pytest.raises(SignalError):
            taps_to_ir(np.zeros(2), np.zeros(3), FS, 64)


class TestNearFieldHrir:
    def test_first_tap_at_pre_delay(self, subject):
        position = polar_to_cartesian(0.45, 40.0)
        left, right = render_near_field_hrir(subject, position, FS)
        pre_samples = HRIR_PRE_DELAY_S * FS
        # The earlier ear (left: source on the left) sits at the pre-delay.
        assert first_tap_index(left) == pytest.approx(pre_samples, abs=1.5)

    def test_interaural_delay_matches_geometry(self, subject):
        position = polar_to_cartesian(0.45, 60.0)
        left, right = render_near_field_hrir(subject, position, FS)
        tap_left = refine_tap_position(left, first_tap_index(left))
        tap_right = refine_tap_position(right, first_tap_index(right))
        expected = (
            propagation_path(subject.head, position, Ear.RIGHT).length
            - propagation_path(subject.head, position, Ear.LEFT).length
        ) / SPEED_OF_SOUND * FS
        assert tap_right - tap_left == pytest.approx(expected, abs=0.6)

    def test_shadowed_ear_attenuated(self, subject):
        position = polar_to_cartesian(0.45, 90.0)
        left, right = render_near_field_hrir(subject, position, FS)
        assert np.max(np.abs(right)) < 0.5 * np.max(np.abs(left))

    def test_multipath_present(self, subject):
        position = polar_to_cartesian(0.45, 30.0)
        left, _ = render_near_field_hrir(subject, position, FS)
        # Energy beyond the first tap region (pinna echoes).
        tap = first_tap_index(left)
        tail_energy = np.sum(left[tap + 8 :] ** 2)
        assert tail_energy > 0.1 * np.sum(left**2)


class TestFarFieldHrir:
    def test_interaural_delay_matches_plane_wave(self, subject):
        for theta in (20.0, 60.0, 120.0):
            left, right = render_far_field_hrir(subject, theta, FS)
            tap_left = refine_tap_position(left, first_tap_index(left))
            tap_right = refine_tap_position(right, first_tap_index(right))
            expected = -interaural_delay(subject.head, theta) * FS
            assert tap_right - tap_left == pytest.approx(expected, abs=0.6)

    def test_frontal_symmetric_delays(self, subject):
        left, right = render_far_field_hrir(subject, 0.0, FS)
        assert first_tap_index(left) == pytest.approx(first_tap_index(right), abs=1)

    def test_near_and_far_differ_at_same_angle(self, subject):
        """The premise of near-far conversion (paper Fig. 7)."""
        position = polar_to_cartesian(0.45, 45.0)
        near_l, near_r = render_near_field_hrir(subject, position, FS)
        far_l, far_r = render_far_field_hrir(subject, 45.0, FS)
        near_itd = refine_tap_position(near_r, first_tap_index(near_r)) - \
            refine_tap_position(near_l, first_tap_index(near_l))
        far_itd = refine_tap_position(far_r, first_tap_index(far_r)) - \
            refine_tap_position(far_l, first_tap_index(far_l))
        assert abs(near_itd - far_itd) > 0.5  # samples


class TestRecordings:
    def test_near_field_recording_first_tap_absolute(self, subject, rng):
        position = polar_to_cartesian(0.5, 30.0)
        chirp = probe_chirp(FS)
        left, _ = record_near_field(subject, position, chirp, FS, rng=rng)
        channel = estimate_channel(left, chirp, 600)
        expected = propagation_path(subject.head, position, Ear.LEFT).length \
            / SPEED_OF_SOUND * FS
        assert first_tap_index(channel) == pytest.approx(expected, abs=1.5)

    def test_room_adds_late_energy(self, subject):
        position = polar_to_cartesian(0.5, 30.0)
        chirp = probe_chirp(FS)
        quiet_l, _ = record_near_field(
            subject, position, chirp, FS,
            rng=np.random.default_rng(0), room=None, noise_std=0.0,
        )
        room_l, _ = record_near_field(
            subject, position, chirp, FS,
            rng=np.random.default_rng(0),
            room=RoomModel.typical_living_room(), noise_std=0.0,
        )
        quiet_ch = estimate_channel(quiet_l, chirp, 1200)
        room_ch = estimate_channel(room_l, chirp, 1200)
        late = slice(500, 1200)
        assert np.sum(room_ch[late] ** 2) > 10 * np.sum(quiet_ch[late] ** 2)

    def test_noise_controls_floor(self, subject):
        position = polar_to_cartesian(0.5, 30.0)
        chirp = probe_chirp(FS)
        loud, _ = record_near_field(
            subject, position, chirp, FS,
            rng=np.random.default_rng(1), noise_std=0.1, room=None,
        )
        quiet, _ = record_near_field(
            subject, position, chirp, FS,
            rng=np.random.default_rng(1), noise_std=0.001, room=None,
        )
        assert np.std(loud - quiet) > 0.05

    def test_far_field_recording_itd(self, subject, rng):
        chirp = probe_chirp(FS)
        left, right = record_far_field(subject, 70.0, chirp, FS, rng=rng)
        ch_left = estimate_channel(left, chirp, 300)
        ch_right = estimate_channel(right, chirp, 300)
        measured = (
            refine_tap_position(ch_right, first_tap_index(ch_right))
            - refine_tap_position(ch_left, first_tap_index(ch_left))
        ) / FS
        assert measured == pytest.approx(-interaural_delay(subject.head, 70.0), abs=3e-5)

    def test_boundary_point_recording(self, subject, rng):
        chirp = probe_chirp(FS)
        index = subject.head.ear_index(Ear.LEFT) // 2  # mid-cheek
        recording = record_at_boundary_point(
            subject, polar_to_cartesian(0.8, -60.0), index, chirp, FS, rng
        )
        channel = estimate_channel(recording, chirp, 600)
        from repro.geometry.paths import path_to_boundary_point

        expected = path_to_boundary_point(
            subject.head, polar_to_cartesian(0.8, -60.0), index
        ).length / SPEED_OF_SOUND * FS
        assert first_tap_index(channel) == pytest.approx(expected, abs=1.5)

    def test_rejects_bad_signal(self, subject, rng):
        with pytest.raises(SignalError):
            record_near_field(subject, polar_to_cartesian(0.5, 30.0), np.zeros(1), FS, rng=rng)
