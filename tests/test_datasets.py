"""Tests for session serialization and cohort dataset generation."""

import json

import numpy as np
import pytest

from repro.datasets import generate_cohort_dataset, load_session, save_session
from repro.errors import TableError
from repro.core.fusion import DiffractionAwareSensorFusion


class TestSessionRoundtrip:
    def test_roundtrip_preserves_inputs(self, small_session, tmp_path):
        path = tmp_path / "session.npz"
        save_session(small_session, path)
        loaded = load_session(path)
        assert loaded.fs == small_session.fs
        assert loaded.n_probes == small_session.n_probes
        np.testing.assert_allclose(loaded.probe_signal, small_session.probe_signal)
        np.testing.assert_allclose(
            loaded.probes[3].left, small_session.probes[3].left
        )
        np.testing.assert_allclose(loaded.imu.rate_dps, small_session.imu.rate_dps)

    def test_roundtrip_preserves_truth(self, small_session, tmp_path):
        path = tmp_path / "session.npz"
        save_session(small_session, path)
        loaded = load_session(path)
        assert (
            loaded.truth.subject.head.parameters
            == small_session.truth.subject.head.parameters
        )
        np.testing.assert_allclose(
            loaded.truth.probe_angles_deg(),
            small_session.truth.probe_angles_deg(),
        )
        np.testing.assert_allclose(
            loaded.truth.subject.left_pinna.base_delays,
            small_session.truth.subject.left_pinna.base_delays,
        )

    def test_loaded_session_is_processable(self, small_session, tmp_path):
        """The pipeline runs identically on a reloaded capture."""
        path = tmp_path / "session.npz"
        save_session(small_session, path)
        loaded = load_session(path)
        fusion = DiffractionAwareSensorFusion()
        t_orig = fusion.extract_probe_delays(small_session)
        t_load = fusion.extract_probe_delays(loaded)
        np.testing.assert_allclose(t_load[0], t_orig[0])
        np.testing.assert_allclose(t_load[1], t_orig[1])

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.array([1]))
        with pytest.raises(TableError):
            load_session(path)


class TestCohortDataset:
    def test_generates_files_and_manifest(self, tmp_path):
        paths = generate_cohort_dataset(tmp_path / "cohort", n_subjects=2)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)
        with open(tmp_path / "cohort" / "manifest.json") as handle:
            manifest = json.load(handle)
        assert len(manifest) == 2
        assert manifest[0]["subject"] == "volunteer-1"
        assert len(manifest[0]["true_head_parameters_m"]) == 3

    def test_dataset_reproducible(self, tmp_path):
        paths_a = generate_cohort_dataset(tmp_path / "a", n_subjects=1)
        paths_b = generate_cohort_dataset(tmp_path / "b", n_subjects=1)
        a = load_session(paths_a[0])
        b = load_session(paths_b[0])
        np.testing.assert_array_equal(a.probes[0].left, b.probes[0].left)

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            generate_cohort_dataset(tmp_path, n_subjects=0)
