"""Tests for the markdown report generator."""

import pytest

from repro.eval.report import generate_report, main


@pytest.fixture(scope="module")
def report_text():
    return generate_report(cohort_size=2)


class TestReport:
    def test_contains_every_figure(self, report_text):
        for figure in (2, 5, 9, 14, 16, 17, 18, 19, 20, 21, 22):
            assert f"Figure {figure}" in report_text

    def test_reproducible_numbers(self, report_text):
        """Everything except the timestamp is deterministic."""
        again = generate_report(cohort_size=2)
        strip = lambda text: "\n".join(text.splitlines()[3:])
        assert strip(again) == strip(report_text)

    def test_cli_writes_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main([str(path), "--quick"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "Figure 22" in path.read_text()
