"""Tests for the vectorized batch path solver (must match the scalar one)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.batch import binaural_delays_batch, path_lengths_batch
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import binaural_delays, propagation_path
from repro.geometry.vec import polar_to_cartesian


class TestAgreementWithScalar:
    def test_matches_scalar_on_grid(self, average_head):
        rng = np.random.default_rng(3)
        sources = polar_to_cartesian(
            rng.uniform(0.2, 1.2, 40), rng.uniform(-180, 180, 40)
        )
        t_left, t_right = binaural_delays_batch(average_head, sources)
        for i, source in enumerate(sources):
            expect_l, expect_r = binaural_delays(average_head, source)
            assert t_left[i] == pytest.approx(expect_l, abs=1e-12)
            assert t_right[i] == pytest.approx(expect_r, abs=1e-12)

    @given(radius=st.floats(0.2, 1.5), angle=st.floats(-180, 180))
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_property(self, radius, angle):
        head = HeadGeometry.average()
        source = polar_to_cartesian(radius, angle)
        lengths = path_lengths_batch(head, source[None, :], Ear.LEFT)
        expected = propagation_path(head, source, Ear.LEFT).length
        assert lengths[0] == pytest.approx(expected, abs=1e-12)


class TestBatchSemantics:
    def test_inside_points_are_nan(self, average_head):
        sources = np.array([[0.0, 0.0], [0.5, 0.5]])
        lengths = path_lengths_batch(average_head, sources, Ear.LEFT)
        assert np.isnan(lengths[0])
        assert np.isfinite(lengths[1])

    def test_wrong_shape_raises(self, average_head):
        with pytest.raises(GeometryError):
            path_lengths_batch(average_head, np.zeros((3,)), Ear.LEFT)
        with pytest.raises(GeometryError):
            binaural_delays_batch(average_head, np.zeros((2, 3)))

    def test_empty_batch(self, average_head):
        lengths = path_lengths_batch(average_head, np.zeros((0, 2)), Ear.LEFT)
        assert lengths.shape == (0,)

    def test_large_batch_consistent_between_ears(self, average_head):
        """On the nose axis, both ears are equidistant (symmetry check)."""
        sources = np.stack([np.zeros(20), np.linspace(0.3, 2.0, 20)], axis=1)
        t_left, t_right = binaural_delays_batch(average_head, sources)
        np.testing.assert_allclose(t_left, t_right, atol=1e-7)
