"""Tests for channel estimation and tap analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.obs import metrics as obs_metrics
from repro.signals.channel import (
    ProbeChannelBank,
    estimate_channel,
    find_taps,
    first_tap_index,
    refine_tap_position,
    truncate_after,
)
from repro.signals.delays import add_tap
from repro.signals.waveforms import probe_chirp

FS = 48_000


def _synthetic_channel(taps: list[tuple[float, float]], length: int = 256) -> np.ndarray:
    channel = np.zeros(length)
    for delay, gain in taps:
        add_tap(channel, delay, gain)
    return channel


class TestEstimateChannel:
    def test_recovers_known_channel_taps(self):
        """Tap positions and relative amplitudes survive deconvolution.

        The probe is band-limited, so a delta tap comes back as a
        band-passed peak — positions and amplitude *ratios* are the
        physically recoverable quantities.
        """
        truth = _synthetic_channel([(40.0, 1.0), (60.0, 0.6), (85.0, -0.4)])
        source = probe_chirp(FS)
        recording = np.convolve(source, truth)
        estimate = estimate_channel(recording, source, 256)
        indices, amplitudes = find_taps(estimate, max_taps=3, min_separation=6)
        assert list(indices) == [40, 60, 85]
        assert amplitudes[1] / amplitudes[0] == pytest.approx(0.6, abs=0.1)
        assert amplitudes[2] / amplitudes[0] == pytest.approx(-0.4, abs=0.1)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        truth = _synthetic_channel([(40.0, 1.0)])
        source = probe_chirp(FS)
        clean = np.convolve(source, truth)
        recording = clean + rng.normal(0, 0.01, clean.shape[0])
        estimate = estimate_channel(recording, source, 128)
        assert first_tap_index(estimate) == 40

    def test_rejects_recording_shorter_than_source(self):
        with pytest.raises(SignalError):
            estimate_channel(np.zeros(10), np.zeros(100), 16)

    def test_rejects_zero_source(self):
        with pytest.raises(SignalError):
            estimate_channel(np.ones(300), np.zeros(200), 16)

    def test_pads_when_length_exceeds_fft(self):
        source = probe_chirp(FS, duration_s=0.01)
        recording = np.convolve(source, _synthetic_channel([(10.0, 1.0)], 64))
        estimate = estimate_channel(recording, source, 10_000)
        assert estimate.shape == (10_000,)


class TestProbeChannelBank:
    def _recordings(self, n=3):
        source = probe_chirp(FS)
        recordings = []
        for k in range(n):
            truth = _synthetic_channel([(35.0 + 5 * k, 1.0), (70.0, 0.5)])
            recordings.append(np.convolve(source, truth))
        return source, recordings

    def test_bit_identical_to_estimate_channel(self):
        """The cache must not change a single bit of the estimate."""
        source, recordings = self._recordings()
        bank = ProbeChannelBank(source)
        for length in (64, 256, 10_000):
            for i, recording in enumerate(recordings):
                np.testing.assert_array_equal(
                    bank.channel((i, "left"), recording, length),
                    estimate_channel(recording, source, length),
                )

    def test_deconvolves_exactly_once_per_key(self):
        source, recordings = self._recordings()
        bank = ProbeChannelBank(source)
        deconv = obs_metrics.counter("channel.bank_deconvolutions")
        hits = obs_metrics.counter("channel.bank_hits")
        d0, h0 = deconv.value, hits.value
        for _ in range(3):  # three passes, e.g. fusion + interpolation + extra
            for i, recording in enumerate(recordings):
                bank.channel((i, "left"), recording, 128)
        assert deconv.value - d0 == len(recordings)
        assert hits.value - h0 == 2 * len(recordings)
        assert bank.n_cached == len(recordings)

    def test_different_lengths_share_one_deconvolution(self):
        source, recordings = self._recordings(1)
        bank = ProbeChannelBank(source)
        d0 = obs_metrics.counter("channel.bank_deconvolutions").value
        short = bank.channel((0, "left"), recordings[0], 64)
        long = bank.channel((0, "left"), recordings[0], 512)
        assert obs_metrics.counter("channel.bank_deconvolutions").value - d0 == 1
        np.testing.assert_array_equal(short, long[:64])

    def test_hit_ignores_recording(self):
        """Keys, not array contents, identify entries: same key -> cached."""
        source, recordings = self._recordings(2)
        bank = ProbeChannelBank(source)
        first = bank.channel((0, "left"), recordings[0], 128)
        again = bank.channel((0, "left"), recordings[1], 128)
        np.testing.assert_array_equal(first, again)

    def test_windowing_matches_estimate_channel_padding(self):
        source = probe_chirp(FS, duration_s=0.01)
        recording = np.convolve(source, _synthetic_channel([(10.0, 1.0)], 64))
        bank = ProbeChannelBank(source)
        out = bank.channel((0, "left"), recording, 100_000)
        assert out.shape == (100_000,)
        np.testing.assert_array_equal(
            out, estimate_channel(recording, source, 100_000)
        )

    def test_rejects_bad_source(self):
        with pytest.raises(SignalError):
            ProbeChannelBank(np.zeros((4, 4)))
        with pytest.raises(SignalError):
            ProbeChannelBank(np.ones(4))

    def test_rejects_zero_source_on_first_use(self):
        bank = ProbeChannelBank(np.zeros(200))
        with pytest.raises(SignalError):
            bank.channel((0, "left"), np.ones(300), 16)

    def test_rejects_short_recording(self):
        source, _ = self._recordings(1)
        bank = ProbeChannelBank(source)
        with pytest.raises(SignalError):
            bank.channel((0, "left"), source[:10], 16)


class TestFirstTap:
    def test_simple_first_tap(self):
        channel = _synthetic_channel([(50.0, 1.0), (80.0, 0.8)])
        assert first_tap_index(channel) == 50

    def test_first_tap_weaker_than_later_tap(self):
        """The first arrival can be weaker than a pinna echo; still first."""
        channel = _synthetic_channel([(50.0, 0.5), (60.0, 1.0)])
        assert first_tap_index(channel) == 50

    def test_negative_tap_detected(self):
        channel = _synthetic_channel([(50.0, -1.0)])
        assert first_tap_index(channel) == 50

    def test_all_zero_raises(self):
        with pytest.raises(SignalError):
            first_tap_index(np.zeros(64))

    @given(delay=st.floats(30.0, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_refinement_subsample_accuracy(self, delay):
        channel = _synthetic_channel([(delay, 1.0)], length=300)
        idx = first_tap_index(channel)
        refined = refine_tap_position(channel, idx)
        assert abs(refined - delay) < 0.25

    def test_refine_at_edges_falls_back(self):
        channel = np.zeros(16)
        channel[0] = 1.0
        assert refine_tap_position(channel, 0) == 0.0

    def test_refine_rejects_out_of_range(self):
        with pytest.raises(SignalError):
            refine_tap_position(np.ones(8), 20)


class TestFindTaps:
    def test_finds_all_separated_taps(self):
        channel = _synthetic_channel([(40.0, 1.0), (60.0, 0.7), (90.0, 0.5)])
        indices, amplitudes = find_taps(channel)
        assert list(indices) == [40, 60, 90]
        np.testing.assert_allclose(amplitudes, [1.0, 0.7, 0.5], atol=0.02)

    def test_threshold_excludes_weak_taps(self):
        channel = _synthetic_channel([(40.0, 1.0), (90.0, 0.05)])
        indices, _ = find_taps(channel, threshold_ratio=0.15)
        assert list(indices) == [40]

    def test_min_separation_suppresses_nearby(self):
        channel = _synthetic_channel([(40.0, 1.0), (42.0, 0.9)])
        indices, _ = find_taps(channel, min_separation=5)
        assert indices.shape[0] == 1

    def test_all_zero_returns_empty(self):
        indices, amplitudes = find_taps(np.zeros(32))
        assert indices.shape == (0,)
        assert amplitudes.shape == (0,)

    def test_max_taps_cap(self):
        channel = _synthetic_channel(
            [(20.0 + 10 * k, 1.0 - 0.05 * k) for k in range(10)], length=256
        )
        indices, _ = find_taps(channel, max_taps=4)
        assert indices.shape[0] == 4


class TestTruncate:
    def test_zeroes_after_cutoff(self):
        channel = _synthetic_channel([(20.0, 1.0), (100.0, 0.9)], length=160)
        out = truncate_after(channel, 60, taper=4)
        assert np.all(out[70:] == 0.0)
        assert out[20] == pytest.approx(channel[20])

    def test_original_untouched(self):
        channel = _synthetic_channel([(20.0, 1.0), (100.0, 0.9)], length=160)
        before = channel.copy()
        truncate_after(channel, 60)
        np.testing.assert_array_equal(channel, before)

    def test_cutoff_beyond_end_is_noop(self):
        channel = _synthetic_channel([(20.0, 1.0)])
        np.testing.assert_array_equal(truncate_after(channel, 500), channel)

    def test_negative_cutoff_raises(self):
        with pytest.raises(SignalError):
            truncate_after(np.ones(16), -1)
