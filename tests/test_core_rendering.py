"""Tests for the application-side binaural renderer."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.rendering import BinauralRenderer, SpatialSource
from repro.hrtf.reference import ground_truth_table
from repro.signals.waveforms import tone

FS = 48_000


@pytest.fixture(scope="module")
def renderer(subject):
    table = ground_truth_table(subject, np.arange(0.0, 181.0, 10.0), FS)
    return BinauralRenderer(table)


class TestSpatialSource:
    def test_field_classification(self):
        signal = np.ones(64)
        assert SpatialSource(signal, 45.0, distance_m=2.0).is_far_field
        assert not SpatialSource(signal, 45.0, distance_m=0.4).is_far_field

    def test_rejects_empty_signal(self):
        with pytest.raises(SignalError):
            SpatialSource(np.zeros(0), 45.0)

    def test_rejects_bad_distance(self):
        with pytest.raises(SignalError):
            SpatialSource(np.ones(16), 45.0, distance_m=0.0)


class TestRender:
    def test_left_source_louder_on_left(self, renderer):
        signal = tone(2000.0, 0.05, FS)
        left, right = renderer.render(SpatialSource(signal, 80.0, 2.0))
        assert np.sum(left**2) > 2 * np.sum(right**2)

    def test_frontal_source_balanced(self, renderer):
        signal = tone(2000.0, 0.05, FS)
        left, right = renderer.render(SpatialSource(signal, 0.0, 2.0))
        ratio = np.sum(left**2) / np.sum(right**2)
        # Pinnae are asymmetric, so "balanced" means within a few dB.
        assert 0.3 < ratio < 3.0

    def test_distance_attenuates(self, renderer):
        signal = tone(2000.0, 0.05, FS)
        near, _ = renderer.render(SpatialSource(signal, 45.0, 1.5))
        far, _ = renderer.render(SpatialSource(signal, 45.0, 6.0))
        assert np.sum(far**2) < np.sum(near**2) / 4

    def test_near_field_uses_near_table(self, renderer):
        signal = tone(2000.0, 0.05, FS)
        near_pair = renderer.render(SpatialSource(signal, 45.0, 0.45))
        far_pair = renderer.render(SpatialSource(signal, 45.0, 2.0))
        assert not np.allclose(near_pair[0], far_pair[0][: near_pair[0].shape[0]])

    def test_itd_direction(self, renderer, subject):
        """A left-side source must reach the left ear earlier."""
        impulse = np.zeros(256)
        impulse[0] = 1.0
        left, right = renderer.render(SpatialSource(impulse, 70.0, 2.0))
        from repro.signals.channel import first_tap_index

        assert first_tap_index(left) < first_tap_index(right)


class TestScene:
    def test_scene_mixes_sources(self, renderer):
        signal = tone(1000.0, 0.05, FS)
        a = SpatialSource(signal, 30.0, 2.0)
        b = SpatialSource(signal, 150.0, 2.0)
        mixed_l, mixed_r = renderer.render_scene([a, b])
        single_l, _ = renderer.render(a)
        assert mixed_l.shape[0] >= single_l.shape[0]
        assert np.sum(mixed_l**2) > np.sum(single_l**2) * 0.9

    def test_empty_scene_raises(self, renderer):
        with pytest.raises(SignalError):
            renderer.render_scene([])


class TestMoving:
    def test_moving_source_output_shape(self, renderer):
        n = FS // 4
        signal = tone(1500.0, 0.25, FS)[:n]
        angles = np.linspace(10.0, 170.0, n)
        left, right = renderer.render_moving(signal, angles, FS)
        assert left.shape == right.shape
        assert left.shape[0] > n

    def test_moving_source_pans(self, renderer):
        """Energy shifts from the right ear to the left as theta sweeps 10->170."""
        n = FS // 2
        signal = tone(1500.0, 0.5, FS)[:n]
        angles = np.linspace(10.0, 170.0, n)
        left, right = renderer.render_moving(signal, angles, FS)
        first_half = slice(0, n // 3)
        # At small theta the source is nearly frontal: balanced-ish.
        # The ILD (left over right) must grow as it moves toward the left.
        ratio_start = np.sum(left[first_half] ** 2) / np.sum(right[first_half] ** 2)
        mid = slice(n // 3, 2 * n // 3)
        ratio_mid = np.sum(left[mid] ** 2) / np.sum(right[mid] ** 2)
        assert ratio_mid > ratio_start

    def test_mismatched_shapes_raise(self, renderer):
        with pytest.raises(SignalError):
            renderer.render_moving(np.ones(100), np.ones(50), FS)

    def test_rate_mismatch_raises(self, renderer):
        with pytest.raises(SignalError):
            renderer.render_moving(np.ones(100), np.ones(100), 44_100)
