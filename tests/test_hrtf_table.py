"""Tests for the HRTF lookup table and HRIR interpolation."""

import numpy as np
import pytest

from repro.errors import TableError
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.reference import ground_truth_table
from repro.hrtf.table import HRTFTable, interpolate_hrir_pair
from repro.signals.channel import first_tap_index, refine_tap_position
from repro.signals.delays import add_tap

FS = 48_000


def _pair(tap_left: float, tap_right: float, n: int = 144) -> BinauralIR:
    left = np.zeros(n)
    right = np.zeros(n)
    add_tap(left, tap_left, 1.0)
    add_tap(right, tap_right, 0.8)
    return BinauralIR(left=left, right=right, fs=FS)


def _small_table() -> HRTFTable:
    angles = np.array([0.0, 90.0, 180.0])
    entries = tuple(_pair(20.0 + i, 26.0 + 2 * i) for i in range(3))
    return HRTFTable(angles_deg=angles, near=entries, far=entries)


class TestValidation:
    def test_rejects_single_angle(self):
        with pytest.raises(TableError):
            HRTFTable(
                angles_deg=np.array([0.0]),
                near=(_pair(20, 25),),
                far=(_pair(20, 25),),
            )

    def test_rejects_unsorted_angles(self):
        entries = (_pair(20, 25), _pair(20, 25))
        with pytest.raises(TableError):
            HRTFTable(angles_deg=np.array([90.0, 0.0]), near=entries, far=entries)

    def test_rejects_count_mismatch(self):
        with pytest.raises(TableError):
            HRTFTable(
                angles_deg=np.array([0.0, 90.0]),
                near=(_pair(20, 25),),
                far=(_pair(20, 25), _pair(21, 26)),
            )

    def test_rejects_mixed_rates(self):
        a = _pair(20, 25)
        b = BinauralIR(left=a.left, right=a.right, fs=96_000)
        with pytest.raises(TableError):
            HRTFTable(
                angles_deg=np.array([0.0, 90.0]), near=(a, b), far=(a, a)
            )


class TestLookup:
    def test_exact_angle_returns_entry(self):
        table = _small_table()
        assert table.lookup(90.0, "far") is table.far[1]

    def test_nearest(self):
        table = _small_table()
        assert table.nearest(100.0, "far") is table.far[1]

    def test_out_of_span_raises(self):
        with pytest.raises(TableError):
            _small_table().lookup(181.0)

    def test_bad_field_raises(self):
        with pytest.raises(TableError):
            _small_table().lookup(90.0, "mid")

    def test_interpolated_tap_between_neighbors(self):
        table = _small_table()
        mid = table.lookup(45.0, "far")
        tap_left = refine_tap_position(mid.left, first_tap_index(mid.left))
        # Between entries with taps at 20 and 21 -> expect ~20.5.
        assert tap_left == pytest.approx(20.5, abs=0.3)

    def test_iteration_yields_rows(self):
        rows = list(_small_table())
        assert len(rows) == 3
        angle, near, far = rows[0]
        assert angle == 0.0

    def test_binauralize_shapes(self):
        table = _small_table()
        left, right = table.binauralize(np.ones(64), 45.0)
        assert left.shape == right.shape
        assert left.shape[0] == 64 + 144 - 1


class TestInterpolateHrirPair:
    def test_midpoint_interaural_delay(self):
        a = _pair(20.0, 26.0)
        b = _pair(22.0, 34.0)
        mid = interpolate_hrir_pair(a, b, 0.5)
        tap_l = refine_tap_position(mid.left, first_tap_index(mid.left))
        tap_r = refine_tap_position(mid.right, first_tap_index(mid.right))
        assert tap_l == pytest.approx(21.0, abs=0.3)
        assert tap_r == pytest.approx(30.0, abs=0.3)

    def test_weight_zero_is_first(self):
        a = _pair(20.0, 26.0)
        b = _pair(30.0, 44.0)
        out = interpolate_hrir_pair(a, b, 0.0)
        tap = refine_tap_position(out.left, first_tap_index(out.left))
        assert tap == pytest.approx(20.0, abs=0.3)

    def test_no_spurious_double_taps(self):
        """Aligned interpolation must not inject echo pairs (paper 4.2)."""
        a = _pair(20.0, 26.0)
        b = _pair(28.0, 36.0)
        mid = interpolate_hrir_pair(a, b, 0.5)
        from repro.signals.channel import find_taps

        indices, _ = find_taps(mid.left, threshold_ratio=0.3, min_separation=3)
        assert indices.shape[0] == 1  # one tap, not two half-strength copies

    def test_rate_mismatch_raises(self):
        a = _pair(20.0, 26.0)
        b = BinauralIR(left=a.left, right=a.right, fs=96_000)
        with pytest.raises(TableError):
            interpolate_hrir_pair(a, b, 0.5)


class TestGroundTruthTableInterpolation:
    def test_interpolated_close_to_rendered(self, subject):
        """Interpolating a 10-degree grid approximates the true 5-degree entry."""
        coarse = ground_truth_table(subject, np.array([40.0, 50.0]), FS)
        fine = ground_truth_table(subject, np.array([45.0, 46.0]), FS)
        from repro.hrtf.metrics import hrir_correlation

        interpolated = coarse.lookup(45.0, "far")
        c_left, c_right = hrir_correlation(interpolated, fine.far[0])
        # Interpolation cannot beat the pinna's angular decorrelation, and
        # the integer-lag correlation metric punishes the half-sample
        # placement of a mid-weight blend; require solid similarity plus
        # exactly-correct tap *positions*.
        assert c_left > 0.55
        assert c_right > 0.55
        from repro.signals.channel import find_taps

        got, _ = find_taps(interpolated.right, max_taps=4)
        want, _ = find_taps(fine.far[0].right, max_taps=4)
        assert np.max(np.abs(got - want)) <= 1
