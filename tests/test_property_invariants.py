"""Cross-cutting property-based invariants (hypothesis).

These tie multiple subsystems together: whatever the random subject,
position, or signal, physical and algebraic invariants must hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import SPEED_OF_SOUND
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import binaural_delays
from repro.geometry.vec import polar_to_cartesian
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.table import interpolate_hrir_pair
from repro.simulation.person import VirtualSubject
from repro.simulation.pinna import PinnaModel
from repro.simulation.propagation import render_near_field_hrir
from repro.signals.channel import first_tap_index, refine_tap_position

FS = 48_000

subjects = st.integers(0, 300).map(VirtualSubject.random)


class TestRenderingMatchesGeometry:
    @given(
        seed=st.integers(0, 100),
        radius=st.floats(0.3, 0.9),
        theta=st.floats(5.0, 175.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_rendered_itd_equals_geometric_itd(self, seed, radius, theta):
        """The simulator's first taps always sit at the model's delays."""
        subject = VirtualSubject.random(seed)
        position = polar_to_cartesian(radius, theta)
        left, right = render_near_field_hrir(subject, position, FS)
        tap_left = refine_tap_position(left, first_tap_index(left))
        tap_right = refine_tap_position(right, first_tap_index(right))
        t_left, t_right = binaural_delays(subject.head, position)
        expected = (t_right - t_left) * FS
        assert (tap_right - tap_left) == pytest.approx(expected, abs=0.75)

    @given(seed=st.integers(0, 100), theta=st.floats(5.0, 175.0))
    @settings(max_examples=20, deadline=None)
    def test_shadowed_ear_never_louder(self, seed, theta):
        """Source on the left: the right (far) ear can never be louder."""
        subject = VirtualSubject.random(seed)
        position = polar_to_cartesian(0.5, theta)
        left, right = render_near_field_hrir(subject, position, FS)
        # Compare first-tap magnitudes (echo trains vary independently).
        amp_left = np.abs(left[first_tap_index(left)])
        amp_right = np.abs(right[first_tap_index(right)])
        assert amp_right <= amp_left * 1.05


class TestPinnaInvariants:
    @given(seed=st.integers(0, 200), gamma=st.floats(-180.0, 180.0))
    @settings(max_examples=30, deadline=None)
    def test_periodic_in_angle(self, seed, gamma):
        model = PinnaModel.random(np.random.default_rng(seed))
        d1, g1 = model.echoes(gamma)
        d2, g2 = model.echoes(gamma + 360.0)
        np.testing.assert_allclose(d1, d2, atol=1e-12)
        np.testing.assert_allclose(g1, g2, atol=1e-12)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_echo_delays_sorted_enough(self, seed):
        """Echo trains stay within the physical pinna window everywhere."""
        model = PinnaModel.random(np.random.default_rng(seed))
        for gamma in np.linspace(0, 360, 13):
            delays, _ = model.echoes(float(gamma))
            assert delays.min() >= 0.05e-3 - 1e-12
            assert delays.max() <= 0.9e-3 + 1e-12


class TestInterpolationInvariants:
    @given(seed=st.integers(0, 100), weight=st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_self_interpolation_identity_shape(self, seed, weight):
        """Interpolating a pair with itself reproduces its shape."""
        subject = VirtualSubject.random(seed)
        left, right = render_near_field_hrir(
            subject, polar_to_cartesian(0.5, 60.0), FS
        )
        pair = BinauralIR(left=left, right=right, fs=FS)
        blended = interpolate_hrir_pair(pair, pair, weight)
        from repro.hrtf.metrics import hrir_correlation

        c_left, c_right = hrir_correlation(blended, pair)
        assert c_left > 0.99
        assert c_right > 0.99

    @given(weight=st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_interpolated_tap_between_endpoints(self, weight):
        from repro.signals.delays import add_tap

        def pair(tap):
            left = np.zeros(144)
            right = np.zeros(144)
            add_tap(left, tap, 1.0)
            add_tap(right, tap + 8.0, 0.8)
            return BinauralIR(left=left, right=right, fs=FS)

        low, high = pair(20.0), pair(30.0)
        mid = interpolate_hrir_pair(low, high, weight)
        tap = refine_tap_position(mid.left, first_tap_index(mid.left))
        assert 19.5 <= tap <= 30.5


class TestDelayFieldInvariants:
    @given(
        radius=st.floats(0.25, 1.2),
        theta=st.floats(-180.0, 180.0),
        scale=st.floats(1.05, 2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_delay_monotone_in_radius(self, radius, theta, scale):
        """Moving the source outward along a ray delays both ears."""
        head = HeadGeometry.average()
        near = binaural_delays(head, polar_to_cartesian(radius, theta))
        far = binaural_delays(head, polar_to_cartesian(radius * scale, theta))
        assert far[0] > near[0]
        assert far[1] > near[1]

    @given(radius=st.floats(0.25, 1.2), theta=st.floats(-180.0, 180.0))
    @settings(max_examples=30, deadline=None)
    def test_itd_bounded_by_physiology(self, radius, theta):
        head = HeadGeometry.average()
        t_left, t_right = binaural_delays(head, polar_to_cartesian(radius, theta))
        max_itd = (2 * head.a + head.boundary.perimeter / 4) / SPEED_OF_SOUND
        assert abs(t_left - t_right) <= max_itd
