"""Tests for near-field HRIR extraction, model correction, interpolation."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.fusion import DiffractionAwareSensorFusion
from repro.core.interpolation import NearFieldInterpolator, NearFieldMeasurement
from repro.geometry.head import Ear
from repro.geometry.paths import propagation_path
from repro.geometry.vec import polar_to_cartesian
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.metrics import hrir_correlation
from repro.simulation.propagation import render_near_field_hrir

FS = 48_000


@pytest.fixture(scope="module")
def fusion_result(clean_session):
    return DiffractionAwareSensorFusion().run(clean_session)


@pytest.fixture(scope="module")
def measurements(clean_session, fusion_result):
    interpolator = NearFieldInterpolator(clean_session.fs)
    return interpolator.extract_measurements(clean_session, fusion_result)


class TestExtraction:
    def test_one_measurement_per_probe(self, clean_session, measurements):
        assert len(measurements) == clean_session.n_probes

    def test_extracted_hrir_matches_rendered_truth(
        self, clean_session, measurements
    ):
        """The windowed channel estimate IS the near-field HRIR."""
        subject = clean_session.truth.subject
        positions = clean_session.truth.probe_positions()
        scores = []
        for i in range(0, len(measurements), 5):
            truth_l, truth_r = render_near_field_hrir(subject, positions[i], FS)
            truth = BinauralIR(left=truth_l, right=truth_r, fs=FS)
            c_left, c_right = hrir_correlation(measurements[i].hrir, truth)
            scores.append(0.5 * (c_left + c_right))
        assert np.mean(scores) > 0.7

    def test_interaural_delay_preserved_in_window(
        self, clean_session, measurements, fusion_result
    ):
        subject = clean_session.truth.subject
        positions = clean_session.truth.probe_positions()
        i = len(measurements) // 3
        expected = (
            propagation_path(subject.head, positions[i], Ear.LEFT).length
            - propagation_path(subject.head, positions[i], Ear.RIGHT).length
        ) / 343.0
        assert measurements[i].hrir.interaural_delay_s() == pytest.approx(
            expected, abs=5e-5
        )


class TestModelCorrection:
    def test_correct_to_model_sets_itd(self, fusion_result, measurements):
        interpolator = NearFieldInterpolator(FS)
        head = fusion_result.head
        m = measurements[len(measurements) // 4]
        corrected = interpolator.correct_to_model(
            m.hrir, head, radius_m=0.45, angle_deg=m.angle_deg
        )
        expected = (
            propagation_path(head, polar_to_cartesian(0.45, m.angle_deg), Ear.LEFT).length
            - propagation_path(head, polar_to_cartesian(0.45, m.angle_deg), Ear.RIGHT).length
        ) / 343.0
        assert corrected.interaural_delay_s() == pytest.approx(expected, abs=4e-5)

    def test_correction_preserves_shape(self, fusion_result, measurements):
        interpolator = NearFieldInterpolator(FS)
        m = measurements[len(measurements) // 4]
        corrected = interpolator.correct_to_model(
            m.hrir, fusion_result.head, 0.45, m.angle_deg
        )
        c_left, c_right = hrir_correlation(corrected, m.hrir)
        assert c_left > 0.95
        assert c_right > 0.9

    def test_zero_amplitude_raises(self, fusion_result):
        interpolator = NearFieldInterpolator(FS)
        silent = BinauralIR(left=np.zeros(144), right=np.zeros(144), fs=FS)
        with pytest.raises(SignalError):
            interpolator.correct_to_model(silent, fusion_result.head, 0.45, 45.0)


class TestGridBuilding:
    def test_grid_covers_requested_angles(self, fusion_result, measurements):
        interpolator = NearFieldInterpolator(FS)
        grid = np.arange(0.0, 181.0, 15.0)
        entries = interpolator.build_grid(measurements, fusion_result.head, grid)
        assert len(entries) == grid.shape[0]
        for entry in entries:
            assert np.max(np.abs(entry.left)) > 0

    def test_grid_entries_match_truth(
        self, clean_session, fusion_result, measurements
    ):
        """Interpolated near-field table correlates with rendered truth."""
        subject = clean_session.truth.subject
        interpolator = NearFieldInterpolator(FS)
        grid = np.arange(10.0, 171.0, 20.0)
        entries = interpolator.build_grid(measurements, fusion_result.head, grid)
        scores = []
        for angle, entry in zip(grid, entries):
            truth_l, truth_r = render_near_field_hrir(
                subject, polar_to_cartesian(0.45, float(angle)), FS
            )
            truth = BinauralIR(left=truth_l, right=truth_r, fs=FS)
            scores.append(np.mean(hrir_correlation(entry, truth)))
        assert np.mean(scores) > 0.6

    def test_needs_two_measurements(self, fusion_result, measurements):
        interpolator = NearFieldInterpolator(FS)
        with pytest.raises(SignalError):
            interpolator.build_grid(
                measurements[:1], fusion_result.head, np.array([0.0, 10.0])
            )

    def test_invalid_config(self):
        with pytest.raises(SignalError):
            NearFieldInterpolator(0)
        with pytest.raises(SignalError):
            NearFieldInterpolator(FS, hrir_duration_s=1e-5)
