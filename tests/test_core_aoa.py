"""Tests for binaural AoA estimation."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.core.aoa import (
    KnownSourceAoAEstimator,
    UnknownSourceAoAEstimator,
    front_back_consistent,
    is_front,
    train_lambda_weight,
)
from repro.hrtf.reference import ground_truth_table
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import probe_chirp, white_noise

FS = 48_000


@pytest.fixture(scope="module")
def table(subject):
    return ground_truth_table(subject, np.arange(0.0, 181.0, 5.0), FS)


@pytest.fixture(scope="module")
def known_estimator(table):
    return KnownSourceAoAEstimator(table)


@pytest.fixture(scope="module")
def unknown_estimator(table):
    return UnknownSourceAoAEstimator(table)


class TestFrontBackHelpers:
    def test_is_front(self):
        assert is_front(0.0)
        assert is_front(89.9)
        assert not is_front(90.0)
        assert not is_front(180.0)

    def test_consistency(self):
        assert front_back_consistent(30.0, 60.0)
        assert not front_back_consistent(30.0, 150.0)


class TestKnownSource:
    def test_accurate_on_chirps(self, subject, known_estimator):
        chirp = probe_chirp(FS, duration_s=0.05)
        rng = np.random.default_rng(0)
        errors = []
        for theta in (15.0, 55.0, 95.0, 135.0, 175.0):
            left, right = record_far_field(
                subject, theta, chirp, FS, rng=rng, noise_std=0.003
            )
            estimate = known_estimator.estimate(left, right, chirp, FS)
            errors.append(abs(estimate - theta))
        assert np.median(errors) < 8.0

    def test_target_function_minimum_near_truth(self, subject, known_estimator):
        chirp = probe_chirp(FS, duration_s=0.05)
        left, right = record_far_field(
            subject, 60.0, chirp, FS, rng=np.random.default_rng(1), noise_std=0.003
        )
        angles, scores = known_estimator.target_function(left, right, chirp, FS)
        assert abs(angles[np.argmin(scores)] - 60.0) < 10.0
        # The target is higher at the front-back mirror than at truth.
        mirror_idx = int(np.argmin(np.abs(angles - 120.0)))
        truth_idx = int(np.argmin(np.abs(angles - 60.0)))
        assert scores[mirror_idx] > scores[truth_idx]

    def test_rate_mismatch_raises(self, known_estimator):
        with pytest.raises(SignalError):
            known_estimator.estimate(np.ones(100), np.ones(100), np.ones(50), 44_100)

    def test_train_lambda_returns_candidate(self, subject, table):
        chirp = probe_chirp(FS, duration_s=0.05)
        rng = np.random.default_rng(2)
        examples = []
        for theta in (30.0, 120.0):
            left, right = record_far_field(
                subject, theta, chirp, FS, rng=rng, noise_std=0.003
            )
            examples.append((left, right, chirp, theta))
        candidates = (0.5, 2.0)
        best = train_lambda_weight(table, examples, FS, candidates=candidates)
        assert best in candidates

    def test_train_lambda_empty_raises(self, table):
        with pytest.raises(SignalError):
            train_lambda_weight(table, [], FS)


class TestUnknownSource:
    def test_accurate_on_noise(self, subject, unknown_estimator):
        rng = np.random.default_rng(3)
        errors = []
        for theta in (25.0, 65.0, 115.0, 155.0):
            signal = white_noise(0.5, FS, rng=np.random.default_rng(int(theta)))
            left, right = record_far_field(
                subject, theta, signal, FS, rng=rng, noise_std=0.003
            )
            estimate = unknown_estimator.estimate(left, right, FS)
            errors.append(abs(estimate - theta))
        assert np.median(errors) < 10.0

    def test_relative_channel_peak_near_itd(self, subject, unknown_estimator):
        from repro.geometry.plane_wave import interaural_delay

        signal = white_noise(0.5, FS, rng=np.random.default_rng(4))
        left, right = record_far_field(
            subject, 50.0, signal, FS, rng=np.random.default_rng(5), noise_std=0.003
        )
        lags, values = unknown_estimator.relative_channel(left, right, FS)
        from repro.signals.channel import find_taps

        peaks, _ = find_taps(values, max_taps=4, threshold_ratio=0.35, min_separation=3)
        true_itd = interaural_delay(subject.head, 50.0)
        # The true ITD is among the detected peaks (not necessarily the
        # strongest — pinna cross-terms compete, which is the whole point
        # of the Eq. 11 disambiguation).
        assert min(abs(lags[p] - true_itd) for p in peaks) < 1e-4

    def test_relative_channel_multiple_peaks(self, subject, unknown_estimator):
        """Figure 14: pinna multipath causes multiple relative-channel taps."""
        from repro.signals.channel import find_taps

        signal = white_noise(0.5, FS, rng=np.random.default_rng(6))
        left, right = record_far_field(
            subject, 60.0, signal, FS, rng=np.random.default_rng(7), noise_std=0.003
        )
        _, values = unknown_estimator.relative_channel(left, right, FS)
        peaks, _ = find_taps(values, max_taps=8, threshold_ratio=0.3, min_separation=3)
        assert peaks.shape[0] >= 2

    def test_zero_recording_raises(self, unknown_estimator):
        with pytest.raises(SignalError):
            unknown_estimator.relative_channel(np.zeros(1000), np.zeros(1000), FS)

    def test_rate_mismatch_raises(self, unknown_estimator):
        with pytest.raises(SignalError):
            unknown_estimator.estimate(np.ones(1000), np.ones(1000), 44_100)

    def test_personal_beats_global_on_front_back(self, subject):
        """The headline AoA claim, in miniature."""
        from repro.hrtf.reference import global_template_table

        angles = np.arange(0.0, 181.0, 5.0)
        personal = UnknownSourceAoAEstimator(ground_truth_table(subject, angles, FS))
        template = UnknownSourceAoAEstimator(global_template_table(angles, FS))
        rng = np.random.default_rng(8)
        personal_hits = 0
        template_hits = 0
        thetas = (20.0, 45.0, 70.0, 110.0, 135.0, 160.0)
        for theta in thetas:
            signal = white_noise(0.5, FS, rng=np.random.default_rng(int(theta) + 50))
            left, right = record_far_field(
                subject, theta, signal, FS, rng=rng, noise_std=0.003
            )
            if front_back_consistent(personal.estimate(left, right, FS), theta):
                personal_hits += 1
            if front_back_consistent(template.estimate(left, right, FS), theta):
                template_hits += 1
        assert personal_hits >= template_hits
        assert personal_hits >= 5
