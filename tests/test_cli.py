"""Tests for the uniq-personalize command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.hrtf.io import load_table


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.subject_seed == 1
        assert args.output == "personal_hrtf.npz"
        assert not args.evaluate

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--subject-seed", "9", "--angle-step", "15", "--evaluate"]
        )
        assert args.subject_seed == 9
        assert args.angle_step == 15.0
        assert args.evaluate


class TestMain:
    def test_end_to_end_run(self, tmp_path, capsys):
        output = tmp_path / "table.npz"
        code = main(
            [
                "--subject-seed", "1",
                "--output", str(output),
                "--angle-step", "20",
                "--probe-interval", "0.6",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "learned E_opt" in printed
        table = load_table(output)
        np.testing.assert_allclose(table.angles_deg, np.arange(0.0, 181.0, 20.0))

    def test_invalid_angle_step(self, capsys):
        assert main(["--angle-step", "0"]) == 2
        assert "angle-step" in capsys.readouterr().err

    def test_repeat_reports_cold_and_fastest(self, tmp_path, capsys):
        code = main(
            [
                "--subject-seed", "1",
                "--output", str(tmp_path / "table.npz"),
                "--angle-step", "20",
                "--probe-interval", "0.6",
                "--repeat", "2",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "wall time" in printed
        assert "cold" in printed and "fastest" in printed


class TestServeSim:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        # A short, mildly-overloaded run with trivial gates: the point is
        # exercising the whole admission -> shard -> gate -> report path,
        # not the resilience thresholds (tests/test_frontdoor.py and the
        # CI chaos job own those).
        report = tmp_path / "report.json"
        code = main(
            [
                "serve-sim",
                "--duration", "0.6",
                "--overload", "1.5",
                "--shards", "1",
                "--workers", "2",
                "--service-mean", "0.05",
                "--seed", "3",
                "--goodput-floor", "0.0",
                "--slo-p99", "999",
                "--report", str(report),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "goodput" in printed
        assert "accounting" in printed
        record = json.loads(report.read_text())
        assert record["gates"]["no_lost_jobs"] is True
        assert record["arrivals"] == sum(record["counts"].values())
        assert record["config"]["shards"] == 1
        assert set(record["config"]["quotas"]) == set(record["tenant_goodput"])

    def test_bad_config_exits_2(self, capsys):
        assert main(["serve-sim", "--duration", "0"]) == 2
        assert "positive" in capsys.readouterr().err
        assert main(["serve-sim", "--kill-shard-at", "0.5", "--shards", "1"]) == 2
        assert "--shards" in capsys.readouterr().err
