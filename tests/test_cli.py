"""Tests for the uniq-personalize command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.hrtf.io import load_table


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.subject_seed == 1
        assert args.output == "personal_hrtf.npz"
        assert not args.evaluate

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--subject-seed", "9", "--angle-step", "15", "--evaluate"]
        )
        assert args.subject_seed == 9
        assert args.angle_step == 15.0
        assert args.evaluate


class TestMain:
    def test_end_to_end_run(self, tmp_path, capsys):
        output = tmp_path / "table.npz"
        code = main(
            [
                "--subject-seed", "1",
                "--output", str(output),
                "--angle-step", "20",
                "--probe-interval", "0.6",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "learned E_opt" in printed
        table = load_table(output)
        np.testing.assert_allclose(table.angles_deg, np.arange(0.0, 181.0, 20.0))

    def test_invalid_angle_step(self, capsys):
        assert main(["--angle-step", "0"]) == 2
        assert "angle-step" in capsys.readouterr().err

    def test_repeat_reports_cold_and_fastest(self, tmp_path, capsys):
        code = main(
            [
                "--subject-seed", "1",
                "--output", str(tmp_path / "table.npz"),
                "--angle-step", "20",
                "--probe-interval", "0.6",
                "--repeat", "2",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "wall time" in printed
        assert "cold" in printed and "fastest" in printed
