"""Tests for waveform generators."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signals.spectrum import band_energy_ratio
from repro.signals.waveforms import (
    chirp,
    music_like,
    probe_chirp,
    speech_like,
    tone,
    white_noise,
)

FS = 48_000


class TestChirp:
    def test_length(self):
        signal = chirp(200.0, 8000.0, 0.1, FS)
        assert signal.shape == (4800,)

    def test_energy_in_band(self):
        signal = chirp(1000.0, 4000.0, 0.2, FS)
        assert band_energy_ratio(signal, FS, 900.0, 4100.0) > 0.95

    def test_faded_edges(self):
        signal = chirp(500.0, 5000.0, 0.1, FS)
        assert abs(signal[0]) < 1e-6
        assert abs(signal[-1]) < 1e-6

    @pytest.mark.parametrize("bad_band", [(0.0, 1000.0), (100.0, 30_000.0)])
    def test_rejects_out_of_band(self, bad_band):
        with pytest.raises(SignalError):
            chirp(bad_band[0], bad_band[1], 0.1, FS)

    def test_rejects_zero_duration(self):
        with pytest.raises(SignalError):
            chirp(100.0, 1000.0, 0.0, FS)

    def test_probe_chirp_wideband(self):
        signal = probe_chirp(FS)
        assert band_energy_ratio(signal, FS, 150.0, 16_500.0) > 0.95


class TestTone:
    def test_frequency_peak(self):
        signal = tone(1000.0, 0.1, FS)
        spectrum = np.abs(np.fft.rfft(signal))
        freqs = np.fft.rfftfreq(signal.shape[0], 1.0 / FS)
        assert abs(freqs[np.argmax(spectrum)] - 1000.0) < 20.0

    def test_rejects_above_nyquist(self):
        with pytest.raises(SignalError):
            tone(FS, 0.1, FS)


class TestNoiseAndNaturalSignals:
    def test_white_noise_flat_spectrum(self):
        signal = white_noise(1.0, FS, rng=np.random.default_rng(0))
        low = band_energy_ratio(signal, FS, 100.0, 8000.0)
        high = band_energy_ratio(signal, FS, 8000.0, 16_000.0)
        # White noise: energy proportional to bandwidth.
        assert low == pytest.approx(7900 / 24_000, abs=0.05)
        assert high == pytest.approx(8000 / 24_000, abs=0.05)

    def test_white_noise_reproducible(self):
        a = white_noise(0.1, FS, rng=np.random.default_rng(3))
        b = white_noise(0.1, FS, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_music_is_wider_band_than_speech(self):
        """The paper's reasoning: speech concentrates at low frequencies."""
        rng_m = np.random.default_rng(1)
        rng_s = np.random.default_rng(1)
        music = music_like(1.5, FS, rng=rng_m)
        speech = speech_like(1.5, FS, rng=rng_s)
        music_high = band_energy_ratio(music, FS, 2000.0, 10_000.0)
        speech_high = band_energy_ratio(speech, FS, 2000.0, 10_000.0)
        assert music_high > speech_high

    def test_speech_energy_concentrated_low(self):
        speech = speech_like(1.5, FS, rng=np.random.default_rng(2))
        assert band_energy_ratio(speech, FS, 0.0, 1500.0) > 0.6

    def test_normalized_amplitude(self):
        for generator in (music_like, speech_like):
            signal = generator(0.5, FS, rng=np.random.default_rng(4))
            assert np.max(np.abs(signal)) <= 1.0 + 1e-9
            assert np.max(np.abs(signal)) > 0.3

    def test_too_short_duration_raises(self):
        with pytest.raises(SignalError):
            white_noise(1e-6, FS)
