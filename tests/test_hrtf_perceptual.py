"""Tests for perceptual HRTF distance metrics."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.perceptual import (
    PerceptualDistance,
    ild_error_db,
    itd_error_s,
    perceptual_distance,
    spectral_distortion_db,
    table_perceptual_distance,
)
from repro.hrtf.reference import global_template_table, ground_truth_table
from repro.signals.delays import add_tap

FS = 48_000
ANGLES = np.array([20.0, 60.0, 100.0, 140.0])


def _pair(itd_samples: float, right_gain: float = 0.7) -> BinauralIR:
    left = np.zeros(144)
    right = np.zeros(144)
    add_tap(left, 20.0, 1.0)
    add_tap(left, 40.0, 0.5)
    add_tap(right, 20.0 + itd_samples, right_gain)
    return BinauralIR(left=left, right=right, fs=FS)


class TestCueErrors:
    def test_identical_pairs_are_zero(self, subject):
        table = ground_truth_table(subject, ANGLES, FS)
        distance = perceptual_distance(table.far[0], table.far[0])
        assert distance.itd_error_s == pytest.approx(0.0, abs=1e-9)
        assert distance.ild_error_db == pytest.approx(0.0, abs=1e-9)
        assert distance.spectral_distortion_db == pytest.approx(0.0, abs=1e-9)
        assert distance.composite == pytest.approx(0.0, abs=1e-6)

    def test_itd_error_measures_shift(self):
        a = _pair(itd_samples=5.0)
        b = _pair(itd_samples=9.0)
        assert itd_error_s(a, b) == pytest.approx(4.0 / FS, abs=0.4 / FS)

    def test_ild_error_measures_gain(self):
        a = _pair(5.0, right_gain=0.7)
        b = _pair(5.0, right_gain=0.35)
        assert ild_error_db(a, b) == pytest.approx(6.02, abs=0.3)

    def test_ild_silent_ear_raises(self):
        silent = BinauralIR(left=np.ones(64), right=np.zeros(64), fs=FS)
        with pytest.raises(SignalError):
            ild_error_db(silent, silent)

    def test_spectral_distortion_ignores_broadband_gain(self):
        a = _pair(5.0)
        scaled = a.scaled(0.25)
        assert spectral_distortion_db(a, scaled) == pytest.approx(0.0, abs=1e-9)

    def test_spectral_distortion_sees_shape_change(self):
        a = _pair(5.0)
        b = BinauralIR(
            left=a.left + 0.8 * np.roll(a.left, 7),
            right=a.right,
            fs=FS,
        )
        assert spectral_distortion_db(a, b) > 1.0

    def test_rate_mismatch_raises(self):
        a = _pair(5.0)
        b = BinauralIR(left=a.left, right=a.right, fs=96_000)
        with pytest.raises(SignalError):
            spectral_distortion_db(a, b)


class TestComposite:
    def test_composite_is_mean_of_jnds(self):
        distance = PerceptualDistance(
            itd_error_s=20e-6, ild_error_db=1.0, spectral_distortion_db=1.0
        )
        assert distance.composite == pytest.approx(1.0)

    def test_personalization_ordering(self, subject):
        """Ground truth table beats the global template perceptually too."""
        truth = ground_truth_table(subject, ANGLES, FS)
        template = global_template_table(ANGLES, FS)
        own = table_perceptual_distance(truth, truth)
        cross = table_perceptual_distance(template, truth)
        assert own.composite < cross.composite
        assert cross.composite > 1.0  # the template is perceptibly wrong
