"""Tests for diffraction-path computation around the head."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import (
    binaural_delays,
    euclidean_delay,
    path_delay,
    path_to_boundary_point,
    propagation_path,
)
from repro.geometry.vec import polar_to_cartesian


class TestDirectPaths:
    def test_source_facing_ear_is_direct(self, average_head):
        source = np.array([0.5, 0.0])  # straight out of the left ear
        result = propagation_path(average_head, source, Ear.LEFT)
        assert result.direct
        assert result.wrap_arc == 0.0
        assert result.length == pytest.approx(0.5 - average_head.a)

    def test_direct_equals_euclidean(self, average_head):
        source = polar_to_cartesian(0.6, 70.0)
        result = propagation_path(average_head, source, Ear.LEFT)
        assert result.direct
        assert result.length * 1.0 == pytest.approx(
            euclidean_delay(average_head, source, Ear.LEFT) * SPEED_OF_SOUND
        )

    def test_arrival_direction_points_toward_ear(self, average_head):
        source = polar_to_cartesian(0.6, 70.0)
        result = propagation_path(average_head, source, Ear.LEFT)
        expected = average_head.ear_position(Ear.LEFT) - source
        expected = expected / np.linalg.norm(expected)
        np.testing.assert_allclose(result.arrival_direction, expected, atol=1e-9)


class TestWrappedPaths:
    def test_opposite_ear_is_wrapped(self, average_head):
        source = np.array([0.5, 0.0])
        result = propagation_path(average_head, source, Ear.RIGHT)
        assert not result.direct
        assert result.wrap_arc > 0.0
        assert result.tangent_point is not None

    def test_wrapped_longer_than_euclidean(self, average_head):
        source = polar_to_cartesian(0.4, 60.0)
        wrapped = path_delay(average_head, source, Ear.RIGHT)
        straight = euclidean_delay(average_head, source, Ear.RIGHT)
        assert wrapped > straight

    def test_symmetric_source_symmetric_delays(self, average_head):
        """A source on the nose axis reaches both ears simultaneously."""
        source = np.array([0.0, 0.5])
        t_left, t_right = binaural_delays(average_head, source)
        assert t_left == pytest.approx(t_right, abs=1e-7)

    def test_mirror_symmetry_across_nose_axis(self, average_head):
        source = polar_to_cartesian(0.5, 40.0)
        mirrored = source * np.array([-1.0, 1.0])
        t_l1, t_r1 = binaural_delays(average_head, source)
        t_l2, t_r2 = binaural_delays(average_head, mirrored)
        assert t_l1 == pytest.approx(t_r2, abs=1e-7)
        assert t_r1 == pytest.approx(t_l2, abs=1e-7)

    def test_behind_head_wraps_around_back(self, average_head):
        """For a source behind-left, the right-ear wrap hugs the back."""
        source = polar_to_cartesian(0.5, 150.0)
        result = propagation_path(average_head, source, Ear.RIGHT)
        assert not result.direct
        assert result.tangent_point[1] < 0  # tangent on the back half


class TestErrors:
    def test_source_inside_head_raises(self, average_head):
        with pytest.raises(GeometryError):
            propagation_path(average_head, np.zeros(2), Ear.LEFT)

    def test_wrong_shape_raises(self, average_head):
        with pytest.raises(GeometryError):
            propagation_path(average_head, np.zeros(3), Ear.LEFT)

    def test_bad_boundary_index_raises(self, average_head):
        with pytest.raises(GeometryError):
            path_to_boundary_point(average_head, np.array([0.5, 0.5]), -1)


class TestBoundaryTargets:
    def test_path_to_ear_index_matches_ear_api(self, average_head):
        source = polar_to_cartesian(0.5, 30.0)
        via_index = path_to_boundary_point(
            average_head, source, average_head.ear_index(Ear.RIGHT)
        )
        via_ear = propagation_path(average_head, source, Ear.RIGHT)
        assert via_index.length == pytest.approx(via_ear.length)

    def test_monotone_along_shadowed_face(self, average_head):
        """Walking the test mic deeper into shadow lengthens the path."""
        source = polar_to_cartesian(0.8, -60.0)  # speaker on the right
        lengths = []
        for index in np.linspace(0, average_head.ear_index(Ear.LEFT), 8).astype(int):
            lengths.append(
                path_to_boundary_point(average_head, source, int(index)).length
            )
        assert np.all(np.diff(lengths) > 0)


@st.composite
def external_points(draw):
    radius = draw(st.floats(0.2, 2.0))
    angle = draw(st.floats(-180.0, 180.0))
    return polar_to_cartesian(radius, angle)


class TestPathProperties:
    @given(source=external_points())
    @settings(max_examples=60, deadline=None)
    def test_path_at_least_euclidean(self, source):
        head = HeadGeometry.average()
        for ear in Ear:
            path = propagation_path(head, source, ear)
            straight = np.linalg.norm(source - head.ear_position(ear))
            assert path.length >= straight - 1e-9

    @given(source=external_points())
    @settings(max_examples=60, deadline=None)
    def test_path_bounded_by_detour_around_head(self, source):
        """No path is longer than going straight plus half the perimeter."""
        head = HeadGeometry.average()
        for ear in Ear:
            path = propagation_path(head, source, ear)
            straight = np.linalg.norm(source - head.ear_position(ear))
            assert path.length <= straight + head.boundary.perimeter / 2 + 1e-9

    @given(source=external_points())
    @settings(max_examples=40, deadline=None)
    def test_arrival_direction_unit(self, source):
        head = HeadGeometry.average()
        path = propagation_path(head, source, Ear.LEFT)
        assert np.linalg.norm(path.arrival_direction) == pytest.approx(1.0)

    @given(radius=st.floats(0.3, 1.5), angle=st.floats(0.0, 180.0))
    @settings(max_examples=40, deadline=None)
    def test_left_side_source_reaches_left_ear_first(self, radius, angle):
        head = HeadGeometry.average()
        source = polar_to_cartesian(radius, angle)
        t_left, t_right = binaural_delays(head, source)
        assert t_left <= t_right + 1e-9
