"""Tests for 3D subjects, the HRTF field, and spherical personalization."""

import numpy as np
import pytest

from repro.errors import GeometryError, SignalError
from repro.geometry.head3d import HeadGeometry3D
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.metrics import hrir_correlation
from repro.simulation.person3d import VirtualSubject3D, render_far_field_hrir_3d
from repro.core.elevation import (
    HRTFField,
    SphericalPersonalizer,
    capture_rings,
)
from repro.core.pipeline import UniqConfig

FS = 48_000
GRID = tuple(float(a) for a in range(0, 181, 15))


@pytest.fixture(scope="session")
def subject3d():
    return VirtualSubject3D.random(31)


@pytest.fixture(scope="session")
def result3d(subject3d):
    sessions = capture_rings(subject3d, tilts_deg=(-30.0, 0.0, 30.0), seed=5)
    personalizer = SphericalPersonalizer(UniqConfig(angle_grid_deg=GRID))
    return personalizer.personalize(sessions)


class TestVirtualSubject3D:
    def test_reproducible(self):
        a = VirtualSubject3D.random(9)
        b = VirtualSubject3D.random(9)
        assert a.head.parameters == b.head.parameters
        assert a.elevation_coupling_left == b.elevation_coupling_left

    def test_effective_subject_at_zero_tilt(self, subject3d):
        effective = subject3d.effective_subject(0.0)
        assert effective.head.parameters == pytest.approx(
            (subject3d.head.a, subject3d.head.b, subject3d.head.c)
        )
        np.testing.assert_allclose(
            effective.left_pinna.echoes(50.0)[0],
            subject3d.left_pinna.echoes(50.0)[0],
        )

    def test_tilt_shifts_pinna(self, subject3d):
        """The effective pinna at tilt t equals the base pinna shifted."""
        tilt = 30.0
        effective = subject3d.effective_subject(tilt)
        shift = subject3d.elevation_coupling_left * tilt
        d_eff, g_eff = effective.left_pinna.echoes(50.0)
        d_base, g_base = subject3d.left_pinna.echoes(50.0 + shift)
        np.testing.assert_allclose(d_eff, d_base, atol=1e-12)
        np.testing.assert_allclose(g_eff, g_base, atol=1e-12)

    def test_elevation_changes_hrir(self, subject3d):
        flat_l, _ = render_far_field_hrir_3d(subject3d, 60.0, 0.0, FS)
        up_l, _ = render_far_field_hrir_3d(subject3d, 60.0, 30.0, FS)
        assert not np.allclose(flat_l, up_l)


class TestHRTFField:
    def test_lookup_at_ring_elevation_matches_ring(self, result3d):
        field = result3d.field
        # Azimuth 0 at elevation 30 lies exactly on the +30 ring at
        # in-plane angle 0.
        entry = field.lookup(0.0, 30.0)
        ring = result3d.ring_results[30.0].table.lookup(0.0, "far")
        np.testing.assert_allclose(entry.left, ring.left)

    def test_lookup_clamps_beyond_rings(self, result3d):
        top = result3d.field.lookup(0.0, 80.0)
        ring_top = result3d.field.lookup(0.0, 30.0)
        np.testing.assert_allclose(top.left, ring_top.left)

    def test_binauralize_shapes(self, result3d):
        left, right = result3d.field.binauralize(np.ones(128), 60.0, 15.0)
        assert left.shape == right.shape

    def test_validation(self, result3d):
        with pytest.raises(GeometryError):
            HRTFField(
                ring_tilts_deg=np.array([30.0, 0.0]),
                ring_tables=result3d.field.ring_tables[:2],
            )
        with pytest.raises(GeometryError):
            HRTFField(
                ring_tilts_deg=np.array([0.0]),
                ring_tables=result3d.field.ring_tables,
            )


class TestSphericalPersonalization:
    def test_head3d_recovered_within_tolerance(self, result3d, subject3d):
        truth = np.asarray(subject3d.head.parameters)
        estimate = np.asarray(result3d.head_parameters)
        assert np.all(np.abs(estimate - truth) < 0.045)

    def test_field_beats_flat_table_at_elevation(self, result3d, subject3d):
        """The extension's point: elevation-aware lookup wins off-plane."""
        flat_table = result3d.ring_results[0.0].table
        gains = []
        for az in (45.0, 90.0, 135.0):
            for el in (25.0, -25.0):
                truth_l, truth_r = render_far_field_hrir_3d(subject3d, az, el, FS)
                truth = BinauralIR(left=truth_l, right=truth_r, fs=FS)
                c_field = np.mean(
                    hrir_correlation(result3d.field.lookup(az, el), truth)
                )
                c_flat = np.mean(
                    hrir_correlation(flat_table.lookup(az, "far"), truth)
                )
                gains.append(c_field - c_flat)
        assert np.mean(gains) > 0.03

    def test_requires_two_distinct_tilts(self, subject3d):
        sessions = capture_rings(subject3d, tilts_deg=(0.0,), seed=6)
        with pytest.raises(GeometryError):
            SphericalPersonalizer(UniqConfig(angle_grid_deg=GRID)).personalize(
                sessions
            )

    def test_empty_sessions_raise(self):
        with pytest.raises(SignalError):
            SphericalPersonalizer().personalize({})

    def test_head3d_fit_exact_on_true_sections(self):
        """With exact section parameters the fit recovers E3 exactly."""
        from repro.core.elevation import _fit_head3d
        from unittest.mock import MagicMock

        head = HeadGeometry3D(a=0.09, b=0.112, c=0.093, d=0.118)
        fusions = {}
        for tilt in (-30.0, 0.0, 30.0):
            b_eff, c_eff = head.effective_depths(tilt)
            fake = MagicMock()
            fake.fusion.head.parameters = (head.a, b_eff, c_eff)
            fusions[tilt] = fake
        fitted = _fit_head3d(fusions)
        assert fitted.parameters == pytest.approx(head.parameters, abs=1e-6)
