"""Tests for far-field (plane wave) arrival geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.plane_wave import (
    interaural_delay,
    plane_wave_arrival,
    plane_wave_delays,
)


class TestCardinalDirections:
    def test_front_source_symmetric(self, average_head):
        t_left, t_right = plane_wave_delays(average_head, 0.0)
        assert t_left == pytest.approx(t_right, abs=1e-7)

    def test_back_source_symmetric(self, average_head):
        t_left, t_right = plane_wave_delays(average_head, 180.0)
        assert t_left == pytest.approx(t_right, abs=1e-7)

    def test_left_source_maximizes_itd(self, average_head):
        itds = [abs(interaural_delay(average_head, theta)) for theta in
                (0.0, 30.0, 60.0, 90.0)]
        assert np.argmax(itds) == 3

    def test_side_source_left_ear_direct(self, average_head):
        arrival = plane_wave_arrival(average_head, 90.0, Ear.LEFT)
        assert arrival.direct
        arrival_r = plane_wave_arrival(average_head, 90.0, Ear.RIGHT)
        assert not arrival_r.direct
        assert arrival_r.wrap_arc > 0.0

    def test_itd_sign_convention(self, average_head):
        """Source on the left: left ear first, so t_left - t_right < 0."""
        assert interaural_delay(average_head, 60.0) < 0


class TestPhysicalScale:
    def test_itd_bounded_by_head_size(self, average_head):
        """Woodworth-style bound: |ITD| < (a + half wrap) / v ~ 0.9 ms."""
        for theta in np.linspace(0, 180, 19):
            itd = abs(interaural_delay(average_head, float(theta)))
            assert itd < 0.9e-3

    def test_90_degree_itd_close_to_woodworth(self, average_head):
        """At 90 degrees, ITD ~ a*(1 + pi/2)/v for a spherical head."""
        expected = average_head.a * (1 + np.pi / 2) / SPEED_OF_SOUND
        measured = abs(interaural_delay(average_head, 90.0))
        assert measured == pytest.approx(expected, rel=0.15)


class TestProperties:
    @given(theta=st.floats(0.0, 180.0))
    @settings(max_examples=50, deadline=None)
    def test_left_ear_never_later_than_right_for_left_sources(self, theta):
        head = HeadGeometry.average()
        assert interaural_delay(head, theta) <= 1e-9

    @given(theta=st.floats(-180.0, 180.0))
    @settings(max_examples=50, deadline=None)
    def test_mirror_antisymmetry(self, theta):
        head = HeadGeometry.average()
        assert interaural_delay(head, theta) == pytest.approx(
            -interaural_delay(head, -theta), abs=1e-7
        )

    @given(theta=st.floats(0.0, 180.0))
    @settings(max_examples=30, deadline=None)
    def test_itd_continuous_in_theta(self, theta):
        head = HeadGeometry.average()
        delta = interaural_delay(head, theta) - interaural_delay(
            head, min(theta + 0.5, 180.0)
        )
        # Half a degree should never move the ITD by more than ~10 us.
        assert abs(delta) < 1.2e-5

    def test_nan_theta_raises(self, average_head):
        with pytest.raises(GeometryError):
            plane_wave_arrival(average_head, float("nan"), Ear.LEFT)
