"""Tests for delay-map localization (the fusion inner loop)."""

import logging

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry.head import HeadGeometry
from repro.geometry.paths import binaural_delays, euclidean_delay
from repro.geometry.head import Ear
from repro.geometry.vec import polar_to_cartesian
from repro.obs import metrics as obs_metrics
from repro.core.localize import (
    DelayMap,
    cached_delay_map,
    clear_delay_map_cache,
    delay_map_cache_size,
)


@pytest.fixture(scope="module")
def delay_map(average_head):
    return DelayMap(average_head)


class TestInversion:
    @pytest.mark.parametrize(
        "radius, theta",
        [(0.45, 30.0), (0.45, 90.0), (0.3, 150.0), (0.7, 10.0), (0.5, 170.0)],
    )
    def test_recovers_true_location(self, average_head, delay_map, radius, theta):
        t_left, t_right = binaural_delays(
            average_head, polar_to_cartesian(radius, theta)
        )
        candidate = delay_map.locate(t_left, t_right, imu_angle_deg=theta + 4.0)
        assert candidate is not None
        assert candidate.theta_deg == pytest.approx(theta, abs=0.5)
        assert candidate.radius_m == pytest.approx(radius, abs=0.01)

    def test_two_candidates_front_back(self, average_head, delay_map):
        t_left, t_right = binaural_delays(average_head, polar_to_cartesian(0.45, 40.0))
        candidates = delay_map.invert(t_left, t_right)
        assert len(candidates) == 2
        thetas = sorted(c.theta_deg for c in candidates)
        assert thetas[0] == pytest.approx(40.0, abs=1.0)
        # The ambiguous twin is roughly the front-back mirror.
        assert 120.0 < thetas[1] < 180.0

    def test_imu_disambiguates_to_back(self, average_head, delay_map):
        t_left, t_right = binaural_delays(average_head, polar_to_cartesian(0.45, 40.0))
        candidates = delay_map.invert(t_left, t_right)
        back = max(c.theta_deg for c in candidates)
        chosen = delay_map.locate(t_left, t_right, imu_angle_deg=back + 3.0)
        assert chosen.theta_deg == pytest.approx(back, abs=0.5)

    def test_impossible_delays_return_empty(self, delay_map):
        assert delay_map.invert(1e-5, 1e-5) == []
        assert delay_map.locate(1e-5, 1e-5, 0.0) is None

    def test_nan_delays_return_empty(self, delay_map):
        assert delay_map.invert(float("nan"), 1e-3) == []

    def test_candidate_position_property(self, average_head, delay_map):
        t_left, t_right = binaural_delays(average_head, polar_to_cartesian(0.5, 60.0))
        candidate = delay_map.locate(t_left, t_right, 60.0)
        np.testing.assert_allclose(
            candidate.position,
            polar_to_cartesian(candidate.radius_m, candidate.theta_deg),
        )

    @given(radius=st.floats(0.3, 1.0), theta=st.floats(5.0, 175.0))
    @settings(max_examples=25, deadline=None)
    def test_inversion_property(self, radius, theta):
        head = HeadGeometry.average()
        dm = DelayMap(head)
        t_left, t_right = binaural_delays(head, polar_to_cartesian(radius, theta))
        candidate = dm.locate(t_left, t_right, theta)
        assert candidate is not None
        assert abs(candidate.theta_deg - theta) < 1.5
        assert abs(candidate.radius_m - radius) < 0.02


class TestEuclideanModel:
    def test_euclidean_map_differs_from_diffraction(self, average_head):
        euclid = DelayMap(average_head, model="euclidean")
        source = polar_to_cartesian(0.45, 60.0)
        t_left, t_right = binaural_delays(average_head, source)  # physical
        candidate = euclid.locate(t_left, t_right, 60.0)
        # The straight-line model misinterprets the wrapped delay.
        assert candidate is None or abs(candidate.theta_deg - 60.0) > 2.0

    def test_euclidean_inverts_euclidean(self, average_head):
        euclid = DelayMap(average_head, model="euclidean")
        source = polar_to_cartesian(0.45, 60.0)
        t_left = euclidean_delay(average_head, source, Ear.LEFT)
        t_right = euclidean_delay(average_head, source, Ear.RIGHT)
        candidate = euclid.locate(t_left, t_right, 60.0)
        assert candidate is not None
        assert candidate.theta_deg == pytest.approx(60.0, abs=1.0)


class TestValidation:
    def test_invalid_grid_raises(self, average_head):
        with pytest.raises(GeometryError):
            DelayMap(average_head, radii=(0.5, 0.2, 10))
        with pytest.raises(GeometryError):
            DelayMap(average_head, thetas=(0.0, 10.0, 4))

    def test_invalid_model_raises(self, average_head):
        with pytest.raises(GeometryError):
            DelayMap(average_head, model="psychic")

    def test_radial_grid_clears_head(self, average_head):
        dm = DelayMap(average_head, radii=(0.01, 1.0, 10))
        assert dm.radii[0] > max(average_head.parameters)


class TestRadialGridAdjustmentWarning:
    def test_adjustment_warns_and_counts(self, average_head, caplog):
        """An in-head r_min is no longer silent: warning + counter fire."""
        counter = obs_metrics.counter("localize.radial_grid_adjusted")
        before = counter.value
        with caplog.at_level(logging.WARNING, logger="repro.core.localize"):
            dm = DelayMap(average_head, radii=(0.05, 1.0, 10))
        assert counter.value - before == 1
        assert dm.radii[0] == pytest.approx(max(average_head.parameters) + 0.01)
        messages = [
            r.message for r in caplog.records if "radial_grid_adjusted" in r.message
        ]
        assert len(messages) == 1
        assert "requested_r_min_m=0.05" in messages[0]
        assert "adjusted_r_min_m=" in messages[0]

    def test_valid_grid_stays_silent(self, average_head, caplog):
        counter = obs_metrics.counter("localize.radial_grid_adjusted")
        before = counter.value
        with caplog.at_level(logging.WARNING, logger="repro.core.localize"):
            dm = DelayMap(average_head, radii=(0.2, 1.0, 10))
        assert counter.value == before
        assert not any(
            "radial_grid_adjusted" in r.message for r in caplog.records
        )
        assert dm.radii[0] == pytest.approx(0.2)


class TestCachedDelayMap:
    PARAMS = (0.0901, 0.1153, 0.0987)

    def test_repeat_parameters_hit(self):
        clear_delay_map_cache()
        hits = obs_metrics.counter("localize.delay_map_cache_hits")
        misses = obs_metrics.counter("localize.delay_map_cache_misses")
        h0, m0 = hits.value, misses.value
        first = cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10))
        again = cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10))
        assert again is first
        assert misses.value - m0 == 1
        assert hits.value - h0 == 1
        assert delay_map_cache_size() == 1

    def test_distinct_parameters_do_not_collapse(self):
        clear_delay_map_cache()
        a, b, c = self.PARAMS
        # 1e-5 m apart: far above the quantize_key_component tolerance
        # (1e-9), well below anything the optimizer treats as equal.
        first = cached_delay_map((a, b, c), radii=(0.2, 1.0, 10))
        other = cached_delay_map((a + 1e-5, b, c), radii=(0.2, 1.0, 10))
        assert other is not first
        assert delay_map_cache_size() == 2

    def test_grid_and_mode_are_part_of_the_key(self):
        clear_delay_map_cache()
        base = cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10))
        assert cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 12)) is not base
        assert (
            cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10), refine=False)
            is not base
        )
        assert (
            cached_delay_map(
                self.PARAMS, radii=(0.2, 1.0, 10), model="euclidean"
            )
            is not base
        )
        assert delay_map_cache_size() == 4

    def test_matches_direct_construction(self):
        clear_delay_map_cache()
        cached = cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10))
        a, b, c = self.PARAMS
        direct = DelayMap(HeadGeometry(a=a, b=b, c=c), radii=(0.2, 1.0, 10))
        np.testing.assert_array_equal(cached.t_left, direct.t_left)
        np.testing.assert_array_equal(cached.t_right, direct.t_right)

    def test_clear_empties_the_store(self):
        cached_delay_map(self.PARAMS, radii=(0.2, 1.0, 10))
        assert delay_map_cache_size() >= 1
        clear_delay_map_cache()
        assert delay_map_cache_size() == 0

    def test_invert_memoized_per_map(self, average_head):
        dm = DelayMap(average_head)
        t_left, t_right = binaural_delays(
            average_head, polar_to_cartesian(0.45, 40.0)
        )
        hits = obs_metrics.counter("localize.invert_cache_hits")
        first = dm.invert(t_left, t_right)
        h0 = hits.value
        again = dm.invert(t_left, t_right)
        assert hits.value - h0 == 1
        assert again == first


class TestBatchInversion:
    """The vectorized kernel must reproduce the scalar path bit for bit.

    Each test builds *two* independent maps with identical grids so the
    scalar results never leak into the batch path (or vice versa) through
    the per-map inversion memo.
    """

    @pytest.fixture(scope="class")
    def refined_pair(self, average_head):
        return DelayMap(average_head), DelayMap(average_head)

    @pytest.fixture(scope="class")
    def coarse_pair(self, average_head):
        grid = {"radii": (0.16, 1.2, 24), "thetas": (-40.0, 220.0, 88)}
        return (
            DelayMap(average_head, refine=False, **grid),
            DelayMap(average_head, refine=False, **grid),
        )

    @staticmethod
    def _delay_arrays(head, pairs):
        t1, t2 = [], []
        for radius, theta in pairs:
            a, b = binaural_delays(head, polar_to_cartesian(radius, theta))
            t1.append(a)
            t2.append(b)
        # Pathological rows every batch must handle: a non-finite probe, an
        # impossible delay pair, and an in-batch duplicate of row 0.
        t1 += [np.nan, 1e-5, t1[0]]
        t2 += [1e-3, 1e-5, t2[0]]
        return np.asarray(t1), np.asarray(t2)

    # Mix ordinary geometry with the grazing zone around +/-90 degrees,
    # where the tangential-vertex path and _refine_grazing fire.
    pair_lists = st.lists(
        st.tuples(
            st.floats(0.25, 1.1),
            st.one_of(
                st.floats(-160.0, 160.0),
                st.floats(80.0, 100.0),
                st.floats(-100.0, -80.0),
            ),
        ),
        min_size=1,
        max_size=6,
    )

    @given(pairs=pair_lists)
    @settings(max_examples=20, deadline=None)
    def test_invert_batch_matches_scalar_refined(
        self, average_head, refined_pair, pairs
    ):
        scalar_map, batch_map = refined_pair
        t1, t2 = self._delay_arrays(average_head, pairs)
        batch = batch_map.invert_batch(t1, t2)
        scalar = [scalar_map.invert(a, b) for a, b in zip(t1, t2)]
        assert batch == scalar

    @given(pairs=pair_lists)
    @settings(max_examples=20, deadline=None)
    def test_invert_batch_matches_scalar_coarse(
        self, average_head, coarse_pair, pairs
    ):
        scalar_map, batch_map = coarse_pair
        t1, t2 = self._delay_arrays(average_head, pairs)
        batch = batch_map.invert_batch(t1, t2)
        scalar = [scalar_map.invert(a, b) for a, b in zip(t1, t2)]
        assert batch == scalar

    def test_locate_batch_matches_scalar_locate(self, average_head, refined_pair):
        scalar_map, batch_map = refined_pair
        pairs = [(0.45, 30.0), (0.45, 90.0), (0.3, 150.0), (0.7, 10.0)]
        t1, t2 = self._delay_arrays(average_head, pairs)
        alphas = np.array([34.0, 88.0, 147.0, 12.0, 0.0, 0.0, 34.0])
        thetas, radii, solved = batch_map.locate_batch(t1, t2, alphas)
        for i in range(t1.shape[0]):
            candidate = scalar_map.locate(
                float(t1[i]), float(t2[i]), float(alphas[i])
            )
            if candidate is None:
                assert not solved[i]
                assert np.isnan(thetas[i]) and np.isnan(radii[i])
            else:
                assert solved[i]
                assert thetas[i] == candidate.theta_deg
                assert radii[i] == candidate.radius_m

    def test_batch_hits_scalar_memo_and_back(self, average_head):
        """Scalar and batch calls share one memo with consistent counters."""
        dm = DelayMap(average_head)
        t1, t2 = binaural_delays(average_head, polar_to_cartesian(0.5, 60.0))
        first = dm.invert(t1, t2)
        hits = obs_metrics.counter("localize.invert_cache_hits")
        h0 = hits.value
        batch = dm.invert_batch(np.array([t1, t1]), np.array([t2, t2]))
        assert batch == [first, first]
        assert hits.value - h0 == 2  # one cached hit + one in-batch alias
        h1 = hits.value
        assert dm.invert(t1, t2) == first
        assert hits.value - h1 == 1


class TestDegenerateColumns:
    def test_degenerate_bracket_yields_nan_not_zero(self, average_head):
        """A non-monotonic t_left column (t_hi <= t_lo at the bracket) must
        produce NaN for that angle — not a silently wrong radius at frac=0 —
        and increment the degenerate-column counter."""
        dm = DelayMap(average_head, radii=(0.2, 1.0, 10), thetas=(-180.0, 180.0, 31))
        col = 7
        # Manufacture a dip: row 5 falls back to the row-3 value, so a t1
        # between rows 3 and 4 brackets a decreasing (t_lo > t_hi) pair.
        dm.t_left[5, col] = dm.t_left[3, col]
        t1 = 0.5 * (float(dm.t_left[3, col]) + float(dm.t_left[4, col]))
        counter = obs_metrics.counter("localize.degenerate_columns")

        c0 = counter.value
        radius = dm._radius_for_left_delay(t1)
        assert np.isnan(radius[col])
        assert counter.value - c0 == 1

        c1 = counter.value
        radius_b = dm._radius_for_left_delay_batch(np.array([t1]))
        assert np.isnan(radius_b[0, col])
        assert counter.value - c1 == 1
