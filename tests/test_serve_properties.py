"""Property tests: the service's results are invariant to scheduling.

The :class:`repro.serve.BatchServer` contract is that the deterministic
part of every result (:meth:`JobResult.deterministic`) is a pure function
of the job spec — worker count, submission order, priorities, and
coalescing only decide *when and where* jobs run.  Hypothesis generates job
lists (with duplicate specs, mixed priorities, and injected failures) and
the tests assert the invariance across worker counts 1, 2, and 4 and across
permutations.  The cheap :func:`repro.testing.workloads.digest_runner`
keeps each example in the milliseconds; profiles are pinned in
``tests/conftest.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import BatchServer, Job
from repro.testing.workloads import FAILING_FAULT, digest_runner

WORKER_COUNTS = (1, 2, 4)

# Small seed/step domains on purpose: collisions are the interesting case
# (they exercise coalescing and the done-cache), and hypothesis finds them
# immediately in a tight domain.
_specs = st.fixed_dictionaries(
    {
        "subject_seed": st.integers(min_value=0, max_value=3),
        "angle_step_deg": st.sampled_from([5.0, 15.0]),
        "priority": st.integers(min_value=-2, max_value=2),
        "fault": st.sampled_from([None, FAILING_FAULT]),
    }
)
_job_lists = st.lists(_specs, min_size=1, max_size=8)


def _jobs(raw: list[dict]) -> list[Job]:
    return [Job(job_id=f"j{i}", **spec) for i, spec in enumerate(raw)]


def _run(jobs: list[Job], workers: int, coalesce: bool = True) -> list[dict]:
    with BatchServer(
        workers=workers, runner=digest_runner, coalesce=coalesce
    ) as server:
        report = server.run_batch(jobs)
    return [result.deterministic() for result in report.results]


@given(raw=_job_lists)
@settings(max_examples=8)
def test_results_invariant_to_worker_count(raw):
    jobs = _jobs(raw)
    baseline = _run(jobs, workers=WORKER_COUNTS[0])
    for workers in WORKER_COUNTS[1:]:
        assert _run(jobs, workers=workers) == baseline


@given(raw=_job_lists, data=st.data())
@settings(max_examples=8)
def test_results_invariant_to_submission_order(raw, data):
    jobs = _jobs(raw)
    shuffled = data.draw(st.permutations(jobs), label="submission order")
    by_id = {
        result["job_id"]: result for result in _run(shuffled, workers=2)
    }
    baseline = _run(jobs, workers=1)
    assert [by_id[result["job_id"]] for result in baseline] == baseline


@given(raw=_job_lists)
@settings(max_examples=6)
def test_coalescing_never_changes_results(raw):
    jobs = _jobs(raw)
    assert _run(jobs, workers=2, coalesce=True) == _run(
        jobs, workers=2, coalesce=False
    )


@given(raw=_job_lists)
@settings(max_examples=6)
def test_every_job_gets_exactly_one_terminal_result(raw):
    jobs = _jobs(raw)
    results = _run(jobs, workers=4)
    assert [result["job_id"] for result in results] == [
        job.job_id for job in jobs
    ]
    for job, result in zip(jobs, results):
        expected = "failed" if job.fault == FAILING_FAULT else "ok"
        assert result["status"] == expected
        if expected == "ok":
            assert result["payload"]["digest"]
        else:
            assert "synthetic failure" in result["error"]
