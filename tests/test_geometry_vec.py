"""Tests for repro.geometry.vec: angle conventions and vector helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    angle_deg_of,
    angular_difference_deg,
    norm,
    normalize,
    polar_to_cartesian,
    unit_from_angle_deg,
    wrap_angle_deg,
)


class TestUnitFromAngle:
    def test_zero_is_nose_direction(self):
        np.testing.assert_allclose(unit_from_angle_deg(0.0), [0.0, 1.0], atol=1e-12)

    def test_ninety_is_left_ear_direction(self):
        np.testing.assert_allclose(unit_from_angle_deg(90.0), [1.0, 0.0], atol=1e-12)

    def test_180_is_behind(self):
        np.testing.assert_allclose(unit_from_angle_deg(180.0), [0.0, -1.0], atol=1e-12)

    def test_negative_angle_is_right_side(self):
        v = unit_from_angle_deg(-90.0)
        np.testing.assert_allclose(v, [-1.0, 0.0], atol=1e-12)

    def test_vectorized(self):
        vs = unit_from_angle_deg(np.array([0.0, 90.0]))
        assert vs.shape == (2, 2)

    @given(st.floats(-720, 720))
    def test_always_unit_length(self, angle):
        assert np.linalg.norm(unit_from_angle_deg(angle)) == pytest.approx(1.0)


class TestAngleOf:
    @given(st.floats(-179.9, 180.0), st.floats(0.01, 100.0))
    def test_roundtrip_with_polar(self, angle, radius):
        point = polar_to_cartesian(radius, angle)
        assert angle_deg_of(point) == pytest.approx(angle, abs=1e-9)

    def test_array_input(self):
        points = polar_to_cartesian(np.ones(3), np.array([0.0, 45.0, 90.0]))
        np.testing.assert_allclose(angle_deg_of(points), [0.0, 45.0, 90.0], atol=1e-9)


class TestWrap:
    @pytest.mark.parametrize(
        "raw, wrapped",
        [(0.0, 0.0), (180.0, 180.0), (181.0, -179.0), (-180.0, 180.0), (540.0, 180.0)],
    )
    def test_known_values(self, raw, wrapped):
        assert wrap_angle_deg(raw) == pytest.approx(wrapped)

    @given(st.floats(-10_000, 10_000))
    def test_range(self, angle):
        w = wrap_angle_deg(angle)
        assert -180.0 < w <= 180.0

    @given(st.floats(-1000, 1000), st.floats(-1000, 1000))
    def test_difference_symmetric_and_bounded(self, a, b):
        d = angular_difference_deg(a, b)
        assert 0.0 <= d <= 180.0
        assert d == pytest.approx(angular_difference_deg(b, a))


class TestNormalize:
    def test_normalize_unit(self):
        v = normalize(np.array([3.0, 4.0]))
        np.testing.assert_allclose(v, [0.6, 0.8])

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(2))

    def test_norm_scalar(self):
        assert norm(np.array([3.0, 4.0])) == pytest.approx(5.0)
        assert isinstance(norm(np.array([3.0, 4.0])), float)
