"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.textplot import bar_chart, cdf_plot, matrix_heatmap, sparkline, waveform


class TestSparkline:
    def test_shape_follows_values(self):
        line = sparkline([0, 1, 2, 3, 2, 1, 0])
        assert line == "▁▃▆█▆▃▁"

    def test_constant_input_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_resampling_caps_width(self):
        line = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(line) == 40

    def test_rejects_nan(self):
        with pytest.raises(SignalError):
            sparkline([1.0, float("nan")])

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            sparkline([])


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_negative_values_shaded(self):
        chart = bar_chart(["x"], [-1.0])
        assert "▒" in chart

    def test_label_mismatch_raises(self):
        with pytest.raises(SignalError):
            bar_chart(["a"], [1.0, 2.0])


class TestWaveform:
    def test_panel_dimensions(self):
        panel = waveform(np.sin(np.linspace(0, 20, 300)), width=50, height=7)
        lines = panel.splitlines()
        assert len(lines) == 7
        assert all(len(line) == 50 for line in lines)

    def test_title_prepended(self):
        panel = waveform(np.ones(16), title="HRIR")
        assert panel.splitlines()[0] == "HRIR"

    def test_isolated_tap_visible(self):
        """Block-max resampling must keep a lone tap visible."""
        signal = np.zeros(1000)
        signal[500] = 1.0
        panel = waveform(signal, width=50, height=5)
        assert "█" in panel

    def test_rejects_even_height(self):
        with pytest.raises(SignalError):
            waveform(np.ones(16), height=4)


class TestCdfAndHeatmap:
    def test_cdf_monotone_rows(self):
        text = cdf_plot(np.arange(100.0))
        bars = [line.count("█") for line in text.splitlines()]
        assert bars == sorted(bars)

    def test_heatmap_shape_and_extremes(self):
        matrix = np.array([[0.0, 1.0], [0.5, 0.25]])
        text = matrix_heatmap(matrix, row_labels=["r0", "r1"])
        lines = text.splitlines()
        assert len(lines) == 2
        assert "█" in lines[0]  # the 1.0 cell
        assert " " in lines[0].split("|")[1]  # the 0.0 cell

    def test_heatmap_label_mismatch(self):
        with pytest.raises(SignalError):
            matrix_heatmap(np.eye(3), row_labels=["only-one"])

    def test_heatmap_rejects_empty(self):
        with pytest.raises(SignalError):
            matrix_heatmap(np.zeros((0, 3)))
