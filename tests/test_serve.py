"""Batch service tests: jobs, pool, server semantics, and the real pipeline.

Service *semantics* (queueing, coalescing, backpressure, priorities, crash
retry, timeouts) are exercised with the millisecond runners from
:mod:`repro.testing.workloads`; the real :func:`repro.serve.worker
.execute_job` pipeline appears only in the small end-to-end tests at the
bottom (determinism vs serial, fault isolation), which reuse the golden-case
configuration so the delay-map caches stay warm across the suite.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReproError, SignalError
from repro.serve import (
    BatchServer,
    Job,
    JobResult,
    RetryPolicy,
    WorkerPool,
    dump_jobs,
    execute_job,
    load_jobs,
    read_events,
)
from repro.testing.workloads import FAILING_FAULT, digest_runner, sleepy_runner

#: The golden-case pipeline configuration — small grid, sparse probes — so
#: real-runner tests share warm caches with tests/test_golden_regression.py.
FAST = {"probe_interval_s": 0.6, "angle_step_deg": 15.0}


def _job(job_id: str, seed: int = 1, **kw) -> Job:
    return Job(job_id=job_id, subject_seed=seed, **kw)


class TestJobSpec:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ReproError):
            Job(job_id="x")
        with pytest.raises(ReproError):
            Job(job_id="x", subject_seed=1, session_path="a.npz")
        Job(job_id="x", subject_seed=1)
        Job(job_id="x", session_path="a.npz")

    def test_spec_key_ignores_service_knobs(self):
        base = _job("a", priority=0)
        assert base.spec_key() == _job("b", priority=9, timeout_s=3.0).spec_key()
        assert base.spec_key() != _job("c", seed=2).spec_key()
        assert base.spec_key() != _job("d", angle_step_deg=10.0).spec_key()

    def test_round_trip_through_dict(self):
        job = _job("a", seed=5, priority=2, fault="clipped",
                   fault_args={"level": 0.2}, timeout_s=1.5)
        again = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert again == job

    def test_to_dict_omits_defaults(self):
        assert _job("a").to_dict() == {"job_id": "a", "subject_seed": 1}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReproError, match="unknown fields"):
            Job.from_dict({"job_id": "a", "subject_seed": 1, "speed": 11})

    def test_jsonl_round_trip(self, tmp_path):
        jobs = [_job("a"), _job("b", seed=2, priority=1)]
        path = tmp_path / "jobs.jsonl"
        dump_jobs(jobs, path)
        assert list(load_jobs(path)) == jobs

    def test_load_jobs_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(
            '# a comment\n\n{"job_id": "a", "subject_seed": 1}\n'
        )
        assert [j.job_id for j in load_jobs(path)] == ["a"]

    def test_load_jobs_rejects_duplicates_and_empties(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(
            '{"job_id": "a", "subject_seed": 1}\n'
            '{"job_id": "a", "subject_seed": 2}\n'
        )
        with pytest.raises(ReproError, match="duplicate"):
            load_jobs(path)
        path.write_text("# only comments\n")
        with pytest.raises(ReproError, match="no jobs"):
            load_jobs(path)


class TestJobResult:
    def test_rejects_unknown_status(self):
        with pytest.raises(ReproError, match="unknown job status"):
            JobResult(job_id="a", status="exploded")

    def test_deterministic_strips_operational_stats(self):
        result = JobResult(
            job_id="a",
            status="ok",
            payload={"digest": "d", "_stats": {"worker_pid": 123}},
            attempts=2,
            run_s=1.0,
        )
        det = result.deterministic()
        assert det["payload"] == {"digest": "d"}
        assert "attempts" not in det and "run_s" not in det


class TestWorkerPool:
    def test_inline_map_preserves_order(self):
        with WorkerPool(1, inline=True) as pool:
            specs = [{"job_id": f"j{i}", "subject_seed": i} for i in range(5)]
            values = pool.map(digest_runner, specs)
        assert [v["subject_seed"] for v in values] == list(range(5))

    def test_inline_map_reraises_the_original_exception(self):
        with WorkerPool(1, inline=True) as pool:
            with pytest.raises(ReproError, match="synthetic failure"):
                pool.map(digest_runner, [{"job_id": "bad", "fault": FAILING_FAULT}])

    def test_subprocess_matches_inline(self):
        specs = [{"job_id": f"j{i}", "subject_seed": i} for i in range(4)]
        with WorkerPool(1, inline=True) as pool:
            inline = pool.map(digest_runner, specs)
        with WorkerPool(2, inline=False) as pool:
            forked = pool.map(digest_runner, specs)
        assert forked == inline

    def test_crash_retry_recovers(self, tmp_path):
        marker = tmp_path / "boom"
        spec = {"job_id": "j", "subject_seed": 3, "crash_marker": str(marker)}
        with WorkerPool(1, inline=False) as pool:
            outcomes = pool.outcomes(digest_runner, [spec])
        assert marker.exists()
        assert outcomes[0].status == "ok"
        assert outcomes[0].attempts == 2

    def test_crash_without_retry_budget_reports_crashed(self, tmp_path):
        # Two markers: the job crashes on the first attempt *and* on its
        # single retry, so the pool must give up and say so.
        first = tmp_path / "boom"
        spec = {"job_id": "j", "subject_seed": 3, "crash_marker": str(first)}

        with WorkerPool(1, inline=False, max_crash_retries=0) as pool:
            outcomes = pool.outcomes(digest_runner, [spec])
        assert outcomes[0].status == "crashed"
        assert outcomes[0].attempts == 1

    def test_timeout_resolves_without_blocking(self):
        # Shutdown waits for the busy worker, so the sleep bounds the test.
        spec = {"job_id": "slow", "subject_seed": 1,
                "fault_args": {"sleep_s": 1.5}}
        with WorkerPool(1, inline=False) as pool:
            outcomes = pool.outcomes(sleepy_runner, [spec], timeout_s=0.3)
        assert outcomes[0].status == "timeout"
        assert "0.300" in (outcomes[0].error or "")


class TestBatchServerSemantics:
    def test_run_batch_reports_every_job_in_input_order(self):
        jobs = [_job(f"j{i}", seed=i) for i in range(6)]
        with BatchServer(workers=2, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        assert [r.job_id for r in report.results] == [j.job_id for j in jobs]
        assert report.counts == {"ok": 6}
        assert report.n_ok == 6

    def test_failure_is_isolated_to_its_job(self):
        jobs = [_job("good-1", seed=1),
                _job("bad", seed=2, fault=FAILING_FAULT),
                _job("good-2", seed=3)]
        with BatchServer(workers=2, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        by_id = {r.job_id: r for r in report.results}
        assert by_id["good-1"].ok and by_id["good-2"].ok
        assert by_id["bad"].status == "failed"
        assert "synthetic failure" in by_id["bad"].error

    def test_coalescing_shares_one_execution(self):
        jobs = [_job(f"j{i}", seed=7) for i in range(5)]
        with BatchServer(workers=2, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        executed = [r for r in report.results if not r.coalesced]
        coalesced = [r for r in report.results if r.coalesced]
        assert len(executed) >= 1
        assert len(coalesced) == 5 - len(executed)
        digests = {r.payload["digest"] for r in report.results}
        assert len(digests) == 1

    def test_coalescing_shares_failures_too(self):
        jobs = [_job(f"j{i}", seed=7, fault=FAILING_FAULT) for i in range(3)]
        with BatchServer(workers=1, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        assert report.counts == {"failed": 3}
        assert sum(r.attempts for r in report.results) <= 2

    def test_no_coalesce_runs_every_job(self):
        jobs = [_job(f"j{i}", seed=7) for i in range(4)]
        with BatchServer(workers=2, runner=digest_runner, coalesce=False) as server:
            report = server.run_batch(jobs)
        assert all(not r.coalesced for r in report.results)
        assert all(r.attempts >= 1 for r in report.results)

    def test_duplicate_job_id_rejected_loudly(self):
        with BatchServer(workers=1, runner=digest_runner) as server:
            server.submit(_job("a"))
            with pytest.raises(ReproError, match="duplicate job_id"):
                server.submit(_job("a", seed=2))
            server.drain()

    def test_submit_after_close_raises(self):
        server = BatchServer(workers=1, runner=digest_runner)
        server.close()
        with pytest.raises(ReproError, match="closed"):
            server.submit(_job("late"))

    def test_nonblocking_submit_rejects_when_full(self):
        # One worker pinned on a slow job; a tiny queue behind it must
        # reject (not drop, not block) the overflow.
        blocker = _job("blocker", seed=0, fault_args={"sleep_s": 0.8})
        burst = [_job(f"b{i}", seed=100 + i) for i in range(6)]
        with BatchServer(workers=1, queue_size=2, runner=sleepy_runner,
                         coalesce=False) as server:
            assert server.submit(blocker, block=True)
            accepted = [server.submit(job, block=False) for job in burst]
            server.drain()
            results = {r.job_id: r for r in server.results()}
        assert not all(accepted), "a 2-slot queue cannot absorb a 6-job burst"
        for job, was_accepted in zip(burst, accepted):
            result = results[job.job_id]
            if was_accepted:
                assert result.ok
            else:
                assert result.status == "rejected"
                assert result.attempts == 0
                assert "queue full" in result.error

    def test_rejections_are_visible_everywhere(self, tmp_path):
        # A non-blocking rejection must be observable in all three planes:
        # the metrics counter, the telemetry event stream, and the batch
        # report — silent admission drops read as lost load.
        from repro.obs import metrics as obs_metrics
        from repro.serve import BatchReport

        before = obs_metrics.counter("serve.rejected").value
        telemetry = tmp_path / "events.jsonl"
        blocker = _job("blocker", seed=0, fault_args={"sleep_s": 0.8})
        burst = [_job(f"b{i}", seed=100 + i, tenant="burst") for i in range(6)]
        with BatchServer(workers=1, queue_size=1, runner=sleepy_runner,
                         coalesce=False, telemetry=telemetry) as server:
            assert server.submit(blocker, block=True)
            accepted = [server.submit(job, block=False) for job in burst]
            server.drain()
            results = server.results()
            wall_s = 0.0
        n_rejected = accepted.count(False)
        assert n_rejected > 0

        # Metrics plane: the dedicated rejection counter moved in lockstep.
        assert obs_metrics.counter("serve.rejected").value == before + n_rejected

        # Telemetry plane: one typed "rejected" event per rejection, each
        # carrying the reason, tenant, and observed queue depth.
        events = [e for e in read_events(telemetry) if e.get("event") == "rejected"]
        assert len(events) == n_rejected
        for event in events:
            assert event["reason"] == "queue_full"
            assert event["tenant"] == "burst"
            assert event["queue_depth"] >= 0

        # Report plane: rejections surface in counts, typed reasons, and
        # the serialized record (only when rejections actually happened).
        report = BatchReport(results=results, wall_s=wall_s, workers=1,
                             queue_size=1, coalesce=False)
        assert report.n_rejected == n_rejected
        assert report.rejection_reasons() == {"queue_full": n_rejected}
        record = report.to_dict()
        assert record["rejected_jobs"] == n_rejected
        assert record["rejection_reasons"] == {"queue_full": n_rejected}

    def test_priority_orders_the_pending_queue(self):
        # While the single worker is pinned, a later high-priority job must
        # be dispatched before an earlier low-priority one; queue_wait_s
        # (enqueue -> dispatch) observes the order.
        blocker = _job("blocker", seed=0, fault_args={"sleep_s": 0.6})
        low = _job("low", seed=1, priority=0, fault_args={"sleep_s": 0.2})
        high = _job("high", seed=2, priority=5, fault_args={"sleep_s": 0.2})
        with BatchServer(workers=1, runner=sleepy_runner,
                         coalesce=False) as server:
            server.submit(blocker)
            server.submit(low)
            server.submit(high)
            server.drain()
            results = {r.job_id: r for r in server.results()}
        assert results["high"].queue_wait_s < results["low"].queue_wait_s

    def test_crash_retry_completes_the_batch(self, tmp_path):
        marker = tmp_path / "boom"
        jobs = [_job("victim", seed=1, crash_marker=str(marker)),
                _job("bystander", seed=2)]
        with BatchServer(workers=1, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        assert marker.exists()
        assert report.counts == {"ok": 2}
        victim = next(r for r in report.results if r.job_id == "victim")
        assert victim.attempts == 2

    def test_timeout_status_and_no_spec_caching(self):
        # A timed-out execution must not poison the coalescing cache: the
        # same spec with a saner budget afterwards succeeds.
        slow = {"fault_args": {"sleep_s": 0.6}}
        with BatchServer(workers=1, runner=sleepy_runner) as server:
            server.submit(_job("t1", seed=9, timeout_s=0.1, **slow))
            server.drain()
            server.submit(_job("t2", seed=9, timeout_s=10.0, **slow))
            server.drain()
            results = {r.job_id: r for r in server.results()}
        assert results["t1"].status == "timeout"
        assert results["t2"].ok and not results["t2"].coalesced

    def test_report_serializes(self, tmp_path):
        jobs = [_job(f"j{i}", seed=i) for i in range(3)]
        with BatchServer(workers=1, runner=digest_runner) as server:
            report = server.run_batch(jobs)
        path = tmp_path / "report.json"
        report.save(path)
        record = json.loads(path.read_text())
        assert record["n_jobs"] == 3
        assert record["counts"] == {"ok": 3}
        assert set(record["latency"]) == {
            "run_p50_s", "run_p95_s", "queue_wait_p50_s", "queue_wait_p95_s"
        }
        assert len(record["results"]) == 3

    def test_serve_metrics_flow(self):
        from repro.obs import metrics as obs_metrics

        submitted = obs_metrics.counter("serve.jobs_submitted").value
        ok = obs_metrics.counter("serve.jobs_ok").value
        with BatchServer(workers=1, runner=digest_runner) as server:
            server.run_batch([_job(f"m{i}", seed=i) for i in range(3)])
        assert obs_metrics.counter("serve.jobs_submitted").value == submitted + 3
        assert obs_metrics.counter("serve.jobs_ok").value >= ok + 1
        assert obs_metrics.histogram("serve.run_s").count > 0


@pytest.mark.slow
class TestRealPipelineService:
    """End-to-end: the real personalize runner through the service."""

    def test_parallel_batch_is_bit_identical_to_serial(self):
        jobs = [
            Job(job_id=f"u{i}", subject_seed=(i % 2) + 1, **FAST)
            for i in range(6)
        ]
        with BatchServer(workers=1, runner=execute_job) as server:
            serial = server.run_batch(jobs)
        with BatchServer(workers=2, runner=execute_job) as server:
            parallel = server.run_batch(jobs)
        assert [r.deterministic() for r in serial.results] == [
            r.deterministic() for r in parallel.results
        ]
        assert serial.counts == {"ok": 6}

    def test_corrupted_capture_fails_only_that_job(self):
        jobs = [
            Job(job_id="healthy-1", subject_seed=1, **FAST),
            Job(job_id="zeroed", subject_seed=1, fault="zeroed", **FAST),
            Job(job_id="healthy-2", subject_seed=7, session_seed=3, **FAST),
        ]
        with BatchServer(workers=2, runner=execute_job) as server:
            report = server.run_batch(jobs)
        by_id = {r.job_id: r for r in report.results}
        assert by_id["healthy-1"].ok
        assert by_id["healthy-2"].ok
        assert by_id["zeroed"].status == "failed"
        assert "SignalError" in by_id["zeroed"].error
        payload = by_id["healthy-1"].payload
        assert len(payload["head_parameters"]) == 3
        assert payload["n_angles"] == 13
        assert len(payload["table_digest"]) == 64

    def test_session_path_jobs_match_seeded_jobs(self, tmp_path):
        # A job naming an on-disk capture must produce the same payload as
        # the seeded job that generated that capture.
        from repro.datasets import save_session
        from repro.simulation.person import VirtualSubject
        from repro.simulation.session import MeasurementSession

        subject = VirtualSubject.random(1)
        session = MeasurementSession(
            subject, seed=0, probe_interval_s=FAST["probe_interval_s"]
        ).run()
        path = tmp_path / "capture.npz"
        save_session(session, path)

        seeded = Job(job_id="seeded", subject_seed=1, **FAST)
        from_disk = Job(
            job_id="disk",
            session_path=str(path),
            angle_step_deg=FAST["angle_step_deg"],
        )
        with BatchServer(workers=1, runner=execute_job) as server:
            report = server.run_batch([seeded, from_disk])
        first, second = (r.deterministic()["payload"] for r in report.results)
        assert first == second


class TestRetriedJobTrace:
    def test_crashed_then_retried_trace_holds_both_attempts(self, tmp_path):
        # The telemetry acceptance scenario: a job whose worker dies on the
        # first attempt must produce a cross-process trace holding both
        # attempts with the retry (and its backoff delay) between them,
        # plus matching retry/attempt events in the flight-recorder stream.
        path = tmp_path / "telemetry.jsonl"
        jobs = [
            _job("crashy", crash_marker=str(tmp_path / "crash.marker")),
        ]
        policy = RetryPolicy(
            max_transient_retries=2, base_backoff_s=0.05,
            backoff_factor=1.0, jitter_frac=0.0,
        )
        with BatchServer(
            workers=1, runner=digest_runner, retry_policy=policy,
            telemetry=path,
        ) as server:
            report = server.run_batch(jobs)
        result = report.results[0]
        assert result.ok and result.attempts == 2
        names = [c["name"] for c in result.trace["children"]]
        assert names == [
            "serve.queue", "serve.attempt", "serve.retry", "serve.attempt",
        ]
        first, second = (
            c for c in result.trace["children"] if c["name"] == "serve.attempt"
        )
        assert first["attributes"]["status"] == "crashed"
        assert second["attributes"]["status"] == "ok"
        retry = next(
            c for c in result.trace["children"] if c["name"] == "serve.retry"
        )
        assert retry["attributes"]["backoff_s"] == pytest.approx(0.05)
        events = read_events(path)
        assert [e["event"] for e in events if e["event"] == "retry"] == ["retry"]
        ends = [e for e in events if e["event"] == "attempt_end"]
        assert [e["status"] for e in ends] == ["crashed", "ok"]
