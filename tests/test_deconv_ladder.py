"""The deconvolution escalation ladder: strategies, sentinels, rescue.

Three layers under test:

- ``repro.signals.deconvolve`` — the strategy registry itself (rung order,
  bit-identity of rung 0, robust-rung recovery on synthetic channels);
- the adverse-capture sentinels in ``repro.quality.preflight`` (fire on
  faulted captures, stay silent on clean ones, recommend a starting rung);
- the pipeline contract: a capture that *fails* with the deconvolution
  pinned to ``inverse`` completes under ``auto`` on a higher rung with
  flags and reduced confidence, while clean captures never leave rung 0
  and stay bit-identical to the pre-ladder pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CalibrationError, SignalError
from repro.core.pipeline import personalize_capture
from repro.hrtf.io import table_digest
from repro.quality.preflight import preflight
from repro.signals.channel import (
    ProbeChannelBank,
    estimate_channel,
    first_tap_index,
)
from repro.signals.deconvolve import (
    DECONVOLVERS,
    LADDER,
    estimate_noise_floor,
    inverse_deconvolve,
    ladder_next,
    noise_regularization,
    rung_of,
    tdls_deconvolve,
    wiener_deconvolve,
)
from repro.signals.waveforms import probe_chirp
from repro.testing.faults import apply_fault
from repro.testing.golden import CASE_CONFIG

FS = 48_000


@pytest.fixture(scope="module")
def synthetic_capture():
    """A chirp through a known sparse channel, clean and adversarial."""
    source = probe_chirp(FS, duration_s=0.05)
    impulse = np.zeros(512)
    impulse[40] = 1.0
    impulse[55] = -0.45
    convolved = np.convolve(source, impulse)
    recording = np.zeros(6000)
    recording[: convolved.shape[0]] = convolved
    rng = np.random.default_rng(123)
    noisy = recording + rng.normal(0.0, 0.2, recording.shape[0])
    # Late reverberant tail: energy smeared far past the modeled window.
    tail = np.zeros_like(recording)
    decay = np.exp(-np.arange(3000) / 1200.0)
    tail[2500 : 2500 + 3000] = 0.6 * decay * rng.normal(0.0, 1.0, 3000)
    reverberant = recording + tail
    return {
        "source": source,
        "impulse": impulse,
        "clean": recording,
        "noisy": noisy,
        "reverberant": reverberant,
    }


class TestRegistry:
    def test_ladder_orders_the_registry(self):
        assert LADDER == ("inverse", "wiener", "tdls")
        assert set(DECONVOLVERS) == set(LADDER)

    def test_rung_of_is_the_ladder_index(self):
        for rung, method in enumerate(LADDER):
            assert rung_of(method) == rung

    def test_ladder_next_climbs_and_tops_out(self):
        assert ladder_next("inverse") == "wiener"
        assert ladder_next("wiener") == "tdls"
        assert ladder_next("tdls") is None

    def test_unknown_method_raises(self):
        with pytest.raises(SignalError):
            rung_of("matched_filter")
        with pytest.raises(SignalError):
            ladder_next("matched_filter")


class TestStrategies:
    def test_inverse_is_bit_identical_to_estimate_channel(self, synthetic_capture):
        recording = synthetic_capture["clean"]
        source = synthetic_capture["source"]
        via_ladder = inverse_deconvolve(recording, source, 256)
        direct = estimate_channel(recording, source, 256)
        assert np.array_equal(via_ladder, direct)

    def test_every_rung_recovers_the_first_tap_when_clean(self, synthetic_capture):
        recording = synthetic_capture["clean"]
        source = synthetic_capture["source"]
        for method in LADDER:
            impulse = DECONVOLVERS[method](recording, source, 256)
            assert first_tap_index(impulse) == 40, method

    def test_wiener_recovers_the_first_tap_under_noise(self, synthetic_capture):
        recording = synthetic_capture["noisy"]
        source = synthetic_capture["source"]
        sigma = estimate_noise_floor(recording)
        assert sigma > 0.0
        impulse = wiener_deconvolve(
            recording, source, 256, noise_floor=sigma
        )
        assert abs(first_tap_index(impulse) - 40) <= 2

    def test_tdls_recovers_the_first_tap_under_reverberation(
        self, synthetic_capture
    ):
        recording = synthetic_capture["reverberant"]
        source = synthetic_capture["source"]
        impulse = tdls_deconvolve(recording, source, 256, n_taps=512)
        assert abs(first_tap_index(impulse) - 40) <= 2

    def test_noise_regularization_is_clamped_and_monotone(self, synthetic_capture):
        source = synthetic_capture["source"]
        n = synthetic_capture["clean"].shape[0]
        regs = [noise_regularization(source, n, sigma) for sigma in (0.0, 1e-4, 0.05, 10.0)]
        assert regs[0] == pytest.approx(1e-3)  # silent capture: clean default
        assert regs[-1] == pytest.approx(0.5)  # hopeless capture: ceiling
        assert regs == sorted(regs)


class TestProbeChannelBank:
    def test_bank_inverse_matches_estimate_channel(self, synthetic_capture):
        source = synthetic_capture["source"]
        recording = synthetic_capture["clean"]
        bank = ProbeChannelBank(source)
        got = bank.channel((0, "left"), recording, 256)
        assert np.array_equal(got, estimate_channel(recording, source, 256))

    def test_cache_keys_are_per_method(self, synthetic_capture):
        source = synthetic_capture["source"]
        recording = synthetic_capture["noisy"]
        bank = ProbeChannelBank(source)
        rung0 = bank.channel((0, "left"), recording, 256)
        assert bank.n_cached == 1
        bank.set_method("wiener", noise_floor=estimate_noise_floor(recording))
        rung1 = bank.channel((0, "left"), recording, 256)
        assert bank.n_cached == 2  # re-deconvolved, not served from rung 0
        assert not np.array_equal(rung0, rung1)
        # Climbing back down serves the original rung-0 estimate bit-exactly.
        bank.set_method("inverse")
        assert np.array_equal(bank.channel((0, "left"), recording, 256), rung0)
        assert bank.n_cached == 2

    def test_unknown_method_rejected(self, synthetic_capture):
        bank = ProbeChannelBank(synthetic_capture["source"])
        with pytest.raises(SignalError):
            bank.set_method("matched_filter")
        with pytest.raises(SignalError):
            ProbeChannelBank(synthetic_capture["source"], method="matched_filter")


class TestSentinels:
    def test_clean_capture_reads_clean(self, small_session):
        health = preflight(small_session)
        assert health.recommended_method == "inverse"
        assert health.components.get("preflight.reverb", 1.0) == 1.0
        assert health.components.get("preflight.noise", 1.0) == 1.0

    def test_reverberant_capture_trips_the_reverb_sentinel(self, small_session):
        faulted = apply_fault(
            small_session, "reverberant_room", rt60_s=0.9, wet_level=1.6
        )
        health = preflight(faulted)
        assert health.reverb_ratio > 0.45
        assert health.components["preflight.reverb"] < 1.0
        assert health.recommended_method != "inverse"

    def test_noisy_capture_trips_the_noise_sentinel(self, small_session):
        faulted = apply_fault(small_session, "mic_noise", std=0.3)
        health = preflight(faulted)
        assert health.oob_noise > 0.06
        assert health.noise_floor > 0.0
        assert health.components["preflight.noise"] < 1.0
        assert health.recommended_method != "inverse"


@pytest.fixture(scope="module")
def rescue_session():
    """The adverse capture the ladder exists for: inverse-only fails it."""
    from repro.simulation.person import VirtualSubject
    from repro.simulation.session import MeasurementSession

    session = MeasurementSession(
        VirtualSubject.random(1),
        seed=0,
        probe_interval_s=CASE_CONFIG["probe_interval_s"],
    ).run()
    return apply_fault(session, "noisy_reverberant", rt60_s=0.9, std=0.3)


class TestLadderRescue:
    def test_pinned_inverse_fails_but_auto_completes(self, rescue_session):
        with pytest.raises(CalibrationError):
            personalize_capture(
                subject_seed=1,
                session=rescue_session,
                angle_step_deg=CASE_CONFIG["angle_step_deg"],
                deconv="inverse",
            )
        _, result = personalize_capture(
            subject_seed=1,
            session=rescue_session,
            angle_step_deg=CASE_CONFIG["angle_step_deg"],
        )
        salvage = result.quality.salvage
        assert salvage["deconv_rung"] > 0
        assert salvage["deconv_method"] != "inverse"
        assert 0.0 < result.confidence < 1.0
        assert any(
            flag.key == "preflight.broadband_noise"
            for flag in result.quality.flags
        )

    def test_pinned_robust_rung_also_completes(self, rescue_session):
        _, result = personalize_capture(
            subject_seed=1,
            session=rescue_session,
            angle_step_deg=CASE_CONFIG["angle_step_deg"],
            deconv="wiener",
        )
        assert result.quality.salvage["deconv_method"] == "wiener"


class TestCleanBitIdentity:
    def test_auto_equals_pinned_inverse_on_a_clean_capture(self):
        _, auto = personalize_capture(subject_seed=1, session_seed=0, **CASE_CONFIG)
        _, pinned = personalize_capture(
            subject_seed=1, session_seed=0, deconv="inverse", **CASE_CONFIG
        )
        assert table_digest(auto.table) == table_digest(pinned.table)
        assert auto.head_parameters == pinned.head_parameters
        assert auto.confidence == 1.0
        salvage = auto.quality.salvage
        assert salvage["deconv_method"] == "inverse"
        assert salvage["deconv_rung"] == 0
        assert salvage["deconv_path"] == ["inverse"]
