"""Tests for HRTF metrics and npz serialization."""

import numpy as np
import pytest

from repro.errors import SignalError, TableError
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.io import load_table, save_table
from repro.hrtf.metrics import (
    hrir_correlation,
    mean_table_correlation,
    table_correlations,
)
from repro.hrtf.reference import (
    global_template_table,
    ground_truth_table,
    template_subject,
)
from repro.signals.delays import add_tap

FS = 48_000
ANGLES = np.array([0.0, 45.0, 90.0, 135.0, 180.0])


class TestHrirCorrelation:
    def test_identical_is_one(self, subject):
        table = ground_truth_table(subject, ANGLES, FS)
        c_left, c_right = hrir_correlation(table.far[1], table.far[1])
        assert c_left == pytest.approx(1.0)
        assert c_right == pytest.approx(1.0)

    def test_delay_invariance(self):
        a_left = np.zeros(144)
        a_right = np.zeros(144)
        add_tap(a_left, 20.0, 1.0)
        add_tap(a_left, 40.0, 0.6)
        add_tap(a_right, 25.0, 0.8)
        b_left = np.zeros(144)
        b_right = np.zeros(144)
        add_tap(b_left, 50.0, 1.0)  # same shape, bulk-delayed
        add_tap(b_left, 70.0, 0.6)
        add_tap(b_right, 55.0, 0.8)
        a = BinauralIR(left=a_left, right=a_right, fs=FS)
        b = BinauralIR(left=b_left, right=b_right, fs=FS)
        c_left, c_right = hrir_correlation(a, b)
        assert c_left == pytest.approx(1.0, abs=1e-6)
        assert c_right == pytest.approx(1.0, abs=1e-6)

    def test_different_subjects_lower(self, subject, other_subject):
        mine = ground_truth_table(subject, ANGLES, FS)
        theirs = ground_truth_table(other_subject, ANGLES, FS)
        c_left, c_right = hrir_correlation(mine.far[2], theirs.far[2])
        assert c_left < 0.9
        assert c_right < 0.9

    def test_rate_mismatch_raises(self, subject):
        table = ground_truth_table(subject, ANGLES, FS)
        other = BinauralIR(left=table.far[0].left, right=table.far[0].right, fs=96_000)
        with pytest.raises(SignalError):
            hrir_correlation(table.far[0], other)


class TestTableCorrelations:
    def test_self_correlation_is_one(self, subject):
        table = ground_truth_table(subject, ANGLES, FS)
        angles, c_left, c_right = table_correlations(table, table)
        assert angles.shape == (5,)
        np.testing.assert_allclose(c_left, 1.0, atol=1e-9)

    def test_personalization_ordering(self, subject):
        """Own table beats the global template against own ground truth."""
        truth = ground_truth_table(subject, ANGLES, FS)
        template = global_template_table(ANGLES, FS)
        own = mean_table_correlation(truth, truth)
        cross = mean_table_correlation(template, truth)
        assert own[0] > cross[0]
        assert own[1] > cross[1]

    def test_template_subject_is_held_out(self):
        from repro.simulation.population import make_population

        cohort_names = {s.name for s in make_population(10)}
        assert template_subject().name not in cohort_names


class TestIO:
    def test_roundtrip(self, subject, tmp_path):
        table = ground_truth_table(subject, ANGLES, FS)
        path = tmp_path / "table.npz"
        save_table(table, path)
        loaded = load_table(path)
        np.testing.assert_array_equal(loaded.angles_deg, table.angles_deg)
        assert loaded.fs == table.fs
        for original, restored in zip(table.far, loaded.far):
            np.testing.assert_allclose(restored.left, original.left)
            np.testing.assert_allclose(restored.right, original.right)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.array([1]))
        with pytest.raises(TableError):
            load_table(path)

    def test_wrong_version_raises(self, subject, tmp_path):
        table = ground_truth_table(subject, ANGLES[:2], FS)
        path = tmp_path / "table.npz"
        save_table(table, path)
        data = dict(np.load(path))
        data["version"] = np.array([99])
        np.savez(path, **data)
        with pytest.raises(TableError):
            load_table(path)
