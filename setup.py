"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal environments that lack the
``wheel`` package (PEP 660 editable installs need it; ``setup.py develop``
does not).  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
