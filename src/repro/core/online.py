"""Online (incremental) sensor fusion: personalize *while* the user sweeps.

The batch :class:`~repro.core.fusion.DiffractionAwareSensorFusion` needs the
whole sweep before it can optimize.  A real app wants feedback during the
gesture — "keep going", "slow down", "done, you can stop" — which requires
an estimator that ingests probes one at a time and keeps a running head
parameter estimate plus a confidence signal.

:class:`OnlineFusion` does exactly that:

- each arriving probe is deconvolved immediately (same channel front end as
  the batch path);
- the head parameter search re-runs on the accumulated probes every
  ``refit_every`` arrivals, warm-started from the previous estimate (a few
  optimizer iterations suffice near the optimum, so incremental refits are
  much cheaper than the cold batch solve);
- :meth:`OnlineFusion.status` reports the running residual, angular
  coverage, and whether enough of the semicircle has been measured to stop.

The final state converges to the batch result on the same data (the test
suite asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.constants import DEFAULT_SAMPLE_RATE
from repro.errors import SignalError
from repro.geometry.head import HeadGeometry
from repro.signals.channel import (
    ProbeChannelBank,
    first_tap_index,
    refine_tap_position,
)
from repro.core.fusion import (
    MAX_GYRO_BIAS_DPS,
    DiffractionAwareSensorFusion,
    FusionResult,
)
from repro.core.localize import cached_delay_map


@dataclass(frozen=True)
class OnlineStatus:
    """A snapshot of the running personalization."""

    n_probes: int
    head: HeadGeometry | None
    residual_deg: float
    coverage_deg: float  # angular span of the sweep so far
    ready: bool  # enough coverage + stable fit to stop the gesture

    @property
    def head_parameters(self) -> tuple[float, float, float] | None:
        return self.head.parameters if self.head is not None else None


@dataclass
class OnlineFusion:
    """Incremental diffraction-aware sensor fusion.

    Parameters
    ----------
    fs:
        Audio sample rate of the probe recordings.
    probe_signal:
        The known probe waveform the phone plays.
    refit_every:
        Re-optimize the head parameters after this many new probes.
    min_probes:
        Do not attempt a fit before this many probes have arrived.
    target_coverage_deg:
        Sweep span after which (given a stable fit) the status turns
        ``ready``.
    """

    fs: int = DEFAULT_SAMPLE_RATE
    probe_signal: np.ndarray | None = None
    refit_every: int = 8
    min_probes: int = 10
    target_coverage_deg: float = 120.0
    max_refit_iterations: int = 30

    _batch: DiffractionAwareSensorFusion = field(
        default_factory=DiffractionAwareSensorFusion, repr=False
    )
    _t_left: list = field(default_factory=list, repr=False)
    _t_right: list = field(default_factory=list, repr=False)
    _alphas: list = field(default_factory=list, repr=False)
    _times: list = field(default_factory=list, repr=False)
    _estimate: np.ndarray | None = field(default=None, repr=False)
    _residual: float = field(default=float("inf"), repr=False)

    def __post_init__(self) -> None:
        if self.probe_signal is None:
            from repro.signals.waveforms import probe_chirp

            self.probe_signal = probe_chirp(self.fs)
        if self.refit_every < 1 or self.min_probes < 5:
            raise SignalError("refit_every >= 1 and min_probes >= 5 required")
        # Session-lifetime deconvolution cache: each arriving probe is
        # deconvolved exactly once and the source spectrum is shared.
        self._bank = ProbeChannelBank(self.probe_signal)

    @property
    def n_probes(self) -> int:
        return len(self._alphas)

    def add_probe(
        self,
        left: np.ndarray,
        right: np.ndarray,
        imu_angle_deg: float,
        time_s: float,
    ) -> OnlineStatus:
        """Ingest one probe (both ear recordings + the current IMU angle).

        Returns the updated status; the fit refreshes every
        ``refit_every`` arrivals once ``min_probes`` have accumulated.
        """
        n_window = int(self._batch.channel_window_s * self.fs)
        index = self.n_probes
        for ear, recording, store in (
            ("left", left, self._t_left),
            ("right", right, self._t_right),
        ):
            channel = self._bank.channel((index, ear), recording, n_window)
            tap = refine_tap_position(channel, first_tap_index(channel))
            store.append(tap / self.fs)
        self._alphas.append(float(imu_angle_deg))
        self._times.append(float(time_s))

        due = (
            self.n_probes >= self.min_probes
            and (self.n_probes - self.min_probes) % self.refit_every == 0
        )
        if due:
            self._refit()
        return self.status()

    def _refit(self) -> None:
        t_left = np.asarray(self._t_left)
        t_right = np.asarray(self._t_right)
        alphas = np.asarray(self._alphas)
        elapsed = np.asarray(self._times) - self._times[0]

        if self._estimate is None:
            x0 = np.array([0.09, 0.115, 0.0985, 0.0])
            step = np.diag([0.008, 0.008, 0.008, 0.5])
        else:
            x0 = self._estimate
            step = np.diag([0.003, 0.003, 0.003, 0.2])
        result = optimize.minimize(
            self._batch._cost,
            x0,
            args=(t_left, t_right, alphas, elapsed),
            method="Nelder-Mead",
            options={
                "maxiter": self.max_refit_iterations,
                "xatol": 3e-4,
                "fatol": 0.1,
                "initial_simplex": x0 + np.vstack([np.zeros(4), step]),
            },
        )
        if np.all(np.isfinite(result.x)):
            self._estimate = result.x.copy()
            self._residual = float(np.sqrt(max(result.fun, 0.0)))

    def status(self) -> OnlineStatus:
        """The current running estimate and gesture guidance."""
        head = None
        if self._estimate is not None:
            a, b, c = np.clip(
                self._estimate[:3], [0.065, 0.085, 0.072], [0.115, 0.145, 0.125]
            )
            head = HeadGeometry(a=float(a), b=float(b), c=float(c))
        coverage = (
            float(np.max(self._alphas) - np.min(self._alphas))
            if self._alphas
            else 0.0
        )
        ready = (
            head is not None
            and coverage >= self.target_coverage_deg
            and self._residual < 10.0
        )
        return OnlineStatus(
            n_probes=self.n_probes,
            head=head,
            residual_deg=self._residual,
            coverage_deg=coverage,
            ready=ready,
        )

    def finalize(self) -> FusionResult:
        """Run the full batch solve on everything collected so far.

        The online estimate warm-starts nothing here on purpose: the final
        answer must be identical to what the batch pipeline would produce
        from the same probes, so applications can trust either path.
        """
        if self.n_probes < 5:
            raise SignalError("need >= 5 probes to finalize")
        # Reuse the batch machinery by feeding it the already-extracted
        # delays and IMU angles directly.
        batch = self._batch
        t_left = np.asarray(self._t_left)
        t_right = np.asarray(self._t_right)
        alphas = np.asarray(self._alphas)
        elapsed = np.asarray(self._times) - self._times[0]

        x0 = np.array([0.09, 0.115, 0.0985, 0.0])
        step = np.zeros((4, 4))
        step[:3, :3] = np.eye(3) * 0.008
        step[3, 3] = 0.5
        result = optimize.minimize(
            batch._cost,
            x0,
            args=(t_left, t_right, alphas, elapsed),
            method="Nelder-Mead",
            options={
                "maxiter": batch.max_iterations,
                "xatol": 2e-4,
                "fatol": 0.05,
                "initial_simplex": x0 + np.vstack([np.zeros(4), step]),
            },
        )
        a, b, c = np.clip(
            result.x[:3], [0.065, 0.085, 0.072], [0.115, 0.145, 0.125]
        )
        bias = float(np.clip(result.x[3], -MAX_GYRO_BIAS_DPS, MAX_GYRO_BIAS_DPS))
        head = HeadGeometry(a=float(a), b=float(b), c=float(c))
        corrected = alphas - bias * elapsed
        final_map = cached_delay_map(
            head.parameters,
            head.n_boundary,
            batch.final_map_radii,
            batch.final_map_thetas,
        )
        thetas, radii, solved = batch._localize_all(
            final_map, t_left, t_right, corrected
        )
        fused = np.where(solved, 0.5 * (thetas + corrected), corrected)
        if solved.any():
            radii = np.where(solved, radii, np.median(radii[solved]))
            residual = float(
                np.sqrt(np.mean((corrected[solved] - thetas[solved]) ** 2))
            )
        else:
            # Same invariant as the batch path: radii_m stays finite even
            # when no probe localized (residual_deg=inf flags the failure).
            radii = np.full(
                radii.shape,
                float(0.5 * (final_map.radii[0] + final_map.radii[-1])),
            )
            residual = float("inf")
        return FusionResult(
            head=head,
            t_left=t_left,
            t_right=t_right,
            imu_angles_deg=corrected,
            acoustic_angles_deg=thetas,
            fused_angles_deg=fused,
            radii_m=radii,
            residual_deg=residual,
            solved=solved,
            gyro_bias_dps=bias,
        )
