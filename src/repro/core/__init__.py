"""UNIQ's core pipeline: the paper's primary contribution.

Modules map one-to-one onto the system architecture of the paper's Figure 6:

- :mod:`~repro.core.localize` — acoustic phone localization given candidate
  head parameters (the inner loop of sensor fusion, Figure 10);
- :mod:`~repro.core.fusion` — Diffraction-Aware Sensor Fusion (Section 4.1);
- :mod:`~repro.core.interpolation` — near-field HRTF interpolation
  (Section 4.2);
- :mod:`~repro.core.near_far` — near-to-far HRTF conversion (Section 4.3);
- :mod:`~repro.core.aoa` — binaural AoA estimation (Section 4.5);
- :mod:`~repro.core.compensation` — engineering details (Section 4.6);
- :mod:`~repro.core.pipeline` — the end-to-end :class:`~repro.core.pipeline.Uniq`
  orchestrator producing the Section 4.4 lookup table;
- :mod:`~repro.core.rendering` — the application-side binaural renderer.
"""

from repro.core.localize import DelayMap, LocalizationCandidate
from repro.core.fusion import DiffractionAwareSensorFusion, FusionResult
from repro.core.interpolation import NearFieldInterpolator
from repro.core.near_far import NearFarConverter
from repro.core.aoa import (
    KnownSourceAoAEstimator,
    UnknownSourceAoAEstimator,
    is_front,
    train_lambda_weight,
)
from repro.core.beamforming import (
    BinauralBeamformer,
    signal_to_interference_gain,
)
from repro.core.compensation import (
    estimate_system_response,
    compensate_recording,
    remove_room_reflections,
    check_gesture_quality,
)
from repro.core.decomposition import (
    blind_decoupling_attempt,
    decoupling_consistency,
)
from repro.core.elevation import (
    HRTFField,
    Personalization3DResult,
    SphericalPersonalizer,
    capture_rings,
)
from repro.core.online import OnlineFusion, OnlineStatus
from repro.core.pipeline import (
    PersonalizationResult,
    Uniq,
    UniqConfig,
    grid_from_step,
    personalize_capture,
)
from repro.core.rendering import BinauralRenderer, SpatialSource
from repro.core.triangulation import AcousticTriangulator, PoseEstimate, Speaker

__all__ = [
    "DelayMap",
    "LocalizationCandidate",
    "DiffractionAwareSensorFusion",
    "FusionResult",
    "NearFieldInterpolator",
    "NearFarConverter",
    "KnownSourceAoAEstimator",
    "UnknownSourceAoAEstimator",
    "is_front",
    "train_lambda_weight",
    "BinauralBeamformer",
    "signal_to_interference_gain",
    "estimate_system_response",
    "compensate_recording",
    "remove_room_reflections",
    "check_gesture_quality",
    "Uniq",
    "grid_from_step",
    "personalize_capture",
    "UniqConfig",
    "PersonalizationResult",
    "BinauralRenderer",
    "SpatialSource",
    "blind_decoupling_attempt",
    "decoupling_consistency",
    "HRTFField",
    "Personalization3DResult",
    "SphericalPersonalizer",
    "capture_rings",
    "OnlineFusion",
    "OnlineStatus",
    "AcousticTriangulator",
    "PoseEstimate",
    "Speaker",
]
