"""The paper's "Attempt 2": blind decoupling of rays and pinna multipath.

Section 4.3 sketches a deeper near-far conversion: model each near-field
channel as

    H_near(X_k) = ( sum_i A_i delta(tau_i) ) * h_k          (paper Eq. 8)

where the ``tau_i`` are per-ray diffraction delays (computable from
geometry), the ``A_i`` are unknown ray amplitudes, and ``h_k`` is the
unknown pinna multipath kernel.  If the factorization could be recovered,
far-field synthesis would be exact ray recombination.  The paper reports
the attempt did not succeed — the physics-based model is under-determined.

This module implements the natural solver (alternating least squares
between the amplitude vector and the kernel) so the failure mode is
*reproducible and quantified*:

- the bilinear model fits the data essentially perfectly (reconstruction
  error -> noise floor), yet
- different random initializations converge to *different* factorizations
  (scaling/shift ambiguity plus genuine local minima), so the recovered
  kernel does not consistently match the true pinna response.

See ``benchmarks/bench_ablation_blind_decoupling.py`` for the study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.signals.delays import fractional_delay_kernel


@dataclass(frozen=True)
class BlindDecouplingResult:
    """One ALS run: the recovered factorization and its fit quality."""

    ray_amplitudes: np.ndarray
    pinna_kernel: np.ndarray
    reconstruction_error: float  # relative residual ||y - y_hat|| / ||y||
    n_iterations: int


def _delay_train(
    amplitudes: np.ndarray, delays_samples: np.ndarray, length: int
) -> np.ndarray:
    """The ray impulse train ``sum_i A_i delta(tau_i)`` as a sampled signal."""
    train = np.zeros(length)
    for amplitude, delay in zip(amplitudes, delays_samples):
        integer = int(np.floor(delay))
        fraction = float(delay - integer)
        kernel = amplitude * fractional_delay_kernel(fraction, half_width=8)
        start = integer - 8
        for offset, value in enumerate(kernel):
            index = start + offset
            if 0 <= index < length:
                train[index] += value
    return train


def _convolution_matrix(signal: np.ndarray, n_columns: int, n_rows: int) -> np.ndarray:
    """Toeplitz operator: ``matrix @ h == convolve(signal, h)[:n_rows]``."""
    matrix = np.zeros((n_rows, n_columns))
    for column in range(n_columns):
        stop = min(n_rows, column + signal.shape[0])
        matrix[column:stop, column] = signal[: stop - column]
    return matrix


def blind_decoupling_attempt(
    channel: np.ndarray,
    ray_delays_samples: np.ndarray,
    kernel_length: int = 48,
    n_iterations: int = 25,
    rng: np.random.Generator | None = None,
) -> BlindDecouplingResult:
    """Run one alternating-least-squares factorization attempt.

    Parameters
    ----------
    channel:
        The measured near-field channel (time domain, one ear).
    ray_delays_samples:
        The per-ray diffraction delays, known from geometry (Eq. 7: "delta
        (tau_i) can be estimated from diffraction geometry").
    kernel_length:
        Length of the unknown pinna kernel ``h``.
    n_iterations:
        ALS sweeps (each solves both subproblems once).

    Returns
    -------
    The recovered ``(A, h)`` pair; note the inherent scale ambiguity
    (``(c A, h / c)`` fits identically) — the result is normalized so the
    kernel has unit energy.
    """
    channel = np.asarray(channel, dtype=float)
    delays = np.asarray(ray_delays_samples, dtype=float)
    if channel.ndim != 1 or channel.shape[0] < kernel_length + 8:
        raise SignalError("channel too short for the requested kernel length")
    if delays.ndim != 1 or delays.shape[0] < 1:
        raise SignalError("need at least one ray delay")
    if np.any(delays < 0) or np.any(delays >= channel.shape[0]):
        raise SignalError("ray delays must lie inside the channel window")
    if kernel_length < 2 or n_iterations < 1:
        raise SignalError("kernel_length >= 2 and n_iterations >= 1 required")
    rng = rng if rng is not None else np.random.default_rng()

    n = channel.shape[0]
    amplitudes = rng.standard_normal(delays.shape[0])
    norm_y = float(np.linalg.norm(channel))
    if norm_y == 0.0:
        raise SignalError("channel is all zeros")

    kernel = np.zeros(kernel_length)
    for _ in range(n_iterations):
        # h-step: given A, the model is linear in h.
        train = _delay_train(amplitudes, delays, n)
        matrix_h = _convolution_matrix(train, kernel_length, n)
        kernel, *_ = np.linalg.lstsq(matrix_h, channel, rcond=None)
        # A-step: given h, the model is linear in A (one column per ray).
        columns = []
        for delay in delays:
            unit = _delay_train(np.array([1.0]), np.array([delay]), n)
            columns.append(np.convolve(unit, kernel)[:n])
        matrix_a = np.stack(columns, axis=1)
        amplitudes, *_ = np.linalg.lstsq(matrix_a, channel, rcond=None)

    train = _delay_train(amplitudes, delays, n)
    reconstruction = np.convolve(train, kernel)[:n]
    error = float(np.linalg.norm(channel - reconstruction) / norm_y)

    # Remove the scale ambiguity for comparability across runs.
    kernel_norm = float(np.linalg.norm(kernel))
    if kernel_norm > 0:
        kernel = kernel / kernel_norm
        amplitudes = amplitudes * kernel_norm
    return BlindDecouplingResult(
        ray_amplitudes=amplitudes,
        pinna_kernel=kernel,
        reconstruction_error=error,
        n_iterations=n_iterations,
    )


@dataclass(frozen=True)
class ConsistencyStudy:
    """Cross-restart statistics of the blind factorization.

    A well-posed problem would give a small ``best_error`` *and* near-1
    ``kernel_agreement``; the paper's point is that only the first holds —
    the bilinear model can fit the data, but the factorization is not
    unique (and many restarts do not even converge, hence ``mean_error``
    well above ``best_error``).
    """

    best_error: float
    mean_error: float
    kernel_agreement: float
    results: tuple[BlindDecouplingResult, ...]


def decoupling_consistency(
    channel: np.ndarray,
    ray_delays_samples: np.ndarray,
    n_restarts: int = 6,
    kernel_length: int = 64,
    n_iterations: int = 40,
    seed: int = 0,
) -> ConsistencyStudy:
    """Run independent restarts of the blind factorization and compare them."""
    from repro.signals.correlation import max_normalized_correlation

    results = [
        blind_decoupling_attempt(
            channel,
            ray_delays_samples,
            kernel_length=kernel_length,
            n_iterations=n_iterations,
            rng=np.random.default_rng(seed + restart),
        )
        for restart in range(n_restarts)
    ]
    errors = [r.reconstruction_error for r in results]
    correlations = []
    for i in range(len(results)):
        for j in range(i + 1, len(results)):
            # Compare up to the inherent (A, h) ~ (-A, -h) sign ambiguity.
            correlations.append(
                max(
                    max_normalized_correlation(
                        results[i].pinna_kernel, results[j].pinna_kernel
                    ),
                    max_normalized_correlation(
                        -results[i].pinna_kernel, results[j].pinna_kernel
                    ),
                )
            )
    return ConsistencyStudy(
        best_error=float(np.min(errors)),
        mean_error=float(np.mean(errors)),
        kernel_agreement=float(np.mean(correlations)),
        results=tuple(results),
    )
