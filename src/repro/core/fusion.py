"""Diffraction-Aware Sensor Fusion (DSF): jointly solve head + phone location.

Paper Section 4.1.  Neither sensor solves localization alone: the gyroscope
gives the phone's polar angle (because the screen faces the user) but no
distance and with drift; the binaural first-tap delays give location *only
if* the head parameters ``E = (a, b, c)`` are known.  The fusion algorithm:

1. integrate the gyro into orientation angles ``alpha_i`` at each probe;
2. for a candidate ``E``, invert the measured delay pairs into candidate
   locations (:class:`repro.core.localize.DelayMap`), disambiguating
   front/back with ``alpha_i``, yielding acoustic angles ``theta_i(E)``;
3. find ``E_opt = argmin_E sum_i (alpha_i - theta_i(E))^2``   (Eq. 2);
4. output fused angles ``phi_i = (theta_i(E_opt) + alpha_i) / 2`` and the
   acoustically derived radii                                   (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.constants import SPEED_OF_SOUND
from repro.errors import ConvergenceError, SignalError
from repro.geometry.head import HeadGeometry
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger, kv
from repro.quality.flags import QualityCollector
from repro.quality.report import degradation_score, fitness_score
from repro.simulation.imu import IMUTrace, integrate_gyro
from repro.simulation.session import SessionData
from repro.signals.channel import (
    ProbeChannelBank,
    first_tap_index,
    refine_tap_position,
)
from repro.core.localize import DelayMap, cached_delay_map

#: Squared-error penalty (deg^2 contribution via this delta) for a probe the
#: candidate head cannot explain at all.
_UNSOLVED_PENALTY_DEG = 45.0

#: Head-axis search bounds (m): generous anthropometric range.
_BOUNDS = {"a": (0.065, 0.115), "b": (0.085, 0.145), "c": (0.072, 0.125)}

#: Co-estimated gyro bias guard (deg/s): the cost function rejects candidate
#: vertices beyond this, and the returned estimate is clipped to match.
MAX_GYRO_BIAS_DPS = 3.0

#: Sentinel thresholds (docs/ROBUSTNESS.md).  Clean simulated captures land
#: at 3–5 deg residual with every probe solved and |bias| well under
#: 1.5 deg/s; the gesture check rejects at 12 deg residual, so the ramp
#: keeps degrading past that for runs with the check disabled.
_RESIDUAL_GOOD_DEG = 6.0
_RESIDUAL_BAD_DEG = 20.0
_SOLVED_GOOD = 0.85
_SOLVED_BAD = 0.35
_BIAS_GOOD_DPS = 1.5
_BIAS_BAD_DPS = 4.5

_log = get_logger("core.fusion")


@dataclass(frozen=True)
class FusionResult:
    """Output of diffraction-aware sensor fusion for one session.

    Attributes
    ----------
    head:
        The optimized head geometry ``E_opt``.
    t_left, t_right:
        Measured absolute first-tap delays per probe (s).
    imu_angles_deg:
        Gyro-integrated orientation ``alpha_i`` at each probe.
    acoustic_angles_deg:
        ``theta_i(E_opt)`` from delay inversion (nan where unsolvable).
    fused_angles_deg:
        Equation (3) angles ``(theta_i + alpha_i) / 2`` (falls back to
        ``alpha_i`` where acoustics failed).
    radii_m:
        Acoustically derived phone distances (median-filled where failed).
    residual_deg:
        RMS of ``alpha_i - theta_i(E_opt)`` over solved probes — the
        optimizer's final misfit, also used by the gesture-quality check.
    solved:
        Boolean mask of probes the delay inversion explained.
    active:
        Boolean mask of probes the solve actually used, or ``None`` when
        every probe participated.  Probes down-weighted to zero by the
        capture preflight (see :mod:`repro.quality.preflight`) are
        inactive: their delays are never extracted and downstream stages
        skip them.
    """

    head: HeadGeometry
    t_left: np.ndarray
    t_right: np.ndarray
    imu_angles_deg: np.ndarray
    acoustic_angles_deg: np.ndarray
    fused_angles_deg: np.ndarray
    radii_m: np.ndarray
    residual_deg: float
    solved: np.ndarray
    gyro_bias_dps: float = 0.0
    active: np.ndarray | None = None

    @property
    def n_probes(self) -> int:
        return int(self.fused_angles_deg.shape[0])

    @property
    def median_radius_m(self) -> float:
        return float(np.median(self.radii_m[self.solved])) if self.solved.any() else float("nan")


@dataclass
class DiffractionAwareSensorFusion:
    """Configuration + execution of the DSF stage.

    Parameters
    ----------
    channel_window_s:
        Impulse-response window deconvolved per probe; must cover the
        longest plausible phone-to-ear delay (1.4 m -> ~4.1 ms) plus pinna
        tail.
    fusion_boundary_samples:
        Head boundary resolution used *inside* the optimizer (coarse = fast;
        the final pass re-localizes at full resolution).
    map_radii / map_thetas:
        Polar grid specs handed to :class:`DelayMap` during optimization.
    initial_angle_deg:
        The instructed gesture start orientation (the app tells the user to
        begin at the nose, i.e. 0).
    max_iterations:
        Nelder-Mead iteration cap for the ``E`` search.
    """

    channel_window_s: float = 0.012
    fusion_boundary_samples: int = 240
    map_radii: tuple[float, float, int] = (0.16, 1.2, 24)
    map_thetas: tuple[float, float, int] = (-40.0, 220.0, 88)
    final_map_radii: tuple[float, float, int] = (0.16, 1.2, 48)
    final_map_thetas: tuple[float, float, int] = (-40.0, 220.0, 261)
    initial_angle_deg: float = 0.0
    max_iterations: int = 120
    delay_model: str = "diffraction"
    estimate_gyro_bias: bool = True
    speed_of_sound: float = SPEED_OF_SOUND

    def extract_probe_delays(
        self,
        session: SessionData,
        bank: ProbeChannelBank | None = None,
        active: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-probe absolute first-tap delays (s) at the (left, right) ears.

        Deconvolves each probe recording with the known played signal and
        picks the first significant channel tap with sub-sample refinement.
        When the pipeline passes its session ``bank``, the deconvolutions
        are shared with the interpolation stage; standalone calls build a
        private bank (the shared ``rfft(source)`` still pays off within the
        call).

        Probes excluded by ``active`` (salvaged-out dead or corrupted
        channels) are never deconvolved; their delays come back NaN.
        """
        if bank is None:
            bank = ProbeChannelBank(session.probe_signal)
        n_window = int(self.channel_window_s * session.fs)
        t_left = np.zeros(session.n_probes)
        t_right = np.zeros(session.n_probes)
        for i, probe in enumerate(session.probes):
            if active is not None and not active[i]:
                t_left[i] = np.nan
                t_right[i] = np.nan
                continue
            for attr, out in (("left", t_left), ("right", t_right)):
                channel = bank.channel((i, attr), getattr(probe, attr), n_window)
                tap = refine_tap_position(channel, first_tap_index(channel))
                out[i] = tap / session.fs
        return t_left, t_right

    def imu_angles(self, session: SessionData) -> np.ndarray:
        """Gyro-integrated orientation ``alpha_i`` at each probe time."""
        trace: IMUTrace = session.imu
        angles = integrate_gyro(trace, self.initial_angle_deg)
        probe_times = np.array([p.time for p in session.probes])
        return np.interp(probe_times, trace.times, angles)

    def _localize_all(
        self,
        delay_map: DelayMap,
        t_left: np.ndarray,
        t_right: np.ndarray,
        alphas: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(theta_i, r_i, solved) for every probe under one delay map.

        One batched inversion over the whole capture: each optimizer cost
        evaluation is a single array-oriented kernel call instead of a
        Python loop of per-probe ``locate``s (bit-identical candidates —
        see :meth:`repro.core.localize.DelayMap.invert_batch`).
        """
        return delay_map.locate_batch(t_left, t_right, alphas)

    def _debiased(
        self, alphas: np.ndarray, elapsed: np.ndarray, bias_dps: float
    ) -> np.ndarray:
        """IMU angles with a candidate constant gyro-bias drift removed."""
        return alphas - bias_dps * elapsed

    def _cost(
        self,
        params: np.ndarray,
        t_left: np.ndarray,
        t_right: np.ndarray,
        alphas: np.ndarray,
        elapsed: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> float:
        obs_metrics.counter("fusion.cost_evaluations").inc()
        a, b, c = params[:3]
        bias = float(params[3]) if params.shape[0] > 3 else 0.0
        for value, (lo, hi) in zip(params[:3], _BOUNDS.values()):
            if not lo <= value <= hi:
                return 1e6 * (1.0 + float(np.sum(np.abs(params))))
        if abs(bias) > MAX_GYRO_BIAS_DPS:
            return 1e6 * (1.0 + abs(bias))
        delay_map = cached_delay_map(
            (float(a), float(b), float(c)),
            self.fusion_boundary_samples,
            self.map_radii,
            self.map_thetas,
            self.speed_of_sound,
            model=self.delay_model,
            # Coarse candidates rank candidate heads just as well; the exact
            # grazing-zone re-solve is saved for the final localization.
            refine=False,
        )
        corrected = self._debiased(alphas, elapsed, bias)
        thetas, _, solved = self._localize_all(delay_map, t_left, t_right, corrected)
        deltas = np.where(solved, corrected - thetas, _UNSOLVED_PENALTY_DEG)
        if weights is None:
            return float(np.mean(deltas**2))
        # Salvage path: suspect probes vote with reduced weight, dropped
        # probes (weight 0, delays NaN) not at all.
        keep = weights > 0.0
        return float(
            np.sum(weights[keep] * deltas[keep] ** 2) / np.sum(weights[keep])
        )

    def run(
        self,
        session: SessionData,
        bank: ProbeChannelBank | None = None,
        probe_weights: np.ndarray | None = None,
        quality: QualityCollector | None = None,
    ) -> FusionResult:
        """Execute sensor fusion on one measurement session.

        ``bank`` is the session's shared deconvolution cache; the pipeline
        passes one so the interpolation stage reuses these channels.

        ``probe_weights`` (from :func:`repro.quality.preflight.preflight`)
        down-weights suspect probes in the optimizer cost and drops
        weight-0 probes from the solve entirely.  ``None`` — or all-ones —
        runs the exact unweighted code path, so clean captures stay
        bit-identical to runs without a preflight.  ``quality`` collects
        the stage's sentinel components and flags.
        """
        weights = None
        if probe_weights is not None:
            weights = np.asarray(probe_weights, dtype=float)
            if weights.shape != (session.n_probes,):
                raise SignalError(
                    f"probe_weights must have shape ({session.n_probes},), "
                    f"got {weights.shape}"
                )
            if np.all(weights == 1.0):
                weights = None
        active = weights > 0.0 if weights is not None else None
        n_active = int(active.sum()) if active is not None else session.n_probes
        if n_active < 5:
            raise SignalError(
                f"need >= 5 active probes for fusion, got {n_active}"
                f" (of {session.n_probes})"
            )
        obs_metrics.counter("fusion.runs").inc()
        with obs_trace.span(
            "fusion.run",
            n_probes=session.n_probes,
            n_active=n_active,
            grid=f"{self.map_radii[2]}x{self.map_thetas[2]}",
        ) as run_span:
            with obs_trace.span("fusion.extract_delays", n_probes=session.n_probes):
                t_left, t_right = self.extract_probe_delays(session, bank, active)
            with obs_trace.span("fusion.imu_angles"):
                alphas = self.imu_angles(session)
            probe_times = np.array([p.time for p in session.probes])
            elapsed = probe_times - probe_times[0]

            x0 = np.array([np.mean(bounds) for bounds in _BOUNDS.values()])
            simplex_step = np.eye(3) * 0.008
            if self.estimate_gyro_bias:
                # The gyro's constant rate bias shows up as a linear drift of
                # alpha against the (drift-free) acoustic angles, so it is
                # observable from the same residual and co-estimated with E.
                x0 = np.append(x0, 0.0)
                simplex_step = np.zeros((4, 4))
                simplex_step[:3, :3] = np.eye(3) * 0.008
                simplex_step[3, 3] = 0.5
            with obs_trace.span("fusion.optimize") as opt_span:
                evals_before = obs_metrics.counter("fusion.cost_evaluations").value
                result = optimize.minimize(
                    self._cost,
                    x0,
                    args=(t_left, t_right, alphas, elapsed, weights),
                    method="Nelder-Mead",
                    options={
                        "maxiter": self.max_iterations,
                        "xatol": 2e-4,
                        "fatol": 0.05,
                        "initial_simplex": x0
                        + np.vstack([np.zeros(x0.shape[0]), simplex_step]),
                    },
                )
                iterations = int(getattr(result, "nit", 0))
                obs_metrics.counter("fusion.iterations").inc(iterations)
                opt_span.update(
                    iterations=iterations,
                    cost_evaluations=int(
                        obs_metrics.counter("fusion.cost_evaluations").value
                        - evals_before
                    ),
                    final_cost=float(result.fun),
                    converged=bool(result.success),
                )
            if not np.all(np.isfinite(result.x)):
                raise ConvergenceError(f"head parameter search diverged: {result}")
            a, b, c = np.clip(
                result.x[:3],
                [lo for lo, _ in _BOUNDS.values()],
                [hi for _, hi in _BOUNDS.values()],
            )
            bias = (
                float(np.clip(result.x[3], -MAX_GYRO_BIAS_DPS, MAX_GYRO_BIAS_DPS))
                if self.estimate_gyro_bias
                else 0.0
            )
            alphas = self._debiased(alphas, elapsed, bias)
            head = HeadGeometry(a=float(a), b=float(b), c=float(c))

            with obs_trace.span("fusion.final_localize") as final_span:
                # Final pass: full-resolution boundary and a fine inversion
                # grid.
                final_map = cached_delay_map(
                    head.parameters,
                    head.n_boundary,
                    self.final_map_radii,
                    self.final_map_thetas,
                    self.speed_of_sound,
                    model=self.delay_model,
                )
                thetas, radii, solved = self._localize_all(
                    final_map, t_left, t_right, alphas
                )
                final_span.update(
                    n_solved=int(solved.sum()),
                    n_unsolved=int((~solved).sum()),
                )
            fused = np.where(solved, 0.5 * (thetas + alphas), alphas)
            if solved.any():
                radii = np.where(solved, radii, np.median(radii[solved]))
                residual = float(
                    np.sqrt(np.mean((alphas[solved] - thetas[solved]) ** 2))
                )
            else:
                # Nothing localized: radii would stay all-NaN and poison any
                # caller that ignores residual_deg=inf.  Fall back to the
                # map's mid-radius so radii_m is always finite.
                radii = np.full(
                    radii.shape,
                    float(0.5 * (final_map.radii[0] + final_map.radii[-1])),
                )
                residual = float("inf")

            obs_metrics.counter("fusion.probes_solved").inc(int(solved.sum()))
            obs_metrics.counter("fusion.probes_unsolved").inc(int((~solved).sum()))
            obs_metrics.gauge("fusion.residual_deg").set(residual)
            obs_metrics.gauge("fusion.gyro_bias_dps").set(bias)
            obs_metrics.histogram("fusion.residual_deg_dist").observe(residual)
            # Head-parameter deltas from the anthropometric prior (the
            # optimizer start), the per-run signal a drifting population
            # of sessions would show first.
            run_span.update(
                residual_deg=residual,
                head_a_m=float(a),
                head_b_m=float(b),
                head_c_m=float(c),
                head_delta_mm=[
                    float((value - np.mean(bounds)) * 1e3)
                    for value, bounds in zip((a, b, c), _BOUNDS.values())
                ],
                gyro_bias_dps=bias,
            )
            _log.info(
                kv(
                    "fusion.done",
                    residual_deg=residual,
                    iterations=iterations,
                    solved=int(solved.sum()),
                    n_probes=session.n_probes,
                    gyro_bias_dps=bias,
                )
            )
            if quality is not None:
                self._sentinels(quality, residual, solved, active, n_active, bias)
        return FusionResult(
            head=head,
            t_left=t_left,
            t_right=t_right,
            imu_angles_deg=alphas,
            acoustic_angles_deg=thetas,
            fused_angles_deg=fused,
            radii_m=radii,
            residual_deg=residual,
            solved=solved,
            gyro_bias_dps=bias,
            active=active,
        )

    def _sentinels(
        self,
        quality: QualityCollector,
        residual: float,
        solved: np.ndarray,
        active: np.ndarray | None,
        n_active: int,
        bias: float,
    ) -> None:
        """Compare the solve against its calibrated envelope and flag drift."""
        quality.component(
            "fusion.residual",
            degradation_score(residual, _RESIDUAL_GOOD_DEG, _RESIDUAL_BAD_DEG),
        )
        if residual > _RESIDUAL_GOOD_DEG:
            quality.flag(
                "fusion",
                "residual_high",
                "warn",
                f"fusion residual {residual:.1f} deg exceeds the clean "
                f"envelope ({_RESIDUAL_GOOD_DEG:.1f} deg)",
                value=residual,
                threshold=_RESIDUAL_GOOD_DEG,
            )
        n_solved = int(solved.sum()) if active is None else int(solved[active].sum())
        solved_fraction = n_solved / n_active if n_active else 0.0
        quality.component(
            "fusion.solved",
            fitness_score(solved_fraction, _SOLVED_BAD, _SOLVED_GOOD),
        )
        if solved_fraction < _SOLVED_GOOD:
            quality.flag(
                "fusion",
                "low_solved",
                "warn",
                f"delay inversion explained only {solved_fraction:.0%} of "
                f"active probes (< {_SOLVED_GOOD:.0%})",
                value=solved_fraction,
                threshold=_SOLVED_GOOD,
            )
        quality.component(
            "fusion.bias_margin",
            degradation_score(abs(bias), _BIAS_GOOD_DPS, _BIAS_BAD_DPS),
        )
        if abs(bias) >= 0.999 * MAX_GYRO_BIAS_DPS:
            quality.flag(
                "fusion",
                "gyro_bias_clipped",
                "error",
                f"co-estimated gyro bias pinned at the ±{MAX_GYRO_BIAS_DPS} "
                "deg/s guard; the true drift is likely larger",
                value=bias,
                threshold=MAX_GYRO_BIAS_DPS,
            )
        elif abs(bias) > _BIAS_GOOD_DPS:
            quality.flag(
                "fusion",
                "gyro_bias_high",
                "warn",
                f"co-estimated gyro bias {bias:.2f} deg/s exceeds the clean "
                f"envelope ({_BIAS_GOOD_DPS} deg/s)",
                value=bias,
                threshold=_BIAS_GOOD_DPS,
            )
