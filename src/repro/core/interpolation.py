"""Near-field HRTF measurement extraction and interpolation (Section 4.2).

A user cannot hold the phone at every angle, so UNIQ measures the near-field
HRTF at the discrete angles the fused trajectory visited and *interpolates*
to a continuous angle grid.  Two details from the paper matter:

- HRIRs must be **aligned along their first taps** before linear blending,
  or interpolation injects spurious echoes;
- the interpolated result is **checked against the diffraction model** built
  from the learned head parameters, and the first-tap time difference and
  amplitudes are adjusted to match the model's expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_HRIR_DURATION_S,
    ROOM_REFLECTION_CUTOFF_S,
    SPEED_OF_SOUND,
)
from repro.errors import SignalError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import propagation_path
from repro.geometry.vec import polar_to_cartesian
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.table import interpolate_hrir_pair
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.physics import near_field_first_tap_gain
from repro.quality.flags import QualityCollector
from repro.quality.report import degradation_score
from repro.signals.channel import (
    ProbeChannelBank,
    first_tap_index,
    refine_tap_position,
    truncate_after,
)
from repro.signals.delays import apply_fractional_delay
from repro.simulation.session import SessionData
from repro.core.fusion import FusionResult

#: Samples of headroom before the earliest first tap in an extracted HRIR.
_PRE_SAMPLES = 12

#: Sentinel thresholds (docs/ROBUSTNESS.md): clean sweeps land measurements
#: every few degrees, so neighbouring-measurement gaps beyond ~18 deg mean
#: the blend is bridging real holes; past ~60 deg it is guesswork.  Grid
#: angles outside the measured span clamp to the nearest measurement — a
#: small fraction at the sweep edges is normal, a large one is not.
_GAP_GOOD_DEG = 18.0
_GAP_BAD_DEG = 60.0
_EXTRAPOLATION_GOOD = 0.2
_EXTRAPOLATION_BAD = 0.7


@dataclass(frozen=True)
class NearFieldMeasurement:
    """One measured near-field HRIR pair with its fused phone location."""

    angle_deg: float
    radius_m: float
    hrir: BinauralIR


class NearFieldInterpolator:
    """Extracts per-probe near-field HRIRs and interpolates them to a grid.

    Parameters
    ----------
    fs:
        Sample rate of the session recordings.
    hrir_duration_s:
        Length of the extracted HRIR window.
    channel_window_s:
        Deconvolution window (must cover the longest probe delay).
    room_cutoff_s:
        Taps later than this after the first tap are room reflections and
        are truncated (Section 4.6).
    """

    def __init__(
        self,
        fs: int,
        hrir_duration_s: float = DEFAULT_HRIR_DURATION_S,
        channel_window_s: float = 0.012,
        room_cutoff_s: float = ROOM_REFLECTION_CUTOFF_S,
    ) -> None:
        if fs <= 0:
            raise SignalError(f"fs must be positive, got {fs}")
        self.fs = fs
        self.n_hrir = int(round(hrir_duration_s * fs))
        self.n_channel = int(round(channel_window_s * fs))
        self.room_cutoff = int(round(room_cutoff_s * fs))
        if self.n_hrir < 4 * _PRE_SAMPLES:
            raise SignalError("hrir_duration_s too short for the tap layout")

    def extract_measurements(
        self,
        session: SessionData,
        fusion: FusionResult,
        bank: ProbeChannelBank | None = None,
        probe_weights: np.ndarray | None = None,
    ) -> list[NearFieldMeasurement]:
        """Per-probe near-field HRIRs, windowed around the binaural first taps.

        The window starts just before the *earlier* ear's first tap so the
        interaural delay is preserved inside the pair; room reflections are
        truncated per ear relative to its own first tap.  When the pipeline
        passes the session ``bank``, the deconvolutions already done by the
        fusion stage are reused instead of recomputed.

        Probes the fusion solve excluded (``fusion.active``) — or that
        ``probe_weights`` zeroes out — carry no usable HRIR and are skipped,
        so a salvaged run interpolates only over the surviving captures.
        """
        if bank is None:
            bank = ProbeChannelBank(session.probe_signal)
        skip = np.zeros(session.n_probes, dtype=bool)
        if fusion.active is not None:
            skip |= ~fusion.active
        if probe_weights is not None:
            skip |= np.asarray(probe_weights, dtype=float) <= 0.0
        measurements = []
        with obs_trace.span(
            "interpolation.extract_measurements",
            n_probes=session.n_probes,
            n_skipped=int(skip.sum()),
        ):
            for i, probe in enumerate(session.probes):
                if skip[i]:
                    continue
                channels = {}
                taps = {}
                for ear, recording in (
                    (Ear.LEFT, probe.left),
                    (Ear.RIGHT, probe.right),
                ):
                    channel = bank.channel((i, ear.value), recording, self.n_channel)
                    tap = first_tap_index(channel)
                    channels[ear] = truncate_after(channel, tap + self.room_cutoff)
                    taps[ear] = tap
                start = max(0, min(taps.values()) - _PRE_SAMPLES)
                windows = {}
                for ear in Ear:
                    segment = channels[ear][start : start + self.n_hrir]
                    if segment.shape[0] < self.n_hrir:
                        segment = np.concatenate(
                            [segment, np.zeros(self.n_hrir - segment.shape[0])]
                        )
                    windows[ear] = segment
                measurements.append(
                    NearFieldMeasurement(
                        angle_deg=float(fusion.fused_angles_deg[i]),
                        radius_m=float(fusion.radii_m[i]),
                        hrir=BinauralIR(
                            left=windows[Ear.LEFT],
                            right=windows[Ear.RIGHT],
                            fs=self.fs,
                        ),
                    )
                )
            obs_metrics.counter("interpolation.measurements_extracted").inc(
                len(measurements)
            )
        return measurements

    def correct_to_model(
        self, hrir: BinauralIR, head: HeadGeometry, radius_m: float, angle_deg: float
    ) -> BinauralIR:
        """Adjust an HRIR pair's first-tap timing/levels to the diffraction model.

        The paper's quality step: given the learned head parameters and the
        (interpolated) location, the expected interaural time difference and
        first-tap amplitudes are computable; the measured/interpolated taps
        are nudged to match while the pinna multipath pattern is preserved.
        """
        position = polar_to_cartesian(radius_m, angle_deg)
        expected = {}
        for ear in Ear:
            path = propagation_path(head, position, ear)
            expected[ear] = (
                path.length,
                float(near_field_first_tap_gain(path.length, path.wrap_arc)),
            )
        # Model ITD (right minus left, in samples).
        model_itd = (
            (expected[Ear.RIGHT][0] - expected[Ear.LEFT][0])
            / SPEED_OF_SOUND
            * self.fs
        )

        taps = {}
        amps = {}
        for ear, signal in ((Ear.LEFT, hrir.left), (Ear.RIGHT, hrir.right)):
            idx = first_tap_index(signal)
            taps[ear] = refine_tap_position(signal, idx)
            amps[ear] = float(np.abs(signal[idx]))
            if amps[ear] == 0.0:
                raise SignalError("zero first-tap amplitude; cannot correct")

        # Rescale each ear so its first-tap amplitude matches the model.
        left = hrir.left * (expected[Ear.LEFT][1] / amps[Ear.LEFT])
        right = hrir.right * (expected[Ear.RIGHT][1] / amps[Ear.RIGHT])

        # Re-time the right ear so the measured ITD equals the model ITD.
        measured_itd = taps[Ear.RIGHT] - taps[Ear.LEFT]
        shift = float(model_itd - measured_itd)
        n = hrir.n_samples
        if shift >= 0:
            right = apply_fractional_delay(right, shift, output_length=n)
        else:
            advance = int(np.ceil(-shift))
            right = np.concatenate([right[advance:], np.zeros(advance)])
            right = apply_fractional_delay(right, shift + advance, output_length=n)
        return BinauralIR(left=left, right=right, fs=self.fs)

    def build_grid(
        self,
        measurements: list[NearFieldMeasurement],
        head: HeadGeometry,
        angle_grid_deg: np.ndarray,
        reference_radius_m: float | None = None,
        quality: QualityCollector | None = None,
    ) -> list[BinauralIR]:
        """Interpolate measurements onto ``angle_grid_deg`` with model correction.

        Grid angles outside the measured span clamp to the nearest
        measurement (then get model-corrected for their own angle).
        ``quality`` collects the stage sentinels: the largest gap between
        neighbouring measurement angles and the fraction of the grid the
        measurements do not span.
        """
        if len(measurements) < 2:
            raise SignalError("need >= 2 near-field measurements to interpolate")
        ordered = sorted(measurements, key=lambda m: m.angle_deg)
        angles = np.array([m.angle_deg for m in ordered])
        if quality is not None:
            self._sentinels(quality, angles, np.asarray(angle_grid_deg, float))
        radius = (
            reference_radius_m
            if reference_radius_m is not None
            else float(np.median([m.radius_m for m in ordered]))
        )
        grid = np.asarray(angle_grid_deg, dtype=float)
        grid_entries = []
        with obs_trace.span(
            "interpolation.build_grid",
            n_measurements=len(ordered),
            n_grid=int(grid.shape[0]),
            reference_radius_m=radius,
        ):
            for target in grid:
                idx = int(np.searchsorted(angles, target))
                if idx == 0:
                    blended = ordered[0].hrir
                elif idx >= angles.shape[0]:
                    blended = ordered[-1].hrir
                else:
                    span = angles[idx] - angles[idx - 1]
                    weight = (
                        0.5 if span <= 0 else float((target - angles[idx - 1]) / span)
                    )
                    blended = interpolate_hrir_pair(
                        ordered[idx - 1].hrir, ordered[idx].hrir, weight,
                        pre_samples=_PRE_SAMPLES,
                    )
                grid_entries.append(
                    self.correct_to_model(blended, head, radius, float(target))
                )
            obs_metrics.counter("interpolation.grid_entries").inc(len(grid_entries))
        return grid_entries

    def _sentinels(
        self,
        quality: QualityCollector,
        angles: np.ndarray,
        grid: np.ndarray,
    ) -> None:
        """Flag sparse or under-spanning measurement sets before blending."""
        max_gap = float(np.max(np.diff(angles))) if angles.shape[0] > 1 else 360.0
        quality.component(
            "interpolation.coverage",
            degradation_score(max_gap, _GAP_GOOD_DEG, _GAP_BAD_DEG),
        )
        if max_gap > _GAP_GOOD_DEG:
            quality.flag(
                "interpolation",
                "sparse_measurements",
                "warn",
                f"largest gap between measurement angles is {max_gap:.1f} deg "
                f"(> {_GAP_GOOD_DEG:.0f} deg); blends bridge unmeasured arcs",
                value=max_gap,
                threshold=_GAP_GOOD_DEG,
            )
        if grid.shape[0]:
            outside = (grid < float(angles.min())) | (grid > float(angles.max()))
            extrapolated = float(np.mean(outside))
        else:
            extrapolated = 0.0
        quality.component(
            "interpolation.extrapolation",
            degradation_score(
                extrapolated, _EXTRAPOLATION_GOOD, _EXTRAPOLATION_BAD
            ),
        )
        if extrapolated > _EXTRAPOLATION_GOOD:
            quality.flag(
                "interpolation",
                "extrapolated_grid",
                "warn",
                f"{extrapolated:.0%} of grid angles fall outside the measured "
                f"span [{angles.min():.1f}, {angles.max():.1f}] deg and clamp "
                "to the nearest measurement",
                value=extrapolated,
                threshold=_EXTRAPOLATION_GOOD,
            )
