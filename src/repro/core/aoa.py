"""Binaural angle-of-arrival estimation with a personal HRTF (Section 4.5).

Two regimes, matching the paper:

- **Known source** (e.g. an app's own chirp): deconvolve per-ear channels,
  then minimize the Eq. 9 target
  ``T(theta) = lambda |t0 - t(theta)| + [1 - c_L(theta)] + [1 - c_R(theta)]``
  combining the first-tap interaural delay and the time-domain channel-shape
  correlations against the personal HRIR templates.

- **Unknown source** (ambient speech/music/noise): per-ear channels cannot
  be extracted, but the *relative* channel between the two ears still
  carries the interaural delay.  Its multiple peaks (pinna multipath has
  poor autocorrelation — Figure 14) each yield a front and a back candidate
  angle; candidates are disambiguated with the multiplication-form spectral
  match ``L x HRTF_R(theta) = R x HRTF_L(theta)`` (Eq. 11).

Both estimators take any :class:`~repro.hrtf.table.HRTFTable`, so running
them with the *global* template instead of the personal one reproduces the
paper's baseline comparison (Figures 21-22).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.hrtf.table import HRTFTable
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.signals.channel import (
    estimate_channel,
    find_taps,
    first_tap_index,
    refine_tap_position,
)
from repro.signals.correlation import align_to_first_tap, max_normalized_correlation

#: Default weight of the delay term in Eq. 9, per millisecond of mismatch.
DEFAULT_LAMBDA_PER_MS = 2.0

#: Analysis band for the unknown-source spectral match (Hz).
_BAND = (300.0, 9000.0)

#: Largest physically possible interaural delay plus margin (s).
_MAX_ITD_S = 1.1e-3


def is_front(theta_deg: float) -> bool:
    """Whether an angle is in the front hemisphere (theta < 90)."""
    return theta_deg < 90.0


def front_back_consistent(theta_a_deg: float, theta_b_deg: float) -> bool:
    """Whether two angles fall on the same side of the ear axis."""
    return is_front(theta_a_deg) == is_front(theta_b_deg)


def _template_delays(table: HRTFTable) -> np.ndarray:
    """Interaural first-tap delay ``t(theta)`` of each far-field template (s)."""
    return np.array([ir.interaural_delay_s() for ir in table.far])


@dataclass
class KnownSourceAoAEstimator:
    """Eq. 9 estimator for sources whose waveform the earbuds know.

    Parameters
    ----------
    table:
        HRTF template table (personal for UNIQ, global for the baseline).
    lambda_per_ms:
        Weight of the delay-mismatch term, per millisecond.  Train with
        :func:`train_lambda_weight`.
    channel_window_s:
        Deconvolution window per ear.
    """

    table: HRTFTable
    lambda_per_ms: float = DEFAULT_LAMBDA_PER_MS
    channel_window_s: float = 0.03

    def _measure_channels(
        self, left: np.ndarray, right: np.ndarray, source: np.ndarray, fs: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Windowed per-ear channels plus the measured interaural delay t0.

        Tap detection is restricted to the head-multipath neighbourhood
        before each channel's global peak: with several concurrent known
        sources (e.g. triangulation against a speaker installation), the
        deconvolution floor elsewhere in the window is other speakers'
        leakage, not this source's first arrival.
        """
        n_window = int(self.channel_window_s * fs)
        n_hrir = self.table.far[0].n_samples
        max_itd = int(np.ceil(_MAX_ITD_S * fs))
        raw = {
            "left": estimate_channel(left, source, n_window),
            "right": estimate_channel(right, source, n_window),
        }
        # Anchor timing on the stronger (less shadowed) ear, whose first tap
        # stands clear of any leakage floor; the weaker ear's tap is then
        # searched only within the physically possible interaural window.
        strong = max(raw, key=lambda key: float(np.max(np.abs(raw[key]))))
        weak = "right" if strong == "left" else "left"
        taps = {}
        channel = raw[strong]
        start = max(0, int(np.argmax(np.abs(channel))) - 2 * n_hrir)
        idx = start + first_tap_index(channel[start:])
        taps[strong] = refine_tap_position(channel, idx)

        channel = raw[weak]
        lo = max(0, int(taps[strong]) - max_itd)
        hi = min(channel.shape[0], int(taps[strong]) + max_itd + 2)
        # The shadowed ear's channel rides on whatever leakage floor the
        # scene has (other concurrent sources); demand a clear margin.
        idx = lo + first_tap_index(channel[lo:hi], threshold_ratio=0.5)
        taps[weak] = refine_tap_position(channel, idx)

        channels = {}
        for key in ("left", "right"):
            window_start = max(0, int(taps[key]) - 4)
            channels[key] = align_to_first_tap(
                raw[key][window_start:], n_hrir
            )
        t0 = (taps["left"] - taps["right"]) / fs
        return channels["left"], channels["right"], t0

    def target_function(
        self, left: np.ndarray, right: np.ndarray, source: np.ndarray, fs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(angles, T(theta)) — the full Eq. 9 profile for inspection."""
        ch_left, ch_right, t0 = self._measure_channels(left, right, source, fs)
        delays = _template_delays(self.table)
        scores = np.zeros(self.table.n_angles)
        for i, template in enumerate(self.table.far):
            aligned = template.aligned(max(template.n_samples, ch_left.shape[0]))
            c_left = max_normalized_correlation(ch_left, aligned.left)
            c_right = max_normalized_correlation(ch_right, aligned.right)
            delay_ms = abs(t0 - delays[i]) * 1e3
            scores[i] = (
                self.lambda_per_ms * delay_ms + (1.0 - c_left) + (1.0 - c_right)
            )
        return self.table.angles_deg.copy(), scores

    def estimate(
        self, left: np.ndarray, right: np.ndarray, source: np.ndarray, fs: int
    ) -> float:
        """AoA estimate (degrees) for one binaural recording of ``source``."""
        if fs != self.table.fs:
            raise SignalError(
                f"recording rate {fs} != table rate {self.table.fs}"
            )
        with obs_trace.span(
            "aoa.known.estimate", n_angles=self.table.n_angles
        ) as span:
            angles, scores = self.target_function(left, right, source, fs)
            best = int(np.argmin(scores))
            span.update(
                estimate_deg=float(angles[best]),
                best_score=float(scores[best]),
                per_angle_scores=[round(float(s), 4) for s in scores],
            )
            obs_metrics.counter("aoa.known.estimates").inc()
        return float(angles[best])


def train_lambda_weight(
    table: HRTFTable,
    examples: list[tuple[np.ndarray, np.ndarray, np.ndarray, float]],
    fs: int,
    candidates: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0),
) -> float:
    """Pick the Eq. 9 lambda minimizing mean AoA error on labeled examples.

    ``examples`` rows are ``(left, right, source, true_theta_deg)``.  The
    paper trains lambda the same way ("after training for the appropriate
    lambda").
    """
    if not examples:
        raise SignalError("need at least one training example")
    best_lambda, best_error = candidates[0], np.inf
    for lam in candidates:
        estimator = KnownSourceAoAEstimator(table, lambda_per_ms=lam)
        errors = [
            abs(estimator.estimate(left, right, source, fs) - truth)
            for left, right, source, truth in examples
        ]
        mean_error = float(np.mean(errors))
        if mean_error < best_error:
            best_lambda, best_error = lam, mean_error
    return best_lambda


@dataclass
class UnknownSourceAoAEstimator:
    """Relative-channel + Eq. 11 estimator for unknown ambient sources.

    Parameters
    ----------
    table:
        HRTF template table.
    max_candidates:
        How many relative-channel peaks to expand into angle candidates.
    refine_half_width_deg:
        Each delay-derived candidate is refined by scanning the Eq. 11
        mismatch over this neighborhood of table angles (interaural delay
        alone cannot pin the angle near 90 degrees, where its derivative
        vanishes).
    whitening:
        Exponent of the cross-spectrum magnitude normalization: 1 is full
        PHAT whitening, 0 is the raw cross-correlation.  0.5 is robust
        across wideband and harmonic (music/speech) sources.
    """

    table: HRTFTable
    max_candidates: int = 4
    refine_half_width_deg: float = 12.0
    whitening: float = 0.5

    def __post_init__(self) -> None:
        self._spectra_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _template_spectra(self, n_fft: int) -> tuple[np.ndarray, np.ndarray]:
        """(H_left, H_right) spectra of all far templates, cached per n_fft."""
        if n_fft not in self._spectra_cache:
            h_left = np.stack(
                [np.fft.rfft(ir.left, n_fft) for ir in self.table.far]
            )
            h_right = np.stack(
                [np.fft.rfft(ir.right, n_fft) for ir in self.table.far]
            )
            self._spectra_cache[n_fft] = (h_left, h_right)
        return self._spectra_cache[n_fft]

    def relative_channel(
        self, left: np.ndarray, right: np.ndarray, fs: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(lags_s, relative channel) within the physical ITD window.

        This is the paper's Figure 14 signal: the time-domain relative
        channel between the two ear recordings, estimated by whitened
        cross-spectrum deconvolution (the division ``L / R`` in the paper's
        Eq. 10, stabilized PHAT-style so the unknown source spectrum —
        harmonic for music/speech — cancels instead of smearing the peaks).
        Multiple peaks appear because pinna multipath autocorrelates badly.
        """
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        if left.shape != right.shape or left.ndim != 1:
            raise SignalError("left/right must be matching 1D arrays")
        if not np.any(left) or not np.any(right):
            raise SignalError("cannot correlate an all-zero recording")
        n = left.shape[0]
        n_fft = int(2 ** np.ceil(np.log2(2 * n)))
        spectrum_l = np.fft.rfft(left, n_fft)
        spectrum_r = np.fft.rfft(right, n_fft)
        cross = spectrum_l * np.conj(spectrum_r)
        magnitude = np.abs(cross)
        # Partially whiten (exponent ``whitening``) only where the source
        # actually has energy; bins below the floor are noise and are zeroed
        # rather than amplified.  The floor is median-based so harmonic
        # sources (speech, music) keep their many moderate-energy harmonics,
        # not just the dominant fundamental.
        freqs = np.fft.rfftfreq(n_fft, d=1.0 / fs)
        band = (freqs >= 150.0) & (freqs <= 10_000.0)
        floor = 0.5 * float(np.median(magnitude[band]))
        usable = band & (magnitude > max(floor, 1e-300))
        whitened = np.where(
            usable,
            cross / np.maximum(magnitude, 1e-300) ** self.whitening,
            0.0,
        )
        correlation = np.fft.irfft(whitened, n_fft)
        max_lag = int(np.ceil(_MAX_ITD_S * fs))
        # Circular layout: positive lags first, negative lags at the end.
        lags = np.concatenate([np.arange(-max_lag, 0), np.arange(0, max_lag + 1)]) / fs
        values = np.concatenate(
            [correlation[-max_lag:], correlation[: max_lag + 1]]
        )
        peak = np.max(np.abs(values))
        if peak == 0.0:
            raise SignalError("relative channel is identically zero")
        return lags, values / peak

    def _candidate_angles(self, delay_s: float) -> list[float]:
        """Angles whose template ITD crosses ``delay_s`` (front + back)."""
        delays = _template_delays(self.table)
        angles = self.table.angles_deg
        g = delays - delay_s
        out = []
        for i in range(g.shape[0] - 1):
            if g[i] == 0.0 or (g[i] < 0) != (g[i + 1] < 0):
                span = g[i + 1] - g[i]
                frac = 0.0 if span == 0 else float(-g[i] / span)
                out.append(float(angles[i] + frac * (angles[i + 1] - angles[i])))
        if not out:
            # Delay outside the template range: clamp to the extreme angle.
            out.append(float(angles[int(np.argmin(np.abs(g)))]))
        return out

    def _grid_mismatch(
        self,
        spectrum_left: np.ndarray,
        spectrum_right: np.ndarray,
        band_mask: np.ndarray,
        grid_index: int,
        n_fft: int,
    ) -> float:
        """Normalized Eq. 11 residual for one table-grid angle."""
        h_left, h_right = self._template_spectra(n_fft)
        lhs = spectrum_left[band_mask] * h_right[grid_index][band_mask]
        rhs = spectrum_right[band_mask] * h_left[grid_index][band_mask]
        den = float(np.sum((np.abs(lhs) + np.abs(rhs)) ** 2))
        if den == 0.0:
            return np.inf
        return float(np.sum(np.abs(lhs - rhs) ** 2) / den)

    def _neighborhood_indices(self, theta_deg: float) -> np.ndarray:
        """Table-grid indices within the refinement window of an angle."""
        in_window = (
            np.abs(self.table.angles_deg - theta_deg) <= self.refine_half_width_deg
        )
        if not in_window.any():
            return np.array([int(np.argmin(np.abs(self.table.angles_deg - theta_deg)))])
        return np.flatnonzero(in_window)

    def estimate(self, left: np.ndarray, right: np.ndarray, fs: int) -> float:
        """AoA estimate (degrees) for one binaural recording, source unknown."""
        if fs != self.table.fs:
            raise SignalError(
                f"recording rate {fs} != table rate {self.table.fs}"
            )
        span = obs_trace.span("aoa.unknown.estimate", n_angles=self.table.n_angles)
        with span:
            return self._estimate_traced(left, right, fs, span)

    def _estimate_traced(
        self, left: np.ndarray, right: np.ndarray, fs: int, span
    ) -> float:
        lags, xcorr = self.relative_channel(left, right, fs)
        peak_idx, _ = find_taps(
            xcorr, max_taps=self.max_candidates, threshold_ratio=0.35,
            min_separation=3,
        )
        if peak_idx.shape[0] == 0:
            peak_idx = np.array([int(np.argmax(np.abs(xcorr)))])

        candidates: list[float] = []
        supports: list[float] = []
        strongest = float(np.max(np.abs(xcorr[peak_idx])))
        for idx in peak_idx:
            support = float(np.abs(xcorr[idx])) / strongest
            for angle in self._candidate_angles(float(lags[idx])):
                candidates.append(angle)
                supports.append(support)

        n_fft = int(2 ** np.ceil(np.log2(left.shape[0])))
        spectrum_left = np.fft.rfft(left, n_fft)
        spectrum_right = np.fft.rfft(right, n_fft)
        freqs = np.fft.rfftfreq(n_fft, d=1.0 / fs)
        energy = np.abs(spectrum_left) + np.abs(spectrum_right)
        band_mask = (
            (freqs >= _BAND[0])
            & (freqs <= _BAND[1])
            & (energy >= 0.05 * energy.max())
        )
        if not band_mask.any():
            raise SignalError("no usable spectral content in the analysis band")

        # Each delay-derived candidate is refined over its angular
        # neighborhood (Eq. 11 evaluated on the table grid), then scored
        # with a soft bias toward candidates whose relative-channel peak was
        # strong (weak peaks are often pinna cross-terms).
        support_by_index: dict[int, float] = {}
        for theta, support in zip(candidates, supports):
            for grid_index in self._neighborhood_indices(theta):
                key = int(grid_index)
                support_by_index[key] = max(support_by_index.get(key, 0.0), support)

        best_score = np.inf
        best_angle = float(candidates[0])
        per_angle_scores: dict[int, float] = {}
        for grid_index, support in support_by_index.items():
            mismatch = self._grid_mismatch(
                spectrum_left, spectrum_right, band_mask, grid_index, n_fft
            )
            # Multiplicative prior: weak-peak candidates need a clearly
            # better spectral match to win, but a (near-)exact match always
            # beats the prior.
            score = mismatch * (1.0 + 0.5 * (1.0 - support)) + 0.01 * (1.0 - support)
            per_angle_scores[grid_index] = round(float(score), 5)
            if score < best_score:
                best_score = score
                best_angle = float(self.table.angles_deg[grid_index])
        span.update(
            estimate_deg=best_angle,
            best_score=float(best_score),
            n_peaks=int(peak_idx.shape[0]),
            n_candidates=len(candidates),
            per_angle_scores=per_angle_scores,
        )
        obs_metrics.counter("aoa.unknown.estimates").inc()
        return best_angle
