"""Engineering details of Section 4.6: compensation and sanity checks.

- **System frequency-response compensation**: before personalization, the
  speaker/microphone chain response is measured by playing a flat chirp
  with the microphone co-located with the speaker; every later recording is
  equalized by that response so the estimated channels contain only the
  head, not the hardware.
- **Room-reflection removal** lives in the channel toolbox
  (:func:`repro.signals.channel.truncate_after`); a convenience wrapper is
  re-exported here.
- **Automatic gesture correction**: a capture is rejected (the user is asked
  to redo the sweep) when the estimated phone radius collapses toward the
  head or when the fusion residual is too large.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ROOM_REFLECTION_CUTOFF_S
from repro.errors import CalibrationError, SignalError
from repro.signals.channel import (
    estimate_channel,
    first_tap_index,
    truncate_after,
)
from repro.core.fusion import FusionResult

#: Smoothing width (bins) for the measured system magnitude response.
_SMOOTH_BINS = 9


def estimate_system_response(
    recording: np.ndarray,
    played: np.ndarray,
    fs: int,
    n_fft: int = 4096,
) -> tuple[np.ndarray, np.ndarray]:
    """Measure the transducer-chain magnitude response from a calibration.

    ``recording`` is the microphone capture of ``played`` with the mic
    co-located with the speaker (no head in the path).  Returns
    ``(freqs, gains)`` — a smoothed linear magnitude response suitable for
    :func:`compensate_recording`.
    """
    channel = estimate_channel(recording, played, min(n_fft, recording.shape[0]))
    spectrum = np.abs(np.fft.rfft(channel, n_fft))
    kernel = np.ones(_SMOOTH_BINS) / _SMOOTH_BINS
    padded = np.concatenate(
        [spectrum[: _SMOOTH_BINS // 2][::-1], spectrum, spectrum[-(_SMOOTH_BINS // 2):][::-1]]
    )
    smoothed = np.convolve(padded, kernel, mode="valid")
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / fs)
    return freqs, smoothed


def compensate_recording(
    recording: np.ndarray,
    fs: int,
    response_freqs: np.ndarray,
    response_gains: np.ndarray,
    regularization: float = 0.05,
) -> np.ndarray:
    """Equalize a recording by a measured magnitude response.

    Divides the spectrum by the response, floored at ``regularization``
    times its maximum so dead bands are not amplified into noise.
    """
    recording = np.asarray(recording, dtype=float)
    if recording.ndim != 1 or recording.shape[0] < 2:
        raise SignalError("recording must be a 1D array of >= 2 samples")
    gains = np.asarray(response_gains, dtype=float)
    if gains.shape != np.asarray(response_freqs).shape:
        raise SignalError("response arrays must match")
    spectrum = np.fft.rfft(recording)
    grid = np.fft.rfftfreq(recording.shape[0], d=1.0 / fs)
    interpolated = np.interp(grid, response_freqs, gains)
    floor = regularization * interpolated.max()
    if floor == 0.0:
        raise SignalError("system response is identically zero")
    return np.fft.irfft(spectrum / np.maximum(interpolated, floor), recording.shape[0])


def remove_room_reflections(
    channel: np.ndarray,
    fs: int,
    cutoff_s: float = ROOM_REFLECTION_CUTOFF_S,
) -> np.ndarray:
    """Zero channel taps later than ``cutoff_s`` after the first tap."""
    tap = first_tap_index(channel)
    return truncate_after(channel, tap + int(round(cutoff_s * fs)))


def check_gesture_quality(
    fusion: FusionResult,
    min_radius_m: float = 0.22,
    max_residual_deg: float = 12.0,
    min_solved_fraction: float = 0.6,
) -> None:
    """Raise :class:`CalibrationError` if the sweep must be redone.

    The paper's triggers: the estimated phone distance to the head center is
    too small (arm dropped / phone drifted toward the head), or the overall
    optimization error is too large (gesture deviated from instructions).

    When the fusion ran on a salvaged subset (``fusion.active``), the solved
    fraction is judged over the probes that actually participated — probes
    the preflight dropped should not double-count as gesture failures.
    """
    if fusion.active is not None:
        solved_fraction = (
            float(np.mean(fusion.solved[fusion.active]))
            if fusion.active.any()
            else 0.0
        )
    else:
        solved_fraction = float(np.mean(fusion.solved)) if fusion.n_probes else 0.0
    if solved_fraction < min_solved_fraction:
        raise CalibrationError(
            f"only {solved_fraction:.0%} of probes localized; redo the sweep"
        )
    if fusion.median_radius_m < min_radius_m:
        raise CalibrationError(
            f"estimated phone radius {fusion.median_radius_m:.2f} m is too "
            f"close to the head (< {min_radius_m} m); redo the sweep"
        )
    if fusion.residual_deg > max_residual_deg:
        raise CalibrationError(
            f"fusion residual {fusion.residual_deg:.1f} deg exceeds "
            f"{max_residual_deg} deg; redo the sweep"
        )
