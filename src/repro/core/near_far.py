"""Near-to-far HRTF conversion (Section 4.3, Figure 12).

A far-field source at angle theta sends *parallel* rays that intersect the
near-field measurement trajectory at many points.  Three critical rays
organize the conversion:

- ray ``B -> L`` that ends at the left ear,
- ray ``D -> R`` that ends at the right ear,
- ray ``C -> Q`` that hits the head where the surface is perpendicular to
  the incoming direction.

Rays crossing the trajectory on the arc ``[C, B]`` diffract toward the left
ear; rays on ``[C, D]`` go right; rays outside ``[B, D]`` miss both.  UNIQ
therefore synthesizes the far-field left-ear HRTF as the (first-tap aligned)
average of the near-field left-ear HRTFs measured on ``[C, B]``, and
similarly for the right — then fine-tunes the interaural delay and the
amplitudes using the plane-wave diffraction model with the learned head
parameters.

The module also contains :func:`ray_decomposition_attempt`, a working
implementation of the paper's "Attempt 1" (speaker-beamforming
decomposition), kept to demonstrate *why* it fails: the two-speaker
beamforming matrix is numerically ill-conditioned, exactly as the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError, SignalError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.plane_wave import plane_wave_arrival
from repro.geometry.vec import angle_deg_of, unit_from_angle_deg
from repro.hrtf.hrir import BinauralIR
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.physics import far_field_first_tap_gain
from repro.quality.flags import QualityCollector
from repro.quality.report import degradation_score
from repro.signals.correlation import align_to_first_tap
from repro.signals.delays import apply_fractional_delay
from repro.core.interpolation import NearFieldMeasurement

_PRE_SAMPLES = 12

#: Sentinel thresholds (docs/ROBUSTNESS.md).  Every target angle needs two
#: trajectory arcs populated with measurements; empty arcs fall back to the
#: nearest measurements, which is fine at the sweep edges (grazing arcs are
#: geometrically tiny) but means the conversion is extrapolating when it
#: happens across a large fraction of the grid.
_FALLBACK_GOOD = 0.35
_FALLBACK_BAD = 0.9


def _backtrack_to_radius(anchor: np.ndarray, u: np.ndarray, radius: float) -> np.ndarray:
    """The point ``anchor - s*u`` (s > 0) lying on the circle of ``radius``.

    ``u`` is the propagation direction, so walking ``-u`` from the anchor
    retraces the incoming ray toward the source side of the trajectory.
    """
    b = float(np.dot(anchor, u))
    disc = b * b - float(np.dot(anchor, anchor)) + radius * radius
    if disc < 0:
        raise GeometryError(
            f"trajectory radius {radius} too small to intersect ray at {anchor}"
        )
    s = b + np.sqrt(disc)
    return anchor - s * u


def critical_trajectory_angles(
    head: HeadGeometry, theta_deg: float, trajectory_radius_m: float
) -> tuple[float, float, float]:
    """The Figure 12 anchor angles ``(phi_B, phi_C, phi_D)`` on the trajectory.

    ``phi_B`` bounds the arc feeding the left ear, ``phi_D`` the right,
    ``phi_C`` is the normal-incidence divider.
    """
    u = -unit_from_angle_deg(theta_deg)  # propagation direction
    boundary = head.boundary
    # Q: boundary point most squarely facing the incoming wave.
    facing = -np.einsum("ij,j->i", boundary.normals, u)
    q_point = boundary.points[int(np.argmax(facing))]
    phi_c = float(angle_deg_of(_backtrack_to_radius(q_point, u, trajectory_radius_m)))

    anchors = {}
    for ear in Ear:
        arrival = plane_wave_arrival(head, theta_deg, ear)
        anchor = (
            head.ear_position(ear)
            if arrival.grazing_point is None
            else arrival.grazing_point
        )
        anchors[ear] = float(
            angle_deg_of(_backtrack_to_radius(anchor, u, trajectory_radius_m))
        )
    return anchors[Ear.LEFT], phi_c, anchors[Ear.RIGHT]


def _arc_interval(phi_from: float, phi_to: float) -> tuple[float, float]:
    """Normalized (lo, hi) interval between two trajectory angles."""
    return (phi_from, phi_to) if phi_from <= phi_to else (phi_to, phi_from)


@dataclass
class NearFarConverter:
    """Synthesizes far-field HRIRs from near-field measurements.

    Parameters
    ----------
    fs:
        Sample rate.
    min_arc_measurements:
        If an arc contains fewer measurements than this, the nearest
        measurements to the arc midpoint are used instead (sparse sweeps).
    """

    fs: int
    min_arc_measurements: int = 1

    def convert_angle(
        self,
        measurements: list[NearFieldMeasurement],
        head: HeadGeometry,
        theta_deg: float,
        trajectory_radius_m: float,
        fallbacks: list[int] | None = None,
    ) -> BinauralIR:
        """Far-field HRIR pair for one target angle.

        When ``fallbacks`` is given, the number of arcs (0–2) that had no
        in-arc measurements and fell back to nearest-measurement selection
        is appended to it — :meth:`convert` aggregates these counts into
        the stage's arc-support sentinel.
        """
        if not measurements:
            raise SignalError("no near-field measurements to convert")
        n = measurements[0].hrir.n_samples
        angles = np.array([m.angle_deg for m in measurements])

        phi_b, phi_c, phi_d = critical_trajectory_angles(
            head, theta_deg, trajectory_radius_m
        )
        arcs = {Ear.LEFT: _arc_interval(phi_c, phi_b), Ear.RIGHT: _arc_interval(phi_c, phi_d)}

        averaged = {}
        n_fallback = 0
        for ear, (lo, hi) in arcs.items():
            in_arc = np.flatnonzero((angles >= lo) & (angles <= hi))
            if in_arc.shape[0] < self.min_arc_measurements:
                n_fallback += 1
                midpoint = 0.5 * (lo + hi)
                order = np.argsort(np.abs(angles - midpoint))
                in_arc = order[: max(self.min_arc_measurements, 1)]
            stack = [
                align_to_first_tap(measurements[i].hrir.ear(ear), n, _PRE_SAMPLES)
                for i in in_arc
            ]
            averaged[ear] = np.mean(stack, axis=0)

        # Fine-tune interaural delay and amplitudes from the plane-wave
        # model with the learned head parameters.  Scaling anchors on the
        # *first tap* (which the model predicts), not the strongest tap —
        # a pinna echo can exceed the first tap, and normalizing by it
        # would corrupt the interaural level difference.
        arrivals = {ear: plane_wave_arrival(head, theta_deg, ear) for ear in Ear}
        reference = min(a.delay for a in arrivals.values())
        tuned = {}
        for ear in Ear:
            signal = averaged[ear]
            first_tap = float(
                np.max(np.abs(signal[_PRE_SAMPLES - 1 : _PRE_SAMPLES + 2]))
            )
            if first_tap == 0.0:
                raise SignalError("averaged near-field HRIR has no first tap")
            gain = float(far_field_first_tap_gain(arrivals[ear].wrap_arc)) / first_tap
            shift = (arrivals[ear].delay - reference) * self.fs
            tuned[ear] = apply_fractional_delay(signal * gain, shift, output_length=n)
        if fallbacks is not None:
            fallbacks.append(n_fallback)
        return BinauralIR(left=tuned[Ear.LEFT], right=tuned[Ear.RIGHT], fs=self.fs)

    def convert(
        self,
        measurements: list[NearFieldMeasurement],
        head: HeadGeometry,
        angle_grid_deg: np.ndarray,
        trajectory_radius_m: float | None = None,
        quality: QualityCollector | None = None,
    ) -> list[BinauralIR]:
        """Far-field HRIRs for every angle in ``angle_grid_deg``.

        ``quality`` collects the arc-support sentinel: the fraction of
        (angle, ear) arcs that were empty and fell back to
        nearest-measurement averaging.
        """
        radius = (
            trajectory_radius_m
            if trajectory_radius_m is not None
            else float(np.median([m.radius_m for m in measurements]))
        )
        grid = np.asarray(angle_grid_deg, dtype=float)
        fallbacks: list[int] = []
        with obs_trace.span(
            "near_far.convert",
            n_angles=int(grid.shape[0]),
            n_measurements=len(measurements),
            trajectory_radius_m=radius,
        ) as convert_span:
            converted = [
                self.convert_angle(
                    measurements, head, float(theta), radius, fallbacks=fallbacks
                )
                for theta in grid
            ]
            obs_metrics.counter("near_far.angles_converted").inc(len(converted))
            fallback_fraction = (
                float(sum(fallbacks)) / (2.0 * grid.shape[0]) if grid.shape[0] else 0.0
            )
            obs_metrics.counter("near_far.arc_fallbacks").inc(int(sum(fallbacks)))
            convert_span.update(fallback_fraction=fallback_fraction)
            if quality is not None:
                quality.component(
                    "near_far.arc_support",
                    degradation_score(
                        fallback_fraction, _FALLBACK_GOOD, _FALLBACK_BAD
                    ),
                )
                if fallback_fraction > _FALLBACK_GOOD:
                    quality.flag(
                        "near_far",
                        "arc_fallback",
                        "warn",
                        f"{fallback_fraction:.0%} of conversion arcs had no "
                        "in-arc measurements and fell back to the nearest "
                        "measurement",
                        value=fallback_fraction,
                        threshold=_FALLBACK_GOOD,
                    )
        return converted


def ray_decomposition_attempt(
    n_rays: int = 19,
    n_patterns: int = 24,
    speaker_spacing_m: float = 0.14,
    frequency_hz: float = 2000.0,
) -> float:
    """Condition number of the paper's "Attempt 1" beamforming system.

    The paper tried to decompose each near-field measurement into per-ray
    components by sweeping time-varying two-speaker beamforming patterns
    ``w_t(theta)`` (its Eq. 6) and solving the linear system for
    ``H(X_k, theta_i)``.  With only two speakers the achievable patterns are
    cosine-shaped and the system matrix is catastrophically rank-deficient.
    This function builds that matrix for a phone-sized speaker pair and
    returns its condition number — typically >> 1e6, documenting the
    failure mode the paper describes.
    """
    if n_rays < 2 or n_patterns < 2:
        raise SignalError("need at least 2 rays and 2 patterns")
    wavelength = 343.0 / frequency_hz
    ray_angles = np.deg2rad(np.linspace(0.0, 180.0, n_rays))
    rows = []
    for k in range(n_patterns):
        phase = 2 * np.pi * k / n_patterns
        # Two-element array factor: |1 + e^{j(kd cos(theta) + phase)}|.
        array_phase = (
            2 * np.pi * speaker_spacing_m / wavelength * np.cos(ray_angles) + phase
        )
        rows.append(np.abs(1.0 + np.exp(1j * array_phase)))
    matrix = np.vstack(rows)
    singular = np.linalg.svd(matrix, compute_uv=False)
    smallest = float(singular.min())
    return float(singular.max() / max(smallest, 1e-300))
