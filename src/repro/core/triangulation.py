"""Self-localization by triangulating known speakers (Section 4.5).

The paper's second AoA application: "earphones could analyze the AoAs of
music echoes in a shopping mall and enable navigation by triangulating the
music speakers."  Given speakers at *known* world positions playing *known*
signals, the earbuds measure each speaker's bearing (the known-source AoA
estimator deconvolves each speaker's channel out of the mixed recording)
and solve for the listener's position and facing.

Geometry: with bearings ``b_i`` measured relative to the listener's facing
``psi``, and speakers at ``s_i``, the unknowns ``(x, y, psi)`` satisfy

    wrap( world_bearing(s_i - p) - psi - b_i ) = 0     for every speaker,

a small nonlinear least-squares problem; three speakers determine the pose.
Bearings are *signed* (negative = the listener's right): the sign comes from
the interaural first-tap order, the magnitude from the HRTF-matched AoA —
so personalization quality propagates directly into positioning accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import ConvergenceError, SignalError
from repro.geometry.vec import angle_deg_of, wrap_angle_deg
from repro.hrtf.table import HRTFTable
from repro.core.aoa import KnownSourceAoAEstimator


@dataclass(frozen=True)
class Speaker:
    """One fixed loudspeaker: world position + the signal it plays."""

    position: np.ndarray
    signal: np.ndarray

    def __post_init__(self) -> None:
        if np.asarray(self.position).shape != (2,):
            raise SignalError("speaker position must be a 2D point")
        if self.signal.ndim != 1 or self.signal.shape[0] < 16:
            raise SignalError("speaker signal must be a 1D array (>= 16 samples)")


@dataclass(frozen=True)
class PoseEstimate:
    """The triangulated listener pose."""

    position: np.ndarray
    facing_deg: float
    residual_deg: float  # RMS bearing misfit at the solution


class AcousticTriangulator:
    """Bearing measurement + pose solving against known speakers.

    Parameters
    ----------
    table:
        The listener's HRTF table (personal or global) used for AoA.
    """

    def __init__(self, table: HRTFTable) -> None:
        self.estimator = KnownSourceAoAEstimator(table)

    def signed_bearing(
        self, left: np.ndarray, right: np.ndarray, source: np.ndarray, fs: int
    ) -> float:
        """Signed relative bearing of one known source, degrees.

        Positive = the listener's left (library convention); side
        resolution and mirroring are handled by
        :func:`repro.hrtf.full_circle.signed_aoa`.
        """
        from repro.hrtf.full_circle import signed_aoa

        return signed_aoa(self.estimator, left, right, fs, source=source)

    def measure_bearings(
        self,
        left: np.ndarray,
        right: np.ndarray,
        speakers: list[Speaker],
        fs: int,
    ) -> np.ndarray:
        """Per-speaker signed bearings from one mixed binaural recording.

        Each speaker's channel is deconvolved out of the mix with its own
        known signal; speakers should play mutually low-correlation signals
        (different chirp bands, different noise) as real installations do.
        """
        if not speakers:
            raise SignalError("need at least one speaker")
        return np.array(
            [
                self.signed_bearing(left, right, speaker.signal, fs)
                for speaker in speakers
            ]
        )

    @staticmethod
    def solve_pose(
        bearings_deg: np.ndarray,
        speakers: list[Speaker],
        initial_position: np.ndarray | None = None,
        initial_facing_deg: float = 0.0,
        facing_offsets_deg: np.ndarray | None = None,
    ) -> PoseEstimate:
        """Least-squares pose from signed bearings to known speakers.

        Parameters
        ----------
        facing_offsets_deg:
            Optional per-bearing head-orientation offsets relative to the
            unknown base facing (from the IMU).  A walking user naturally
            glances around; measuring the same speakers at several known
            offsets makes the fit far more robust, since a speaker that
            sits near the hard +-90 degree region at one orientation is
            well-measurable at another.  ``speakers`` may repeat.

        Raises
        ------
        SignalError
            With fewer than 3 bearings (the pose is under-determined).
        ConvergenceError
            If the solver fails to produce a finite pose.
        """
        bearings = np.asarray(bearings_deg, dtype=float)
        if len(speakers) < 3 or bearings.shape[0] != len(speakers):
            raise SignalError(
                "need >= 3 bearings and one speaker entry per bearing"
            )
        offsets_deg = (
            np.zeros(bearings.shape[0])
            if facing_offsets_deg is None
            else np.asarray(facing_offsets_deg, dtype=float)
        )
        if offsets_deg.shape != bearings.shape:
            raise SignalError("facing_offsets_deg must match bearings")
        positions = np.stack([np.asarray(s.position, float) for s in speakers])
        centroid = positions.mean(axis=0)
        guess = (
            np.asarray(initial_position, dtype=float)
            if initial_position is not None
            else centroid
        )

        def residuals(params: np.ndarray) -> np.ndarray:
            x, y, psi = params
            offsets = positions - np.array([x, y])
            # Degenerate when the pose lands on a speaker: bearings there
            # are undefined, so penalize instead of letting the solver hide.
            if np.any(np.linalg.norm(offsets, axis=1) < 0.3):
                return np.full(bearings.shape[0], 180.0)
            world = np.array([angle_deg_of(offset) for offset in offsets])
            return np.asarray(
                wrap_angle_deg(world - psi - offsets_deg - bearings), dtype=float
            )

        # The bearing residual surface has mirror-image local minima;
        # multi-start over facing (and a second position seed) and keep the
        # best fit.
        starts = [
            np.array([guess[0], guess[1], initial_facing_deg + offset])
            for offset in (0.0, 90.0, 180.0, -90.0)
        ]
        starts.append(np.array([centroid[0], centroid[1], initial_facing_deg]))
        best = None
        best_residual = np.inf
        for start in starts:
            # soft_l1 keeps one grossly wrong bearing (a front-back flipped
            # speaker) from dragging the whole pose off.
            result = optimize.least_squares(
                residuals, x0=start, method="trf", loss="soft_l1", f_scale=10.0
            )
            if not np.all(np.isfinite(result.x)):
                continue
            rms = float(np.sqrt(np.mean(residuals(result.x) ** 2)))
            if rms < best_residual:
                best, best_residual = result.x.copy(), rms
        if best is None:
            raise ConvergenceError("pose solver diverged from every start")
        return PoseEstimate(
            position=best[:2].copy(),
            facing_deg=float(wrap_angle_deg(best[2])),
            residual_deg=best_residual,
        )

    def locate(
        self,
        left: np.ndarray,
        right: np.ndarray,
        speakers: list[Speaker],
        fs: int,
        initial_position: np.ndarray | None = None,
        initial_facing_deg: float = 0.0,
    ) -> PoseEstimate:
        """Measure bearings from a recording and solve the pose in one call."""
        bearings = self.measure_bearings(left, right, speakers, fs)
        return self.solve_pose(
            bearings, speakers, initial_position, initial_facing_deg
        )
