"""On-disk DelayMap artifact store: pre-baked delay tables, mmap-loaded.

The serve cold-start tax is almost entirely DelayMap construction: a fresh
worker process rebuilds every table the fusion optimizer touches (~170
coarse maps plus the full-resolution final map, multi-second in total)
before its in-memory LRU warms up.  The tables are pure functions of the
quantized cache key — ``(a, b, c, n_boundary, radii, thetas, c_sound,
model, refine)`` from :func:`repro.core.localize._map_cache_key` — so they
can be computed once, persisted, and shared by every process on the
machine.

Artifacts are single ``.npy`` files holding the stacked ``(2, n_r,
n_theta)`` float64 ``(t_left, t_right)`` tables, written atomically
(:func:`repro.ioutil.atomic_write`, tmp sibling + rename) and read with
``np.load(mmap_mode="r")`` — loading is a header parse plus an mmap, the
table pages fault in lazily and live in the shared page cache, so N
workers loading the same artifact cost one copy of physical memory.

Activation is by environment variable so worker processes inherit it with
zero plumbing: ``REPRO_MAP_STORE=/path/to/store``.  An unusable path warns
and disables the store (the serve path must never die on a bad cache
knob); corrupt or truncated artifacts are discarded and rebuilt.  Counters:
``mapstore.hits`` / ``misses`` / ``saved`` / ``corrupt`` / ``disabled``.
"""

from __future__ import annotations

import hashlib
import os
import threading

import numpy as np

from repro.ioutil import atomic_write
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv

#: Environment variable naming the store directory for this process.
MAP_STORE_ENV = "REPRO_MAP_STORE"

_ARTIFACT_SUFFIX = ".npy"

_log = get_logger("core.mapstore")


def _artifact_name(key: tuple) -> str:
    """Stable filename for one quantized map key.

    The key tuple contains only round-tripped primitives (quantized floats,
    ints, strings, bools), so its ``repr`` is deterministic across
    processes and Python runs — no hash randomization, no float formatting
    drift post-quantization.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return f"map-{digest[:40]}{_ARTIFACT_SUFFIX}"


class MapStore:
    """A directory of precomputed delay-table artifacts.

    Methods never raise on I/O problems: a load failure reports a miss (or
    a counted corruption) and a save failure is logged and dropped — the
    caller always has the build-from-scratch path.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def path_for(self, key: tuple) -> str:
        return os.path.join(self.root, _artifact_name(key))

    def load(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        """The ``(t_left, t_right)`` tables for ``key``, or None on a miss.

        Returned arrays are read-only mmap views.  Anything unreadable —
        garbage bytes, a truncated write, a shape or dtype that does not
        match the key's grid spec — counts as corruption: the artifact is
        discarded so the caller's rebuild can replace it.
        """
        path = self.path_for(key)
        # The grid spec lives in the key: (..., radii, thetas, ...).
        expected = (2, int(key[4][2]), int(key[5][2]))
        try:
            stacked = np.load(path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError:
            obs_metrics.counter("mapstore.misses").inc()
            return None
        except (OSError, ValueError) as exc:
            obs_metrics.counter("mapstore.corrupt").inc()
            _log.warning(kv("mapstore.corrupt", path=path, error=str(exc)))
            self.discard(key)
            return None
        if stacked.shape != expected or stacked.dtype != np.float64:
            obs_metrics.counter("mapstore.corrupt").inc()
            _log.warning(
                kv(
                    "mapstore.corrupt",
                    path=path,
                    shape=list(stacked.shape),
                    expected=list(expected),
                    dtype=str(stacked.dtype),
                )
            )
            del stacked  # drop the mmap handle before unlinking
            self.discard(key)
            return None
        obs_metrics.counter("mapstore.hits").inc()
        return stacked[0], stacked[1]

    def save(self, key: tuple, t_left: np.ndarray, t_right: np.ndarray) -> None:
        """Persist one table pair atomically (first writer wins, last lands)."""
        stacked = np.stack([
            np.asarray(t_left, dtype=np.float64),
            np.asarray(t_right, dtype=np.float64),
        ])
        path = self.path_for(key)
        try:
            # durable=False: atomicity (tmp sibling + rename) without the
            # fsync tax — a torn artifact after a crash is re-detected as
            # corruption and rebuilt, so durability buys nothing here.
            with atomic_write(path, "wb", durable=False) as handle:
                np.save(handle, stacked)
        except OSError as exc:
            obs_metrics.counter("mapstore.save_errors").inc()
            _log.warning(kv("mapstore.save_failed", path=path, error=str(exc)))
            return
        obs_metrics.counter("mapstore.saved").inc()

    def discard(self, key: tuple) -> None:
        """Best-effort removal of one artifact (corruption recovery)."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def _artifacts(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return [
            os.path.join(self.root, name)
            for name in sorted(names)
            if name.endswith(_ARTIFACT_SUFFIX)
        ]

    def __len__(self) -> int:
        return len(self._artifacts())

    def size_bytes(self) -> int:
        total = 0
        for path in self._artifacts():
            try:
                total += os.stat(path).st_size
            except OSError:
                continue
        return total


def validate_store_path(raw: str) -> str | None:
    """Lenient store-path validation shared by the env var and CLI flags.

    Returns a usable directory path, or None — with a warning and a
    ``mapstore.disabled`` count, never an exception — when the value is
    empty, points at a non-directory, or cannot be created/written.
    """
    path = raw.strip()
    if not path:
        return None
    try:
        os.makedirs(path, exist_ok=True)
        if not os.path.isdir(path) or not os.access(path, os.W_OK):
            raise OSError("not a writable directory")
    except OSError as exc:
        obs_metrics.counter("mapstore.disabled").inc()
        _log.warning(kv("mapstore.invalid_path", path=path, error=str(exc)))
        return None
    return path


_ACTIVE_LOCK = threading.Lock()
#: (raw env value, resolved store) — revalidated whenever the env changes.
_ACTIVE: tuple[str, MapStore | None] | None = None


def active_store() -> MapStore | None:
    """The process-wide store named by ``REPRO_MAP_STORE``.

    None when the variable is unset, empty, or names an unusable path (a
    warning is logged once per distinct value).  The resolution is cached
    against the raw value so the hot path costs one dict lookup and a
    string compare.
    """
    global _ACTIVE
    raw = os.environ.get(MAP_STORE_ENV, "")
    with _ACTIVE_LOCK:
        if _ACTIVE is not None and _ACTIVE[0] == raw:
            return _ACTIVE[1]
        store: MapStore | None = None
        if raw.strip():
            path = validate_store_path(raw)
            if path is not None:
                store = MapStore(path)
        _ACTIVE = (raw, store)
        return store
