"""3D personalization: multi-ring capture and the elevation HRTF field.

Implements the paper's Section 7 sketch of the 3D extension: "the user
would now need to move the phone on a sphere around the head, and the
motion tracking equations need to be extended to 3D."

The capture protocol generalizes the 2D sweep to several **rings**: arcs
swept in planes containing the ear axis, tilted by known angles (e.g. eye
level, tilted up 30 degrees, tilted down 30 degrees — the tilt comes from
the 3-axis gyroscope in a real device).  Every ring is exactly a 2D UNIQ
problem inside its section plane, so the whole existing pipeline runs per
ring unchanged.  The 3D pieces on top are:

1. **Head-parameter fusion across rings** — each ring's 2D fusion recovers
   the section's effective depths ``(b_eff(t), c_eff(t))``; since
   ``1/b_eff^2 = cos^2 t / b^2 + sin^2 t / d^2`` (and likewise for the
   back), a least-squares fit across >= 2 distinct tilts recovers the full
   ``E3 = (a, b, c, d)`` including the vertical axis the 2D system cannot
   see.
2. **The HRTF field** — per-ring personal tables combined into a structure
   queryable by (azimuth, elevation): a direction maps to its unique
   ear-axis great circle (tilt, in-plane angle), and the bracketing rings'
   HRIRs are interpolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError, SignalError
from repro.geometry.head3d import HeadGeometry3D, direction_to_section
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.table import HRTFTable, interpolate_hrir_pair
from repro.simulation.person3d import VirtualSubject3D
from repro.simulation.session import MeasurementSession, SessionData
from repro.core.pipeline import PersonalizationResult, Uniq, UniqConfig

#: Default capture rings: eye level plus one tilted up and one down.
DEFAULT_RING_TILTS_DEG = (-30.0, 0.0, 30.0)


@dataclass(frozen=True)
class HRTFField:
    """Personal HRTFs over both azimuth and elevation.

    One 2D table per capture ring; queries interpolate across rings.
    Directions whose great-circle tilt falls outside the captured ring
    range clamp to the nearest ring.
    """

    ring_tilts_deg: np.ndarray
    ring_tables: tuple[HRTFTable, ...]

    def __post_init__(self) -> None:
        tilts = np.asarray(self.ring_tilts_deg, dtype=float)
        if tilts.ndim != 1 or tilts.shape[0] < 1:
            raise GeometryError("need at least one ring")
        if not np.all(np.diff(tilts) > 0):
            raise GeometryError("ring tilts must be strictly increasing")
        if len(self.ring_tables) != tilts.shape[0]:
            raise GeometryError("one table per ring required")

    @property
    def fs(self) -> int:
        return self.ring_tables[0].fs

    def lookup(self, azimuth_deg: float, elevation_deg: float) -> BinauralIR:
        """HRIR pair for an arbitrary (azimuth, elevation) direction."""
        tilt, in_plane = direction_to_section(azimuth_deg, elevation_deg)
        tilts = self.ring_tilts_deg

        def ring_entry(index: int) -> BinauralIR:
            table = self.ring_tables[index]
            angle = float(np.clip(in_plane, *table.angle_span()))
            return table.lookup(angle, "far")

        nearest = int(np.argmin(np.abs(tilts - tilt)))
        if abs(tilts[nearest] - tilt) < 1e-6:
            return ring_entry(nearest)
        if tilt <= tilts[0]:
            return ring_entry(0)
        if tilt >= tilts[-1]:
            return ring_entry(len(self.ring_tables) - 1)
        upper = int(np.searchsorted(tilts, tilt))
        lower = upper - 1
        span = tilts[upper] - tilts[lower]
        weight = float((tilt - tilts[lower]) / span)
        return interpolate_hrir_pair(ring_entry(lower), ring_entry(upper), weight)

    def binauralize(
        self, signal: np.ndarray, azimuth_deg: float, elevation_deg: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Render a mono signal from a 3D direction."""
        return self.lookup(azimuth_deg, elevation_deg).apply(signal)


@dataclass(frozen=True)
class Personalization3DResult:
    """Output of a multi-ring 3D personalization."""

    field: HRTFField
    head: HeadGeometry3D
    ring_results: dict

    @property
    def head_parameters(self) -> tuple[float, float, float, float]:
        """The learned 3D head vector ``E3 = (a, b, c, d)``."""
        return self.head.parameters


def capture_rings(
    subject: VirtualSubject3D,
    tilts_deg: tuple[float, ...] = DEFAULT_RING_TILTS_DEG,
    seed: int = 0,
    probe_interval_s: float = 0.4,
) -> dict[float, SessionData]:
    """Simulate the spherical capture: one 2D sweep per tilted ring."""
    sessions = {}
    for i, tilt in enumerate(tilts_deg):
        effective = subject.effective_subject(float(tilt))
        sessions[float(tilt)] = MeasurementSession(
            effective, seed=seed + 101 * i, probe_interval_s=probe_interval_s
        ).run()
    return sessions


def _fit_head3d(
    ring_fusions: dict[float, PersonalizationResult]
) -> HeadGeometry3D:
    """Least-squares fit of (a, b, c, d) from per-ring effective sections.

    Each ring contributes ``a`` directly and two linear equations in
    ``X = (1/b^2, 1/c^2, 1/d^2)``.
    """
    tilts = sorted(ring_fusions)
    if len({round(abs(t), 3) for t in tilts}) < 2:
        raise GeometryError(
            "need rings at >= 2 distinct |tilts| to observe the vertical axis"
        )
    a_values = []
    rows = []
    targets = []
    for tilt in tilts:
        a_eff, b_eff, c_eff = ring_fusions[tilt].fusion.head.parameters
        a_values.append(a_eff)
        cos2 = float(np.cos(np.deg2rad(tilt)) ** 2)
        sin2 = float(np.sin(np.deg2rad(tilt)) ** 2)
        rows.append([cos2, 0.0, sin2])
        targets.append(1.0 / b_eff**2)
        rows.append([0.0, cos2, sin2])
        targets.append(1.0 / c_eff**2)
    solution, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(targets), rcond=None)
    solution = np.clip(solution, 1.0 / 0.3**2, 1.0 / 0.02**2)
    b, c, d = (float(1.0 / np.sqrt(value)) for value in solution)
    return HeadGeometry3D(a=float(np.mean(a_values)), b=b, c=c, d=d)


@dataclass
class SphericalPersonalizer:
    """Runs UNIQ per ring and assembles the 3D result.

    Parameters
    ----------
    config:
        The per-ring pipeline configuration (shared across rings).
    """

    config: UniqConfig = field(default_factory=UniqConfig)

    def personalize(
        self, ring_sessions: dict[float, SessionData]
    ) -> Personalization3DResult:
        """Personalize from one session per ring tilt.

        Raises
        ------
        GeometryError
            If fewer than two distinct |tilts| are provided (the vertical
            head axis would be unobservable).
        SignalError
            If ``ring_sessions`` is empty.
        """
        if not ring_sessions:
            raise SignalError("no ring sessions provided")
        uniq = Uniq(self.config)
        ring_results = {
            float(tilt): uniq.personalize(session)
            for tilt, session in sorted(ring_sessions.items())
        }
        head = _fit_head3d(ring_results)
        tilts = np.array(sorted(ring_results))
        tables = tuple(ring_results[float(t)].table for t in tilts)
        return Personalization3DResult(
            field=HRTFField(ring_tilts_deg=tilts, ring_tables=tables),
            head=head,
            ring_results=ring_results,
        )
