"""Application-side binaural rendering (the Section 4.4 interface).

Given a personal :class:`~repro.hrtf.table.HRTFTable`, applications place
sounds anywhere around the user: pick near/far by the emulated distance,
look up (with interpolation) the HRIR pair for the angle, filter, play.
:class:`BinauralRenderer` adds the practical pieces on top — distance
attenuation, multi-source mixing, and block-wise rendering of *moving*
sources (the paper's "piano stays put while the head rotates" scenario,
driven by earbud motion sensors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NEAR_FIELD_THRESHOLD_M
from repro.errors import SignalError
from repro.hrtf.table import HRTFTable
from repro.physics import spreading_gain


@dataclass(frozen=True)
class SpatialSource:
    """A mono sound placed at a polar location around the head."""

    signal: np.ndarray
    theta_deg: float
    distance_m: float = 2.0
    level: float = 1.0

    def __post_init__(self) -> None:
        if self.signal.ndim != 1 or self.signal.shape[0] < 1:
            raise SignalError("source signal must be a non-empty 1D array")
        if self.distance_m <= 0:
            raise SignalError(f"distance must be positive, got {self.distance_m}")

    @property
    def is_far_field(self) -> bool:
        return self.distance_m >= NEAR_FIELD_THRESHOLD_M


class BinauralRenderer:
    """Renders mono sources into binaural audio through a personal table."""

    def __init__(self, table: HRTFTable) -> None:
        self.table = table

    def render(self, source: SpatialSource) -> tuple[np.ndarray, np.ndarray]:
        """Binaural pair for one static source."""
        ir = self.table.lookup(
            source.theta_deg, "far" if source.is_far_field else "near"
        )
        gain = source.level
        if source.is_far_field:
            # Far-field tables are unit-amplitude plane waves; apply the
            # emulated distance as plain spreading relative to 1 m.
            gain *= float(spreading_gain(source.distance_m))
        left, right = ir.scaled(gain).apply(source.signal)
        return left, right

    def render_scene(
        self, sources: list[SpatialSource]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mix several static sources (the virtual-meeting scenario)."""
        if not sources:
            raise SignalError("render_scene needs at least one source")
        rendered = [self.render(source) for source in sources]
        n = max(left.shape[0] for left, _ in rendered)
        mix_left = np.zeros(n)
        mix_right = np.zeros(n)
        for left, right in rendered:
            mix_left[: left.shape[0]] += left
            mix_right[: right.shape[0]] += right
        return mix_left, mix_right

    def render_moving(
        self,
        signal: np.ndarray,
        angles_deg: np.ndarray,
        fs: int,
        block_s: float = 0.05,
        far: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Render a source whose angle changes over time.

        ``angles_deg`` gives the source direction per *sample* (resample
        head-tracker data to the audio rate first).  The signal is cut into
        ``block_s`` blocks, each filtered with the HRIR for the block's
        midpoint angle, and overlap-added with a half-block crossfade —
        the standard low-cost approach to head-tracked rendering.
        """
        signal = np.asarray(signal, dtype=float)
        angles_deg = np.asarray(angles_deg, dtype=float)
        if signal.shape != angles_deg.shape or signal.ndim != 1:
            raise SignalError("signal and angles_deg must be matching 1D arrays")
        if fs != self.table.fs:
            raise SignalError(f"fs {fs} != table rate {self.table.fs}")
        block = max(32, int(round(block_s * fs)))
        hop = block // 2
        window = np.hanning(block)
        ir_len = self.table.far[0].n_samples
        n_out = signal.shape[0] + ir_len
        out_left = np.zeros(n_out)
        out_right = np.zeros(n_out)
        field = "far" if far else "near"
        for start in range(0, signal.shape[0], hop):
            chunk = signal[start : start + block]
            if chunk.shape[0] == 0:
                break
            taper = window[: chunk.shape[0]]
            mid = start + chunk.shape[0] // 2
            angle = float(
                np.clip(angles_deg[min(mid, angles_deg.shape[0] - 1)],
                        *self.table.angle_span())
            )
            ir = self.table.lookup(angle, field)
            left, right = ir.apply(chunk * taper)
            stop = min(n_out, start + left.shape[0])
            out_left[start:stop] += left[: stop - start]
            out_right[start:stop] += right[: stop - start]
        return out_left, out_right
