"""End-to-end UNIQ: session data in, personal HRTF table out.

Mirrors the paper's Figure 6 pipeline: the three inputs (earbud recordings,
IMU recordings, the played probe) flow through Diffraction-Aware Sensor
Fusion, Near-Field HRTF Interpolation, and Near-Far Conversion, producing
the Section 4.4 lookup table that applications (binaural rendering, AoA)
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.constants import DEFAULT_ANGLE_GRID_DEG
from repro.errors import CalibrationError, SignalError
from repro.hrtf.table import HRTFTable
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger, kv
from repro.obs.trace import Span
from repro.quality.flags import QualityCollector
from repro.quality.preflight import (
    CaptureHealth,
    PreflightThresholds,
    preflight,
)
from repro.quality.report import QualityReport, combine_components
from repro.signals.channel import ProbeChannelBank
from repro.signals.deconvolve import (
    ladder_next,
    noise_regularization,
    rung_of,
)
from repro.simulation.person import VirtualSubject
from repro.simulation.session import MeasurementSession, SessionData
from repro.core.compensation import (
    check_gesture_quality,
    compensate_recording,
)
from repro.core.fusion import DiffractionAwareSensorFusion, FusionResult
from repro.core.interpolation import NearFieldInterpolator, NearFieldMeasurement
from repro.core.near_far import NearFarConverter

_log = get_logger("core.pipeline")

#: Gesture residual (deg) at/above which auto mode climbs the deconvolution
#: ladder even though the solve nominally succeeded — mirrors the fusion
#: residual sentinel's "bad" threshold.
_ESCALATE_RESIDUAL_DEG = 20.0

#: Confidence component applied when the run finished above rung 0: the
#: robust estimators rescue adverse captures but smooth real pinna detail,
#: so a ladder climb is never free.
_RUNG_PENALTY = {1: 0.93, 2: 0.85}


def grid_from_step(angle_step_deg: float) -> tuple[float, ...]:
    """The output angle grid for a table resolution of ``angle_step_deg``.

    Spans the paper's measured semicircle [0, 180] inclusive; the step must
    be in ``(0, 60]`` (coarser tables cannot interpolate meaningfully).
    """
    if not 0.0 < angle_step_deg <= 60.0:
        raise CalibrationError(
            f"angle_step_deg must be in (0, 60], got {angle_step_deg}"
        )
    return tuple(np.arange(0.0, 180.0 + 1e-9, float(angle_step_deg)))


@dataclass
class UniqConfig:
    """Pipeline configuration.

    Attributes
    ----------
    angle_grid_deg:
        Output table angle grid.
    fusion:
        The sensor-fusion stage (swap in a different delay model or grid
        resolution for ablations).
    enforce_gesture_check:
        When ``True`` (default), a degraded sweep raises
        :class:`repro.errors.CalibrationError` exactly like the real app
        asks the user to redo the gesture.
    preflight_thresholds:
        Calibrated envelope for the capture preflight
        (:mod:`repro.quality.preflight`); ``None`` uses the defaults.
    salvage:
        When ``True`` (default), a solve that fails the gesture check on a
        capture with suspect probes is retried once with those probes
        dropped before the :class:`repro.errors.CalibrationError`
        propagates.
    deconv:
        Deconvolution strategy (see :mod:`repro.signals.deconvolve`):
        ``"auto"`` (default) starts on the rung the preflight sentinels
        recommend and climbs the ladder when the solve fails or the gesture
        residual blows up; pinning ``"inverse"``/``"wiener"``/``"tdls"``
        runs exactly that rung with no escalation.
    max_rung_climbs:
        Ladder climb budget per run in ``auto`` mode (escalation also
        requires ``salvage=True``).
    """

    angle_grid_deg: tuple[float, ...] = DEFAULT_ANGLE_GRID_DEG
    fusion: DiffractionAwareSensorFusion = field(
        default_factory=DiffractionAwareSensorFusion
    )
    enforce_gesture_check: bool = True
    preflight_thresholds: PreflightThresholds | None = None
    salvage: bool = True
    deconv: str = "auto"
    max_rung_climbs: int = 2


@dataclass(frozen=True)
class PersonalizationResult:
    """Everything a personalization run produced.

    Attributes
    ----------
    table:
        The personal HRTF lookup table (near + far, left + right).
    fusion:
        The sensor-fusion output: learned head parameters, per-probe fused
        locations, residuals.
    measurements:
        The raw per-probe near-field HRIR measurements.
    trace:
        The finished ``uniq.personalize`` span tree when tracing was
        enabled during the run (see :mod:`repro.obs.trace`), else ``None``.
        Render it with :func:`repro.obs.report.render_span_tree`.
    quality:
        The run's :class:`repro.quality.QualityReport` — per-stage
        component scores, every sentinel flag raised, the salvage record,
        and the scalar confidence (see ``docs/ROBUSTNESS.md``).
    """

    table: HRTFTable
    fusion: FusionResult
    measurements: tuple[NearFieldMeasurement, ...]
    trace: Span | None = None
    quality: QualityReport | None = None

    @property
    def head_parameters(self) -> tuple[float, float, float]:
        """The learned head parameter vector ``E_opt = (a, b, c)``."""
        return self.fusion.head.parameters

    @property
    def confidence(self) -> float:
        """Scalar confidence in [0, 1]; 1.0 when no quality report exists."""
        return float(self.quality.confidence) if self.quality is not None else 1.0


class Uniq:
    """The UNIQ personalization system.

    >>> from repro.simulation import VirtualSubject, MeasurementSession
    >>> session = MeasurementSession(VirtualSubject.random(1), seed=7).run()
    >>> result = Uniq().personalize(session)          # doctest: +SKIP
    >>> result.table.binauralize(sound, theta_deg=60)  # doctest: +SKIP
    """

    def __init__(self, config: UniqConfig | None = None) -> None:
        self.config = config if config is not None else UniqConfig()

    def _compensated(
        self,
        session: SessionData,
        system_response: tuple[np.ndarray, np.ndarray] | None,
    ) -> SessionData:
        """Equalize all probe recordings by the measured system response."""
        if system_response is None:
            return session
        freqs, gains = system_response
        probes = tuple(
            replace(
                probe,
                left=compensate_recording(probe.left, session.fs, freqs, gains),
                right=compensate_recording(probe.right, session.fs, freqs, gains),
            )
            for probe in session.probes
        )
        return replace(session, probes=probes)

    def personalize(
        self,
        session: SessionData,
        system_response: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> PersonalizationResult:
        """Run the full pipeline on one measurement session.

        Parameters
        ----------
        session:
            The capture (recordings + IMU + probe signal).
        system_response:
            Optional ``(freqs, gains)`` from
            :func:`repro.core.compensation.estimate_system_response`; when
            given, all recordings are equalized first (Section 4.6).

        Raises
        ------
        SignalError
            If the capture preflight finds no usable probe at all.
        CalibrationError
            If fewer usable probes survive the preflight than fusion needs,
            or the gesture-quality check fails (and is enforced) even after
            the salvage retry.
        """
        obs_metrics.counter("uniq.personalize.runs").inc()
        root = obs_trace.span(
            "uniq.personalize",
            n_probes=session.n_probes,
            n_grid=len(self.config.angle_grid_deg),
            fs=session.fs,
        )
        collector = QualityCollector()
        with root:
            if system_response is not None:
                with obs_trace.span("uniq.compensate", n_probes=session.n_probes):
                    session = self._compensated(session, system_response)

            health = preflight(
                session, self.config.preflight_thresholds, collector
            )
            if health.n_usable == 0:
                raise SignalError(
                    "capture preflight found no usable probe: "
                    f"{health.n_dead} of {session.n_probes} recordings are "
                    "dead/zeroed"
                )
            if health.n_usable < 5:
                raise CalibrationError(
                    f"only {health.n_usable} of {session.n_probes} probes "
                    "survived the capture preflight (need >= 5); redo the sweep"
                )

            # One deconvolution cache for the whole run: fusion's delay
            # extraction and the interpolator's HRIR extraction share the
            # per-probe channel estimates (created after compensation so
            # cached impulses reflect the equalized recordings).
            bank = self._probe_bank(session, health)
            weights = health.weights
            # All-healthy captures must stay bit-identical to pre-quality
            # runs, so the weighted solve only activates on degraded input.
            weights_arg = None if bool(np.all(weights == 1.0)) else weights
            salvage: dict = {
                "downweighted": weights_arg is not None,
                "suspect_probes": [
                    p.index for p in health.probes if p.verdict == "suspect"
                ],
                "dropped_probes": [
                    p.index for p in health.probes if p.verdict == "dead"
                ],
                "retried": False,
            }
            fusion, method, rung_path = self._solve_with_ladder(
                session, bank, weights_arg, health, collector, salvage
            )
            rung = rung_of(method)
            salvage["deconv_method"] = method
            salvage["deconv_rung"] = rung
            salvage["deconv_path"] = rung_path
            if rung > 0 and self.config.deconv == "auto":
                # Rung-aware confidence penalty; the sentinel/escalation
                # flags that put the run above rung 0 are already recorded.
                collector.component(
                    "pipeline.deconv_rung", _RUNG_PENALTY[rung]
                )

            grid = np.asarray(self.config.angle_grid_deg, dtype=float)
            interpolator = NearFieldInterpolator(session.fs)
            measurements = interpolator.extract_measurements(
                session, fusion, bank=bank
            )
            near_entries = interpolator.build_grid(
                measurements, fusion.head, grid, quality=collector
            )

            converter = NearFarConverter(fs=session.fs)
            far_entries = converter.convert(
                measurements, fusion.head, grid, quality=collector
            )

            table = HRTFTable(
                angles_deg=grid, near=tuple(near_entries), far=tuple(far_entries)
            )
            report = QualityReport(
                confidence=combine_components(collector.components),
                components=collector.components,
                flags=collector.flags,
                salvage=salvage,
            )
            obs_metrics.gauge("quality.confidence").set(report.confidence)
            obs_metrics.histogram("quality.confidence_dist").observe(
                report.confidence
            )
            obs_metrics.counter("uniq.personalize.completed").inc()
            _log.info(
                kv(
                    "uniq.personalize.done",
                    n_probes=session.n_probes,
                    n_angles=int(grid.shape[0]),
                    residual_deg=fusion.residual_deg,
                    confidence=report.confidence,
                    n_flags=report.n_flags,
                )
            )
        return PersonalizationResult(
            table=table,
            fusion=fusion,
            measurements=tuple(measurements),
            trace=root if isinstance(root, Span) else None,
            quality=report,
        )

    def _probe_bank(
        self, session: SessionData, health: CaptureHealth
    ) -> ProbeChannelBank:
        """The deconvolution cache, configured for the starting rung.

        Clean captures in ``auto`` mode (and the pinned ``"inverse"``
        strategy) construct the bank exactly as every pre-ladder caller
        did, so their channel estimates stay bit-identical.  When the
        preflight noise sentinel fired, the regularizer is matched to the
        measured noise floor instead of the fixed clean-room default.
        """
        source = session.probe_signal
        if self.config.deconv != "auto":
            rung_of(self.config.deconv)  # validate the pinned name early
            if self.config.deconv == "inverse":
                return ProbeChannelBank(source)
            return ProbeChannelBank(
                source,
                method=self.config.deconv,
                noise_floor=health.noise_floor or None,
            )
        method = health.recommended_method
        if method == "inverse":
            return ProbeChannelBank(source)
        if health.components.get("preflight.noise", 1.0) < 1.0:
            regularization = noise_regularization(
                source, session.probes[0].left.shape[0], health.noise_floor
            )
            return ProbeChannelBank(
                source,
                regularization=regularization,
                method=method,
                noise_floor=health.noise_floor,
            )
        return ProbeChannelBank(
            source, method=method, noise_floor=health.noise_floor or None
        )

    def _solve_with_ladder(
        self,
        session: SessionData,
        bank: ProbeChannelBank,
        weights_arg: np.ndarray | None,
        health: CaptureHealth,
        collector: QualityCollector,
        salvage: dict,
    ) -> tuple[FusionResult, str, list[str]]:
        """Solve, climbing the deconvolution ladder on failure.

        Each rung gets the full pre-ladder treatment (solve, then one
        salvage retry with suspects dropped).  A rung whose solve raises
        :class:`repro.errors.CalibrationError` — or succeeds with a gesture
        residual past :data:`_ESCALATE_RESIDUAL_DEG` — escalates to the
        next method while the climb budget lasts; the best successful
        fusion (smallest residual) across rungs is the one kept, so a
        climb can never make a capture worse.  Raises the last rung's
        error when no rung produced a usable fusion.
        """
        method = bank.method
        rung_path = [method]
        climbs_left = (
            int(self.config.max_rung_climbs)
            if self.config.deconv == "auto" and self.config.salvage
            else 0
        )
        best: tuple[FusionResult, str] | None = None
        while True:
            fusion: FusionResult | None = None
            failure: CalibrationError | None = None
            try:
                fusion = self._solve(session, bank, weights_arg, collector)
            except CalibrationError as error:
                try:
                    fusion = self._salvage_retry(
                        session, bank, health, collector, salvage, error
                    )
                except CalibrationError as retry_error:
                    failure = retry_error
            if fusion is not None:
                if best is None or fusion.residual_deg < best[0].residual_deg:
                    best = (fusion, method)
                if fusion.residual_deg < _ESCALATE_RESIDUAL_DEG:
                    break
            next_method = ladder_next(method) if climbs_left > 0 else None
            if next_method is None:
                if best is not None:
                    break
                assert failure is not None
                raise failure
            reason = (
                str(failure)
                if failure is not None
                else (
                    f"gesture residual {fusion.residual_deg:.1f} deg >= "
                    f"{_ESCALATE_RESIDUAL_DEG:.0f} deg"
                )
            )
            self._climb(bank, method, next_method, collector, reason, health)
            method = next_method
            rung_path.append(method)
            climbs_left -= 1
        fusion, method = best
        return fusion, method, rung_path

    def _climb(
        self,
        bank: ProbeChannelBank,
        method: str,
        next_method: str,
        collector: QualityCollector,
        reason: str,
        health: CaptureHealth,
    ) -> None:
        """Record and perform one ladder climb on the shared bank."""
        collector.flag(
            "pipeline",
            "deconv_escalated",
            "warn",
            f"deconvolution ladder climb {method} -> {next_method}: {reason}",
            value=float(rung_of(next_method)),
        )
        obs_metrics.counter("quality.deconv_escalations").inc()
        _log.warning(
            kv(
                "uniq.deconv_escalated",
                from_method=method,
                to_method=next_method,
                reason=reason,
            )
        )
        bank.set_method(
            next_method,
            noise_floor=health.noise_floor if health.noise_floor > 0 else None,
        )

    def _solve(
        self,
        session: SessionData,
        bank: ProbeChannelBank,
        weights: np.ndarray | None,
        collector: QualityCollector,
    ) -> FusionResult:
        """One fusion solve + gesture check under the given probe weights."""
        fusion = self.config.fusion.run(
            session, bank=bank, probe_weights=weights, quality=collector
        )
        if self.config.enforce_gesture_check:
            with obs_trace.span("uniq.gesture_check"):
                try:
                    check_gesture_quality(fusion)
                except CalibrationError as error:
                    obs_metrics.counter("uniq.gesture_rejections").inc()
                    _log.warning(kv("uniq.gesture_rejected", reason=str(error)))
                    raise
        return fusion

    def _salvage_retry(
        self,
        session: SessionData,
        bank: ProbeChannelBank,
        health: CaptureHealth,
        collector: QualityCollector,
        salvage: dict,
        error: CalibrationError,
    ) -> FusionResult:
        """Retry a rejected solve once with all suspect probes dropped.

        Down-weighted suspects can still drag the optimizer off a good
        head fit; when enough healthy probes remain, dropping the suspects
        entirely and re-solving often recovers a usable gesture.  If
        salvage is disabled, impossible (too few healthy probes), or
        pointless (nothing was suspect), the original error propagates.
        """
        weights = health.weights
        retry_weights = np.where(weights >= 1.0, 1.0, 0.0)
        n_healthy = int(np.count_nonzero(retry_weights))
        if (
            not self.config.salvage
            or not salvage["suspect_probes"]
            or n_healthy < 5
        ):
            raise error
        collector.flag(
            "pipeline",
            "salvage_retry",
            "warn",
            f"solve rejected ({error}); retrying once with "
            f"{len(salvage['suspect_probes'])} suspect probes dropped "
            f"({n_healthy} healthy probes remain)",
            value=float(len(salvage["suspect_probes"])),
        )
        obs_metrics.counter("quality.salvage_retries").inc()
        _log.warning(
            kv(
                "uniq.salvage_retry",
                reason=str(error),
                n_dropped=len(salvage["suspect_probes"]),
                n_healthy=n_healthy,
            )
        )
        salvage["retried"] = True
        salvage["dropped_probes"] = sorted(
            set(salvage["dropped_probes"]) | set(salvage["suspect_probes"])
        )
        with obs_trace.span("uniq.salvage_retry", n_active=n_healthy):
            return self._solve(session, bank, retry_weights, collector)


def personalize_capture(
    subject_seed: int,
    session_seed: int = 0,
    probe_interval_s: float = 0.4,
    angle_step_deg: float = 5.0,
    enforce_gesture_check: bool = True,
    session: SessionData | None = None,
    deconv: str = "auto",
) -> tuple[SessionData, PersonalizationResult]:
    """Simulate (or take) one capture and personalize it — the one-job unit.

    This is the seeded subject→session→table path the CLI, the batch
    server's workers, and the golden-trace fixtures all share: everything
    downstream of ``(subject_seed, session_seed, probe_interval_s,
    angle_step_deg)`` is deterministic, so the same arguments produce a
    bit-identical :class:`PersonalizationResult` in any process.

    Pass ``session`` to skip the simulation and personalize an existing
    capture (e.g. one loaded via :func:`repro.datasets.load_session`);
    ``subject_seed``/``session_seed``/``probe_interval_s`` are ignored then.
    """
    if session is None:
        subject = VirtualSubject.random(int(subject_seed))
        session = MeasurementSession(
            subject,
            seed=int(session_seed),
            probe_interval_s=float(probe_interval_s),
        ).run()
    config = UniqConfig(
        angle_grid_deg=grid_from_step(angle_step_deg),
        enforce_gesture_check=enforce_gesture_check,
        deconv=deconv,
    )
    return session, Uniq(config).personalize(session)
