"""HRTF-aware binaural beamforming: listening toward a chosen direction.

Section 4.5's motivation: "earphones could serve as hearing aids, and
beamform in the direction of a desired speech signal; thus, Alice and Bob
could listen to each other more clearly by wearing headphones in a noisy
bar."  Classical two-microphone beamformers assume free-field steering
vectors; on a head, the steering vector *is* the HRTF pair — so a
personalized HRTF directly improves the beam.

Two beamformers are provided, both per-frequency on the two ear channels:

- **matched** (max-SNR in spatially white noise):
  ``Y = (H_L* L + H_R* R) / (|H_L|^2 + |H_R|^2)``
- **null-steering** (LCMV): with two channels one interferer can be nulled
  exactly — unit gain toward the target, zero toward the interferer.

The quality of both hinges on how well the assumed HRTFs match the
listener's real ones, which is exactly the personalization story.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.hrtf.table import HRTFTable

#: Regularization floor (relative) for per-frequency normalizations.
_EPSILON = 1e-6

#: Analysis band: outside it the HRTFs carry no reliable structure.
_BAND = (150.0, 16_000.0)


@dataclass
class BinauralBeamformer:
    """Frequency-domain beamformer steered with an HRTF table.

    Parameters
    ----------
    table:
        The HRTF table whose far-field entries serve as steering vectors —
        the personal table for UNIQ, the global template for the baseline.
    """

    table: HRTFTable

    def _steering(self, theta_deg: float, n_fft: int) -> tuple[np.ndarray, np.ndarray]:
        """(H_left, H_right) steering spectra for one direction."""
        template = self.table.lookup(theta_deg, "far")
        return (
            np.fft.rfft(template.left, n_fft),
            np.fft.rfft(template.right, n_fft),
        )

    @staticmethod
    def _band_mask(n_fft: int, fs: int) -> np.ndarray:
        freqs = np.fft.rfftfreq(n_fft, d=1.0 / fs)
        return (freqs >= _BAND[0]) & (freqs <= _BAND[1])

    def extract(
        self,
        left: np.ndarray,
        right: np.ndarray,
        fs: int,
        target_deg: float,
        null_deg: float | None = None,
    ) -> np.ndarray:
        """Extract the signal arriving from ``target_deg``.

        With ``null_deg`` given, a hard spatial null is placed there (LCMV
        with two constraints — exact for two channels); otherwise the
        matched (max-white-noise-SNR) beamformer is used.  Returns the
        beamformed mono signal, time aligned with the inputs.
        """
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        if left.shape != right.shape or left.ndim != 1 or left.shape[0] < 8:
            raise SignalError("left/right must be matching 1D arrays (>= 8 samples)")
        if fs != self.table.fs:
            raise SignalError(f"recording rate {fs} != table rate {self.table.fs}")

        n_fft = int(2 ** np.ceil(np.log2(2 * left.shape[0])))
        spectrum = np.stack([np.fft.rfft(left, n_fft), np.fft.rfft(right, n_fft)])
        h_target = np.stack(self._steering(target_deg, n_fft))

        if null_deg is None:
            # Matched beamformer: y = h_target^H X.  A single broadband
            # scalar keeps the output level comparable to the input; per-bin
            # normalization would boost exactly the bins where the target
            # response is weak (worst per-bin SIR).
            power = np.sum(np.abs(h_target) ** 2, axis=0)
            weights = np.conj(h_target) / max(float(power.mean()), _EPSILON)
        else:
            weights = self._null_steering_weights(
                h_target, np.stack(self._steering(null_deg, n_fft))
            )

        mask = self._band_mask(n_fft, fs)
        output = np.where(mask, np.sum(weights * spectrum, axis=0), 0.0)
        return np.fft.irfft(output, n_fft)[: left.shape[0]]

    @staticmethod
    def _null_steering_weights(
        h_target: np.ndarray, h_null: np.ndarray
    ) -> np.ndarray:
        """Per-frequency null-steering weights, as *applied* coefficients.

        The output is ``y(f) = a0(f) X0(f) + a1(f) X1(f)``; the constraints
        ``a . h_target = 1`` and ``a . h_null = 0`` are a square 2x2 system
        per bin.  Frequencies where the two steering vectors are (nearly)
        parallel fall back to matched weights rather than blowing up; bins
        with extreme weight magnitudes (deep |det| dips) are likewise
        clamped so broadband noise is not amplified.
        """
        det = h_target[0] * h_null[1] - h_target[1] * h_null[0]
        scale = np.maximum(
            np.abs(h_target).max(axis=0) * np.abs(h_null).max(axis=0), _EPSILON
        )
        safe = np.abs(det) > 3e-2 * scale
        safe_det = np.where(safe, det, 1.0)
        weights = np.stack([h_null[1] / safe_det, -h_null[0] / safe_det])
        power = np.sum(np.abs(h_target) ** 2, axis=0)
        matched = np.conj(h_target) / max(float(power.mean()), _EPSILON)
        return np.where(safe[None, :], weights, matched)


def signal_to_interference_gain(
    beamformer: BinauralBeamformer,
    target_left: np.ndarray,
    target_right: np.ndarray,
    interferer_left: np.ndarray,
    interferer_right: np.ndarray,
    fs: int,
    target_deg: float,
    null_deg: float | None = None,
) -> float:
    """SIR improvement (dB) of beamforming over the raw left-ear feed.

    The target and interferer binaural components are supplied separately
    (the simulator can do that), beamformed with the *same* weights, and
    compared energy-wise — the standard way to score a linear beamformer.
    """
    n = min(
        target_left.shape[0],
        target_right.shape[0],
        interferer_left.shape[0],
        interferer_right.shape[0],
    )
    out_target = beamformer.extract(
        target_left[:n], target_right[:n], fs, target_deg, null_deg
    )
    out_interferer = beamformer.extract(
        interferer_left[:n], interferer_right[:n], fs, target_deg, null_deg
    )
    raw_sir = np.sum(target_left[:n] ** 2) / max(np.sum(interferer_left[:n] ** 2), 1e-300)
    beam_sir = np.sum(out_target**2) / max(np.sum(out_interferer**2), 1e-300)
    return float(10.0 * np.log10(beam_sir / raw_sir))
