"""Acoustic phone localization given candidate head parameters.

Paper Section 4.1, "Estimating Polar Angle theta_i(E) in Step 2": assume head
parameters ``E = (a, b, c)`` and let ``t1, t2`` be the measured first-tap
delays at the left/right ears.  The phone must lie on the intersection of two
iso-delay trajectories — the locus of points whose diffraction delay to the
left ear is ``t1``, and likewise for the right ear — which generically
intersect in **two** points (front/back ambiguity, the paper's Figure 10b).
The IMU angle picks the right one.

:class:`DelayMap` implements this inversion on a polar grid:

1. tabulate ``t_L(r, theta)`` and ``t_R(r, theta)`` over a grid using the
   vectorized batch path solver (delay is strictly increasing in ``r`` along
   each angle ray, so each column is invertible);
2. for a measurement ``(t1, t2)``, solve ``t_L(r, theta) = t1`` for ``r``
   per angle column, evaluate ``g(theta) = t_R(r(theta), theta) - t2``, and
   return the sign-change roots of ``g`` — the candidate phone locations.

The map is rebuilt once per candidate ``E`` inside the fusion optimizer, so
all the heavy lifting is in vectorized numpy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.core import mapstore
from repro.errors import GeometryError
from repro.geometry.batch import binaural_delays_batch
from repro.geometry.head import DEFAULT_BOUNDARY_SAMPLES, Ear, HeadGeometry
from repro.geometry.vec import polar_to_cartesian
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv

#: Default radial grid span (m): from just outside any plausible head to
#: beyond any plausible arm reach.
DEFAULT_RADII = (0.16, 1.4, 40)

#: Default angular grid (deg): full circle so both ambiguous intersections
#: are always found, at ~3 degree resolution before sub-grid refinement.
DEFAULT_THETAS = (-180.0, 180.0, 121)

#: Per-instance invert() memo size bound; the cache is cleared (not LRU
#: evicted) past this, which is far above any per-session probe count.
_INVERT_CACHE_MAX = 4096

_log = get_logger("core.localize")


@dataclass(frozen=True)
class LocalizationCandidate:
    """One solution of the two-trajectory intersection."""

    radius_m: float
    theta_deg: float

    @property
    def position(self) -> np.ndarray:
        return polar_to_cartesian(self.radius_m, self.theta_deg)


class DelayMap:
    """Tabulated binaural delay field for one head parameter vector.

    Parameters
    ----------
    head:
        Candidate head geometry ``E``.
    radii:
        ``(min, max, count)`` radial grid specification in meters.
    thetas:
        ``(min, max, count)`` angular grid specification in degrees.
    refine:
        Whether grazing-zone roots (near the ear axis) are re-solved
        against the exact delay model.  Accurate but ~850 extra path
        evaluations per affected probe; the fusion optimizer turns it off
        in its inner loop, where the coarse candidates rank heads just as
        well, and back on for the final localization pass.
    """


    def __init__(
        self,
        head: HeadGeometry,
        radii: tuple[float, float, int] = DEFAULT_RADII,
        thetas: tuple[float, float, int] = DEFAULT_THETAS,
        speed_of_sound: float = SPEED_OF_SOUND,
        model: str = "diffraction",
        refine: bool = True,
        tables: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        r_min, r_max, n_r = radii
        t_min, t_max, n_t = thetas
        if r_min <= 0 or r_max <= r_min or n_r < 4:
            raise GeometryError(f"invalid radial grid {radii}")
        if t_max <= t_min or n_t < 8:
            raise GeometryError(f"invalid angular grid {thetas}")
        if model not in ("diffraction", "euclidean"):
            raise GeometryError(
                f"model must be 'diffraction' or 'euclidean', got {model!r}"
            )
        max_axis = max(head.parameters)
        if r_min <= max_axis:
            # The caller's radial grid starts inside the head; the map can
            # only honor radii outside the boundary, so self.radii will not
            # match the requested spec — say so instead of adjusting silently.
            adjusted = max_axis + 0.01
            obs_metrics.counter("localize.radial_grid_adjusted").inc()
            _log.warning(
                kv(
                    "localize.radial_grid_adjusted",
                    requested_r_min_m=r_min,
                    adjusted_r_min_m=adjusted,
                    head_max_axis_m=max_axis,
                )
            )
            r_min = adjusted

        self.head = head
        self.model = model
        self.refine = refine
        self.speed_of_sound = speed_of_sound
        self.radii = np.linspace(r_min, r_max, n_r)
        self.thetas_deg = np.linspace(t_min, t_max, n_t)

        if tables is not None:
            # Precomputed tables (the mapstore's mmap-loaded artifacts):
            # skip the batch diffraction solve entirely.  The arrays must
            # match the grid this spec would have produced — shape is the
            # only checkable invariant, content is the store's contract.
            t_left, t_right = tables
            if t_left.shape != (n_r, n_t) or t_right.shape != (n_r, n_t):
                raise GeometryError(
                    f"precomputed tables {t_left.shape}/{t_right.shape} do not "
                    f"match the {(n_r, n_t)} grid"
                )
            self.t_left = t_left  # (r, theta)
            self.t_right = t_right
            obs_metrics.counter("localize.delay_map_loads").inc()
        else:
            grid_r, grid_t = np.meshgrid(self.radii, self.thetas_deg, indexing="ij")
            sources = polar_to_cartesian(grid_r.ravel(), grid_t.ravel())
            t_left, t_right = self._delays_for(sources)
            self.t_left = t_left.reshape(n_r, n_t)  # (r, theta)
            self.t_right = t_right.reshape(n_r, n_t)
            obs_metrics.counter("localize.delay_map_builds").inc()
        #: Memoized invert() results keyed by the exact (t1, t2) pair — the
        #: tables are immutable after construction, so a repeated delay pair
        #: (cached maps re-served across optimizer runs) is a pure replay.
        self._invert_cache: dict[
            tuple[float, float], tuple[LocalizationCandidate, ...]
        ] = {}

    def _delays_for(self, sources: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Exact (un-tabulated) per-source binaural delays under the model."""
        if self.model == "diffraction":
            return binaural_delays_batch(self.head, sources, self.speed_of_sound)
        # The through-the-head straight-line baseline (ablation only).
        t_left = (
            np.linalg.norm(sources - self.head.ear_position(Ear.LEFT), axis=1)
            / self.speed_of_sound
        )
        t_right = (
            np.linalg.norm(sources - self.head.ear_position(Ear.RIGHT), axis=1)
            / self.speed_of_sound
        )
        return t_left, t_right

    def _radius_for_left_delay(self, t1: float) -> np.ndarray:
        """Per-angle radius solving ``t_L(r, theta) = t1`` (nan if out of range).

        A column where the bracketing nodes are not strictly increasing
        (``t_hi <= t_lo``: a flat or non-monotonic table column) has no
        well-defined inverse; it yields NaN — never a candidate snapped to a
        grid radius — and is counted under ``localize.degenerate_columns``
        so the fusion sentinels see inversions degraded by a bad table.
        """
        table = self.t_left  # increasing along axis 0
        below = table < t1
        idx = below.sum(axis=0)  # first row with t_L >= t1
        n_r = self.radii.shape[0]
        valid = (idx > 0) & (idx < n_r)
        idx_c = np.clip(idx, 1, n_r - 1)
        t_lo = np.take_along_axis(table, (idx_c - 1)[None, :], axis=0)[0]
        t_hi = np.take_along_axis(table, idx_c[None, :], axis=0)[0]
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(t_hi > t_lo, (t1 - t_lo) / (t_hi - t_lo), np.nan)
        degenerate = valid & ~(t_hi > t_lo)
        if degenerate.any():
            obs_metrics.counter("localize.degenerate_columns").inc(
                int(degenerate.sum())
            )
        radius = self.radii[idx_c - 1] + frac * (self.radii[idx_c] - self.radii[idx_c - 1])
        return np.where(valid, radius, np.nan)

    def _right_delay_at(self, radius: np.ndarray) -> np.ndarray:
        """``t_R`` interpolated at per-angle radii (nan-propagating)."""
        idx = np.searchsorted(self.radii, radius)
        n_r = self.radii.shape[0]
        idx_c = np.clip(idx, 1, n_r - 1)
        r_lo = self.radii[idx_c - 1]
        r_hi = self.radii[idx_c]
        frac = (radius - r_lo) / (r_hi - r_lo)
        t_lo = np.take_along_axis(self.t_right, (idx_c - 1)[None, :], axis=0)[0]
        t_hi = np.take_along_axis(self.t_right, idx_c[None, :], axis=0)[0]
        return t_lo + frac * (t_hi - t_lo)

    def invert(self, t_left: float, t_right: float) -> list[LocalizationCandidate]:
        """All phone locations consistent with the measured delay pair.

        Returns up to a handful of candidates (generically two: one in
        front, one behind — the paper's A and B in Figure 10b).  Empty when
        the delays are inconsistent with any grid location, which the fusion
        stage penalizes.
        """
        if not np.isfinite(t_left) or not np.isfinite(t_right):
            return []
        key = (float(t_left), float(t_right))
        cached = self._invert_cache.get(key)
        if cached is not None:
            obs_metrics.counter("localize.invert_cache_hits").inc()
            return list(cached)
        radius = self._radius_for_left_delay(t_left)
        g = self._right_delay_at(radius) - t_right
        candidates: list[LocalizationCandidate] = []
        finite = np.isfinite(g)
        for i in range(g.shape[0] - 1):
            if not (finite[i] and finite[i + 1]):
                continue
            if g[i] == 0.0 or (g[i] < 0) != (g[i + 1] < 0):
                span = g[i + 1] - g[i]
                frac = 0.0 if span == 0 else float(-g[i] / span)
                theta = float(
                    self.thetas_deg[i]
                    + frac * (self.thetas_deg[i + 1] - self.thetas_deg[i])
                )
                r_here = float(radius[i] + frac * (radius[i + 1] - radius[i]))
                if np.isfinite(r_here):
                    candidates.append(LocalizationCandidate(r_here, theta))
        out = self._refine_grazing(t_left, t_right, g, radius, finite, candidates)
        if len(self._invert_cache) >= _INVERT_CACHE_MAX:
            self._invert_cache.clear()
        self._invert_cache[key] = tuple(out)
        return out

    def _refine_grazing(
        self,
        t_left: float,
        t_right: float,
        g: np.ndarray,
        radius: np.ndarray,
        finite: np.ndarray,
        coarse: list[LocalizationCandidate],
    ) -> list[LocalizationCandidate]:
        """Re-solve grazing-zone roots against the *exact* delay model.

        Near the ear axis (theta ~ 90 deg) the two iso-delay trajectories
        meet almost tangentially, so ``g(theta)`` hugs zero over several
        grid steps.  The linear scan then fails in two ways:

        * **tangential touch** — ``g`` grazes zero between nodes with no
          sign change at all, so the root is missed entirely;
        * **close root pairs** — ``g`` dips through zero and back within
          a couple of grid steps; the crossings exist but the strong
          curvature makes linear interpolation mislocate them by up to
          half a step.

        Both cases are cheap to detect on the tabulated ``g`` and rare in
        practice, so each detected zone is re-solved *without* tables:
        per fine angle, bisect the radius where the exact left-ear delay
        equals ``t_left`` (delay is strictly increasing in radius), then
        read the sign-change roots of the exact right-ear mismatch.  Well
        separated roots — the generic front/back pair — pass through
        untouched.
        """
        step = float(self.thetas_deg[1] - self.thetas_deg[0])
        ordered = sorted(coarse, key=lambda c: c.theta_deg)
        if not self.refine:
            # Cheap mode (fusion inner loop): keep the coarse crossings and
            # add the grazing vertices as-is — accurate to ~a grid step,
            # which is all the optimizer's cost ranking needs.
            return ordered + [
                LocalizationCandidate(r_here, theta)
                for theta, r_here in self._tangential_vertices(
                    g, radius, finite, ordered
                )
            ]
        #: Each zone is (theta_lo, theta_hi, r_center, fallback candidates).
        zones: list[tuple[float, float, float, list[LocalizationCandidate]]] = []
        out: list[LocalizationCandidate] = []

        i = 0
        while i < len(ordered):
            j = i
            while (
                j + 1 < len(ordered)
                and ordered[j + 1].theta_deg - ordered[j].theta_deg <= 1.2 * step
            ):
                j += 1
            if j > i:
                cluster = ordered[i : j + 1]
                zones.append((
                    cluster[0].theta_deg - 1.5 * step,
                    cluster[-1].theta_deg + 1.5 * step,
                    cluster[0].radius_m,
                    cluster,
                ))
            else:
                out.append(ordered[i])
            i = j + 1

        for theta, r_here in self._tangential_vertices(g, radius, finite, ordered):
            zones.append((
                theta - 1.5 * step,
                theta + 1.5 * step,
                r_here,
                [LocalizationCandidate(r_here, theta)],
            ))

        for theta_lo, theta_hi, r_center, fallback in zones:
            theta_lo = max(theta_lo, float(self.thetas_deg[0]))
            theta_hi = min(theta_hi, float(self.thetas_deg[-1]))
            refined = self._solve_zone(t_left, t_right, theta_lo, theta_hi, r_center)
            # None means the zone could not be re-solved (keep the coarse
            # fallback); an empty list means the exact model confidently
            # found no root there (a false flag — drop it).
            for candidate in fallback if refined is None else refined:
                if not any(
                    abs(candidate.theta_deg - kept.theta_deg) <= 0.5 * step
                    for kept in out
                ):
                    out.append(candidate)
        return out

    def _tangential_vertices(
        self,
        g: np.ndarray,
        radius: np.ndarray,
        finite: np.ndarray,
        found: list[LocalizationCandidate],
    ) -> list[tuple[float, float]]:
        """``(theta, radius)`` of extrema of ``g`` that may graze zero.

        Fit a parabola through each no-sign-change local extremum's three
        nodes and flag its vertex when the fitted peak comes within a
        generous margin of zero.  The margin is deliberately loose: near a
        tangency the true peak of ``g`` is a narrow cusp that a parabola
        through 3-degree-spaced nodes badly underestimates (observed: a
        real zero fitted as -5e-6 s), so the tolerance combines a
        curvature term with an absolute floor for the delay tables' own
        bilinear noise.  False flags are harmless — the exact re-solve in
        :meth:`_solve_zone` discards zones with no actual root.
        """
        step = float(self.thetas_deg[1] - self.thetas_deg[0])
        # Vectorized over interior nodes: this runs on every invert() call
        # inside the fusion optimizer, so no per-node python loop.
        g_prev, g_mid, g_next = g[:-2], g[1:-1], g[2:]
        neg_prev, neg_mid, neg_next = g_prev < 0, g_mid < 0, g_next < 0
        with np.errstate(invalid="ignore", divide="ignore"):
            a = 0.5 * (g_next + g_prev - 2.0 * g_mid)
            b = 0.5 * (g_next - g_prev)
            x_star = np.where(a != 0.0, -b / (2.0 * a), np.nan)
            g_vertex = g_mid - np.where(a != 0.0, b * b / (4.0 * a), np.nan)
            tolerance = 2.0 * np.abs(a) + 1e-6
            mask = (
                finite[:-2] & finite[1:-1] & finite[2:]
                # Sign changes at the neighbouring nodes were already found.
                & (neg_prev == neg_mid) & (neg_mid == neg_next)
                & (a != 0.0)
                & (np.abs(x_star) <= 1.0)
                & (
                    ((a < 0) & neg_mid & (g_vertex >= -tolerance))
                    | ((a > 0) & ~neg_mid & (g_vertex <= tolerance))
                )
            )
        vertices: list[tuple[float, float]] = []
        for i in np.flatnonzero(mask):
            x = float(x_star[i])
            theta = float(self.thetas_deg[i + 1] + x * step)
            neighbour = i + 2 if x >= 0 else i
            r_here = float(
                radius[i + 1] + abs(x) * (radius[neighbour] - radius[i + 1])
            )
            if not np.isfinite(r_here):
                continue
            if any(abs(c.theta_deg - theta) <= step for c in found):
                continue
            if any(abs(theta_v - theta) <= step for theta_v, _ in vertices):
                continue
            vertices.append((theta, r_here))
        return vertices

    def _solve_zone(
        self,
        t_left: float,
        t_right: float,
        theta_lo: float,
        theta_hi: float,
        r_center: float,
    ) -> list[LocalizationCandidate] | None:
        """Exact (table-free) roots of the delay mismatch over one zone.

        Per fine angle, bisect the radius where the exact left-ear delay
        equals ``t_left``, evaluate the exact right-ear mismatch ``g``, and
        return its linearly interpolated sign-change roots.  When ``g``
        only touches zero (a true tangency) the grazing extremum's parabola
        vertex is the root.  An empty list is an authoritative "no root in
        this zone"; ``None`` means the zone could not be solved (bisection
        never bracketed ``t_left``).  Costs ~850 vectorized path
        evaluations, only on the rare ear-axis probes.
        """
        thetas = np.linspace(theta_lo, theta_hi, 33)
        floor = max(r_center - 0.04, max(self.head.parameters) + 0.005, self.radii[0])
        lo = np.full(thetas.shape, floor)
        hi = np.full(thetas.shape, r_center + 0.04)
        t_l = t_r = None
        for _ in range(26):
            mid = 0.5 * (lo + hi)
            t_l, t_r = self._delays_for(polar_to_cartesian(mid, thetas))
            go_up = t_l < t_left
            lo = np.where(go_up, mid, lo)
            hi = np.where(go_up, hi, mid)
        mid = 0.5 * (lo + hi)
        # Columns whose bisection never bracketed t_left sit pinned at a
        # bound with a delay mismatch far above the solver's resolution.
        valid = np.abs(t_l - t_left) < 1e-7
        if valid.sum() < 3:
            return None
        g = np.where(valid, t_r - t_right, np.nan)

        roots: list[LocalizationCandidate] = []
        for i in range(thetas.shape[0] - 1):
            if not (valid[i] and valid[i + 1]):
                continue
            if g[i] == 0.0 or (g[i] < 0) != (g[i + 1] < 0):
                span = g[i + 1] - g[i]
                frac = 0.0 if span == 0 else float(-g[i] / span)
                roots.append(LocalizationCandidate(
                    float(mid[i] + frac * (mid[i + 1] - mid[i])),
                    float(thetas[i] + frac * (thetas[i + 1] - thetas[i])),
                ))
        if roots:
            return roots

        # No crossing: a true tangency, if the extremum reaches zero.
        if np.nanmax(g) < 0.0:
            pivot = int(np.nanargmax(g))
        elif np.nanmin(g) > 0.0:
            pivot = int(np.nanargmin(g))
        else:
            return []
        pivot = min(max(pivot, 1), thetas.shape[0] - 2)
        window = g[pivot - 1 : pivot + 2]
        if not np.all(np.isfinite(window)):
            return []
        a = 0.5 * (window[2] + window[0] - 2.0 * window[1])
        b = 0.5 * (window[2] - window[0])
        if a == 0.0:
            return []
        x_star = float(np.clip(-b / (2.0 * a), -1.0, 1.0))
        g_vertex = window[1] - b * b / (4.0 * a)
        # A cusp-shaped peak straddling a node fits a vertex as low as
        # ~0.75|a| even when the true peak is exactly zero, hence the
        # full-|a| margin.
        if abs(g_vertex) > abs(a) + 1e-8:
            return []
        fine_step = float(thetas[1] - thetas[0])
        theta_star = float(thetas[pivot] + x_star * fine_step)
        neighbour = pivot + 1 if x_star >= 0 else pivot - 1
        r_star = float(mid[pivot] + abs(x_star) * (mid[neighbour] - mid[pivot]))
        return [LocalizationCandidate(r_star, theta_star)]

    def locate(
        self, t_left: float, t_right: float, imu_angle_deg: float
    ) -> LocalizationCandidate | None:
        """The candidate closest to the IMU angle (paper's disambiguation).

        Returns ``None`` when the delays admit no solution under this head
        parameter vector.
        """
        candidates = self.invert(t_left, t_right)
        if not candidates:
            return None
        return min(candidates, key=lambda c: abs(c.theta_deg - imu_angle_deg))

    # ------------------------------------------------------------------
    # Batched inversion: one vectorized pass over a whole probe array.
    # Every arithmetic expression below mirrors its scalar counterpart
    # elementwise in float64, so the candidates are bit-identical to
    # per-probe invert()/locate() — the golden digests enforce this.
    # ------------------------------------------------------------------

    def _radius_for_left_delay_batch(self, t1: np.ndarray) -> np.ndarray:
        """Rows of :meth:`_radius_for_left_delay` for many ``t1`` at once."""
        table = self.t_left  # increasing along axis 0
        n_r = self.radii.shape[0]
        below = table[None, :, :] < t1[:, None, None]  # (m, n_r, n_t)
        idx = below.sum(axis=1)  # (m, n_t)
        valid = (idx > 0) & (idx < n_r)
        idx_c = np.clip(idx, 1, n_r - 1)
        cols = np.arange(table.shape[1])[None, :]
        t_lo = table[idx_c - 1, cols]
        t_hi = table[idx_c, cols]
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(t_hi > t_lo, (t1[:, None] - t_lo) / (t_hi - t_lo), np.nan)
        degenerate = valid & ~(t_hi > t_lo)
        if degenerate.any():
            obs_metrics.counter("localize.degenerate_columns").inc(
                int(degenerate.sum())
            )
        radius = self.radii[idx_c - 1] + frac * (self.radii[idx_c] - self.radii[idx_c - 1])
        return np.where(valid, radius, np.nan)

    def _right_delay_at_batch(self, radius: np.ndarray) -> np.ndarray:
        """Rows of :meth:`_right_delay_at` for a ``(m, n_theta)`` radius array."""
        idx = np.searchsorted(self.radii, radius)
        n_r = self.radii.shape[0]
        idx_c = np.clip(idx, 1, n_r - 1)
        r_lo = self.radii[idx_c - 1]
        r_hi = self.radii[idx_c]
        frac = (radius - r_lo) / (r_hi - r_lo)
        cols = np.arange(self.t_right.shape[1])[None, :]
        t_lo = self.t_right[idx_c - 1, cols]
        t_hi = self.t_right[idx_c, cols]
        return t_lo + frac * (t_hi - t_lo)

    def _tangential_vertices_batch(
        self,
        g: np.ndarray,
        radius: np.ndarray,
        finite: np.ndarray,
        found: list[list[LocalizationCandidate]],
    ) -> list[list[tuple[float, float]]]:
        """Per-row :meth:`_tangential_vertices` with one vectorized node scan.

        The parabola fit and the graze mask are evaluated for all rows at
        once; only the (rare) flagged nodes fall back to the scalar
        per-vertex bookkeeping, in the same node order as the scalar scan.
        """
        step = float(self.thetas_deg[1] - self.thetas_deg[0])
        g_prev, g_mid, g_next = g[:, :-2], g[:, 1:-1], g[:, 2:]
        neg_prev, neg_mid, neg_next = g_prev < 0, g_mid < 0, g_next < 0
        with np.errstate(invalid="ignore", divide="ignore"):
            a = 0.5 * (g_next + g_prev - 2.0 * g_mid)
            b = 0.5 * (g_next - g_prev)
            x_star = np.where(a != 0.0, -b / (2.0 * a), np.nan)
            g_vertex = g_mid - np.where(a != 0.0, b * b / (4.0 * a), np.nan)
            tolerance = 2.0 * np.abs(a) + 1e-6
            mask = (
                finite[:, :-2] & finite[:, 1:-1] & finite[:, 2:]
                & (neg_prev == neg_mid) & (neg_mid == neg_next)
                & (a != 0.0)
                & (np.abs(x_star) <= 1.0)
                & (
                    ((a < 0) & neg_mid & (g_vertex >= -tolerance))
                    | ((a > 0) & ~neg_mid & (g_vertex <= tolerance))
                )
            )
        vertices: list[list[tuple[float, float]]] = [[] for _ in range(g.shape[0])]
        rows, nodes = np.nonzero(mask)  # row-major: scalar flatnonzero order
        for k, i in zip(rows, nodes):
            x = float(x_star[k, i])
            theta = float(self.thetas_deg[i + 1] + x * step)
            neighbour = i + 2 if x >= 0 else i
            r_here = float(
                radius[k, i + 1] + abs(x) * (radius[k, neighbour] - radius[k, i + 1])
            )
            if not np.isfinite(r_here):
                continue
            if any(abs(c.theta_deg - theta) <= step for c in found[k]):
                continue
            if any(abs(theta_v - theta) <= step for theta_v, _ in vertices[k]):
                continue
            vertices[k].append((theta, r_here))
        return vertices

    def invert_batch(
        self, t_left: np.ndarray, t_right: np.ndarray
    ) -> list[list[LocalizationCandidate]]:
        """Per-probe :meth:`invert` results for whole delay arrays at once.

        One vectorized radius solve / interpolation / crossing scan covers
        every uncached probe; the per-probe memo cache is consulted and
        populated exactly as the scalar path would, so mixing batch and
        scalar calls on one map stays consistent.
        """
        t1 = np.asarray(t_left, dtype=float)
        t2 = np.asarray(t_right, dtype=float)
        m = t1.shape[0]
        out: list[list[LocalizationCandidate] | None] = [None] * m
        todo: list[int] = []  # probe index of each computed row
        pending: dict[tuple[float, float], int] = {}  # key -> row
        row_of: dict[int, int] = {}  # probe index -> row
        for k in range(m):
            if not (np.isfinite(t1[k]) and np.isfinite(t2[k])):
                out[k] = []
                continue
            key = (float(t1[k]), float(t2[k]))
            cached = self._invert_cache.get(key)
            if cached is not None:
                obs_metrics.counter("localize.invert_cache_hits").inc()
                out[k] = list(cached)
                continue
            row = pending.get(key)
            if row is None:
                row = len(todo)
                todo.append(k)
                pending[key] = row
            else:
                # In-batch duplicate: computed once, served as a cache hit —
                # matching the scalar loop's counter arithmetic.
                obs_metrics.counter("localize.invert_cache_hits").inc()
            row_of[k] = row
        if todo:
            sub1 = t1[todo]
            sub2 = t2[todo]
            radius = self._radius_for_left_delay_batch(sub1)
            g = self._right_delay_at_batch(radius) - sub2[:, None]
            finite = np.isfinite(g)
            gl, gr = g[:, :-1], g[:, 1:]
            cross = finite[:, :-1] & finite[:, 1:] & (
                (gl == 0.0) | ((gl < 0) != (gr < 0))
            )
            coarse: list[list[LocalizationCandidate]] = [[] for _ in todo]
            rows, nodes = np.nonzero(cross)  # row-major: scalar scan order
            if rows.size:
                gl_s = g[rows, nodes]
                span = g[rows, nodes + 1] - gl_s
                with np.errstate(invalid="ignore", divide="ignore"):
                    frac = np.where(span == 0.0, 0.0, -gl_s / span)
                theta = self.thetas_deg[nodes] + frac * (
                    self.thetas_deg[nodes + 1] - self.thetas_deg[nodes]
                )
                r_here = radius[rows, nodes] + frac * (
                    radius[rows, nodes + 1] - radius[rows, nodes]
                )
                for n in range(rows.size):
                    if np.isfinite(r_here[n]):
                        coarse[rows[n]].append(
                            LocalizationCandidate(float(r_here[n]), float(theta[n]))
                        )
            if self.refine:
                resolved = [
                    self._refine_grazing(
                        float(sub1[row]), float(sub2[row]),
                        g[row], radius[row], finite[row], coarse[row],
                    )
                    for row in range(len(todo))
                ]
            else:
                ordered = [
                    sorted(cands, key=lambda c: c.theta_deg) for cands in coarse
                ]
                grazes = self._tangential_vertices_batch(g, radius, finite, ordered)
                resolved = [
                    ordered[row]
                    + [
                        LocalizationCandidate(r_v, theta_v)
                        for theta_v, r_v in grazes[row]
                    ]
                    for row in range(len(todo))
                ]
            for key, row in pending.items():
                if len(self._invert_cache) >= _INVERT_CACHE_MAX:
                    self._invert_cache.clear()
                self._invert_cache[key] = tuple(resolved[row])
            for k, row in row_of.items():
                out[k] = list(resolved[row])
        return out  # type: ignore[return-value]

    def locate_batch(
        self,
        t_left: np.ndarray,
        t_right: np.ndarray,
        imu_angles_deg: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate` over a probe array.

        Returns ``(theta_deg, radius_m, solved)`` arrays; unsolved probes
        (non-finite delays or no consistent grid location) carry NaN angles
        and radii with ``solved`` False — the layout fusion consumes.
        """
        candidate_lists = self.invert_batch(t_left, t_right)
        n = len(candidate_lists)
        thetas = np.full(n, np.nan)
        radii = np.full(n, np.nan)
        solved = np.zeros(n, dtype=bool)
        for i, candidates in enumerate(candidate_lists):
            if not candidates:
                continue
            alpha = imu_angles_deg[i]
            best = min(candidates, key=lambda c: abs(c.theta_deg - alpha))
            thetas[i] = best.theta_deg
            radii[i] = best.radius_m
            solved[i] = True
        return thetas, radii, solved


#: LRU store of built maps.  ~34 KB per coarse fusion map, so the default
#: capacity comfortably holds every unique vertex of one optimizer run plus
#: the full-resolution final maps of several recent sessions.
_MAP_CACHE: OrderedDict[tuple, DelayMap] = OrderedDict()
_MAP_CACHE_MAX = 256
_MAP_CACHE_LOCK = threading.Lock()


#: Decimal places for quantizing continuous cache-key components: 1e-9 m
#: (a nanometer) absorbs ulp-level arithmetic noise from callers that pass
#: geometry through algebra (salvage retries, online refinement) while
#: staying five orders of magnitude below the optimizer's xatol (2e-4 m),
#: so numerically distinct candidate heads never collapse onto one entry.
MAP_KEY_DECIMALS = 9


def quantize_key_component(value: float) -> float:
    """Deterministic quantization for continuous delay-map key components.

    The single definition shared by the in-memory LRU key and the on-disk
    :mod:`repro.core.mapstore` artifact key — two values within the
    quantization tolerance always address the same entry in both.
    """
    return round(float(value), MAP_KEY_DECIMALS)


def _map_cache_key(
    parameters: tuple[float, float, float],
    n_boundary: int,
    radii: tuple[float, float, int],
    thetas: tuple[float, float, int],
    speed_of_sound: float,
    model: str,
    refine: bool,
) -> tuple:
    a, b, c = (quantize_key_component(v) for v in parameters)
    return (
        a,
        b,
        c,
        int(n_boundary),
        tuple(radii),
        tuple(thetas),
        quantize_key_component(speed_of_sound),
        model,
        bool(refine),
    )


def cached_delay_map(
    parameters: tuple[float, float, float],
    n_boundary: int = DEFAULT_BOUNDARY_SAMPLES,
    radii: tuple[float, float, int] = DEFAULT_RADII,
    thetas: tuple[float, float, int] = DEFAULT_THETAS,
    speed_of_sound: float = SPEED_OF_SOUND,
    model: str = "diffraction",
    refine: bool = True,
) -> DelayMap:
    """A :class:`DelayMap` for ``E = (a, b, c)``, memoized process-wide.

    The fusion optimizer, repeated personalizations of one session, and the
    evaluation cohort all rebuild maps for head parameter vectors they have
    already seen; a hit skips both the :class:`HeadGeometry` boundary build
    and the full batch diffraction solve.  Maps are immutable after
    construction (``invert`` results are memoized per instance), so sharing
    one instance across callers cannot change any numeric output.

    Hits/misses are counted under ``localize.delay_map_cache_hits`` /
    ``_misses``; :func:`clear_delay_map_cache` empties the store (tests,
    memory-pressure escape hatch).

    When a :mod:`repro.core.mapstore` artifact store is active
    (``REPRO_MAP_STORE``), an in-memory miss first tries the on-disk
    tables for this key (mmap-loaded, no solve); a store miss builds the
    map and persists its tables so the next cold process starts warm.
    """
    key = _map_cache_key(
        parameters, n_boundary, radii, thetas, speed_of_sound, model, refine
    )
    with _MAP_CACHE_LOCK:
        cached = _MAP_CACHE.get(key)
        if cached is not None:
            _MAP_CACHE.move_to_end(key)
            obs_metrics.counter("localize.delay_map_cache_hits").inc()
            return cached
    # Build outside the lock: a concurrent duplicate build wastes one solve
    # but never blocks other threads behind a ~10 ms construction.
    obs_metrics.counter("localize.delay_map_cache_misses").inc()
    a, b, c = (float(v) for v in parameters)
    head = HeadGeometry(a=a, b=b, c=c, n_boundary=int(n_boundary))
    store = mapstore.active_store()
    built = None
    if store is not None:
        tables = store.load(key)
        if tables is not None:
            try:
                built = DelayMap(
                    head, radii, thetas, speed_of_sound,
                    model=model, refine=refine, tables=tables,
                )
            except GeometryError:
                # Validated-on-load artifacts should never get here; treat
                # any mismatch as corruption and fall through to a rebuild.
                store.discard(key)
                built = None
    if built is None:
        built = DelayMap(
            head, radii, thetas, speed_of_sound, model=model, refine=refine
        )
        if store is not None:
            store.save(key, built.t_left, built.t_right)
    with _MAP_CACHE_LOCK:
        existing = _MAP_CACHE.get(key)
        if existing is not None:
            return existing
        _MAP_CACHE[key] = built
        while len(_MAP_CACHE) > _MAP_CACHE_MAX:
            _MAP_CACHE.popitem(last=False)
    return built


def delay_map_cache_size() -> int:
    """Number of maps currently held by :func:`cached_delay_map`."""
    with _MAP_CACHE_LOCK:
        return len(_MAP_CACHE)


def clear_delay_map_cache() -> None:
    """Drop every memoized map (the hit/miss counters are left untouched)."""
    with _MAP_CACHE_LOCK:
        _MAP_CACHE.clear()
