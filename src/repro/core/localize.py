"""Acoustic phone localization given candidate head parameters.

Paper Section 4.1, "Estimating Polar Angle theta_i(E) in Step 2": assume head
parameters ``E = (a, b, c)`` and let ``t1, t2`` be the measured first-tap
delays at the left/right ears.  The phone must lie on the intersection of two
iso-delay trajectories — the locus of points whose diffraction delay to the
left ear is ``t1``, and likewise for the right ear — which generically
intersect in **two** points (front/back ambiguity, the paper's Figure 10b).
The IMU angle picks the right one.

:class:`DelayMap` implements this inversion on a polar grid:

1. tabulate ``t_L(r, theta)`` and ``t_R(r, theta)`` over a grid using the
   vectorized batch path solver (delay is strictly increasing in ``r`` along
   each angle ray, so each column is invertible);
2. for a measurement ``(t1, t2)``, solve ``t_L(r, theta) = t1`` for ``r``
   per angle column, evaluate ``g(theta) = t_R(r(theta), theta) - t2``, and
   return the sign-change roots of ``g`` — the candidate phone locations.

The map is rebuilt once per candidate ``E`` inside the fusion optimizer, so
all the heavy lifting is in vectorized numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.batch import binaural_delays_batch
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.vec import polar_to_cartesian

#: Default radial grid span (m): from just outside any plausible head to
#: beyond any plausible arm reach.
DEFAULT_RADII = (0.16, 1.4, 40)

#: Default angular grid (deg): full circle so both ambiguous intersections
#: are always found, at ~3 degree resolution before sub-grid refinement.
DEFAULT_THETAS = (-180.0, 180.0, 121)


@dataclass(frozen=True)
class LocalizationCandidate:
    """One solution of the two-trajectory intersection."""

    radius_m: float
    theta_deg: float

    @property
    def position(self) -> np.ndarray:
        return polar_to_cartesian(self.radius_m, self.theta_deg)


class DelayMap:
    """Tabulated binaural delay field for one head parameter vector.

    Parameters
    ----------
    head:
        Candidate head geometry ``E``.
    radii:
        ``(min, max, count)`` radial grid specification in meters.
    thetas:
        ``(min, max, count)`` angular grid specification in degrees.
    """

    def __init__(
        self,
        head: HeadGeometry,
        radii: tuple[float, float, int] = DEFAULT_RADII,
        thetas: tuple[float, float, int] = DEFAULT_THETAS,
        speed_of_sound: float = SPEED_OF_SOUND,
        model: str = "diffraction",
    ) -> None:
        r_min, r_max, n_r = radii
        t_min, t_max, n_t = thetas
        if r_min <= 0 or r_max <= r_min or n_r < 4:
            raise GeometryError(f"invalid radial grid {radii}")
        if t_max <= t_min or n_t < 8:
            raise GeometryError(f"invalid angular grid {thetas}")
        if model not in ("diffraction", "euclidean"):
            raise GeometryError(
                f"model must be 'diffraction' or 'euclidean', got {model!r}"
            )
        max_axis = max(head.parameters)
        if r_min <= max_axis:
            r_min = max_axis + 0.01

        self.head = head
        self.model = model
        self.radii = np.linspace(r_min, r_max, n_r)
        self.thetas_deg = np.linspace(t_min, t_max, n_t)

        grid_r, grid_t = np.meshgrid(self.radii, self.thetas_deg, indexing="ij")
        sources = polar_to_cartesian(grid_r.ravel(), grid_t.ravel())
        if model == "diffraction":
            t_left, t_right = binaural_delays_batch(head, sources, speed_of_sound)
        else:
            # The through-the-head straight-line baseline (ablation only).
            t_left = (
                np.linalg.norm(sources - head.ear_position(Ear.LEFT), axis=1)
                / speed_of_sound
            )
            t_right = (
                np.linalg.norm(sources - head.ear_position(Ear.RIGHT), axis=1)
                / speed_of_sound
            )
        self.t_left = t_left.reshape(n_r, n_t)  # (r, theta)
        self.t_right = t_right.reshape(n_r, n_t)

    def _radius_for_left_delay(self, t1: float) -> np.ndarray:
        """Per-angle radius solving ``t_L(r, theta) = t1`` (nan if out of range)."""
        table = self.t_left  # increasing along axis 0
        below = table < t1
        idx = below.sum(axis=0)  # first row with t_L >= t1
        n_r = self.radii.shape[0]
        valid = (idx > 0) & (idx < n_r)
        idx_c = np.clip(idx, 1, n_r - 1)
        t_lo = np.take_along_axis(table, (idx_c - 1)[None, :], axis=0)[0]
        t_hi = np.take_along_axis(table, idx_c[None, :], axis=0)[0]
        frac = np.where(t_hi > t_lo, (t1 - t_lo) / (t_hi - t_lo), 0.0)
        radius = self.radii[idx_c - 1] + frac * (self.radii[idx_c] - self.radii[idx_c - 1])
        return np.where(valid, radius, np.nan)

    def _right_delay_at(self, radius: np.ndarray) -> np.ndarray:
        """``t_R`` interpolated at per-angle radii (nan-propagating)."""
        idx = np.searchsorted(self.radii, radius)
        n_r = self.radii.shape[0]
        idx_c = np.clip(idx, 1, n_r - 1)
        r_lo = self.radii[idx_c - 1]
        r_hi = self.radii[idx_c]
        frac = (radius - r_lo) / (r_hi - r_lo)
        t_lo = np.take_along_axis(self.t_right, (idx_c - 1)[None, :], axis=0)[0]
        t_hi = np.take_along_axis(self.t_right, idx_c[None, :], axis=0)[0]
        return t_lo + frac * (t_hi - t_lo)

    def invert(self, t_left: float, t_right: float) -> list[LocalizationCandidate]:
        """All phone locations consistent with the measured delay pair.

        Returns up to a handful of candidates (generically two: one in
        front, one behind — the paper's A and B in Figure 10b).  Empty when
        the delays are inconsistent with any grid location, which the fusion
        stage penalizes.
        """
        if not np.isfinite(t_left) or not np.isfinite(t_right):
            return []
        radius = self._radius_for_left_delay(t_left)
        g = self._right_delay_at(radius) - t_right
        candidates: list[LocalizationCandidate] = []
        finite = np.isfinite(g)
        for i in range(g.shape[0] - 1):
            if not (finite[i] and finite[i + 1]):
                continue
            if g[i] == 0.0 or (g[i] < 0) != (g[i + 1] < 0):
                span = g[i + 1] - g[i]
                frac = 0.0 if span == 0 else float(-g[i] / span)
                theta = float(
                    self.thetas_deg[i]
                    + frac * (self.thetas_deg[i + 1] - self.thetas_deg[i])
                )
                r_here = float(radius[i] + frac * (radius[i + 1] - radius[i]))
                if np.isfinite(r_here):
                    candidates.append(LocalizationCandidate(r_here, theta))
        return candidates

    def locate(
        self, t_left: float, t_right: float, imu_angle_deg: float
    ) -> LocalizationCandidate | None:
        """The candidate closest to the IMU angle (paper's disambiguation).

        Returns ``None`` when the delays admit no solution under this head
        parameter vector.
        """
        candidates = self.invert(t_left, t_right)
        if not candidates:
            return None
        return min(candidates, key=lambda c: abs(c.theta_deg - imu_angle_deg))
