"""The quality report: per-stage scores, flags, and one scalar confidence.

Confidence semantics (documented in ``docs/ROBUSTNESS.md``): every stage
contributes named *components* in ``[0, 1]`` (1.0 = "nothing about this
aspect argues against trusting the result").  The scalar confidence is the
**product** of all components — multiplicative, because independent
degradations compound and because a single dead aspect (score 0) must zero
the whole result no matter how healthy the rest looks.  Confidence is
monotone: any component getting worse can only lower it.

Component scores come from the piecewise-linear maps below
(:func:`degradation_score` / :func:`fitness_score`): flat 1.0 inside the
calibrated "clean capture" envelope, linear to 0.0 at the "unusable"
threshold.  The flat region is what keeps clean captures at stable
confidence across platforms; the linear ramp is what makes injected faults
*strictly* lower confidence once they leave that envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.quality.flags import STAGES, QualityFlag

__all__ = [
    "QualityReport",
    "combine_components",
    "degradation_score",
    "fitness_score",
]


def degradation_score(value: float, good: float, bad: float) -> float:
    """Score a *higher-is-worse* quantity: 1.0 at ``<= good``, 0.0 at ``>= bad``."""
    if not good < bad:
        raise ValueError(f"need good < bad, got {good} >= {bad}")
    value = float(value)
    if value <= good:
        return 1.0
    if value >= bad:
        return 0.0
    return float((bad - value) / (bad - good))


def fitness_score(value: float, bad: float, good: float) -> float:
    """Score a *higher-is-better* quantity: 0.0 at ``<= bad``, 1.0 at ``>= good``."""
    if not bad < good:
        raise ValueError(f"need bad < good, got {bad} >= {good}")
    value = float(value)
    if value >= good:
        return 1.0
    if value <= bad:
        return 0.0
    return float((value - bad) / (good - bad))


def combine_components(components: Mapping[str, float]) -> float:
    """The scalar confidence: the product of all component scores."""
    confidence = 1.0
    for score in components.values():
        confidence *= float(min(1.0, max(0.0, score)))
    return float(confidence)


@dataclass(frozen=True)
class QualityReport:
    """Everything one personalization run says about its own trustworthiness.

    Attributes
    ----------
    confidence:
        Scalar in ``[0, 1]``; the product of ``components``.
    components:
        ``"<stage>.<aspect>" -> score`` map (see module docstring).
    flags:
        Every :class:`~repro.quality.flags.QualityFlag` any stage raised,
        in emission order.
    salvage:
        The probe-salvage record: whether down-weighting was applied,
        which probes were dropped, and whether the solve was retried on
        the salvaged subset.
    """

    confidence: float
    components: Mapping[str, float]
    flags: tuple[QualityFlag, ...] = ()
    salvage: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_flags(self) -> int:
        return len(self.flags)

    @property
    def worst_component(self) -> tuple[str, float] | None:
        """The lowest-scoring component — the first place to look."""
        if not self.components:
            return None
        name = min(self.components, key=lambda k: (self.components[k], k))
        return name, float(self.components[name])

    def stage_scores(self) -> dict[str, float]:
        """Per-stage confidence: the product of that stage's components."""
        scores: dict[str, float] = {}
        for name, value in self.components.items():
            stage = name.split(".", 1)[0]
            scores[stage] = scores.get(stage, 1.0) * float(value)
        return scores

    def stage_flags(self, stage: str) -> tuple[QualityFlag, ...]:
        return tuple(flag for flag in self.flags if flag.stage == stage)

    def stage_table(self) -> list[tuple[str, float, str]]:
        """``(stage, score, flag summary)`` rows in pipeline order."""
        scores = self.stage_scores()
        rows = []
        for stage in STAGES:
            if stage not in scores and not self.stage_flags(stage):
                continue
            flags = ", ".join(
                f"{f.code}({f.severity})" for f in self.stage_flags(stage)
            )
            rows.append((stage, float(scores.get(stage, 1.0)), flags or "-"))
        return rows

    def to_dict(self) -> dict[str, Any]:
        return {
            "confidence": float(self.confidence),
            "components": {
                name: float(score)
                for name, score in sorted(self.components.items())
            },
            "flags": [flag.to_dict() for flag in self.flags],
            "salvage": dict(self.salvage),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "QualityReport":
        return cls(
            confidence=float(record["confidence"]),
            components=dict(record.get("components", {})),
            flags=tuple(
                QualityFlag.from_dict(f) for f in record.get("flags", ())
            ),
            salvage=dict(record.get("salvage", {})),
        )
