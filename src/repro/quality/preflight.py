"""Capture preflight: inspect a ``SessionData`` *before* any solve.

The paper's only capture defense (Section 4.6 gesture checks) runs *after*
the expensive fusion solve and is binary — redo the sweep or trust the
result.  The preflight runs first, costs milliseconds, and grades every
probe and the IMU trace individually:

- **per-probe audio**: SNR against a robust noise-floor estimate, hard-clip
  ratio, dead/zeroed channels;
- **coverage**: the gyro-integrated orientation at each usable probe — the
  only angle estimate legal before fusion — checked for span and gaps
  against the requested output grid;
- **gyro**: rail saturation (samples pinned at the extreme rate), sample
  dropout (timestamp gaps), bias jumps between windows, and mic/IMU clock
  skew (IMU span vs probe-emission span).

The result is a :class:`CaptureHealth` with a per-probe verdict and weight
vector the fusion/interpolation stages consume for probe salvage, plus
``preflight.*`` confidence components and typed flags.

Threshold calibration (see ``docs/ROBUSTNESS.md``): the ``good`` side of
every score sits outside the envelope measured over clean simulated
captures (20 seeded subjects x sessions, default hardware/room/noise
models), the ``bad`` side at the point where the downstream solve
empirically breaks; clean captures must score 1.0 on every component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.constants import ROOM_REFLECTION_CUTOFF_S
from repro.errors import SignalError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.quality.flags import QualityCollector
from repro.signals.channel import estimate_channel, find_taps, first_tap_index
from repro.signals.spectrum import band_energy_ratio
from repro.quality.report import (
    combine_components,
    degradation_score,
    fitness_score,
)
from repro.simulation.imu import integrate_gyro
from repro.simulation.session import SessionData

__all__ = ["CaptureHealth", "PreflightThresholds", "ProbeHealth", "preflight"]

#: Robust sigma from the median absolute deviation of a zero-mean signal.
_MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class PreflightThresholds:
    """Calibrated preflight thresholds (defaults per module docstring)."""

    #: An ear channel with RMS below this is dead (zeroed mic / lost link).
    dead_rms: float = 1e-7
    #: Probe SNR (dB): full score above ``snr_good``, zero at ``snr_bad``,
    #: probe down-weighted below ``snr_suspect``.  Clean captures span a
    #: wide range — ~28-31 dB median on the default arm trajectory, but
    #: only ~9-13 dB on a far constant-radius circular sweep (quieter
    #: signal, same mic noise) — so the flat region extends down to the
    #: quietest capture the solve is known to handle cleanly.
    snr_good: float = 8.0
    snr_suspect: float = 5.0
    snr_bad: float = 2.0
    #: Fraction of samples within 1.5 % of the peak magnitude: a hard-clipped
    #: recording piles samples onto the rails.  Clean chirp recordings sit
    #: around 1e-3.
    clip_ratio_good: float = 5e-3
    clip_ratio_suspect: float = 3e-2
    clip_ratio_bad: float = 0.25
    #: Weight assigned to suspect (clipped / low-SNR) probes on the first
    #: solve attempt; the salvage retry drops them to 0.
    suspect_weight: float = 0.25
    #: Coverage of the sweep semicircle by usable probes (IMU-estimated
    #: angles): largest angular gap tolerated before flagging, and the gap
    #: at which interpolation is considered unsupported.
    max_gap_good_deg: float = 18.0
    max_gap_bad_deg: float = 60.0
    #: Minimum usable probes: fusion needs 5; below ``count_good`` the
    #: coverage score starts dropping.
    min_probes: int = 5
    count_good: int = 12
    #: Gyro rail saturation: fraction of samples pinned within 0.1 % of the
    #: extreme measured rate.
    saturation_good: float = 5e-3
    saturation_bad: float = 0.2
    #: Gyro sample dropout: max inter-sample gap as a multiple of the median.
    dropout_ratio_good: float = 4.0
    dropout_ratio_bad: float = 40.0
    #: Gyro bias jump/drift: spread of windowed median rates beyond what the
    #: sweep's own dynamics produce (deg/s).
    bias_jump_good_dps: float = 8.0
    bias_jump_bad_dps: float = 30.0
    #: Mic/IMU clock skew: |IMU span / probe span - 1| beyond the slack one
    #: probe interval legitimately produces.
    clock_skew_good: float = 0.08
    clock_skew_bad: float = 0.5
    #: Reverberation: late-to-early energy ratio of the deconvolved channel
    #: (50 ms window; "early" = the paper's 2.5 ms head/pinna window after
    #: the first tap), worst case over the sampled probes.  The default
    #: living-room simulation tops out around 0.31; real failure starts
    #: when the tail carries multiples of the early energy.
    reverb_ratio_good: float = 0.45
    reverb_ratio_bad: float = 2.5
    #: Broadband noise: out-of-band energy fraction of the recording
    #: relative to the played probe's 99 % energy band.  Clean captures sit
    #: below 0.04 (the HRIR only filters, never adds, out-of-band energy);
    #: by 0.45 the white floor rivals the probe and even the robust rungs
    #: start losing the first tap.
    oob_noise_good: float = 0.06
    oob_noise_bad: float = 0.45


#: Shared default thresholds.
DEFAULT_THRESHOLDS = PreflightThresholds()


@dataclass(frozen=True)
class ProbeHealth:
    """Preflight verdict for one probe recording."""

    index: int
    snr_db: float
    clipping_ratio: float
    dead: bool
    weight: float

    @property
    def verdict(self) -> str:
        if self.dead:
            return "dead"
        return "ok" if self.weight >= 1.0 else "suspect"

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": int(self.index),
            "snr_db": float(self.snr_db),
            "clipping_ratio": float(self.clipping_ratio),
            "verdict": self.verdict,
            "weight": float(self.weight),
        }


@dataclass(frozen=True)
class CaptureHealth:
    """The structured preflight output for one capture."""

    probes: tuple[ProbeHealth, ...]
    components: dict[str, float] = field(default_factory=dict)
    collector: QualityCollector | None = None
    #: Adverse-capture sentinel readings (defaults = clean capture): the
    #: robust noise amplitude of the worst alive probe, the worst
    #: late-to-early channel energy ratio, the worst out-of-band energy
    #: fraction, and the deconvolution rung they recommend starting on.
    noise_floor: float = 0.0
    reverb_ratio: float = 0.0
    oob_noise: float = 0.0
    recommended_method: str = "inverse"

    @property
    def weights(self) -> np.ndarray:
        """Per-probe solve weights in ``[0, 1]`` (0 = drop)."""
        return np.array([p.weight for p in self.probes], dtype=float)

    @property
    def n_usable(self) -> int:
        return int(sum(1 for p in self.probes if p.weight > 0.0))

    @property
    def n_suspect(self) -> int:
        return int(sum(1 for p in self.probes if p.verdict == "suspect"))

    @property
    def n_dead(self) -> int:
        return int(sum(1 for p in self.probes if p.dead))

    def score(self) -> float:
        """Preflight-only confidence (product of capture components)."""
        return combine_components(self.components)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_probes": len(self.probes),
            "n_usable": self.n_usable,
            "n_suspect": self.n_suspect,
            "n_dead": self.n_dead,
            "score": self.score(),
            "noise_floor": float(self.noise_floor),
            "reverb_ratio": float(self.reverb_ratio),
            "oob_noise": float(self.oob_noise),
            "recommended_method": self.recommended_method,
            "components": {
                name: float(v) for name, v in sorted(self.components.items())
            },
            "probes": [p.to_dict() for p in self.probes],
        }


def _ear_stats(signal: np.ndarray, thresholds: PreflightThresholds):
    """(snr_db, clip_ratio, dead, noise_floor) for one ear recording."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        return float("-inf"), 0.0, True, 0.0
    magnitude = np.abs(signal)
    peak = float(magnitude.max())
    rms = float(np.sqrt(np.mean(np.square(signal))))
    if peak == 0.0 or rms <= thresholds.dead_rms:
        return float("-inf"), 0.0, True, 0.0
    clip_ratio = float(np.mean(magnitude >= 0.985 * peak))
    # Robust noise floor: MAD of the half of the recording with the least
    # energy (the probe chirp occupies a contiguous region; the quietest
    # half is dominated by mic noise).
    half = signal.size // 2
    tail = signal[half:] if np.sum(magnitude[half:]) < np.sum(magnitude[:half]) else signal[:half]
    noise = _MAD_SIGMA * float(np.median(np.abs(tail - np.median(tail))))
    noise = max(noise, 1e-12)
    snr_db = float(20.0 * np.log10(peak / noise))
    return snr_db, clip_ratio, False, noise


def preflight(
    session: SessionData,
    thresholds: PreflightThresholds | None = None,
    collector: QualityCollector | None = None,
) -> CaptureHealth:
    """Grade a capture before any solve; see module docstring.

    Raises
    ------
    SignalError
        If there are no probes at all (nothing to grade).
    """
    t = thresholds if thresholds is not None else DEFAULT_THRESHOLDS
    quality = collector if collector is not None else QualityCollector()
    if session.n_probes == 0:
        raise SignalError("capture has no probe recordings")

    with obs_trace.span("quality.preflight", n_probes=session.n_probes):
        probes = []
        noise_floors = []
        for i, probe in enumerate(session.probes):
            snr_l, clip_l, dead_l, noise_l = _ear_stats(probe.left, t)
            snr_r, clip_r, dead_r, noise_r = _ear_stats(probe.right, t)
            dead = bool(dead_l or dead_r)
            snr_db = float(min(snr_l, snr_r))
            clip_ratio = float(max(clip_l, clip_r))
            if not dead:
                noise_floors.append(max(noise_l, noise_r))
            if dead:
                weight = 0.0
            elif snr_db <= t.snr_suspect or clip_ratio >= t.clip_ratio_suspect:
                weight = t.suspect_weight
            else:
                weight = 1.0
            probes.append(
                ProbeHealth(
                    index=i,
                    snr_db=snr_db,
                    clipping_ratio=clip_ratio,
                    dead=dead,
                    weight=weight,
                )
            )

        alive = [p for p in probes if not p.dead]
        n_dead = len(probes) - len(alive)
        if n_dead:
            quality.flag(
                "preflight",
                "dead_channels",
                "error" if not alive else "warn",
                f"{n_dead}/{len(probes)} probes have dead/zeroed channels",
                value=float(n_dead) / len(probes),
                threshold=0.0,
            )
        quality.component(
            "preflight.channels", 1.0 - float(n_dead) / len(probes)
        )

        if alive:
            median_snr = float(np.median([p.snr_db for p in alive]))
            worst_clip = float(max(p.clipping_ratio for p in alive))
        else:
            median_snr, worst_clip = float("-inf"), 1.0
        quality.component(
            "preflight.snr", fitness_score(median_snr, t.snr_bad, t.snr_good)
        )
        if alive and median_snr < t.snr_good:
            quality.flag(
                "preflight",
                "low_snr",
                "warn" if median_snr > t.snr_bad else "error",
                f"median probe SNR {median_snr:.1f} dB below the clean "
                f"envelope ({t.snr_good:.0f} dB)",
                value=median_snr,
                threshold=t.snr_good,
            )
        quality.component(
            "preflight.clipping",
            degradation_score(worst_clip, t.clip_ratio_good, t.clip_ratio_bad),
        )
        if alive and worst_clip > t.clip_ratio_good:
            worst_probe = max(alive, key=lambda p: p.clipping_ratio)
            quality.flag(
                "preflight",
                "clipping",
                "warn" if worst_clip < t.clip_ratio_bad else "error",
                f"clip ratio {worst_clip:.3f} exceeds {t.clip_ratio_good}",
                probe_index=worst_probe.index,
                value=worst_clip,
                threshold=t.clip_ratio_good,
            )

        _coverage_checks(session, probes, t, quality)
        _gyro_checks(session, t, quality)
        reverb_ratio, oob_noise = _adverse_checks(session, probes, t, quality)

        components = {
            name: score
            for name, score in quality.components.items()
            if name.startswith("preflight.")
        }
        health = CaptureHealth(
            probes=tuple(probes),
            components=components,
            collector=quality,
            noise_floor=float(max(noise_floors)) if noise_floors else 0.0,
            reverb_ratio=reverb_ratio,
            oob_noise=oob_noise,
            recommended_method=_recommend_method(components),
        )
        obs_metrics.counter("quality.preflight_runs").inc()
        obs_metrics.gauge("quality.preflight_score").set(health.score())
        obs_metrics.counter("quality.probes_dead").inc(health.n_dead)
        obs_metrics.counter("quality.probes_suspect").inc(health.n_suspect)
    return health


def _coverage_checks(
    session: SessionData,
    probes: list[ProbeHealth],
    t: PreflightThresholds,
    quality: QualityCollector,
) -> None:
    """Angle-grid coverage by usable probes, from the IMU estimate alone."""
    usable = [p.index for p in probes if p.weight > 0.0]
    n_usable = len(usable)
    quality.component(
        "preflight.count",
        fitness_score(float(n_usable), float(t.min_probes - 1), float(t.count_good)),
    )
    if n_usable < t.count_good:
        quality.flag(
            "preflight",
            "few_probes",
            "warn" if n_usable >= t.min_probes else "error",
            f"only {n_usable} usable probes (grid wants >= {t.count_good})",
            value=float(n_usable),
            threshold=float(t.count_good),
        )
    if n_usable < 2 or len(session.imu) < 2:
        quality.component("preflight.coverage", 0.0)
        return
    # The only pre-fusion angle estimate: gyro integration (drifty but
    # plenty for coverage book-keeping).
    angles = integrate_gyro(session.imu)
    probe_times = np.array([session.probes[i].time for i in usable])
    probe_angles = np.sort(
        np.interp(probe_times, session.imu.times, angles)
    )
    gaps = np.diff(probe_angles)
    max_gap = float(gaps.max()) if gaps.size else 180.0
    quality.component(
        "preflight.coverage",
        degradation_score(max_gap, t.max_gap_good_deg, t.max_gap_bad_deg),
    )
    if max_gap > t.max_gap_good_deg:
        quality.flag(
            "preflight",
            "coverage_gap",
            "warn" if max_gap < t.max_gap_bad_deg else "error",
            f"largest angular gap between usable probes is {max_gap:.1f} deg "
            f"(IMU estimate; tolerated {t.max_gap_good_deg:.0f})",
            value=max_gap,
            threshold=t.max_gap_good_deg,
        )


def _gyro_checks(
    session: SessionData,
    t: PreflightThresholds,
    quality: QualityCollector,
) -> None:
    """Gyro saturation / dropout / bias-jump / clock-skew heuristics."""
    rate = np.asarray(session.imu.rate_dps, dtype=float)
    times = np.asarray(session.imu.times, dtype=float)
    if rate.size < 4:
        quality.component("preflight.gyro", 0.0)
        quality.flag(
            "preflight", "gyro_dropout", "error",
            f"IMU trace has only {rate.size} samples",
            value=float(rate.size), threshold=4.0,
        )
        return

    # Rail saturation: samples pinned at the extreme measured rate.  A
    # healthy MEMS trace is noisy enough that ties with the extreme are rare.
    extreme = float(np.max(np.abs(rate)))
    pinned = (
        float(np.mean(np.abs(rate) >= 0.999 * extreme)) if extreme > 0 else 1.0
    )
    saturation_score = degradation_score(
        pinned, t.saturation_good, t.saturation_bad
    )
    if pinned > t.saturation_good:
        quality.flag(
            "preflight",
            "gyro_saturation",
            "warn" if pinned < t.saturation_bad else "error",
            f"{pinned:.1%} of gyro samples pinned at ±{extreme:.1f} deg/s",
            value=pinned,
            threshold=t.saturation_good,
        )

    # Sample dropout: timestamp gaps far beyond the median sample interval.
    dts = np.diff(times)
    median_dt = float(np.median(dts))
    gap_ratio = float(dts.max() / median_dt) if median_dt > 0 else float("inf")
    dropout_score = degradation_score(
        gap_ratio, t.dropout_ratio_good, t.dropout_ratio_bad
    )
    if gap_ratio > t.dropout_ratio_good:
        quality.flag(
            "preflight",
            "gyro_dropout",
            "warn" if gap_ratio < t.dropout_ratio_bad else "error",
            f"largest IMU timestamp gap is {gap_ratio:.1f}x the median "
            f"sample interval",
            value=gap_ratio,
            threshold=t.dropout_ratio_good,
        )

    # Bias jump / drift: windowed median rates should agree to within the
    # sweep's own dynamics; a drifting or stepping bias spreads them out.
    n_windows = 6
    edges = np.linspace(0, rate.size, n_windows + 1).astype(int)
    medians = [
        float(np.median(rate[lo:hi]))
        for lo, hi in zip(edges[:-1], edges[1:])
        if hi > lo
    ]
    bias_spread = float(np.max(medians) - np.min(medians)) if medians else 0.0
    bias_score = degradation_score(
        bias_spread, t.bias_jump_good_dps, t.bias_jump_bad_dps
    )
    if bias_spread > t.bias_jump_good_dps:
        quality.flag(
            "preflight",
            "gyro_bias_jump",
            "warn" if bias_spread < t.bias_jump_bad_dps else "error",
            f"windowed gyro medians spread over {bias_spread:.1f} deg/s "
            f"(bias drift/jump)",
            value=bias_spread,
            threshold=t.bias_jump_good_dps,
        )

    # Clock skew: the IMU trace and the probe emissions ride the same sweep,
    # so their spans must agree to within one probe interval of slack.
    clock_score = 1.0
    probe_times = np.array([p.time for p in session.probes], dtype=float)
    if probe_times.size >= 2:
        probe_span = float(probe_times[-1] - probe_times[0])
        imu_span = float(times[-1] - times[0])
        if probe_span > 0:
            interval = float(np.median(np.diff(probe_times)))
            slack = interval / probe_span
            deviation = max(0.0, abs(imu_span / probe_span - 1.0) - slack)
            clock_score = degradation_score(
                deviation, t.clock_skew_good, t.clock_skew_bad
            )
            if deviation > t.clock_skew_good:
                quality.flag(
                    "preflight",
                    "clock_skew",
                    "warn" if deviation < t.clock_skew_bad else "error",
                    f"IMU span deviates from probe span by {deviation:.1%} "
                    f"beyond slack (mic/IMU clock skew)",
                    value=deviation,
                    threshold=t.clock_skew_good,
                )

    quality.component(
        "preflight.gyro",
        min(saturation_score, dropout_score, bias_score, clock_score),
    )


#: Channel window (seconds) for the reverberation sentinel: long enough to
#: expose the late tail of a reverberant room, far past the head/pinna window.
_REVERB_WINDOW_S = 0.05

#: Cumulative-energy percentile bounding the probe's occupied band for the
#: out-of-band noise sentinel (band = central 99 % of source energy).
_BAND_PERCENTILE = 0.005


def _source_band(source: np.ndarray, fs: int) -> tuple[float, float] | None:
    """The frequency band holding the central 99 % of source energy."""
    energy = np.abs(np.fft.rfft(source)) ** 2
    total = float(energy.sum())
    if total <= 0.0:
        return None
    freqs = np.fft.rfftfreq(source.shape[0], 1.0 / fs)
    cumulative = np.cumsum(energy) / total
    f_low = float(freqs[np.searchsorted(cumulative, _BAND_PERCENTILE)])
    f_high = float(
        freqs[min(np.searchsorted(cumulative, 1.0 - _BAND_PERCENTILE), freqs.size - 1)]
    )
    if f_high <= f_low:
        return None
    return f_low, f_high


def _adverse_checks(
    session: SessionData,
    probes: list[ProbeHealth],
    t: PreflightThresholds,
    quality: QualityCollector,
) -> tuple[float, float]:
    """Reverberation and broadband-noise sentinels over sampled probes.

    Deconvolves a 50 ms channel window for (up to) three alive probes —
    first, middle, last of the sweep — and grades the worst case of:

    - the late-to-early energy ratio (energy beyond the 2.5 ms room window
      after the first tap vs energy within it) — reverberant rooms smear
      energy into the tail that the head/pinna never produces;
    - the out-of-band energy fraction of the raw recording vs the band the
      probe chirp actually occupies — a linear room cannot create energy
      outside the band that was played, so any excess is additive noise.

    Returns ``(reverb_ratio, oob_noise)`` and emits the
    ``preflight.reverb`` / ``preflight.noise`` components plus
    ``reverberation`` / ``broadband_noise`` flags.
    """
    source = np.asarray(session.probe_signal, dtype=float)
    alive = [p.index for p in probes if not p.dead]
    if not alive or source.size == 0:
        return 0.0, 0.0
    sample = sorted({alive[0], alive[len(alive) // 2], alive[-1]})
    fs = int(session.fs)
    n_window = int(round(_REVERB_WINDOW_S * fs))
    cutoff = int(round(ROOM_REFLECTION_CUTOFF_S * fs))
    band = _source_band(source, fs)
    reverb_ratio = 0.0
    oob_noise = 0.0
    n_late_taps = 0
    graded = False
    for index in sample:
        probe = session.probes[index]
        for recording in (probe.left, probe.right):
            recording = np.asarray(recording, dtype=float)
            # Out-of-band noise first: it needs no channel estimate, so a
            # capture too noisy to even locate the first tap still gets a
            # (maximally damning) noise reading.
            if band is not None:
                try:
                    in_band = band_energy_ratio(recording, fs, band[0], band[1])
                    oob_noise = max(oob_noise, 1.0 - in_band)
                    graded = True
                except SignalError:
                    pass
            try:
                impulse = estimate_channel(
                    recording, source, min(n_window, recording.shape[0])
                )
                first = first_tap_index(impulse)
            except SignalError:
                continue
            cut = first + cutoff
            if cut >= impulse.shape[0]:
                continue
            # Noise-compensated energies: additive mic noise floods the
            # whole impulse estimate uniformly, so subtract the per-sample
            # noise energy (robust MAD estimate — the real taps are sparse
            # and leave the median untouched) from both windows.  Without
            # this, broadband noise masquerades as reverberation.
            med = float(np.median(impulse))
            noise_energy = (
                _MAD_SIGMA * float(np.median(np.abs(impulse - med)))
            ) ** 2
            n_late = impulse.shape[0] - cut
            early = float(np.sum(impulse[first:cut] ** 2))
            early -= (cut - first) * noise_energy
            # Only grade reverberation when the early tap rises far enough
            # above the late window's chi-square fluctuation
            # (~sqrt(2 N) sigma^2) that the ratio is meaningful; a tap
            # drowned in noise is the *noise* sentinel's problem.
            late_fluctuation = float(np.sqrt(2.0 * n_late)) * noise_energy
            if early <= max(20.0 * late_fluctuation, 0.0):
                continue
            late = float(np.sum(impulse[cut:] ** 2))
            late = max(late - n_late * noise_energy, 0.0)
            ratio = late / early
            if ratio > reverb_ratio:
                reverb_ratio = ratio
                try:
                    tap_indices, _ = find_taps(impulse, max_taps=16)
                    n_late_taps = int(np.sum(tap_indices >= cut))
                except SignalError:
                    n_late_taps = 0
            graded = True
    if not graded:
        return 0.0, 0.0

    quality.component(
        "preflight.reverb",
        degradation_score(reverb_ratio, t.reverb_ratio_good, t.reverb_ratio_bad),
    )
    if reverb_ratio > t.reverb_ratio_good:
        quality.flag(
            "preflight",
            "reverberation",
            "warn" if reverb_ratio < t.reverb_ratio_bad else "error",
            f"late/early channel energy ratio {reverb_ratio:.2f} "
            f"({n_late_taps} significant taps beyond the "
            f"{1e3 * ROOM_REFLECTION_CUTOFF_S:.1f} ms room window)",
            value=reverb_ratio,
            threshold=t.reverb_ratio_good,
        )
    quality.component(
        "preflight.noise",
        degradation_score(oob_noise, t.oob_noise_good, t.oob_noise_bad),
    )
    if oob_noise > t.oob_noise_good:
        quality.flag(
            "preflight",
            "broadband_noise",
            "warn" if oob_noise < t.oob_noise_bad else "error",
            f"{oob_noise:.1%} of recording energy lies outside the probe "
            f"band — additive broadband noise",
            value=oob_noise,
            threshold=t.oob_noise_good,
        )
    return reverb_ratio, oob_noise


def _recommend_method(components: dict[str, float]) -> str:
    """Starting deconvolution rung implied by the adverse sentinels.

    Clean (both sentinel scores 1.0) starts on the inverse filter so clean
    captures stay bit-identical; any degradation starts on the Wiener rung;
    a sentinel driven to zero (past its ``bad`` threshold) starts on the
    windowed time-domain LS rung directly.
    """
    worst = min(
        components.get("preflight.reverb", 1.0),
        components.get("preflight.noise", 1.0),
    )
    if worst <= 0.0:
        return "tdls"
    if worst < 1.0:
        return "wiener"
    return "inverse"
