"""Typed quality flags and the collector the pipeline threads through.

A :class:`QualityFlag` is one machine-readable statement about a
personalization run — *which stage* saw *what symptom*, how bad it is, and
the measured value against the threshold that tripped it.  Stages append
flags to a shared :class:`QualityCollector` instead of silently proceeding
(or raising), so a degraded capture leaves an audit trail in the final
:class:`repro.quality.QualityReport` rather than a result indistinguishable
from a good one.

Every flag emission also bumps the ``quality.flags`` counter and a
per-code ``quality.flag.<stage>.<code>`` counter on the global metrics
registry, so a fleet of runs exposes its degradation mix without anyone
parsing reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics

__all__ = ["QualityFlag", "QualityCollector", "SEVERITIES", "STAGES"]

#: Flag severities, mildest first.  ``info`` annotates, ``warn`` degrades
#: confidence, ``error`` marks a symptom severe enough that the stage result
#: is suspect even after salvage.
SEVERITIES = ("info", "warn", "error")

#: The pipeline stages allowed to emit flags (keeps stage attribution
#: machine-checkable — a typo'd stage name fails loudly, not silently).
STAGES = ("preflight", "fusion", "interpolation", "near_far", "pipeline")


@dataclass(frozen=True)
class QualityFlag:
    """One stage-attributed degradation symptom.

    Attributes
    ----------
    stage:
        The pipeline stage that observed the symptom (one of :data:`STAGES`).
    code:
        Short machine-readable symptom name, e.g. ``"clipping"``.
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable one-liner with the numbers inline.
    probe_index:
        The probe the symptom is localized to, when it is per-probe.
    value / threshold:
        The measured quantity and the calibrated threshold it crossed
        (``None`` for symptoms without a scalar measurement).
    """

    stage: str
    code: str
    severity: str
    message: str
    probe_index: int | None = None
    value: float | None = None
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ReproError(
                f"unknown quality stage {self.stage!r}; known: {STAGES}"
            )
        if self.severity not in SEVERITIES:
            raise ReproError(
                f"unknown severity {self.severity!r}; known: {SEVERITIES}"
            )

    @property
    def key(self) -> str:
        """``stage.code`` — the name metrics and reports group by."""
        return f"{self.stage}.{self.code}"

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "stage": self.stage,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.probe_index is not None:
            record["probe_index"] = int(self.probe_index)
        if self.value is not None:
            record["value"] = float(self.value)
        if self.threshold is not None:
            record["threshold"] = float(self.threshold)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "QualityFlag":
        return cls(
            stage=record["stage"],
            code=record["code"],
            severity=record["severity"],
            message=record["message"],
            probe_index=record.get("probe_index"),
            value=record.get("value"),
            threshold=record.get("threshold"),
        )


class QualityCollector:
    """Accumulates flags and per-component confidence scores for one run.

    The pipeline creates one collector per personalization and hands it to
    every stage; stages call :meth:`flag` for symptoms and :meth:`component`
    for their scalar health scores.  Components are named
    ``"<stage>.<aspect>"`` and clamped to ``[0, 1]``; re-reporting a
    component keeps the *worst* (minimum) score, so a stage that runs twice
    (salvage retry) can only lower its score, never launder it.
    """

    def __init__(self) -> None:
        self._flags: list[QualityFlag] = []
        self._components: dict[str, float] = {}

    @property
    def flags(self) -> tuple[QualityFlag, ...]:
        return tuple(self._flags)

    @property
    def components(self) -> dict[str, float]:
        return dict(self._components)

    def flag(
        self,
        stage: str,
        code: str,
        severity: str,
        message: str,
        probe_index: int | None = None,
        value: float | None = None,
        threshold: float | None = None,
    ) -> QualityFlag:
        """Record one symptom (validated, metered) and return it."""
        flag = QualityFlag(
            stage=stage,
            code=code,
            severity=severity,
            message=message,
            probe_index=probe_index,
            value=value,
            threshold=threshold,
        )
        self._flags.append(flag)
        obs_metrics.counter("quality.flags").inc()
        obs_metrics.counter(f"quality.flag.{flag.key}").inc()
        return flag

    def component(self, name: str, score: float) -> float:
        """Record one confidence component; worst report wins."""
        stage = name.split(".", 1)[0]
        if stage not in STAGES:
            raise ReproError(
                f"component {name!r} must be namespaced by a stage {STAGES}"
            )
        score = float(min(1.0, max(0.0, score)))
        previous = self._components.get(name)
        if previous is None or score < previous:
            self._components[name] = score
        return self._components[name]

    def extend(self, other: "QualityCollector") -> None:
        """Merge another collector's flags and components into this one."""
        for flag in other._flags:
            self._flags.append(flag)
        for name, score in other._components.items():
            self.component(name, score)
