"""repro.quality — degradation detection and graceful degradation.

Every personalization result must carry a machine-readable answer to *"can
I trust this?"*.  This package provides the three layers that produce it:

- :mod:`repro.quality.preflight` — grade a capture before any solve:
  per-probe SNR / clipping / dead channels, angle-grid coverage, gyro
  saturation / dropout / bias-jump / clock-skew heuristics.  Emits a
  :class:`CaptureHealth` whose per-probe weights drive **probe salvage** in
  the fusion and interpolation stages;
- :mod:`repro.quality.flags` — typed, stage-attributed
  :class:`QualityFlag`\\ s accumulated in a :class:`QualityCollector` the
  pipeline threads through every stage (each stage's *sentinels* compare
  residuals / coverage / margins against calibrated thresholds and flag
  instead of silently proceeding);
- :mod:`repro.quality.report` — the final :class:`QualityReport`: named
  per-stage components in ``[0, 1]`` combined into one scalar confidence,
  attached to :class:`repro.core.pipeline.PersonalizationResult`,
  serialized by the serve layer, exported as ``quality.*`` metrics, and
  surfaced by the CLI (``--min-confidence``).

Semantics, thresholds, and the salvage policy are documented in
``docs/ROBUSTNESS.md``.
"""

from repro.quality.flags import (
    SEVERITIES,
    STAGES,
    QualityCollector,
    QualityFlag,
)
from repro.quality.preflight import (
    DEFAULT_THRESHOLDS,
    CaptureHealth,
    PreflightThresholds,
    ProbeHealth,
    preflight,
)
from repro.quality.report import (
    QualityReport,
    combine_components,
    degradation_score,
    fitness_score,
)

__all__ = [
    "SEVERITIES",
    "STAGES",
    "QualityCollector",
    "QualityFlag",
    "DEFAULT_THRESHOLDS",
    "CaptureHealth",
    "PreflightThresholds",
    "ProbeHealth",
    "preflight",
    "QualityReport",
    "combine_components",
    "degradation_score",
    "fitness_score",
]
