"""Phone localization accuracy (paper Figure 17).

Runs the diffraction-aware sensor fusion on each cohort member's session and
compares the fused polar angles against the simulator's ground truth (the
paper's overhead camera).  The paper reports a median angular error of
4.8 degrees with a tail up to ~15 degrees from gesture deviations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.common import cdf_points, get_cohort


@dataclass(frozen=True)
class LocalizationResult:
    """Figure 17 output: per-probe truth/estimate pairs and the error CDF."""

    truth_angles_deg: np.ndarray
    estimated_angles_deg: np.ndarray
    errors_deg: np.ndarray
    cdf_values_deg: np.ndarray
    cdf_probabilities: np.ndarray

    @property
    def median_error_deg(self) -> float:
        return float(np.median(self.errors_deg))

    @property
    def p90_error_deg(self) -> float:
        return float(np.percentile(self.errors_deg, 90))

    @property
    def max_error_deg(self) -> float:
        return float(self.errors_deg.max())


def fig17_localization(cohort_size: int = 5) -> LocalizationResult:
    """Reproduce Figure 17: phone angular error during hand rotation."""
    cohort = get_cohort(cohort_size)
    truth = []
    estimate = []
    for member in cohort:
        truth.append(member.session.truth.probe_angles_deg())
        estimate.append(member.personalization.fusion.fused_angles_deg)
    truth_arr = np.concatenate(truth)
    est_arr = np.concatenate(estimate)
    errors = np.abs(est_arr - truth_arr)
    values, probs = cdf_points(errors)
    return LocalizationResult(
        truth_angles_deg=truth_arr,
        estimated_angles_deg=est_arr,
        errors_deg=errors,
        cdf_values_deg=values,
        cdf_probabilities=probs,
    )
