"""Hardware response figure (paper Figure 16).

Measures the simulated speaker/microphone chain exactly the way the real
system does (co-located flat chirp, Section 4.6) and characterizes the curve
the way the paper describes it: unstable below 50 Hz, reasonably stable over
100 Hz - 10 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE
from repro.simulation.hardware import SpeakerMicResponse
from repro.signals.waveforms import chirp
from repro.core.compensation import estimate_system_response


@dataclass(frozen=True)
class FrequencyResponseResult:
    """Figure 16 output: measured chain response and its stability stats."""

    freqs: np.ndarray
    measured_db: np.ndarray
    true_db: np.ndarray
    low_band_std_db: float  # below 50 Hz: should be wild
    mid_band_std_db: float  # 100 Hz - 10 kHz: should be modest
    measurement_rms_error_db: float  # measured vs true chain, mid band


def fig16_frequency_response(
    fs: int = DEFAULT_SAMPLE_RATE,
    seed: int = 2021,
) -> FrequencyResponseResult:
    """Reproduce Figure 16: the speaker-microphone frequency response."""
    rng = np.random.default_rng(seed)
    hardware = SpeakerMicResponse.typical(rng)

    # The calibration procedure: play a flat wideband sweep through the
    # chain with the mic co-located and estimate the response.
    probe = chirp(30.0, min(20_000.0, 0.45 * fs), 0.5, fs)
    recording = hardware.apply(probe, fs) + rng.normal(0.0, 1e-4, probe.shape[0])
    freqs, gains = estimate_system_response(recording, probe, fs)

    with np.errstate(divide="ignore"):
        measured_db = 20.0 * np.log10(np.maximum(gains, 1e-12))
    true_db = 20.0 * np.log10(np.maximum(hardware.gain_at(freqs), 1e-12))

    low = (freqs >= 10.0) & (freqs < 50.0)
    mid = (freqs >= 100.0) & (freqs <= 10_000.0)
    return FrequencyResponseResult(
        freqs=freqs,
        measured_db=measured_db,
        true_db=true_db,
        low_band_std_db=float(np.std(true_db[low])),
        mid_band_std_db=float(np.std(true_db[mid])),
        measurement_rms_error_db=float(
            np.sqrt(np.mean((measured_db[mid] - true_db[mid]) ** 2))
        ),
    )
