"""Binaural AoA evaluation (paper Figures 21 and 22).

Far-field sources are played from angles across the semicircle at each
cohort member; the AoA estimators run twice per recording — once with the
member's personalized table, once with the global template — reproducing the
paper's comparison:

- Figure 21 (known source): personalized median ~7.8 deg vs global ~45.3
  deg, with 29% front-back confusion for the global template.
- Figure 22 (unknown sources): CDFs for white noise / music / speech plus
  front-back accuracy (~82.8% personalized vs ~59.8% global on average).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE
from repro.simulation.propagation import record_far_field
from repro.signals.waveforms import music_like, probe_chirp, speech_like, white_noise
from repro.core.aoa import (
    KnownSourceAoAEstimator,
    UnknownSourceAoAEstimator,
    front_back_consistent,
)
from repro.eval.common import cdf_points, get_cohort

#: Test angles: off-grid (not multiples of 5) to avoid gifting the
#: estimators exact template matches.
DEFAULT_TEST_ANGLES = tuple(np.arange(7.0, 180.0, 12.0))


@dataclass(frozen=True)
class AoAComparisonResult:
    """Errors of the personalized vs global estimator on one workload."""

    label: str
    truth_deg: np.ndarray
    personalized_deg: np.ndarray
    global_deg: np.ndarray

    @property
    def personalized_errors(self) -> np.ndarray:
        return np.abs(self.personalized_deg - self.truth_deg)

    @property
    def global_errors(self) -> np.ndarray:
        return np.abs(self.global_deg - self.truth_deg)

    @property
    def median_errors(self) -> tuple[float, float]:
        """(personalized, global) median error in degrees."""
        return (
            float(np.median(self.personalized_errors)),
            float(np.median(self.global_errors)),
        )

    @property
    def p80_errors(self) -> tuple[float, float]:
        return (
            float(np.percentile(self.personalized_errors, 80)),
            float(np.percentile(self.global_errors, 80)),
        )

    @property
    def front_back_accuracy(self) -> tuple[float, float]:
        """(personalized, global) fraction of front/back-correct estimates."""
        personal = np.mean(
            [
                front_back_consistent(est, truth)
                for est, truth in zip(self.personalized_deg, self.truth_deg)
            ]
        )
        template = np.mean(
            [
                front_back_consistent(est, truth)
                for est, truth in zip(self.global_deg, self.truth_deg)
            ]
        )
        return float(personal), float(template)

    def cdf(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        """Empirical error CDF for ``which`` in {'personalized', 'global'}."""
        errors = (
            self.personalized_errors if which == "personalized" else self.global_errors
        )
        return cdf_points(errors)


def fig21_aoa_known_source(
    cohort_size: int = 5,
    test_angles_deg: tuple[float, ...] = DEFAULT_TEST_ANGLES,
    fs: int = DEFAULT_SAMPLE_RATE,
) -> AoAComparisonResult:
    """Reproduce Figure 21: known-source AoA, personalized vs global HRTF."""
    cohort = get_cohort(cohort_size)
    chirp = probe_chirp(fs, duration_s=0.05)
    truth, personal, template = [], [], []
    for m_idx, member in enumerate(cohort):
        est_personal = KnownSourceAoAEstimator(member.personalization.table)
        est_global = KnownSourceAoAEstimator(cohort.global_template)
        rng = np.random.default_rng(7_000 + m_idx)
        for theta in test_angles_deg:
            left, right = record_far_field(
                member.subject, float(theta), chirp, fs=fs, rng=rng, noise_std=0.003
            )
            truth.append(float(theta))
            personal.append(est_personal.estimate(left, right, chirp, fs))
            template.append(est_global.estimate(left, right, chirp, fs))
    return AoAComparisonResult(
        label="known source",
        truth_deg=np.asarray(truth),
        personalized_deg=np.asarray(personal),
        global_deg=np.asarray(template),
    )


@dataclass(frozen=True)
class UnknownSourceResult:
    """Figure 22 output: one comparison per signal category."""

    white_noise: AoAComparisonResult
    music: AoAComparisonResult
    speech: AoAComparisonResult

    def categories(self) -> tuple[AoAComparisonResult, ...]:
        return (self.white_noise, self.music, self.speech)

    @property
    def mean_front_back_accuracy(self) -> tuple[float, float]:
        """(personalized, global) front-back accuracy over all categories."""
        pairs = [c.front_back_accuracy for c in self.categories()]
        return (
            float(np.mean([p for p, _ in pairs])),
            float(np.mean([g for _, g in pairs])),
        )


def fig22_aoa_unknown_source(
    cohort_size: int = 5,
    test_angles_deg: tuple[float, ...] = DEFAULT_TEST_ANGLES,
    fs: int = DEFAULT_SAMPLE_RATE,
    signal_duration_s: float = 0.7,
) -> UnknownSourceResult:
    """Reproduce Figure 22: unknown-source AoA for three signal categories."""
    cohort = get_cohort(cohort_size)
    generators = {
        "white noise": white_noise,
        "music": music_like,
        "speech": speech_like,
    }
    results = {}
    for label, generator in generators.items():
        truth, personal, template = [], [], []
        for m_idx, member in enumerate(cohort):
            est_personal = UnknownSourceAoAEstimator(member.personalization.table)
            est_global = UnknownSourceAoAEstimator(cohort.global_template)
            rng = np.random.default_rng(8_000 + m_idx)
            for t_idx, theta in enumerate(test_angles_deg):
                signal = generator(
                    signal_duration_s,
                    fs,
                    rng=np.random.default_rng(97 * t_idx + m_idx),
                )
                left, right = record_far_field(
                    member.subject, float(theta), signal, fs=fs, rng=rng,
                    noise_std=0.003,
                )
                truth.append(float(theta))
                personal.append(est_personal.estimate(left, right, fs))
                template.append(est_global.estimate(left, right, fs))
        results[label] = AoAComparisonResult(
            label=label,
            truth_deg=np.asarray(truth),
            personalized_deg=np.asarray(personal),
            global_deg=np.asarray(template),
        )
    return UnknownSourceResult(
        white_noise=results["white noise"],
        music=results["music"],
        speech=results["speech"],
    )
