"""Open-loop multi-tenant load generation for overload testing.

A closed-loop driver (submit, wait, submit) can never overload a server —
backpressure slows the driver down and the system always looks healthy.
Real fleets are **open-loop**: users upload captures on their own clock,
indifferent to how busy the service is.  This module synthesizes that
traffic deterministically:

- **arrival process** — per-tenant inhomogeneous Poisson, realized by
  thinning: a homogeneous stream at the tenant's peak rate, with each
  point kept with probability ``rate(t) / peak``.  ``rate(t)`` composes
  the tenant's share of the base offered rate, a diurnal sinusoid
  (``diurnal_amplitude``), and seeded burst windows (a tenant-specific
  phase keeps bursts from aligning across tenants — the ``tenant_burst``
  overload everyone fears is several tenants bursting at once, and the
  generator can produce exactly that by raising ``burst_factor``);
- **job population** — arrivals draw cyclically from a PR-8 fleet
  population (:func:`repro.eval.fleet.generate_population`), so the
  overload mix has the same capture-quality strata as the evaluation
  harness.  Each job is stamped with its tenant, the tenant's priority,
  ``params["expected_confidence"]`` (the fleet model's prediction for
  that spec — what value-based shedding ranks on), and
  ``params["service_s"]`` (the simulated execution cost the
  :func:`repro.testing.workloads.loadgen_runner` sleeps for);
- **determinism** — everything is a pure function of ``seed``: same
  seed, same schedule, same jobs, same expected-confidence stamps.  The
  CI overload gate depends on it.

The schedule is a plain tuple of :class:`Arrival` (time offset + job);
``repro.cli serve-sim`` plays it against a wall clock, and tests replay
it instantly with virtual time.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ReproError
from repro.eval.fleet import generate_population, subject_metrics
from repro.serve.job import Job

__all__ = [
    "Arrival",
    "DEFAULT_TENANTS",
    "TenantSpec",
    "generate_arrivals",
    "tenant_mix",
]


@dataclass(frozen=True)
class TenantSpec:
    """One synthetic tenant's traffic contract.

    ``share`` is the tenant's fraction of the base offered rate;
    ``weight`` mirrors the fair-queue weight its quota would carry;
    ``priority`` stamps every job (what value-based shedding ranks
    first); ``burst_factor`` multiplies the rate inside the tenant's
    burst windows (1.0 = no bursts).
    """

    name: str
    share: float = 1.0
    weight: float = 1.0
    priority: int = 0
    burst_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("tenant name must be non-empty")
        if self.share <= 0:
            raise ReproError(f"tenant {self.name!r}: share must be > 0")
        if self.burst_factor < 1.0:
            raise ReproError(
                f"tenant {self.name!r}: burst_factor must be >= 1"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "share": self.share,
            "weight": self.weight,
            "priority": self.priority,
            "burst_factor": self.burst_factor,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TenantSpec":
        return cls(
            name=str(record["name"]),
            share=float(record.get("share", 1.0)),
            weight=float(record.get("weight", 1.0)),
            priority=int(record.get("priority", 0)),
            burst_factor=float(record.get("burst_factor", 1.0)),
        )


#: The default three-tenant mix: a bulk re-personalization backfill, an
#: interactive tier that bursts hard, and a best-effort scavenger class.
#: Deliberately skewed — fair-share scheduling only matters under skew.
DEFAULT_TENANTS: tuple[TenantSpec, ...] = (
    TenantSpec("bulk", share=0.55, weight=1.0, priority=0),
    TenantSpec(
        "interactive", share=0.30, weight=4.0, priority=1, burst_factor=3.0
    ),
    TenantSpec("scavenger", share=0.15, weight=0.5, priority=-1),
)


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission: offset from batch start, and the job."""

    at_s: float
    job: Job


def tenant_mix(results_or_jobs) -> dict[str, int]:
    """Count jobs/results per tenant (works on anything with ``.tenant``
    or falls back to ``"default"``)."""
    mix: dict[str, int] = {}
    for item in results_or_jobs:
        tenant = getattr(item, "tenant", "default")
        mix[tenant] = mix.get(tenant, 0) + 1
    return dict(sorted(mix.items()))


def _tenant_phase(name: str) -> float:
    """Deterministic per-tenant phase in ``[0, 1)`` (decorrelates bursts)."""
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _rate_at(
    t: float,
    base: float,
    tenant: TenantSpec,
    *,
    diurnal_amplitude: float,
    diurnal_period_s: float,
    burst_every_s: float,
    burst_len_s: float,
) -> float:
    """Instantaneous arrival rate for one tenant (jobs/s, >= 0)."""
    phase = _tenant_phase(tenant.name)
    rate = base * tenant.share
    if diurnal_amplitude > 0.0:
        rate *= 1.0 + diurnal_amplitude * math.sin(
            2.0 * math.pi * (t / diurnal_period_s + phase)
        )
    if tenant.burst_factor > 1.0 and burst_every_s > 0.0:
        offset = (t + phase * burst_every_s) % burst_every_s
        if offset < burst_len_s:
            rate *= tenant.burst_factor
    return max(rate, 0.0)


def generate_arrivals(
    rate_per_s: float,
    duration_s: float,
    *,
    seed: int = 0,
    tenants: Sequence[TenantSpec] | None = None,
    pool_subjects: int = 64,
    service_mean_s: float = 0.0,
    diurnal_amplitude: float = 0.4,
    diurnal_period_s: float = 60.0,
    burst_every_s: float = 15.0,
    burst_len_s: float = 3.0,
) -> tuple[Arrival, ...]:
    """Build the deterministic arrival schedule (see module docstring).

    Parameters
    ----------
    rate_per_s:
        Total base offered rate across tenants, before diurnal and burst
        modulation.  Drive this above measured capacity to overload.
    duration_s:
        Schedule length; arrivals cover ``[0, duration_s)``.
    seed:
        Everything — gaps, thinning, service times, population — derives
        from this.
    tenants:
        Traffic mix (default :data:`DEFAULT_TENANTS`).
    pool_subjects:
        Size of the fleet population arrivals cycle through (small pools
        exercise coalescing; large pools exercise cold paths).
    service_mean_s:
        Mean simulated execution cost stamped as ``params["service_s"]``
        (0 stamps nothing — jobs run at runner speed).
    diurnal_amplitude / diurnal_period_s:
        Sinusoidal rate modulation (0 disables).
    burst_every_s / burst_len_s:
        Burst window cadence for tenants with ``burst_factor > 1``.
    """
    if rate_per_s <= 0:
        raise ReproError(f"rate_per_s must be > 0, got {rate_per_s}")
    if duration_s <= 0:
        raise ReproError(f"duration_s must be > 0, got {duration_s}")
    tenants = tuple(tenants if tenants is not None else DEFAULT_TENANTS)
    if not tenants:
        raise ReproError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate tenant names in {names}")

    pool = generate_population(pool_subjects, seed)
    # Precompute the confidence the fleet model predicts for each spec —
    # the signal value-based shedding ranks on.  Pure per-spec, so the
    # stamp is identical however the pool is consumed.
    confidences = [
        float(subject_metrics(job.to_dict())["confidence"]) for job in pool
    ]

    arrivals: list[Arrival] = []
    for tenant in tenants:
        rng = random.Random(f"{seed}:{tenant.name}")
        peak = (
            rate_per_s
            * tenant.share
            * (1.0 + max(diurnal_amplitude, 0.0))
            * tenant.burst_factor
        )
        t = 0.0
        n = 0
        while True:
            t += rng.expovariate(peak)
            if t >= duration_s:
                break
            rate = _rate_at(
                t, rate_per_s, tenant,
                diurnal_amplitude=diurnal_amplitude,
                diurnal_period_s=diurnal_period_s,
                burst_every_s=burst_every_s,
                burst_len_s=burst_len_s,
            )
            if rng.random() * peak > rate:
                continue  # thinned: instantaneous rate below peak
            index = rng.randrange(len(pool))
            template = pool[index]
            params = dict(template.params)
            params["expected_confidence"] = round(confidences[index], 6)
            if service_mean_s > 0.0:
                params["service_s"] = round(
                    service_mean_s * rng.uniform(0.5, 1.5), 6
                )
            job = Job(
                job_id=f"{tenant.name}-{n:05d}",
                subject_seed=template.subject_seed,
                session_seed=template.session_seed,
                probe_interval_s=template.probe_interval_s,
                angle_step_deg=template.angle_step_deg,
                priority=tenant.priority,
                fault=template.fault,
                fault_args=dict(template.fault_args),
                params=params,
                tenant=tenant.name,
            )
            arrivals.append(Arrival(at_s=t, job=job))
            n += 1
    arrivals.sort(key=lambda a: (a.at_s, a.job.tenant, a.job.job_id))
    return tuple(arrivals)
