"""Generate a full experiments report as markdown.

Runs every figure harness and writes one self-contained markdown report —
the machine-generated counterpart of the hand-written ``EXPERIMENTS.md``::

    python -m repro.eval.report report.md            # full (5 volunteers)
    python -m repro.eval.report report.md --quick    # 2 volunteers, faster

Because every harness is seeded, two runs of this module produce identical
reports on any machine.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import trace as obs_trace
from repro.eval.common import format_table
from repro.eval import (
    fig2_pinna_correlation,
    fig5_diffraction_evidence,
    fig9_channel_response,
    fig14_relative_channel,
    fig16_frequency_response,
    fig17_localization,
    fig18_hrir_correlation,
    fig19_volunteers,
    fig20_sample_hrirs,
    fig21_aoa_known_source,
    fig22_aoa_unknown_source,
)


def _section(title: str, body: list[str]) -> list[str]:
    return [f"## {title}", ""] + body + [""]


def _groundwork_sections() -> list[str]:
    lines: list[str] = []
    fig2 = fig2_pinna_correlation()
    lines += _section(
        "Figure 2 — pinna correlation",
        [
            f"- same-user diagonal mean: **{fig2.same_user.diagonal().mean():.2f}**",
            f"- same-user diagonal dominance: **{fig2.diagonal_dominance:.2f}**",
            f"- cross-user same-angle mean: **{fig2.cross_user_diagonal_mean:.2f}**",
        ],
    )
    fig5 = fig5_diffraction_evidence()
    rows = [
        [f"{x:.1f}", float(m), float(d), float(e)]
        for x, m, d, e in zip(
            fig5.mic_positions_cm,
            fig5.measured_delta_d_cm,
            fig5.diffracted_delta_d_cm,
            fig5.euclidean_delta_d_cm,
        )
    ]
    lines += _section(
        "Figure 5 — diffraction evidence",
        [
            "```",
            format_table(["mic x (cm)", "v*dt", "diffracted", "euclidean"], rows),
            "```",
            f"- RMS vs diffracted: **{fig5.rms_error_diffracted_cm:.2f} cm**; "
            f"vs euclidean: **{fig5.rms_error_euclidean_cm:.2f} cm**",
        ],
    )
    return lines


def _system_sections() -> list[str]:
    lines: list[str] = []
    fig9 = fig9_channel_response()
    err_l, err_r = fig9.first_tap_error_samples
    lines += _section(
        "Figure 9 — binaural channel",
        [
            f"- first-tap error: left **{err_l:.1f}**, right **{err_r:.1f}** samples",
            f"- taps detected: left {fig9.n_taps_left}, right {fig9.n_taps_right}",
        ],
    )
    fig14 = fig14_relative_channel()
    lines += _section(
        "Figure 14 — relative channel",
        [
            f"- peaks: **{fig14.n_peaks}** (multipath ambiguity)",
            f"- strongest peak {fig14.strongest_peak_ms:.3f} ms vs true ITD "
            f"{fig14.true_itd_ms:.3f} ms",
        ],
    )
    fig16 = fig16_frequency_response()
    lines += _section(
        "Figure 16 — hardware response",
        [
            f"- std below 50 Hz: **{fig16.low_band_std_db:.1f} dB** (unstable)",
            f"- std 100 Hz-10 kHz: **{fig16.mid_band_std_db:.1f} dB** (stable)",
            f"- calibration RMS error: **{fig16.measurement_rms_error_db:.2f} dB**",
        ],
    )
    return lines


def _results_sections(cohort_size: int) -> list[str]:
    lines: list[str] = []
    fig17 = fig17_localization(cohort_size)
    lines += _section(
        "Figure 17 — phone localization",
        [
            f"- probes: {fig17.errors_deg.shape[0]}",
            f"- median error: **{fig17.median_error_deg:.1f} deg** (paper: 4.8)",
            f"- p90: {fig17.p90_error_deg:.1f} deg; max: {fig17.max_error_deg:.1f} deg",
        ],
    )
    fig18 = fig18_hrir_correlation(cohort_size)
    lines += _section(
        "Figure 18 — HRIR correlation",
        [
            f"- UNIQ: **{fig18.mean_uniq[0]:.2f} / {fig18.mean_uniq[1]:.2f}** "
            "(paper: 0.74 / 0.71)",
            f"- global: **{fig18.mean_global[0]:.2f} / {fig18.mean_global[1]:.2f}** "
            "(paper: 0.41)",
            f"- re-measured ceiling: {fig18.mean_remeasured[0]:.2f} / "
            f"{fig18.mean_remeasured[1]:.2f}",
            f"- improvement: **{fig18.improvement_factor:.2f}x** (paper: ~1.75x)",
        ],
    )
    fig19 = fig19_volunteers(cohort_size)
    rows = [
        [name, float(ul), float(gl), float(ur), float(gr), f"{gain:.2f}x"]
        for name, ul, gl, ur, gr, gain in zip(
            fig19.names,
            fig19.uniq_left,
            fig19.global_left,
            fig19.uniq_right,
            fig19.global_right,
            fig19.per_volunteer_gain,
        )
    ]
    lines += _section(
        "Figure 19 — per-volunteer gains",
        ["```",
         format_table(["volunteer", "UNIQ L", "glob L", "UNIQ R", "glob R", "gain"],
                      rows),
         "```"],
    )
    fig20 = fig20_sample_hrirs(cohort_size)
    lines += _section(
        "Figure 20 — example HRIRs",
        [
            f"- best: {fig20.best.uniq_correlation:.2f} "
            f"(global {fig20.best.global_correlation:.2f})",
            f"- average: {fig20.average.uniq_correlation:.2f} "
            f"(global {fig20.average.global_correlation:.2f})",
            f"- worst: {fig20.worst.uniq_correlation:.2f} "
            f"(global {fig20.worst.global_correlation:.2f})",
        ],
    )
    fig21 = fig21_aoa_known_source(cohort_size)
    med_p, med_g = fig21.median_errors
    fb_p, fb_g = fig21.front_back_accuracy
    lines += _section(
        "Figure 21 — known-source AoA",
        [
            f"- median error: personalized **{med_p:.1f} deg** vs global "
            f"**{med_g:.1f} deg** (paper: 7.8 vs 45.3)",
            f"- front-back accuracy: {fb_p:.0%} vs {fb_g:.0%} (paper global: 71%)",
            f"- global p80: {np.percentile(fig21.global_errors, 80):.0f} deg",
        ],
    )
    fig22 = fig22_aoa_unknown_source(cohort_size)
    rows = []
    for comparison in fig22.categories():
        med_personal, med_global = comparison.median_errors
        fb_personal, fb_global = comparison.front_back_accuracy
        rows.append(
            [
                comparison.label,
                med_personal,
                med_global,
                f"{fb_personal:.0%}",
                f"{fb_global:.0%}",
            ]
        )
    fb_personal, fb_global = fig22.mean_front_back_accuracy
    lines += _section(
        "Figure 22 — unknown-source AoA",
        [
            "```",
            format_table(["signal", "med P", "med G", "fb P", "fb G"], rows),
            "```",
            f"- mean front-back: **{fb_personal:.0%}** vs **{fb_global:.0%}** "
            "(paper: 82.8% vs 59.8%)",
        ],
    )
    return lines


def _quality_section() -> list[str]:
    """Quality gating demo: one clean and one degraded seeded run."""
    from repro.core.pipeline import personalize_capture
    from repro.testing.faults import apply_fault

    session, clean = personalize_capture(
        1, 0, probe_interval_s=0.6, angle_step_deg=15.0
    )
    degraded_session = apply_fault(session, "dropout", keep_every=3)
    _, degraded = personalize_capture(
        1, 0, angle_step_deg=15.0, session=degraded_session
    )

    def table(result) -> list[str]:
        rows = ["| stage | score | flags |", "|---|---|---|"]
        for stage, score, flags in result.quality.stage_table():
            rows.append(f"| {stage} | {score:.3f} | {flags} |")
        return rows

    body = [
        "Every personalization carries a `QualityReport` (docs/ROBUSTNESS.md):",
        "per-stage sentinel scores multiplied into one confidence scalar.",
        "A clean seeded capture and the same capture with 2/3 of its probes",
        "dropped:",
        "",
        f"Clean capture — confidence {clean.quality.confidence:.3f}:",
        "",
        *table(clean),
        "",
        f"Probe dropout — confidence {degraded.quality.confidence:.3f}:",
        "",
        *table(degraded),
    ]
    return _section("Quality gating", body)


def _timing_section(root, snapshot) -> list[str]:
    """The observability tail: span tree + pipeline counters for the run."""
    body = [
        "Wall-clock span tree of the full report run (numbers differ across",
        "machines; the *shape* should not):",
        "",
        "```",
        obs_report.render_span_tree(root),
        "```",
        "",
        "Pipeline metrics accumulated while generating the report:",
        "",
        "```",
        obs_report.render_metrics(snapshot),
        "```",
    ]
    return _section("Timing and pipeline metrics", body)


def generate_report(cohort_size: int = 5, include_timing: bool = False) -> str:
    """Run every harness and return the markdown report text.

    ``include_timing`` appends the span tree and metrics snapshot of this
    very run.  It is off by default because wall-clock numbers differ
    between runs, and the bare report is promised to be bit-reproducible.
    """
    if include_timing:
        obs_metrics.registry().reset()
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    lines = [
        "# UNIQ reproduction — generated experiments report",
        "",
        f"Generated {stamp}; cohort of {cohort_size} virtual volunteers; "
        "all harnesses seeded (bit-reproducible).",
        "",
    ]
    with obs_trace.capturing():
        with obs_trace.span("eval.report", cohort_size=cohort_size) as root:
            with obs_trace.span("eval.groundwork"):
                groundwork = _groundwork_sections()
            with obs_trace.span("eval.system"):
                system = _system_sections()
            with obs_trace.span("eval.results"):
                results = _results_sections(cohort_size)
            with obs_trace.span("eval.quality"):
                quality = _quality_section()
    lines += groundwork
    lines += system
    lines += results
    lines += quality
    if include_timing:
        lines += _timing_section(root, obs_metrics.registry().snapshot())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.report",
        description="Run every experiment harness and write a markdown report.",
    )
    parser.add_argument("output", help="output markdown path")
    parser.add_argument(
        "--quick", action="store_true",
        help="use a 2-volunteer cohort (faster, noisier numbers)",
    )
    parser.add_argument(
        "--no-timing", action="store_true",
        help="omit the (non-deterministic) timing and metrics section",
    )
    args = parser.parse_args(argv)
    report = generate_report(
        cohort_size=2 if args.quick else 5,
        include_timing=not args.no_timing,
    )
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
