"""Shared evaluation infrastructure: the volunteer cohort and references.

Personalizing one subject takes several seconds, and most figures need the
same 5 personalized volunteers, so :func:`get_cohort` memoizes the whole
cohort (subjects, sessions, UNIQ results, reference tables) per process.
Everything is seeded; two processes produce identical cohorts.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.hrtf.hrir import BinauralIR
from repro.hrtf.reference import ground_truth_table, global_template_table
from repro.hrtf.table import HRTFTable
from repro.simulation.person import VirtualSubject
from repro.simulation.population import make_population
from repro.simulation.propagation import record_far_field
from repro.simulation.session import MeasurementSession, SessionData
from repro.serve.pool import WorkerPool
from repro.signals.channel import estimate_channel, first_tap_index, truncate_after
from repro.signals.waveforms import probe_chirp
from repro.core.pipeline import PersonalizationResult, Uniq, UniqConfig
from repro.obs.logging import get_logger, kv

_log = get_logger("eval.common")

#: The evaluation angle grid: every 5 degrees over the measured semicircle.
EVAL_ANGLES = tuple(float(a) for a in range(0, 181, 5))

#: The cohort size the paper evaluates (5 volunteers).
DEFAULT_COHORT_SIZE = 5


@dataclass(frozen=True)
class CohortMember:
    """One volunteer: subject, capture session, UNIQ result, ground truth."""

    subject: VirtualSubject
    session: SessionData
    personalization: PersonalizationResult
    ground_truth: HRTFTable

    @property
    def name(self) -> str:
        return self.subject.name


@dataclass(frozen=True)
class Cohort:
    """The shared evaluation cohort plus the global-template baseline."""

    members: tuple[CohortMember, ...]
    global_template: HRTFTable
    angles_deg: np.ndarray

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)


def _build_member(
    args: tuple[int, VirtualSubject, float, int],
) -> CohortMember:
    """Build one fully seeded cohort member (top-level so it pickles).

    Everything downstream of the ``(seed, subject)`` pair is deterministic,
    so the same index produces a bit-identical member in any process.
    """
    i, subject, probe_interval_s, fs = args
    angles = np.asarray(EVAL_ANGLES)
    session = MeasurementSession(
        subject, seed=9_000 + i, fs=fs, probe_interval_s=probe_interval_s
    ).run()
    uniq = Uniq(UniqConfig(angle_grid_deg=EVAL_ANGLES))
    return CohortMember(
        subject=subject,
        session=session,
        personalization=uniq.personalize(session),
        ground_truth=ground_truth_table(subject, angles, fs),
    )


def _cohort_workers(requested: int | None, n: int) -> int:
    """Resolve the worker count: argument beats env beats cpu count.

    ``REPRO_COHORT_WORKERS=1`` (or ``0``) forces the serial path — the
    opt-out for single-core CI boxes where process spawning only adds
    overhead.  A non-integer value (``auto``, a typo) warns and falls back
    to the cpu-count default instead of failing the whole evaluation over
    a tuning knob.
    """
    if requested is None:
        env = os.environ.get("REPRO_COHORT_WORKERS", "").strip()
        requested = os.cpu_count() or 1
        if env:
            try:
                requested = int(env)
            except ValueError:
                obs_metrics.counter("cohort.workers_env_invalid").inc()
                _log.warning(
                    kv(
                        "cohort.workers_env_invalid",
                        value=env,
                        fallback=requested,
                    )
                )
    return max(1, min(int(requested), n))


@functools.lru_cache(maxsize=4)
def get_cohort(
    n: int = DEFAULT_COHORT_SIZE,
    probe_interval_s: float = 0.4,
    fs: int = DEFAULT_SAMPLE_RATE,
    workers: int | None = None,
) -> Cohort:
    """Build (once per process) the personalized volunteer cohort.

    Members are independent seeded pipelines, so with ``workers > 1`` they
    are personalized in parallel processes; results are bit-identical to
    the serial path (the test suite asserts this).  ``workers=None``
    consults ``REPRO_COHORT_WORKERS`` then the machine's cpu count.
    """
    angles = np.asarray(EVAL_ANGLES)
    subjects = make_population(n)
    n_workers = _cohort_workers(workers, n)
    jobs = [
        (i, subject, probe_interval_s, fs)
        for i, subject in enumerate(subjects)
    ]
    start = time.perf_counter()
    with obs_trace.span("eval.get_cohort", n=n, workers=n_workers):
        # The serve-layer WorkerPool: fork context (children inherit this
        # process's warm DelayMap cache), crash retry, and inline execution
        # when n_workers == 1 — one pool implementation shared with
        # repro.serve.BatchServer, one set of crash/retry semantics.
        with WorkerPool(n_workers, inline=(n_workers == 1)) as pool:
            members = pool.map(_build_member, jobs)
    obs_metrics.counter("cohort.members_built").inc(len(members))
    obs_metrics.gauge("cohort.workers").set(float(n_workers))
    obs_metrics.gauge("cohort.build_s").set(time.perf_counter() - start)
    return Cohort(
        members=tuple(members),
        global_template=global_template_table(angles, fs),
        angles_deg=angles,
    )


def measured_ground_truth_table(
    subject: VirtualSubject,
    angles_deg: np.ndarray,
    fs: int = DEFAULT_SAMPLE_RATE,
    seed: int = 0,
    noise_std: float = 0.003,
) -> HRTFTable:
    """A *re-measured* ground truth: the paper's upper-bound reference.

    Figure 18 includes the cross-correlation between two separate
    measurements of the ground-truth HRIR as the achievable ceiling.  This
    simulates the anechoic-lab procedure — play a chirp from each angle in
    the far field, deconvolve, window — including measurement noise, so the
    result is high but not exactly 1.
    """
    rng = np.random.default_rng(seed)
    chirp = probe_chirp(fs, duration_s=0.05)
    angles = np.asarray(angles_deg, dtype=float)
    n_hrir = ground_truth_table(subject, angles[:2], fs).far[0].n_samples
    entries = []
    for angle in angles:
        left, right = record_far_field(
            subject, float(angle), chirp, fs=fs, rng=rng, noise_std=noise_std
        )
        pair = []
        for recording in (left, right):
            channel = estimate_channel(recording, chirp, n_hrir * 2)
            tap = first_tap_index(channel)
            channel = truncate_after(channel, tap + n_hrir)
            pair.append(channel[:n_hrir])
        entries.append(BinauralIR(left=pair[0], right=pair[1], fs=fs))
    # The lab ceiling experiment is far-field only; reuse entries for "near"
    # to satisfy the table schema (comparisons only read the far field).
    return HRTFTable(angles_deg=angles, near=tuple(entries), far=tuple(entries))


def cdf_points(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(sorted values, cumulative probability)``."""
    values = np.sort(np.asarray(values, dtype=float))
    return values, np.arange(1, values.shape[0] + 1) / values.shape[0]


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table used by the benchmark scripts' printed reports."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
