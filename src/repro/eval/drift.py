"""Distribution-drift detection over pinned fleet digests.

The fleet harness (:mod:`repro.eval.fleet`) reduces every per-stratum metric
distribution to a **digest** — ``count``, ``mean``, ``std``, and the pinned
quantiles p5/p25/p50/p75/p95.  This module compares a freshly computed
digest against a committed baseline within per-metric tolerance bands and,
when something moved, classifies *how* it moved:

``shift``
    The bulk of the distribution moved: the mean is out of tolerance and
    every out-of-tolerance statistic moved in the same direction.  The
    canonical cause is a systematic bias (e.g. a head-geometry regression
    affecting a slice of the population).
``spread``
    The distribution widened or narrowed: the std is out of tolerance while
    the mean stayed put (a noisier — or suspiciously quieter — pipeline).
``tail``
    Only the extreme quantiles (p5/p95) moved: the typical user is fine but
    outliers got worse (or better) — exactly the regression a mean-only
    check never sees.
``mixed``
    Out-of-tolerance movement matching none of the clean shapes (e.g.
    quantiles moving in opposite directions with a stable mean/std).

Every violation renders into a readable diff table
(:func:`render_drift_table`, built on :func:`repro.textplot.table`) so a CI
failure states which stratum, which metric, which statistic, and by how
much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.textplot import table

__all__ = [
    "DEFAULT_TOLERANCES",
    "DriftFinding",
    "QUANTILE_FIELDS",
    "classify_drift",
    "compare_digests",
    "render_drift_table",
]

#: The pinned quantile fields every digest carries.
QUANTILE_FIELDS = ("p5", "p25", "p50", "p75", "p95")

#: Per-metric tolerance bands: ``mean``/``std``/``quantile`` are absolute
#: deltas a digest statistic may move before it counts as drift.  Rate
#: metrics carry only a mean.  Bands sit well above cross-platform float
#: noise (the harness is deterministic to the bit on one platform) and
#: below the smallest regression worth waking a human for — see
#: docs/TESTING.md, "Fleet tier & distribution digests".
DEFAULT_TOLERANCES: dict[str, dict[str, float]] = {
    "error_deg": {"mean": 0.15, "std": 0.25, "quantile": 0.5},
    "confidence": {"mean": 0.01, "std": 0.02, "quantile": 0.02},
    "latency_ms": {"mean": 10.0, "std": 15.0, "quantile": 25.0},
    "salvage_rate": {"mean": 0.02},
    "retry_rate": {"mean": 0.02},
    "failure_rate": {"mean": 0.005},
}


@dataclass(frozen=True)
class DriftFinding:
    """One metric distribution that left its tolerance band."""

    stratum: str
    metric: str
    classification: str
    #: ``field -> (baseline, actual, delta, tolerance)`` for every
    #: out-of-tolerance statistic.
    violations: Mapping[str, tuple[float, float, float, float]] = field(
        default_factory=dict
    )

    def describe(self) -> str:
        moved = ", ".join(
            f"{name} {delta:+.3g} (tol {tol:g})"
            for name, (_, _, delta, tol) in self.violations.items()
        )
        return (
            f"{self.stratum}/{self.metric}: {self.classification} drift — {moved}"
        )


def _tolerance(metric: str, statistic: str, tolerances: Mapping[str, Any]) -> float:
    band = tolerances.get(metric, {})
    if statistic in QUANTILE_FIELDS:
        return float(band.get(statistic, band.get("quantile", float("inf"))))
    return float(band.get(statistic, float("inf")))


def classify_drift(
    expected: Mapping[str, float],
    actual: Mapping[str, float],
    metric: str,
    tolerances: Mapping[str, Any] | None = None,
    stratum: str = "",
) -> DriftFinding | None:
    """Compare one metric digest; ``None`` when everything is in band.

    Classification precedence (first match wins): a sign-consistent
    out-of-tolerance mean is a ``shift``; otherwise an out-of-tolerance std
    is a ``spread``; otherwise movement confined to p5/p95 is ``tail``;
    anything else is ``mixed``.
    """
    tol = tolerances if tolerances is not None else DEFAULT_TOLERANCES
    violations: dict[str, tuple[float, float, float, float]] = {}
    for name in ("mean", "std", *QUANTILE_FIELDS):
        if name not in expected or name not in actual:
            continue
        want, got = float(expected[name]), float(actual[name])
        limit = _tolerance(metric, name, tol)
        delta = got - want
        if abs(delta) > limit:
            violations[name] = (want, got, delta, limit)
    if not violations:
        return None
    deltas = {name: v[2] for name, v in violations.items()}
    signs = {delta > 0 for delta in deltas.values()}
    if "mean" in violations and len(signs) == 1:
        classification = "shift"
    elif "std" in violations and "mean" not in violations:
        classification = "spread"
    elif "mean" not in violations and "std" not in violations and set(
        deltas
    ) <= {"p5", "p95"}:
        classification = "tail"
    else:
        classification = "mixed"
    return DriftFinding(
        stratum=stratum,
        metric=metric,
        classification=classification,
        violations=violations,
    )


def compare_digests(
    expected: Mapping[str, Mapping[str, Mapping[str, float]]],
    actual: Mapping[str, Mapping[str, Mapping[str, float]]],
    tolerances: Mapping[str, Any] | None = None,
) -> tuple[list[str], list[DriftFinding]]:
    """Compare nested ``stratum -> metric -> digest`` mappings.

    Returns ``(violations, findings)``: human-readable violation strings
    (including structural mismatches — a stratum or metric present on one
    side only is itself a violation, never silently skipped) and the typed
    drift findings behind them.
    """
    violations: list[str] = []
    findings: list[DriftFinding] = []
    for stratum in sorted(set(expected) - set(actual)):
        violations.append(
            f"{stratum}: stratum in the baseline but missing from the run"
        )
    for stratum in sorted(set(actual) - set(expected)):
        violations.append(
            f"{stratum}: stratum not in the baseline — regenerate it "
            f"(fleet regen-baseline) to pin the new stratum"
        )
    for stratum in sorted(set(expected) & set(actual)):
        want_metrics, got_metrics = expected[stratum], actual[stratum]
        for metric in sorted(set(want_metrics) - set(got_metrics)):
            violations.append(
                f"{stratum}/{metric}: metric in the baseline but missing "
                f"from the run"
            )
        for metric in sorted(set(got_metrics) - set(want_metrics)):
            violations.append(
                f"{stratum}/{metric}: metric not in the baseline — "
                f"regenerate it to pin the new metric"
            )
        for metric in sorted(set(want_metrics) & set(got_metrics)):
            want, got = want_metrics[metric], got_metrics[metric]
            if int(want.get("count", 0)) != int(got.get("count", 0)):
                violations.append(
                    f"{stratum}/{metric}: count {got.get('count')} != "
                    f"baseline {want.get('count')} — population config drift"
                )
            finding = classify_drift(
                want, got, metric, tolerances=tolerances, stratum=stratum
            )
            if finding is not None:
                findings.append(finding)
                violations.append(finding.describe())
    return violations, findings


def render_drift_table(findings: list[DriftFinding]) -> str:
    """The readable diff table a failing ``fleet compare`` prints."""
    if not findings:
        return "no drift findings"
    rows = []
    for finding in findings:
        first = True
        for name, (want, got, delta, tol) in finding.violations.items():
            rows.append(
                [
                    finding.stratum if first else "",
                    finding.metric if first else "",
                    finding.classification if first else "",
                    name,
                    f"{want:.4g}",
                    f"{got:.4g}",
                    f"{delta:+.4g}",
                    f"{tol:g}",
                ]
            )
            first = False
    return table(
        ["stratum", "metric", "class", "stat", "baseline", "actual",
         "delta", "tol"],
        rows,
        aligns=["l", "l", "l", "l", "r", "r", "r", "r"],
    )
