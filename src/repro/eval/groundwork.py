"""Section 2 groundwork experiments (paper Figures 2 and 5).

These establish the physical premises of personalization:

- **Figure 2**: the pinna's impulse response is (a) angle-selective within a
  person (diagonal correlation matrix) and (b) dissimilar across people.
- **Figure 5**: the time-difference-of-arrival between a reference ear mic
  and a test mic moved along the face matches the *diffracted* path length,
  not the straight (through-the-head) Euclidean distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE, SPEED_OF_SOUND
from repro.geometry.head import Ear
from repro.geometry.paths import path_to_boundary_point
from repro.geometry.vec import polar_to_cartesian
from repro.simulation.person import VirtualSubject
from repro.simulation.propagation import (
    record_at_boundary_point,
    record_near_field,
)
from repro.signals.channel import estimate_channel, first_tap_index, refine_tap_position
from repro.signals.correlation import align_to_first_tap, max_normalized_correlation
from repro.signals.waveforms import probe_chirp


@dataclass(frozen=True)
class PinnaCorrelationResult:
    """Figure 2 output: same-user and cross-user correlation matrices."""

    angles_deg: np.ndarray
    same_user: np.ndarray  # (n, n) correlation, user A vs user A
    cross_user: np.ndarray  # (n, n) correlation, user A vs user B

    @property
    def diagonal_dominance(self) -> float:
        """Mean(diagonal) - mean(off-diagonal) of the same-user matrix."""
        n = self.same_user.shape[0]
        mask = ~np.eye(n, dtype=bool)
        return float(self.same_user.diagonal().mean() - self.same_user[mask].mean())

    @property
    def cross_user_diagonal_mean(self) -> float:
        """Mean same-angle correlation across the two users."""
        return float(self.cross_user.diagonal().mean())


def _left_ear_responses(
    subject: VirtualSubject,
    angles_deg: np.ndarray,
    fs: int,
    seed: int,
    radius_m: float = 0.8,
) -> list[np.ndarray]:
    """Left in-ear recordings of chirps played around the left semicircle.

    Mirrors the paper's setup: speaker on the user's left so the head does
    not occlude the path and only the pinna shapes the response.
    """
    rng = np.random.default_rng(seed)
    chirp = probe_chirp(fs)
    n_hrir = int(0.003 * fs)
    responses = []
    for angle in angles_deg:
        position = polar_to_cartesian(radius_m, float(angle))
        left, _ = record_near_field(
            subject, position, chirp, fs=fs, rng=rng, noise_std=0.002, room=None
        )
        channel = estimate_channel(left, chirp, int(0.01 * fs))
        responses.append(align_to_first_tap(channel, n_hrir))
    return responses


def fig2_pinna_correlation(
    fs: int = DEFAULT_SAMPLE_RATE,
    angle_step_deg: float = 10.0,
    subject_a_seed: int = 21,
    subject_b_seed: int = 22,
) -> PinnaCorrelationResult:
    """Reproduce Figure 2: pinna response correlation matrices."""
    angles = np.arange(0.0, 180.1, angle_step_deg)
    subject_a = VirtualSubject.random(subject_a_seed, name="alice")
    subject_b = VirtualSubject.random(subject_b_seed, name="bob")
    responses_a = _left_ear_responses(subject_a, angles, fs, seed=1)
    responses_a2 = _left_ear_responses(subject_a, angles, fs, seed=2)
    responses_b = _left_ear_responses(subject_b, angles, fs, seed=3)

    n = angles.shape[0]
    same = np.zeros((n, n))
    cross = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            same[i, j] = max_normalized_correlation(responses_a[i], responses_a2[j])
            cross[i, j] = max_normalized_correlation(responses_a[i], responses_b[j])
    return PinnaCorrelationResult(angles_deg=angles, same_user=same, cross_user=cross)


@dataclass(frozen=True)
class DiffractionEvidenceResult:
    """Figure 5 output: acoustic TDoA vs the two geometric hypotheses."""

    mic_positions_cm: np.ndarray  # horizontal offset of the test mic
    measured_delta_d_cm: np.ndarray  # v * dt from audio
    diffracted_delta_d_cm: np.ndarray
    euclidean_delta_d_cm: np.ndarray

    @property
    def rms_error_diffracted_cm(self) -> float:
        return float(
            np.sqrt(np.mean((self.measured_delta_d_cm - self.diffracted_delta_d_cm) ** 2))
        )

    @property
    def rms_error_euclidean_cm(self) -> float:
        return float(
            np.sqrt(np.mean((self.measured_delta_d_cm - self.euclidean_delta_d_cm) ** 2))
        )


def fig5_diffraction_evidence(
    fs: int = DEFAULT_SAMPLE_RATE,
    n_mic_positions: int = 6,
    subject_seed: int = 21,
) -> DiffractionEvidenceResult:
    """Reproduce Figure 5: does sound wrap around the face or cut through?

    A speaker sits to the subject's right; the reference microphone is the
    right ear; the test microphone is pasted at positions from the nose tip
    toward the left ear.  The acoustically measured path difference
    ``v * dt`` is compared against the diffracted and Euclidean predictions.
    """
    subject = VirtualSubject.random(subject_seed, name="alice")
    head = subject.head
    rng = np.random.default_rng(7)
    chirp = probe_chirp(fs)
    # Speaker on the right side, slightly forward (the paper's Figure 4).
    speaker = polar_to_cartesian(0.8, -60.0)

    boundary = head.boundary
    nose_index = 0
    left_ear_index = head.ear_index(Ear.LEFT)
    mic_indices = np.linspace(nose_index, left_ear_index, n_mic_positions).astype(int)

    reference_rec = record_at_boundary_point(
        subject, speaker, head.ear_index(Ear.RIGHT), chirp, fs, rng, noise_std=0.002
    )
    ref_channel = estimate_channel(reference_rec, chirp, int(0.02 * fs))
    t_ref = refine_tap_position(ref_channel, first_tap_index(ref_channel)) / fs
    ref_path = path_to_boundary_point(head, speaker, head.ear_index(Ear.RIGHT))

    positions_cm = []
    measured = []
    diffracted = []
    euclidean = []
    for index in mic_indices:
        recording = record_at_boundary_point(
            subject, speaker, int(index), chirp, fs, rng, noise_std=0.002
        )
        channel = estimate_channel(recording, chirp, int(0.02 * fs))
        t_test = refine_tap_position(channel, first_tap_index(channel)) / fs
        measured.append((t_test - t_ref) * SPEED_OF_SOUND * 100.0)

        test_path = path_to_boundary_point(head, speaker, int(index))
        diffracted.append((test_path.length - ref_path.length) * 100.0)
        test_point = boundary.points[int(index)]
        euclid = np.linalg.norm(speaker - test_point) - np.linalg.norm(
            speaker - head.ear_position(Ear.RIGHT)
        )
        euclidean.append(euclid * 100.0)
        positions_cm.append(float(test_point[0]) * 100.0)

    return DiffractionEvidenceResult(
        mic_positions_cm=np.asarray(positions_cm),
        measured_delta_d_cm=np.asarray(measured),
        diffracted_delta_d_cm=np.asarray(diffracted),
        euclidean_delta_d_cm=np.asarray(euclidean),
    )
