"""Experiment harnesses: one entry point per paper table/figure.

Each ``fig*`` function runs the full experiment behind the corresponding
figure of the paper and returns a structured result; the scripts under
``benchmarks/`` are thin wrappers that time these harnesses and print the
same rows/series the paper reports.  The cohort (5 virtual volunteers, their
measurement sessions, and their personalization results) is computed once
per process and shared across experiments via :mod:`repro.eval.common`.
"""

from repro.eval.common import CohortMember, get_cohort, measured_ground_truth_table
from repro.eval.groundwork import fig2_pinna_correlation, fig5_diffraction_evidence
from repro.eval.channels import fig9_channel_response, fig14_relative_channel
from repro.eval.hardware import fig16_frequency_response
from repro.eval.localization import fig17_localization
from repro.eval.hrtf_quality import (
    fig18_hrir_correlation,
    fig19_volunteers,
    fig20_sample_hrirs,
)
from repro.eval.aoa import fig21_aoa_known_source, fig22_aoa_unknown_source
from repro.eval.ablations import (
    ablation_sensor_fusion,
    ablation_diffraction_model,
    ablation_near_far_conversion,
    ablation_measurement_density,
)
from repro.eval.sketch import QuantileSketch
from repro.eval.drift import (
    DriftFinding,
    classify_drift,
    compare_digests,
    render_drift_table,
)
from repro.eval.fleet import (
    DEFAULT_STRATA,
    FleetReport,
    Stratum,
    compare_reports,
    generate_population,
    run_fleet,
    subject_metrics,
)

__all__ = [
    "CohortMember",
    "get_cohort",
    "measured_ground_truth_table",
    "fig2_pinna_correlation",
    "fig5_diffraction_evidence",
    "fig9_channel_response",
    "fig14_relative_channel",
    "fig16_frequency_response",
    "fig17_localization",
    "fig18_hrir_correlation",
    "fig19_volunteers",
    "fig20_sample_hrirs",
    "fig21_aoa_known_source",
    "fig22_aoa_unknown_source",
    "ablation_sensor_fusion",
    "ablation_diffraction_model",
    "ablation_near_far_conversion",
    "ablation_measurement_density",
    "QuantileSketch",
    "DriftFinding",
    "classify_drift",
    "compare_digests",
    "render_drift_table",
    "DEFAULT_STRATA",
    "FleetReport",
    "Stratum",
    "compare_reports",
    "generate_population",
    "run_fleet",
    "subject_metrics",
]
