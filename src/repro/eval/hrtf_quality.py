"""Personalized HRTF quality (paper Figures 18, 19, 20).

The paper's success metric: cross-correlate the estimated HRIR against the
per-subject ground truth, per angle and per ear, and compare against

- the **global template** (lower bound: what products ship today), and
- a **re-measurement of the ground truth** (upper bound: lab repeatability).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hrtf.metrics import hrir_correlation, table_correlations
from repro.eval.common import get_cohort, measured_ground_truth_table


@dataclass(frozen=True)
class HrirCorrelationResult:
    """Figure 18 output: per-angle correlation curves (cohort means)."""

    angles_deg: np.ndarray
    uniq_left: np.ndarray
    uniq_right: np.ndarray
    global_left: np.ndarray
    global_right: np.ndarray
    remeasured_left: np.ndarray
    remeasured_right: np.ndarray

    @property
    def mean_uniq(self) -> tuple[float, float]:
        return float(self.uniq_left.mean()), float(self.uniq_right.mean())

    @property
    def mean_global(self) -> tuple[float, float]:
        return float(self.global_left.mean()), float(self.global_right.mean())

    @property
    def mean_remeasured(self) -> tuple[float, float]:
        return (
            float(self.remeasured_left.mean()),
            float(self.remeasured_right.mean()),
        )

    @property
    def improvement_factor(self) -> float:
        """How much closer to truth UNIQ is than the global template."""
        uniq = sum(self.mean_uniq) / 2
        template = sum(self.mean_global) / 2
        return uniq / template


def fig18_hrir_correlation(cohort_size: int = 5) -> HrirCorrelationResult:
    """Reproduce Figure 18: correlation-vs-angle for UNIQ/global/re-measured."""
    cohort = get_cohort(cohort_size)
    curves = {key: [] for key in ("ul", "ur", "gl", "gr", "rl", "rr")}
    for i, member in enumerate(cohort):
        _, u_left, u_right = table_correlations(
            member.personalization.table, member.ground_truth
        )
        _, g_left, g_right = table_correlations(
            cohort.global_template, member.ground_truth
        )
        remeasured = measured_ground_truth_table(
            member.subject, cohort.angles_deg, seed=500 + i
        )
        _, r_left, r_right = table_correlations(remeasured, member.ground_truth)
        for key, curve in zip(
            ("ul", "ur", "gl", "gr", "rl", "rr"),
            (u_left, u_right, g_left, g_right, r_left, r_right),
        ):
            curves[key].append(curve)
    mean = {key: np.mean(np.vstack(stack), axis=0) for key, stack in curves.items()}
    return HrirCorrelationResult(
        angles_deg=cohort.angles_deg.copy(),
        uniq_left=mean["ul"],
        uniq_right=mean["ur"],
        global_left=mean["gl"],
        global_right=mean["gr"],
        remeasured_left=mean["rl"],
        remeasured_right=mean["rr"],
    )


@dataclass(frozen=True)
class VolunteerResult:
    """Figure 19 output: per-volunteer mean correlations."""

    names: tuple[str, ...]
    uniq_left: np.ndarray
    uniq_right: np.ndarray
    global_left: np.ndarray
    global_right: np.ndarray

    @property
    def per_volunteer_gain(self) -> np.ndarray:
        """UNIQ-over-global factor per volunteer (both ears pooled)."""
        uniq = 0.5 * (self.uniq_left + self.uniq_right)
        template = 0.5 * (self.global_left + self.global_right)
        return uniq / template


def fig19_volunteers(cohort_size: int = 5) -> VolunteerResult:
    """Reproduce Figure 19: personalization gain for every volunteer."""
    cohort = get_cohort(cohort_size)
    rows = {key: [] for key in ("ul", "ur", "gl", "gr")}
    names = []
    for member in cohort:
        names.append(member.name)
        _, u_left, u_right = table_correlations(
            member.personalization.table, member.ground_truth
        )
        _, g_left, g_right = table_correlations(
            cohort.global_template, member.ground_truth
        )
        rows["ul"].append(u_left.mean())
        rows["ur"].append(u_right.mean())
        rows["gl"].append(g_left.mean())
        rows["gr"].append(g_right.mean())
    return VolunteerResult(
        names=tuple(names),
        uniq_left=np.asarray(rows["ul"]),
        uniq_right=np.asarray(rows["ur"]),
        global_left=np.asarray(rows["gl"]),
        global_right=np.asarray(rows["gr"]),
    )


@dataclass(frozen=True)
class SampleHrirCase:
    """One Figure 20 panel: an example HRIR with its correlations."""

    label: str
    angle_deg: float
    subject_name: str
    uniq_hrir: np.ndarray
    truth_hrir: np.ndarray
    global_hrir: np.ndarray
    uniq_correlation: float
    global_correlation: float


@dataclass(frozen=True)
class SampleHrirsResult:
    """Figure 20 output: best / average / worst estimated HRIRs."""

    best: SampleHrirCase
    average: SampleHrirCase
    worst: SampleHrirCase


def fig20_sample_hrirs(cohort_size: int = 5) -> SampleHrirsResult:
    """Reproduce Figure 20: zoom into raw best/average/worst HRIRs."""
    cohort = get_cohort(cohort_size)
    cases = []
    for member in cohort:
        table = member.personalization.table
        for i, angle in enumerate(table.angles_deg):
            estimate = table.far[i]
            truth = member.ground_truth.far[i]
            template = cohort.global_template.far[i]
            c_uniq = float(np.mean(hrir_correlation(estimate, truth)))
            c_global = float(np.mean(hrir_correlation(template, truth)))
            cases.append(
                (c_uniq, c_global, float(angle), member.name, estimate, truth, template)
            )
    cases.sort(key=lambda case: case[0])

    def make(label: str, case) -> SampleHrirCase:
        c_uniq, c_global, angle, name, estimate, truth, template = case
        n = truth.n_samples
        return SampleHrirCase(
            label=label,
            angle_deg=angle,
            subject_name=name,
            uniq_hrir=estimate.aligned(n).left,
            truth_hrir=truth.aligned(n).left,
            global_hrir=template.aligned(n).left,
            uniq_correlation=c_uniq,
            global_correlation=c_global,
        )

    return SampleHrirsResult(
        best=make("best", cases[-1]),
        average=make("average", cases[len(cases) // 2]),
        worst=make("worst", cases[0]),
    )
