"""Fleet-scale evaluation: a synthetic population through the serve layer.

The paper validates personalization on a handful of volunteers; the system
this repo grows toward serves millions.  This module is the measurement
layer between those scales: it generates a deterministic 1k–10k
synthetic-subject population (seeded head geometries from
:class:`repro.simulation.person.VirtualSubject`, capture-quality **strata**
expressed as :mod:`repro.testing.faults` specs), pushes every subject
through the batch service as one :class:`repro.serve.job.Job`, and
aggregates per-stratum distributions of localization error, confidence,
salvage/retry rates, and latency into a single :class:`FleetReport`
artifact.

Determinism is the load-bearing property.  Per-subject metrics come from
:func:`subject_metrics` — a pure function of the job spec (seeded geometry
draw + a stratum-keyed ``default_rng`` stream + an analytic fault-severity
model), so the serve layer's determinism contract applies verbatim: any
worker count, any scheduling, bit-identical payloads.  The report separates
that deterministic content (saved JSON) from operational throughput stats
(returned alongside, never saved), so ``fleet run`` twice with one seed
produces **bit-identical report files** — the precondition for pinning
distribution digests under ``tests/golden/`` and failing CI on drift
(:mod:`repro.eval.drift`).

Why a synthetic metric model instead of the real pipeline?  The fleet tier
exists to regression-test the *measurement machinery* — population
generation, serve integration, sketch aggregation, digest pinning, drift
classification — at four orders of magnitude more subjects than the real
pipeline can personalize in a CI budget.  The per-subject model encodes the
qualitative structure the real system exhibits (geometry-dependent error,
fault-severity degradation, confidence anti-correlated with error) and
reacts to population-level regressions (a biased geometry slice shifts the
error distribution) exactly the way the drift detector must catch.  The
real pipeline keeps its own golden tier (:mod:`repro.testing.golden`).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro import constants
from repro.errors import ReproError
from repro.eval.drift import DriftFinding, compare_digests
from repro.eval.sketch import QuantileSketch
from repro.ioutil import atomic_write_json
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.job import Job, JobResult
from repro.simulation.person import VirtualSubject

__all__ = [
    "DEFAULT_STRATA",
    "FleetReport",
    "METRIC_EDGES",
    "OVERALL",
    "Stratum",
    "aggregate",
    "compare_reports",
    "generate_population",
    "run_fleet",
    "subject_metrics",
]

#: Seed-sequence domain separating fleet rng streams from everything else.
_FLEET_DOMAIN = 0x5F1EE7

#: Synthetic stratum name reserved for the cross-stratum merge row.
OVERALL = "__overall__"

#: Report schema version (bumped on any change to the saved JSON shape).
REPORT_VERSION = 1

#: Config knobs that *intentionally* differ between a baseline run and a
#: perturbation run — excluded from the config-match check so a biased
#: population is reported as distribution drift, not as a config mismatch.
_BIAS_KNOBS = frozenset({"bias_fraction", "head_bias_m"})

#: Localization-error sensitivity to a systematic head-half-width bias.
#: ~4 degrees per millimeter: the order of magnitude the planar pipeline
#: shows when the assumed geometry is wrong by that much.
HEAD_BIAS_SENSITIVITY_DEG_PER_M = 4000.0

#: Error contribution of anatomical deviation from the average head.
_GEOMETRY_SENSITIVITY_DEG_PER_M = 60.0

_BASE_ERROR_DEG = 0.9
_MAX_ERROR_DEG = 45.0

#: Fixed bin ladders per metric — identical ladders are what make
#: per-shard sketches exactly mergeable (see :mod:`repro.eval.sketch`).
METRIC_EDGES: dict[str, tuple[float, ...]] = {
    "error_deg": tuple(np.linspace(0.0, _MAX_ERROR_DEG, 181)),
    "confidence": tuple(np.linspace(0.0, 1.0, 201)),
    "latency_ms": tuple(np.linspace(0.0, 400.0, 161)),
}

#: Rate metrics carried per stratum as single-value digests (count + mean).
RATE_METRICS = ("salvage_rate", "retry_rate", "failure_rate")


@dataclass(frozen=True)
class Stratum:
    """One capture-quality slice of the population.

    ``fault``/``fault_args`` are a :mod:`repro.testing.faults` spec — the
    same vocabulary the serve layer already validates on every job — so a
    stratum is exactly "this fraction of the fleet captures under these
    conditions".
    """

    name: str
    fraction: float
    fault: str | None = None
    fault_args: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"name": self.name, "fraction": self.fraction}
        if self.fault is not None:
            record["fault"] = self.fault
        if self.fault_args:
            record["fault_args"] = dict(sorted(self.fault_args.items()))
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Stratum":
        return cls(
            name=str(record["name"]),
            fraction=float(record["fraction"]),
            fault=record.get("fault"),
            fault_args=dict(record.get("fault_args") or {}),
        )


#: The default fleet mix: mostly clean captures, with realistic minorities
#: of noisy rooms, clipped speakers, dropped probes, drifting IMUs, and
#: reverberant (or noisy *and* reverberant) living rooms.
DEFAULT_STRATA: tuple[Stratum, ...] = (
    Stratum("clean", 0.50),
    Stratum("noisy_room", 0.18, "mic_noise", {"std": 0.01}),
    Stratum("clipped_audio", 0.10, "clipped", {"level": 0.02}),
    Stratum("sparse_probes", 0.08, "dropout", {"keep_every": 2}),
    Stratum("imu_drift", 0.07, "gyro_bias_drift", {"drift_dps_per_s": 0.5}),
    Stratum("reverberant", 0.04, "reverberant_room", {"rt60_s": 0.6}),
    Stratum(
        "noisy_reverberant",
        0.03,
        "noisy_reverberant",
        {"rt60_s": 0.5, "std": 0.05},
    ),
)


def _fault_severity(
    fault: str | None, fault_args: Mapping[str, Any]
) -> tuple[float, float, float, float]:
    """Analytic degradation for a fault spec.

    Returns ``(error_deg, confidence_penalty, latency_ms, salvage_p)`` —
    the mean extra localization error, confidence loss, compute latency,
    and probability that the quality layer had to salvage probes, each
    scaled by the fault's primary argument so harsher strata degrade more.
    """
    args = dict(fault_args or {})
    if fault is None:
        return 0.0, 0.0, 0.0, 0.01
    if fault == "mic_noise":
        std = float(args.get("std", 0.01))
        return 30.0 * std, 4.0 * std, 800.0 * std, min(0.5, 35.0 * std)
    if fault == "clipped":
        level = float(args.get("level", 0.02))
        return 12.0 * level, 2.5 * level, 200.0 * level, min(0.5, 10.0 * level)
    if fault == "dropout":
        extra = float(args.get("keep_every", 2)) - 1.0
        return 0.35 * extra, 0.05 * extra, 5.0 * extra, min(0.5, 0.15 * extra)
    if fault == "gyro_bias_drift":
        drift = float(args.get("drift_dps_per_s", 0.5))
        return 0.5 * drift, 0.06 * drift, 3.0 * drift, min(0.5, 0.2 * drift)
    if fault == "reverberant_room":
        # Longer tails smear the early taps; the ladder contains the error
        # but the robust rungs cost extra deconvolutions.
        rt60 = float(args.get("rt60_s", 0.4)) * float(args.get("wet_level", 1.0))
        return 1.2 * rt60, 0.12 * rt60, 25.0 * rt60, min(0.5, 0.3 * rt60)
    if fault == "noisy_reverberant":
        rt60 = float(args.get("rt60_s", 0.5)) * float(args.get("wet_level", 1.0))
        std = float(args.get("std", 0.05))
        return (
            1.2 * rt60 + 30.0 * std,
            0.12 * rt60 + 4.0 * std,
            25.0 * rt60 + 800.0 * std,
            min(0.5, 0.3 * rt60 + 35.0 * std),
        )
    # Unmodeled faults degrade by a generic moderate amount rather than
    # silently behaving like clean captures.
    return 0.25, 0.03, 5.0, 0.1


def subject_metrics(spec: Mapping[str, Any]) -> dict[str, Any]:
    """The per-subject fleet metrics — a pure function of the job spec.

    Draws the subject's head geometry from its seed, derives degradation
    from the stratum's fault spec, adds a stratum-keyed noise stream, and
    applies any systematic head-geometry bias (``params['head_bias_m']``)
    **additively** — outside the rng stream — so a biased sub-population
    shifts the error distribution cleanly instead of reshuffling it.
    """
    params = spec.get("params") or {}
    stratum = str(params.get("stratum", "clean"))
    head_bias_m = float(params.get("head_bias_m", 0.0))
    seed = int(spec["subject_seed"])
    subject = VirtualSubject.random(seed)
    head = subject.head
    geometry_dev_m = (
        abs(head.a - constants.AVERAGE_HEAD_HALF_WIDTH_M)
        + abs(head.b - constants.AVERAGE_HEAD_FRONT_DEPTH_M)
        + abs(head.c - constants.AVERAGE_HEAD_BACK_DEPTH_M)
    )
    fault_err, fault_conf, fault_lat, salvage_p = _fault_severity(
        spec.get("fault"), spec.get("fault_args") or {}
    )
    rng = np.random.default_rng(
        [_FLEET_DOMAIN, seed, zlib.crc32(stratum.encode())]
    )
    noise = abs(float(rng.normal(0.0, 0.55)))
    jitter = 0.7 + 0.6 * float(rng.random())
    error = (
        _BASE_ERROR_DEG
        + _GEOMETRY_SENSITIVITY_DEG_PER_M * geometry_dev_m
        + fault_err * jitter
        + noise
        + HEAD_BIAS_SENSITIVITY_DEG_PER_M * abs(head_bias_m)
    )
    error = min(max(error, 0.0), _MAX_ERROR_DEG)
    confidence = 1.0 - 0.022 * error - fault_conf * jitter
    confidence -= 0.02 * float(rng.random())
    confidence = min(max(confidence, 0.0), 1.0)
    latency_ms = (
        18.0 + 3.5 * error + fault_lat * jitter + float(rng.gamma(2.0, 4.0))
    )
    salvaged = bool(rng.random() < salvage_p)
    retried = bool(rng.random() < 0.01 + 0.2 * salvage_p)
    return {
        "stratum": stratum,
        "error_deg": float(error),
        "confidence": float(confidence),
        "latency_ms": float(latency_ms),
        "salvaged": salvaged,
        "retried": retried,
        "head_half_width_m": float(head.a),
    }


def _validate_strata(strata: Sequence[Stratum]) -> tuple[Stratum, ...]:
    strata = tuple(strata)
    if not strata:
        raise ReproError("fleet needs at least one stratum")
    names = [s.name for s in strata]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate stratum names in {names}")
    if OVERALL in names:
        raise ReproError(f"stratum name {OVERALL!r} is reserved")
    if any(s.fraction <= 0 for s in strata):
        raise ReproError("stratum fractions must be positive")
    return strata


def generate_population(
    subjects: int,
    seed: int,
    *,
    strata: Sequence[Stratum] | None = None,
    bias_fraction: float = 0.0,
    head_bias_m: float = 0.0,
) -> tuple[Job, ...]:
    """Build the deterministic fleet job list.

    Each subject gets a distinct ``subject_seed`` (so no two jobs coalesce)
    and a stratum drawn from the mix fractions with a population-level rng
    keyed only by ``seed``.  ``bias_fraction``/``head_bias_m`` mark an
    evenly spread sub-population with a systematic head-half-width bias —
    the canonical fleet regression the drift detector must classify as a
    ``shift``.  Bias marks come from an rng stream independent of the
    stratum draw, so a biased population has *identical* stratum
    membership to the clean one.
    """
    if subjects < 1:
        raise ReproError(f"subjects must be >= 1, got {subjects}")
    if not 0.0 <= bias_fraction <= 1.0:
        raise ReproError(f"bias_fraction must be in [0, 1], got {bias_fraction}")
    strata = _validate_strata(strata if strata is not None else DEFAULT_STRATA)
    fractions = np.array([s.fraction for s in strata], dtype=float)
    fractions /= fractions.sum()
    rng_strata = np.random.default_rng([_FLEET_DOMAIN, seed, 0x57A7])
    assignment = rng_strata.choice(len(strata), size=subjects, p=fractions)
    rng_bias = np.random.default_rng([_FLEET_DOMAIN, seed, 0xB1A5])
    biased = rng_bias.random(subjects) < bias_fraction
    jobs = []
    for i in range(subjects):
        stratum = strata[int(assignment[i])]
        params: dict[str, Any] = {"stratum": stratum.name}
        if bias_fraction > 0.0 and bool(biased[i]):
            params["head_bias_m"] = float(head_bias_m)
        jobs.append(
            Job(
                job_id=f"fleet-{seed}-{i:05d}",
                subject_seed=1_000_000 + seed * 100_000 + i,
                fault=stratum.fault,
                fault_args=dict(stratum.fault_args),
                params=params,
            )
        )
    return tuple(jobs)


def _round6(value: float) -> float:
    return round(float(value), 6)


@dataclass
class FleetReport:
    """The deterministic artifact of one fleet run.

    Everything here is a pure function of the run config — sketches are
    filled in job submission order, latency is the *modeled* per-subject
    latency, and wall-clock throughput lives in the separate ops record
    :func:`run_fleet` returns — so saving the same config twice yields
    bit-identical JSON.
    """

    config: dict[str, Any]
    sketches: dict[str, dict[str, QuantileSketch]]
    counters: dict[str, dict[str, int]]
    statuses: dict[str, int]

    @property
    def n_subjects(self) -> int:
        return int(self.config.get("subjects", 0))

    def digest(self) -> dict[str, dict[str, dict[str, float]]]:
        """``stratum -> metric -> pinned statistics`` (the golden payload).

        Includes an :data:`OVERALL` row merged from the per-stratum
        sketches — the same merge path a sharded fleet will use — plus the
        per-stratum salvage/retry/failure rates as single-value digests.
        """
        out: dict[str, dict[str, dict[str, float]]] = {}
        overall: dict[str, QuantileSketch] = {}
        # Union with counters: a stratum where every subject failed has no
        # sketches but its failure rate must still reach the golden gate.
        for stratum in sorted(set(self.sketches) | set(self.counters)):
            metrics: dict[str, dict[str, float]] = {}
            for name in sorted(self.sketches.get(stratum, {})):
                sketch = self.sketches[stratum][name]
                metrics[name] = self._sketch_digest(sketch)
                overall.setdefault(
                    name, QuantileSketch(METRIC_EDGES[name])
                ).merge(sketch)
            counts = self.counters.get(stratum, {})
            total = int(counts.get("count", 0))
            for rate in RATE_METRICS:
                event = rate.replace("_rate", "")
                numerator = int(counts.get(event, 0))
                metrics[rate] = {
                    "count": total,
                    "mean": _round6(numerator / total) if total else 0.0,
                }
            out[stratum] = metrics
        if overall:
            out[OVERALL] = {
                name: self._sketch_digest(sketch)
                for name, sketch in sorted(overall.items())
            }
        return out

    @staticmethod
    def _sketch_digest(sketch: QuantileSketch) -> dict[str, float]:
        return {
            "count": int(sketch.count),
            "mean": _round6(sketch.mean) if sketch.count else 0.0,
            "std": _round6(sketch.std()),
            "p5": _round6(sketch.quantile(0.05)) if sketch.count else 0.0,
            "p25": _round6(sketch.quantile(0.25)) if sketch.count else 0.0,
            "p50": _round6(sketch.quantile(0.50)) if sketch.count else 0.0,
            "p75": _round6(sketch.quantile(0.75)) if sketch.count else 0.0,
            "p95": _round6(sketch.quantile(0.95)) if sketch.count else 0.0,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "config": self.config,
            "population": {
                "total": self.n_subjects,
                "per_stratum": {
                    stratum: int(counts.get("count", 0))
                    for stratum, counts in sorted(self.counters.items())
                },
            },
            "statuses": dict(sorted(self.statuses.items())),
            "counters": {
                stratum: dict(sorted(counts.items()))
                for stratum, counts in sorted(self.counters.items())
            },
            "digest": self.digest(),
            "sketches": {
                stratum: {
                    name: sketch.to_dict()
                    for name, sketch in sorted(metrics.items())
                }
                for stratum, metrics in sorted(self.sketches.items())
            },
        }

    def save(self, path: str | os.PathLike) -> None:
        """Write the report as canonical JSON (atomic, sorted keys)."""
        atomic_write_json(self.to_dict(), path)

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FleetReport":
        version = int(record.get("version", 0))
        if version != REPORT_VERSION:
            raise ReproError(
                f"fleet report version {version} unsupported "
                f"(expected {REPORT_VERSION}); regenerate it"
            )
        sketches = {
            stratum: {
                name: QuantileSketch.from_dict(payload)
                for name, payload in metrics.items()
            }
            for stratum, metrics in record.get("sketches", {}).items()
        }
        return cls(
            config=dict(record.get("config", {})),
            sketches=sketches,
            counters={
                stratum: dict(counts)
                for stratum, counts in record.get("counters", {}).items()
            },
            statuses=dict(record.get("statuses", {})),
        )


def aggregate(
    config: Mapping[str, Any],
    jobs: Sequence[Job],
    results: Iterable[JobResult],
) -> FleetReport:
    """Fold serve results into a :class:`FleetReport`.

    Results must be in job submission order (what
    :meth:`BatchServer.run_batch` returns) — sketch ``total`` accumulators
    are stream-order floats, so a fixed order is part of the bit-identity
    contract.  Failed subjects contribute to the stratum failure rate and
    nothing else.
    """
    by_id = {job.job_id: job for job in jobs}
    sketches: dict[str, dict[str, QuantileSketch]] = {}
    counters: dict[str, dict[str, int]] = {}
    statuses: dict[str, int] = {}
    for result in results:
        job = by_id.get(result.job_id)
        if job is None:
            raise ReproError(f"result for unknown job {result.job_id!r}")
        stratum = str((job.params or {}).get("stratum", "clean"))
        counts = counters.setdefault(
            stratum, {"count": 0, "salvage": 0, "retry": 0, "failure": 0}
        )
        counts["count"] += 1
        statuses[result.status] = statuses.get(result.status, 0) + 1
        if not result.ok or result.payload is None:
            counts["failure"] += 1
            continue
        payload = result.payload
        metrics = sketches.setdefault(
            stratum,
            {name: QuantileSketch(edges) for name, edges in METRIC_EDGES.items()},
        )
        for name in METRIC_EDGES:
            metrics[name].add(float(payload[name]))
        if payload.get("salvaged"):
            counts["salvage"] += 1
        if payload.get("retried"):
            counts["retry"] += 1
    return FleetReport(
        config=dict(config),
        sketches=sketches,
        counters=counters,
        statuses=statuses,
    )


def run_fleet(
    subjects: int,
    seed: int,
    *,
    workers: int = 2,
    strata: Sequence[Stratum] | None = None,
    bias_fraction: float = 0.0,
    head_bias_m: float = 0.0,
    queue_size: int = 256,
    map_store: str | os.PathLike | None = None,
) -> tuple[FleetReport, dict[str, Any]]:
    """Run the population through :class:`~repro.serve.server.BatchServer`.

    Returns ``(report, ops)``: the deterministic :class:`FleetReport` and a
    separate operational record (wall time, subjects/sec, serve latency
    percentiles) that legitimately varies between runs and is therefore
    never part of the saved artifact.
    """
    from repro.serve.server import BatchServer
    from repro.testing.workloads import fleet_runner

    strata = _validate_strata(strata if strata is not None else DEFAULT_STRATA)
    config = {
        "subjects": int(subjects),
        "seed": int(seed),
        "strata": [s.to_dict() for s in strata],
        "bias_fraction": float(bias_fraction),
        "head_bias_m": float(head_bias_m),
    }
    with obs_trace.span("fleet.run", subjects=int(subjects), seed=int(seed)):
        jobs = generate_population(
            subjects,
            seed,
            strata=strata,
            bias_fraction=bias_fraction,
            head_bias_m=head_bias_m,
        )
        started = time.perf_counter()
        with BatchServer(
            workers=workers,
            queue_size=queue_size,
            runner=fleet_runner,
            map_store=map_store,
        ) as server:
            batch = server.run_batch(jobs)
        wall = time.perf_counter() - started
        report = aggregate(config, jobs, batch.results)
    obs_metrics.counter("fleet.subjects").inc(len(jobs))
    obs_metrics.counter("fleet.subjects_ok").inc(batch.n_ok)
    obs_metrics.counter("fleet.subjects_failed").inc(
        len(jobs) - batch.n_ok
    )
    obs_metrics.gauge("fleet.subjects_per_s").set(
        len(jobs) / wall if wall > 0 else float("inf")
    )
    ops = {
        "wall_s": wall,
        "subjects_per_s": len(jobs) / wall if wall > 0 else float("inf"),
        "workers": batch.workers,
        "statuses": batch.counts,
        "serve_latency": batch.latency_summary(),
    }
    return report, ops


def compare_reports(
    baseline: Mapping[str, Any],
    report: Mapping[str, Any],
    tolerances: Mapping[str, Any] | None = None,
) -> tuple[list[str], list[DriftFinding]]:
    """Compare a fresh report dict against a pinned baseline dict.

    Config must match except for the bias knobs (:data:`_BIAS_KNOBS`) —
    comparing a deliberately perturbed population against the clean
    baseline is the drift detector's whole job, while comparing different
    subject counts or strata mixes is a config error, reported as such.
    Digest comparison (including missing/unknown strata and metrics) is
    delegated to :func:`repro.eval.drift.compare_digests`.
    """
    violations: list[str] = []
    base_cfg = {
        k: v for k, v in dict(baseline.get("config", {})).items()
        if k not in _BIAS_KNOBS
    }
    run_cfg = {
        k: v for k, v in dict(report.get("config", {})).items()
        if k not in _BIAS_KNOBS
    }
    for key in sorted(set(base_cfg) | set(run_cfg)):
        if base_cfg.get(key) != run_cfg.get(key):
            violations.append(
                f"config/{key}: run has {run_cfg.get(key)!r}, baseline has "
                f"{base_cfg.get(key)!r} — not comparable, regenerate the "
                f"baseline if the change is intentional"
            )
    digest_violations, findings = compare_digests(
        baseline.get("digest", {}), report.get("digest", {}), tolerances
    )
    violations.extend(digest_violations)
    return violations, findings
