"""Ablation studies for the design choices the paper argues for.

Each ablation removes one ingredient of UNIQ and measures the damage:

- **Sensor fusion** (Section 4.1's motivation): IMU-only and
  acoustic-with-assumed-average-head localization vs the full joint fusion.
- **Diffraction modeling** (Section 2's motivation): the same fusion built
  on straight-line (Euclidean) delays instead of wrap-around diffraction.
- **Near-far conversion** (Section 4.3's motivation): using near-field
  HRTFs directly for far-field rendering vs converting them.
- **Measurement density**: "With larger N ... E_opt converges better".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.hrtf.metrics import table_correlations
from repro.hrtf.table import HRTFTable
from repro.simulation.session import SessionData
from repro.core.fusion import DiffractionAwareSensorFusion
from repro.core.localize import DelayMap
from repro.geometry.head import HeadGeometry
from repro.eval.common import get_cohort


def _session_truth_angles(session: SessionData) -> np.ndarray:
    return session.truth.probe_angles_deg()


@dataclass(frozen=True)
class FusionAblationResult:
    """Median localization error (deg) of each strategy."""

    imu_only_deg: float
    acoustic_average_head_deg: float
    fused_deg: float


def ablation_sensor_fusion(cohort_size: int = 2) -> FusionAblationResult:
    """Why fuse?  Compare IMU-only, acoustic-only, and fused localization."""
    cohort = get_cohort()
    members = list(cohort)[:cohort_size]
    fusion = DiffractionAwareSensorFusion()
    errors = {"imu": [], "acoustic": [], "fused": []}
    for member in members:
        session = member.session
        truth = _session_truth_angles(session)
        result = member.personalization.fusion

        errors["imu"].append(np.abs(fusion.imu_angles(session) - truth))
        errors["fused"].append(np.abs(result.fused_angles_deg - truth))

        # Acoustic-only: assume the average head (no joint optimization),
        # disambiguate front/back with the IMU (pure acoustics cannot).
        average_map = DelayMap(HeadGeometry.average())
        alphas = fusion.imu_angles(session)
        acoustic = []
        for t_l, t_r, alpha, true_angle in zip(
            result.t_left, result.t_right, alphas, truth
        ):
            candidate = average_map.locate(t_l, t_r, alpha)
            acoustic.append(
                abs(candidate.theta_deg - true_angle) if candidate else 45.0
            )
        errors["acoustic"].append(np.asarray(acoustic))
    return FusionAblationResult(
        imu_only_deg=float(np.median(np.concatenate(errors["imu"]))),
        acoustic_average_head_deg=float(np.median(np.concatenate(errors["acoustic"]))),
        fused_deg=float(np.median(np.concatenate(errors["fused"]))),
    )


@dataclass(frozen=True)
class DiffractionAblationResult:
    """Fusion quality with and without the diffraction delay model."""

    diffraction_median_deg: float
    euclidean_median_deg: float
    diffraction_residual_deg: float
    euclidean_residual_deg: float


def ablation_diffraction_model(cohort_size: int = 2) -> DiffractionAblationResult:
    """Why model diffraction?  Localize with straight-line delays instead."""
    cohort = get_cohort()
    members = list(cohort)[:cohort_size]
    euclid_fusion = DiffractionAwareSensorFusion(delay_model="euclidean")
    diff_err, euc_err, diff_res, euc_res = [], [], [], []
    for member in members:
        truth = _session_truth_angles(member.session)
        fused = member.personalization.fusion
        diff_err.append(np.abs(fused.fused_angles_deg - truth))
        diff_res.append(fused.residual_deg)
        euclid = euclid_fusion.run(member.session)
        euc_err.append(np.abs(euclid.fused_angles_deg - truth))
        euc_res.append(euclid.residual_deg)
    return DiffractionAblationResult(
        diffraction_median_deg=float(np.median(np.concatenate(diff_err))),
        euclidean_median_deg=float(np.median(np.concatenate(euc_err))),
        diffraction_residual_deg=float(np.mean(diff_res)),
        euclidean_residual_deg=float(np.mean(euc_res)),
    )


@dataclass(frozen=True)
class NearFarAblationResult:
    """Far-field fidelity: converted far table vs raw near table."""

    converted_correlation: float
    near_as_far_correlation: float
    converted_itd_error_ms: float
    near_as_far_itd_error_ms: float


def ablation_near_far_conversion(cohort_size: int = 3) -> NearFarAblationResult:
    """Why convert?  Compare near-used-as-far against the converted far field."""
    cohort = get_cohort()
    members = list(cohort)[:cohort_size]
    conv_corr, near_corr, conv_itd, near_itd = [], [], [], []
    for member in members:
        table = member.personalization.table
        truth = member.ground_truth
        near_as_far = HRTFTable(
            angles_deg=table.angles_deg, near=table.near, far=table.near
        )
        _, c_left, c_right = table_correlations(table, truth, "far")
        conv_corr.append(0.5 * (c_left.mean() + c_right.mean()))
        _, n_left, n_right = table_correlations(near_as_far, truth, "far")
        near_corr.append(0.5 * (n_left.mean() + n_right.mean()))

        truth_itd = np.array([ir.interaural_delay_s() for ir in truth.far])
        conv = np.array([ir.interaural_delay_s() for ir in table.far])
        raw = np.array([ir.interaural_delay_s() for ir in table.near])
        conv_itd.append(np.mean(np.abs(conv - truth_itd)) * 1e3)
        near_itd.append(np.mean(np.abs(raw - truth_itd)) * 1e3)
    return NearFarAblationResult(
        converted_correlation=float(np.mean(conv_corr)),
        near_as_far_correlation=float(np.mean(near_corr)),
        converted_itd_error_ms=float(np.mean(conv_itd)),
        near_as_far_itd_error_ms=float(np.mean(near_itd)),
    )


@dataclass(frozen=True)
class DensityAblationResult:
    """Localization quality and head-parameter error vs probe count N."""

    probe_counts: tuple[int, ...]
    head_param_error_mm: tuple[float, ...]
    localization_median_deg: tuple[float, ...]
    residual_deg: tuple[float, ...]


def _subsampled_session(session: SessionData, n_probes: int) -> SessionData:
    indices = np.linspace(0, session.n_probes - 1, n_probes).astype(int)
    probes = tuple(session.probes[i] for i in indices)
    truth = replace(
        session.truth,
        probe_sample_indices=session.truth.probe_sample_indices[indices],
    )
    return replace(session, probes=probes, truth=truth)


def ablation_measurement_density(
    probe_counts: tuple[int, ...] = (6, 12, 25, 50),
) -> DensityAblationResult:
    """"With larger N, E_opt converges better" — measure exactly that.

    Reports the head-parameter error, the per-probe localization error
    against ground truth, and the optimizer residual, each as a function of
    how many probes the sweep contained.
    """
    cohort = get_cohort()
    member = list(cohort)[0]
    true_params = np.asarray(member.subject.head.parameters)
    fusion = DiffractionAwareSensorFusion()
    errors = []
    residuals = []
    localization = []
    for count in probe_counts:
        session = _subsampled_session(member.session, count)
        result = fusion.run(session)
        estimated = np.asarray(result.head.parameters)
        errors.append(float(np.linalg.norm(estimated - true_params) * 1e3))
        residuals.append(result.residual_deg)
        truth_angles = session.truth.probe_angles_deg()
        localization.append(
            float(np.median(np.abs(result.fused_angles_deg - truth_angles)))
        )
    return DensityAblationResult(
        probe_counts=tuple(int(c) for c in probe_counts),
        head_param_error_mm=tuple(errors),
        localization_median_deg=tuple(localization),
        residual_deg=tuple(residuals),
    )
