"""Mergeable fixed-bin quantile sketches for fleet-scale distributions.

A :class:`QuantileSketch` summarizes a stream of scalar observations into a
fixed bin ladder plus exact ``count``/``min``/``max``/``sum`` accumulators.
The ladder is decided up front (per metric, see
:data:`repro.eval.fleet.METRICS`), which buys the property a sharded fleet
harness needs: **merging per-shard sketches over the same ladder is exact
and order-invariant** — bin counts add, so any partition of the population
into shards, merged in any order, reproduces the monolithic sketch's counts
bit for bit (only the float ``sum`` accumulates in merge order, which is why
the merge-invariance property is stated "within tolerance").

Quantiles are estimated by linear interpolation inside the covering bin and
clamped to the exact observed ``[min, max]``, so ``p0``/``p100`` are exact
and interior quantiles are off by at most one bin width — the resolution the
drift tolerances in :mod:`repro.eval.drift` are chosen against.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """A mergeable histogram sketch over a fixed, sorted bin-edge ladder.

    ``edges`` are the *interior* boundaries of ``len(edges) + 1`` bins; the
    first bin absorbs everything below ``edges[0]`` and the last everything
    at or above ``edges[-1]``, so no observation is ever dropped — outliers
    land in a saturating end bin while ``min``/``max`` stay exact.
    """

    __slots__ = ("edges", "counts", "count", "total", "low", "high")

    def __init__(self, edges: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.shape[0] < 2:
            raise ReproError("sketch needs at least 2 bin edges")
        if not np.all(np.isfinite(edges_arr)):
            raise ReproError("sketch edges must be finite")
        if not np.all(np.diff(edges_arr) > 0):
            raise ReproError("sketch edges must be strictly increasing")
        self.edges = edges_arr
        self.counts = np.zeros(edges_arr.shape[0] + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.low = float("inf")
        self.high = float("-inf")

    # -- ingestion ----------------------------------------------------------

    def add(self, value: float) -> None:
        self.add_many((value,))

    def add_many(self, values: Iterable[float]) -> None:
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            return
        if not np.all(np.isfinite(array)):
            raise ReproError("sketch observations must be finite")
        bins = np.searchsorted(self.edges, array, side="right")
        np.add.at(self.counts, bins, 1)
        self.count += int(array.size)
        # Accumulate in stream order: deterministic for a fixed input order.
        self.total += float(array.sum())
        self.low = min(self.low, float(array.min()))
        self.high = max(self.high, float(array.max()))

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns ``self``.

        Requires an identical edge ladder — merging sketches binned
        differently would silently blur the distribution, so it refuses.
        """
        if other.edges.shape != self.edges.shape or not np.array_equal(
            other.edges, self.edges
        ):
            raise ReproError("cannot merge sketches with different bin edges")
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.low = min(self.low, other.low)
        self.high = max(self.high, other.high)
        return self

    # -- statistics ---------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile (``q`` in [0, 1]).

        Linear interpolation inside the covering bin, clamped to the exact
        observed range; the saturating end bins interpolate toward
        ``min``/``max`` so outliers cannot produce estimates outside the
        data.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        index = min(index, self.counts.shape[0] - 1)
        inside = rank - (cumulative[index - 1] if index > 0 else 0)
        width = self.counts[index]
        frac = float(inside / width) if width > 0 else 0.0
        lo = self.edges[index - 1] if index > 0 else self.low
        hi = self.edges[index] if index < self.edges.shape[0] else self.high
        value = float(lo + frac * (hi - lo))
        return float(min(max(value, self.low), self.high))

    def std(self) -> float:
        """Bin-midpoint standard deviation (the drift detector's spread).

        Computed from bin mass at representative points (midpoints for
        interior bins, the exact extremes for the saturating end bins), so
        it is a pure function of the sketch state — merge-invariant like
        the counts themselves.
        """
        if self.count < 2:
            return 0.0
        mids = np.empty(self.counts.shape[0])
        mids[1:-1] = 0.5 * (self.edges[:-1] + self.edges[1:])
        mids[0] = min(self.low, self.edges[0])
        mids[-1] = max(self.high, self.edges[-1])
        weight = self.counts / self.count
        mean = float(np.sum(weight * mids))
        return float(np.sqrt(np.sum(weight * np.square(mids - mean))))

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "count": int(self.count),
            "total": float(self.total),
            "min": float(self.low) if self.count else None,
            "max": float(self.high) if self.count else None,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "QuantileSketch":
        sketch = cls(record["edges"])
        counts = np.asarray(record["counts"], dtype=np.int64)
        if counts.shape != sketch.counts.shape:
            raise ReproError(
                f"sketch record has {counts.shape[0]} bins for "
                f"{sketch.counts.shape[0]} edges + end bins"
            )
        sketch.counts = counts
        sketch.count = int(record["count"])
        sketch.total = float(record["total"])
        if sketch.count:
            sketch.low = float(record["min"])
            sketch.high = float(record["max"])
        return sketch
