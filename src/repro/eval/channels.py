"""Channel-structure figures (paper Figures 9 and 14).

- **Figure 9**: the binaural channel impulse response of one probe: the
  first tap per ear sits exactly at the diffraction-path delay, followed by
  pinna/face multipath taps.
- **Figure 14**: the *relative* channel between the two ear recordings of an
  unknown source has multiple peaks (pinna multipath autocorrelates badly),
  which is why unknown-source AoA must disambiguate candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE, SPEED_OF_SOUND
from repro.geometry.head import Ear
from repro.geometry.paths import propagation_path
from repro.geometry.plane_wave import interaural_delay
from repro.geometry.vec import polar_to_cartesian
from repro.simulation.person import VirtualSubject
from repro.simulation.propagation import record_far_field, record_near_field
from repro.signals.channel import estimate_channel, find_taps, first_tap_index
from repro.signals.waveforms import probe_chirp, white_noise
from repro.core.aoa import UnknownSourceAoAEstimator
from repro.hrtf.reference import ground_truth_table


@dataclass(frozen=True)
class ChannelResponseResult:
    """Figure 9 output: one probe's binaural channel and its tap structure."""

    fs: int
    channel_left: np.ndarray
    channel_right: np.ndarray
    first_tap_left: int
    first_tap_right: int
    true_delay_left_samples: float
    true_delay_right_samples: float
    n_taps_left: int
    n_taps_right: int

    @property
    def first_tap_error_samples(self) -> tuple[float, float]:
        """|detected - true| first-tap positions, per ear."""
        return (
            abs(self.first_tap_left - self.true_delay_left_samples),
            abs(self.first_tap_right - self.true_delay_right_samples),
        )


def fig9_channel_response(
    fs: int = DEFAULT_SAMPLE_RATE,
    theta_deg: float = 45.0,
    radius_m: float = 0.45,
    subject_seed: int = 21,
) -> ChannelResponseResult:
    """Reproduce Figure 9: deconvolved binaural channel of one probe."""
    subject = VirtualSubject.random(subject_seed)
    rng = np.random.default_rng(3)
    chirp = probe_chirp(fs)
    position = polar_to_cartesian(radius_m, theta_deg)
    left, right = record_near_field(
        subject, position, chirp, fs=fs, rng=rng, noise_std=0.003
    )
    n_window = int(0.008 * fs)
    channel_left = estimate_channel(left, chirp, n_window)
    channel_right = estimate_channel(right, chirp, n_window)
    taps_left, _ = find_taps(channel_left)
    taps_right, _ = find_taps(channel_right)
    return ChannelResponseResult(
        fs=fs,
        channel_left=channel_left,
        channel_right=channel_right,
        first_tap_left=first_tap_index(channel_left),
        first_tap_right=first_tap_index(channel_right),
        true_delay_left_samples=propagation_path(subject.head, position, Ear.LEFT).length
        / SPEED_OF_SOUND
        * fs,
        true_delay_right_samples=propagation_path(
            subject.head, position, Ear.RIGHT
        ).length
        / SPEED_OF_SOUND
        * fs,
        n_taps_left=int(taps_left.shape[0]),
        n_taps_right=int(taps_right.shape[0]),
    )


@dataclass(frozen=True)
class RelativeChannelResult:
    """Figure 14 output: the L/R relative channel of an unknown source."""

    lags_ms: np.ndarray
    relative_channel: np.ndarray
    n_peaks: int
    true_itd_ms: float
    strongest_peak_ms: float


def fig14_relative_channel(
    fs: int = DEFAULT_SAMPLE_RATE,
    theta_deg: float = 60.0,
    subject_seed: int = 21,
) -> RelativeChannelResult:
    """Reproduce Figure 14: multiple peaks in the binaural relative channel."""
    subject = VirtualSubject.random(subject_seed)
    rng = np.random.default_rng(4)
    source = white_noise(0.6, fs, rng=np.random.default_rng(11))
    left, right = record_far_field(
        subject, theta_deg, source, fs=fs, rng=rng, noise_std=0.003
    )
    table = ground_truth_table(subject, np.array([0.0, 180.0]), fs)
    estimator = UnknownSourceAoAEstimator(table)
    lags_s, xcorr = estimator.relative_channel(left, right, fs)
    peaks, _ = find_taps(xcorr, max_taps=8, threshold_ratio=0.35, min_separation=3)
    true_itd = interaural_delay(subject.head, theta_deg)
    strongest = float(lags_s[int(np.argmax(np.abs(xcorr)))])
    return RelativeChannelResult(
        lags_ms=lags_s * 1e3,
        relative_channel=xcorr,
        n_peaks=int(peaks.shape[0]),
        true_itd_ms=true_itd * 1e3,
        strongest_peak_ms=strongest * 1e3,
    )
