"""Terminal plotting: inspect HRIRs, CDFs, and matrices without matplotlib.

The offline environment has no plotting stack, and a personalization CLI
should be able to *show* its results anyway.  These helpers render compact
unicode plots — sparklines, bar charts, waveform panels, and shade-mapped
matrices — used by ``uniq-personalize --show`` and handy in any REPL:

>>> from repro.textplot import sparkline
>>> sparkline([0, 1, 2, 3, 2, 1, 0])
'▁▃▆█▆▃▁'
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SHADE_LEVELS = " ░▒▓█"


def _validate_1d(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.shape[0] == 0:
        raise SignalError("expected a non-empty 1D sequence")
    if not np.all(np.isfinite(array)):
        raise SignalError("values must be finite")
    return array


def sparkline(values, width: int | None = None) -> str:
    """One-line unicode sparkline of a sequence.

    ``width`` resamples (by block-max of absolute peaks preserved via
    block means for smooth data) to at most that many characters.
    """
    array = _validate_1d(values)
    if width is not None and width > 0 and array.shape[0] > width:
        edges = np.linspace(0, array.shape[0], width + 1).astype(int)
        array = np.array(
            [array[lo:hi].mean() for lo, hi in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(array.min()), float(array.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * array.shape[0]
    indices = ((array - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).round()
    return "".join(_SPARK_LEVELS[int(i)] for i in indices)


def bar_chart(labels, values, width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart with right-aligned labels.

    Negative values are rendered with their bars marked ``-``.
    """
    array = _validate_1d(values)
    labels = [str(label) for label in labels]
    if len(labels) != array.shape[0]:
        raise SignalError("labels and values must match")
    scale = float(np.max(np.abs(array)))
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, array):
        n = 0 if scale == 0 else int(round(abs(value) / scale * width))
        bar = ("█" if value >= 0 else "▒") * n
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def waveform(signal, width: int = 72, height: int = 9, title: str = "") -> str:
    """A multi-row panel of a bipolar signal (e.g. an HRIR).

    The zero line sits mid-panel; samples are block-resampled to ``width``
    columns keeping each block's extreme value so taps never vanish.
    """
    array = _validate_1d(signal)
    if width < 4 or height < 3 or height % 2 == 0:
        raise SignalError("width >= 4 and odd height >= 3 required")
    edges = np.linspace(0, array.shape[0], width + 1).astype(int)
    columns = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        block = array[lo:hi] if hi > lo else array[lo : lo + 1]
        columns.append(block[np.argmax(np.abs(block))])
    columns = np.asarray(columns)
    scale = float(np.max(np.abs(columns)))
    half = height // 2
    grid = [[" "] * width for _ in range(height)]
    for x, value in enumerate(columns):
        if scale == 0:
            level = 0
        else:
            level = int(round(value / scale * half))
        if level == 0:
            grid[half][x] = "·"
        else:
            step = 1 if level > 0 else -1
            for y in range(step, level + step, step):
                grid[half - y][x] = "█"
    lines = ["".join(row) for row in grid]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def cdf_plot(values, width: int = 60, markers=(0.5, 0.9)) -> str:
    """An ASCII CDF: one line per decile plus marked quantiles."""
    array = np.sort(_validate_1d(values))
    lines = []
    for q in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        value = float(np.quantile(array, q))
        n = 0 if array[-1] == 0 else int(round(value / max(array[-1], 1e-12) * width))
        mark = " <-" if any(abs(q - m) < 1e-9 for m in markers) else ""
        lines.append(f"p{int(q * 100):3d} | {'█' * n} {value:.2f}{mark}")
    return "\n".join(lines)


def gantt(lanes, t0: float, t1: float, width: int = 72) -> str:
    """A per-lane text Gantt chart over the window ``[t0, t1]``.

    ``lanes`` is a sequence of ``(label, bars, marks)`` triples: each bar
    is ``(start, end, char)`` drawn as a filled run (``end=None`` extends
    to the window edge — an interval still open when recording stopped);
    each mark is ``(t, char)`` stamped on a single column on top of any
    bar.  Used by ``repro.cli timeline`` to draw one lane per worker pid —
    attempt bars, retry gaps, and watchdog-kill marks on one time axis.
    """
    lanes = list(lanes)
    if not lanes:
        raise SignalError("gantt needs at least one lane")
    if not (np.isfinite(t0) and np.isfinite(t1)) or t1 <= t0:
        raise SignalError(f"gantt window must satisfy t0 < t1, got [{t0}, {t1}]")
    if width < 8:
        raise SignalError("gantt width must be >= 8")
    span = t1 - t0

    def column(t: float) -> int:
        return min(max(int((t - t0) / span * width), 0), width - 1)

    label_width = max(len(str(label)) for label, _, _ in lanes)
    lines = []
    for label, bars, marks in lanes:
        row = [" "] * width
        for start, end, char in bars:
            if start is None:
                start = t0
            stop = t1 if end is None else end
            lo, hi = column(start), column(stop)
            for x in range(lo, hi + 1):
                row[x] = char
        for t, char in marks:
            row[column(t)] = char
        lines.append(f"{str(label).rjust(label_width)} |{''.join(row)}|")
    axis = f"{0.0:.2f}s".ljust(width - 6) + f"+{span:.2f}s"
    lines.append(f"{' ' * label_width} |{axis[:width].ljust(width)}|")
    return "\n".join(lines)


def table(headers, rows, aligns=None) -> str:
    """A plain aligned text table (the drift detector's diff renderer).

    ``aligns`` is a per-column sequence of ``"l"``/``"r"`` (default: left
    for the first column, right for the rest — labels then numbers).  Cells
    are stringified as-is; a separator rules under the header row.
    """
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise SignalError(
                f"table row has {len(row)} cells for {len(headers)} headers"
            )
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    if len(aligns) != len(headers):
        raise SignalError("aligns must match the header count")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def render(cells) -> str:
        parts = []
        for cell, width, align in zip(cells, widths, aligns):
            parts.append(cell.ljust(width) if align == "l" else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def matrix_heatmap(matrix, row_labels=None, col_step: int = 1) -> str:
    """Shade-mapped matrix (e.g. the Figure 2 correlation matrices)."""
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.size == 0:
        raise SignalError("expected a non-empty 2D matrix")
    if not np.all(np.isfinite(array)):
        raise SignalError("matrix must be finite")
    lo, hi = float(array.min()), float(array.max())
    span = hi - lo if hi > lo else 1.0
    labels = (
        [str(label) for label in row_labels]
        if row_labels is not None
        else ["" for _ in range(array.shape[0])]
    )
    if len(labels) != array.shape[0]:
        raise SignalError("row_labels must match the matrix rows")
    label_width = max(len(label) for label in labels)
    lines = []
    for label, row in zip(labels, array[:, ::col_step]):
        shades = "".join(
            _SHADE_LEVELS[
                min(int((value - lo) / span * len(_SHADE_LEVELS)), len(_SHADE_LEVELS) - 1)
            ]
            for value in row
        )
        lines.append(f"{label.rjust(label_width)} |{shades}|")
    return "\n".join(lines)
