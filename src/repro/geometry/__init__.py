"""Planar geometry substrate: head model, diffraction paths, trajectories.

The paper models the head as two half-ellipses joined at the ears (its
Figure 8) and shows (Section 2, Figure 5) that sound reaches the shadowed ear
along a *diffracted* path that hugs the head boundary rather than cutting
through it.  This package provides:

- :class:`~repro.geometry.head.HeadGeometry` — the (a, b, c) composite
  ellipse model with a densely sampled convex boundary.
- :mod:`~repro.geometry.paths` — shortest-path (Euclidean or wrap-around)
  computation from an external point to an ear, the core of every delay model
  in the system.
- :mod:`~repro.geometry.plane_wave` — far-field (parallel ray) arrival delays.
- :mod:`~repro.geometry.trajectory` — ideal and hand-perturbed phone
  trajectories around the head.
"""

from repro.geometry.head import HeadGeometry, Ear
from repro.geometry.head3d import HeadGeometry3D, direction_to_section
from repro.geometry.paths import PathResult, propagation_path, path_delay
from repro.geometry.plane_wave import plane_wave_delays, plane_wave_arrival
from repro.geometry.trajectory import (
    Trajectory,
    circular_trajectory,
    hand_motion_trajectory,
)

__all__ = [
    "HeadGeometry",
    "HeadGeometry3D",
    "direction_to_section",
    "Ear",
    "PathResult",
    "propagation_path",
    "path_delay",
    "plane_wave_delays",
    "plane_wave_arrival",
    "Trajectory",
    "circular_trajectory",
    "hand_motion_trajectory",
]
