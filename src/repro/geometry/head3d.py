"""3D head model: the Section 7 extension of the two-half-ellipse head.

The paper's prototype is 2D; its Section 7 sketches the 3D extension ("the
user would now need to move the phone on a sphere around the head, and the
motion tracking equations need to be extended to 3D").  This module supplies
the geometry for that extension with one additional head parameter:

    E3 = (a, b, c, d)

— half-width ``a`` (the ear axis), front depth ``b``, back depth ``c``, and
**vertical semi-axis** ``d``.  The head is two half-ellipsoids glued at the
ear plane, so every plane containing the ear axis cuts the head in exactly
the 2D composite two-half-ellipse shape the rest of the library already
handles:

    front section depth  b_eff(t) = 1 / sqrt(cos^2 t / b^2 + sin^2 t / d^2)
    back  section depth  c_eff(t) = 1 / sqrt(cos^2 t / c^2 + sin^2 t / d^2)

for a section plane tilted by ``t`` from horizontal.  Diffraction paths are
computed **inside the section plane** that contains the ear axis and the
source — exact for a sphere, and a standard first-order approximation of
the true ellipsoid geodesic for human-scale eccentricities.

Coordinates: x out of the left ear, y out of the nose, z up.  A source
direction is (azimuth theta, elevation phi): theta follows the library's 2D
convention in the horizontal plane; phi is positive upward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import propagation_path
from repro.geometry.plane_wave import plane_wave_arrival

_MIN_AXIS_M = 0.02
_MAX_AXIS_M = 0.30


def direction_from_angles(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
    """Unit vector pointing *toward the source* at (azimuth, elevation)."""
    azimuth = np.deg2rad(azimuth_deg)
    elevation = np.deg2rad(elevation_deg)
    return np.array(
        [
            np.sin(azimuth) * np.cos(elevation),
            np.cos(azimuth) * np.cos(elevation),
            np.sin(elevation),
        ]
    )


def section_coordinates(point: np.ndarray) -> tuple[float, float, float]:
    """Decompose a 3D point into its ear-axis section plane.

    Returns ``(tilt_deg, u, v)`` where the section plane is spanned by the
    ear axis and ``w = (0, cos tilt, sin tilt)`` with ``tilt`` in
    ``(-90, 90]``, and the in-plane coordinates are ``u`` along the ear
    axis and ``v`` along ``w`` (``v`` may be negative: behind the head).
    """
    point = np.asarray(point, dtype=float)
    if point.shape != (3,):
        raise GeometryError(f"expected a 3D point, got shape {point.shape}")
    y, z = float(point[1]), float(point[2])
    lateral = float(np.hypot(y, z))
    if lateral < 1e-12:
        # On the ear axis itself: any section contains it; pick horizontal.
        return 0.0, float(point[0]), 0.0
    raw = float(np.rad2deg(np.arctan2(z, y)))
    if raw > 90.0:
        return raw - 180.0, float(point[0]), -lateral
    if raw <= -90.0:
        return raw + 180.0, float(point[0]), -lateral
    return raw, float(point[0]), lateral


@dataclass(frozen=True)
class HeadGeometry3D:
    """Two half-ellipsoids glued at the ear plane: ``E3 = (a, b, c, d)``."""

    a: float
    b: float
    c: float
    d: float
    n_boundary: int = 720
    _sections: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name, value in (("a", self.a), ("b", self.b), ("c", self.c), ("d", self.d)):
            if not np.isfinite(value) or not _MIN_AXIS_M <= value <= _MAX_AXIS_M:
                raise GeometryError(
                    f"head axis {name}={value!r} outside plausible range "
                    f"[{_MIN_AXIS_M}, {_MAX_AXIS_M}] m"
                )
        object.__setattr__(self, "_sections", {})

    @classmethod
    def average(cls) -> "HeadGeometry3D":
        """Population-average 3D head (vertical semi-axis ~11.5 cm)."""
        return cls(a=0.0875, b=0.110, c=0.095, d=0.115)

    @property
    def parameters(self) -> tuple[float, float, float, float]:
        return (self.a, self.b, self.c, self.d)

    def effective_depths(self, tilt_deg: float) -> tuple[float, float]:
        """(b_eff, c_eff) of the section plane tilted by ``tilt_deg``."""
        if not -90.0 < tilt_deg <= 90.0 + 1e-9:
            raise GeometryError(f"tilt must be in (-90, 90], got {tilt_deg}")
        tilt = np.deg2rad(tilt_deg)
        cos2 = np.cos(tilt) ** 2
        sin2 = np.sin(tilt) ** 2
        b_eff = 1.0 / np.sqrt(cos2 / self.b**2 + sin2 / self.d**2)
        c_eff = 1.0 / np.sqrt(cos2 / self.c**2 + sin2 / self.d**2)
        return float(b_eff), float(c_eff)

    def section(self, tilt_deg: float) -> HeadGeometry:
        """The 2D head cross-section in the tilted ear-axis plane (cached)."""
        key = round(float(tilt_deg), 6)
        if key not in self._sections:
            b_eff, c_eff = self.effective_depths(float(tilt_deg))
            self._sections[key] = HeadGeometry(
                a=self.a, b=b_eff, c=c_eff, n_boundary=self.n_boundary
            )
        return self._sections[key]

    def path_delay(self, source_xyz: np.ndarray, ear: Ear) -> float:
        """First-tap delay (s) from a 3D point source, via its section plane."""
        tilt, u, v = section_coordinates(np.asarray(source_xyz, dtype=float))
        section = self.section(tilt)
        return (
            propagation_path(section, np.array([u, v]), ear).length
            / SPEED_OF_SOUND
        )

    def plane_wave_delays(
        self, azimuth_deg: float, elevation_deg: float
    ) -> tuple[float, float]:
        """(left, right) far-field arrival delays for one source direction."""
        direction = direction_from_angles(azimuth_deg, elevation_deg)
        tilt, u, v = section_coordinates(direction)
        theta_in_plane = float(np.rad2deg(np.arctan2(u, v)))
        section = self.section(tilt)
        left = plane_wave_arrival(section, theta_in_plane, Ear.LEFT)
        right = plane_wave_arrival(section, theta_in_plane, Ear.RIGHT)
        return left.delay, right.delay

    def interaural_delay(
        self, azimuth_deg: float, elevation_deg: float
    ) -> float:
        """Far-field ITD ``t_left - t_right`` (s) for (azimuth, elevation)."""
        left, right = self.plane_wave_delays(azimuth_deg, elevation_deg)
        return left - right


def direction_to_section(
    azimuth_deg: float, elevation_deg: float
) -> tuple[float, float]:
    """Map a (azimuth, elevation) direction to ``(tilt_deg, in_plane_deg)``.

    Every direction lies on exactly one great circle through the ear axis;
    this returns that circle's tilt and the direction's angle within it.
    """
    direction = direction_from_angles(azimuth_deg, elevation_deg)
    tilt, u, v = section_coordinates(direction)
    return tilt, float(np.rad2deg(np.arctan2(u, v)))
