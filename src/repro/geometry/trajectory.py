"""Phone trajectories around the head: ideal arcs and hand-held motion.

UNIQ asks the user to sweep the phone in front of the face, screen facing the
eyes, from one side to the other.  A real arm does this imperfectly: the
radius wobbles, the sweep speed varies, the phone does not point exactly at
the head, and sometimes the arm droops (the failure mode the gesture checker
of Section 4.6 detects).  :func:`hand_motion_trajectory` synthesizes all of
these effects with seeded randomness; :func:`circular_trajectory` is the
ideal reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import polar_to_cartesian


def _smooth_noise(rng: np.random.Generator, n: int, scale: float, smoothness: int) -> np.ndarray:
    """Zero-mean band-limited noise: white noise box-filtered ``smoothness`` wide."""
    if n <= 0:
        return np.zeros(0)
    raw = rng.standard_normal(n + smoothness)
    kernel = np.ones(smoothness) / smoothness
    smooth = np.convolve(raw, kernel, mode="valid")[:n]
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    return scale * (smooth - smooth.mean())


@dataclass(frozen=True)
class Trajectory:
    """A timed phone path in head-centered polar coordinates.

    Attributes
    ----------
    times:
        Sample timestamps (s), shape ``(n,)``, strictly increasing.
    angles_deg:
        True polar angle of the phone at each time (library convention).
    radii:
        True distance from the head center (m).
    facing_error_deg:
        Orientation error: the phone's facing direction minus the true polar
        angle.  Zero for a perfectly aimed phone.  The gyroscope senses the
        phone's *orientation* rate, so this error leaks into IMU angles —
        the dominant error source the paper reports for Figure 17.
    """

    times: np.ndarray
    angles_deg: np.ndarray
    radii: np.ndarray
    facing_error_deg: np.ndarray

    def __post_init__(self) -> None:
        n = self.times.shape[0]
        for name in ("angles_deg", "radii", "facing_error_deg"):
            if getattr(self, name).shape != (n,):
                raise GeometryError(f"{name} must match times shape ({n},)")
        if n >= 2 and not np.all(np.diff(self.times) > 0):
            raise GeometryError("times must be strictly increasing")
        if np.any(self.radii <= 0):
            raise GeometryError("radii must be positive")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        """Total sweep time in seconds."""
        return float(self.times[-1] - self.times[0]) if len(self) else 0.0

    def positions(self) -> np.ndarray:
        """Cartesian phone positions, shape ``(n, 2)``."""
        return polar_to_cartesian(self.radii, self.angles_deg)

    def orientations_deg(self) -> np.ndarray:
        """Phone facing direction over time (polar angle + facing error)."""
        return self.angles_deg + self.facing_error_deg

    def angular_velocity_dps(self) -> np.ndarray:
        """True phone *orientation* rate (deg/s) — what an ideal gyro senses."""
        return np.gradient(self.orientations_deg(), self.times)

    def subsample(self, indices: np.ndarray) -> "Trajectory":
        """A trajectory restricted to the given sample indices."""
        idx = np.asarray(indices, dtype=int)
        return Trajectory(
            times=self.times[idx],
            angles_deg=self.angles_deg[idx],
            radii=self.radii[idx],
            facing_error_deg=self.facing_error_deg[idx],
        )


def circular_trajectory(
    radius: float = 0.45,
    angle_start_deg: float = 0.0,
    angle_end_deg: float = 180.0,
    duration_s: float = 20.0,
    rate_hz: float = 100.0,
) -> Trajectory:
    """An ideal constant-speed arc at fixed radius, perfectly aimed phone."""
    if duration_s <= 0 or rate_hz <= 0:
        raise GeometryError("duration_s and rate_hz must be positive")
    n = max(2, int(round(duration_s * rate_hz)))
    times = np.arange(n) / rate_hz
    angles = np.linspace(angle_start_deg, angle_end_deg, n)
    return Trajectory(
        times=times,
        angles_deg=angles,
        radii=np.full(n, float(radius)),
        facing_error_deg=np.zeros(n),
    )


def hand_motion_trajectory(
    rng: np.random.Generator,
    radius_mean: float = 0.45,
    radius_wobble: float = 0.03,
    angle_start_deg: float = 0.0,
    angle_end_deg: float = 180.0,
    duration_s: float = 20.0,
    rate_hz: float = 100.0,
    speed_unevenness: float = 0.25,
    facing_error_std_deg: float = 3.0,
    arm_drop_probability: float = 0.0,
    arm_drop_depth: float = 0.15,
) -> Trajectory:
    """A hand-held sweep with realistic gesture imperfections.

    Parameters
    ----------
    rng:
        Randomness source; pass a seeded generator for reproducibility.
    radius_wobble:
        Standard deviation (m) of the slow radius drift around
        ``radius_mean``.
    speed_unevenness:
        Fractional variation of the angular sweep speed (0 = perfectly even).
    facing_error_std_deg:
        Standard deviation of the slowly varying phone aiming error.
    arm_drop_probability:
        Probability that the sweep contains one "arm drop" event — a segment
        where the radius collapses by ``arm_drop_depth`` fraction, the bad
        gesture the Section 4.6 checks must flag.
    """
    if duration_s <= 0 or rate_hz <= 0:
        raise GeometryError("duration_s and rate_hz must be positive")
    n = max(2, int(round(duration_s * rate_hz)))
    times = np.arange(n) / rate_hz
    smoothness = max(2, int(rate_hz))  # ~1 s correlation time

    # Uneven sweep speed: warp progress through the arc monotonically.
    speed = 1.0 + np.clip(
        _smooth_noise(rng, n, speed_unevenness, smoothness), -0.9, None
    )
    progress = np.cumsum(speed)
    progress = (progress - progress[0]) / (progress[-1] - progress[0])
    angles = angle_start_deg + (angle_end_deg - angle_start_deg) * progress

    radii = radius_mean + _smooth_noise(rng, n, radius_wobble, smoothness)
    if rng.random() < arm_drop_probability:
        drop_center = rng.uniform(0.3, 0.7) * n
        drop_width = rng.uniform(0.08, 0.2) * n
        dip = np.exp(-0.5 * ((np.arange(n) - drop_center) / drop_width) ** 2)
        radii = radii * (1.0 - arm_drop_depth * dip)
    radii = np.maximum(radii, 0.15)

    facing = _smooth_noise(rng, n, facing_error_std_deg, smoothness)
    return Trajectory(
        times=times,
        angles_deg=angles,
        radii=radii,
        facing_error_deg=facing,
    )
