"""Shortest acoustic path from a source to an ear around the head.

Section 2 of the paper establishes experimentally (its Figure 5) that audible
sound does **not** penetrate the head: the signal reaching the far ear travels
a *diffracted* path that leaves the source, grazes the head tangentially, and
then hugs the boundary until it reaches the ear.  For a convex obstacle this
wrap-around geodesic is the physically shortest path, so its length divided by
the speed of sound is the first-tap delay the earbud microphone observes —
the quantity Equation (1) of the paper writes as ``dt = f(a, b, c, P)``.

This module computes that path exactly (to boundary-sampling resolution) for
the composite ellipse head of :class:`repro.geometry.head.HeadGeometry`:

- if the ear is *visible* from the source, the path is the straight segment;
- otherwise the path is ``|source -> tangent point| + arc(tangent point ->
  ear)`` where the tangent point is one of the two visibility horizons of the
  source, choosing the shorter total wrap.

For a convex body a boundary point ``q`` is visible from an external point
``P`` exactly when the outward normal at ``q`` faces ``P``
(``dot(n(q), P - q) > 0``), which makes the horizon search a vectorized scan
over the pre-sampled boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.vec import norm, normalize


@dataclass(frozen=True)
class PathResult:
    """Geometry of one source-to-ear propagation path.

    Attributes
    ----------
    length:
        Total path length in meters (straight segment plus wrap arc).
    direct:
        ``True`` when the ear has line of sight to the source.
    wrap_arc:
        Length of the boundary-hugging portion (0 for direct paths).
    tangent_point:
        Where the path first touches the head (``None`` for direct paths).
    arrival_direction:
        Unit vector of the propagation direction at the ear.  For direct
        paths this points from the source to the ear; for wrapped paths it is
        the boundary tangent oriented along the direction of travel.  The
        pinna multipath model keys on this direction.
    """

    length: float
    direct: bool
    wrap_arc: float
    tangent_point: Optional[np.ndarray]
    arrival_direction: np.ndarray


def _visibility_mask(head: HeadGeometry, source: np.ndarray) -> np.ndarray:
    """Boolean mask over boundary vertices visible from ``source``."""
    boundary = head.boundary
    to_source = source[None, :] - boundary.points
    return np.einsum("ij,ij->i", boundary.normals, to_source) > 0.0


def _boundary_tangent_at(head: HeadGeometry, index: int, travel_sign: int) -> np.ndarray:
    """Unit boundary tangent at vertex ``index`` oriented with ``travel_sign``.

    ``travel_sign`` is +1 when the wave travels in the direction of
    increasing vertex index (counter-clockwise), -1 otherwise.
    """
    pts = head.boundary.points
    n = pts.shape[0]
    tangent = pts[(index + 1) % n] - pts[(index - 1) % n]
    return normalize(travel_sign * tangent)


def path_to_boundary_point(
    head: HeadGeometry, source: np.ndarray, boundary_index: int
) -> PathResult:
    """Shortest acoustic path from ``source`` to any boundary vertex.

    The target can be an ear or any point "pasted on the face" — the setup
    of the paper's Section 2 diffraction experiment, where a test microphone
    is moved along the cheek.

    Raises
    ------
    GeometryError
        If the source lies inside the head.
    """
    source = np.asarray(source, dtype=float)
    if source.shape != (2,):
        raise GeometryError(f"source must be a 2D point, got shape {source.shape}")
    if head.contains(source):
        raise GeometryError(f"source {source} lies inside the head")
    boundary = head.boundary
    if not 0 <= boundary_index < boundary.n:
        raise GeometryError(
            f"boundary index {boundary_index} outside [0, {boundary.n})"
        )

    target = boundary.points[boundary_index]
    to_source = source - target
    distance = norm(to_source)
    if distance < 1e-9:
        # Source sits on the target itself (degenerate but well-defined).
        return PathResult(0.0, True, 0.0, None, np.array([0.0, 1.0]))

    if float(np.dot(boundary.normals[boundary_index], to_source)) > 0.0:
        return PathResult(
            length=float(distance),
            direct=True,
            wrap_arc=0.0,
            tangent_point=None,
            arrival_direction=normalize(target - source),
        )

    visible = _visibility_mask(head, source)
    if not visible.any():
        raise GeometryError(f"no boundary point visible from {source}")

    # The visible set of a convex body is one contiguous circular arc; its
    # two endpoints are the visibility horizons (tangent points).
    enters = visible & ~np.roll(visible, 1)  # first visible vertex (ccw)
    exits = visible & ~np.roll(visible, -1)  # last visible vertex (ccw)
    first_visible = int(np.flatnonzero(enters)[0])
    last_visible = int(np.flatnonzero(exits)[0])

    candidates = []
    # Wrapping from the *last* visible vertex continues counter-clockwise
    # (increasing index) through the shadow; from the *first* visible vertex
    # it goes clockwise.  Both eventually reach the shadowed target; the
    # physical path is the shorter.
    for tangent_index, travel_sign in ((last_visible, +1), (first_visible, -1)):
        tangent_point = boundary.points[tangent_index]
        arc = boundary.arc_between(tangent_index, boundary_index, travel_sign)
        total = float(norm(source - tangent_point)) + arc
        candidates.append((total, arc, tangent_index, travel_sign))

    total, arc, tangent_index, travel_sign = min(candidates, key=lambda c: c[0])
    return PathResult(
        length=total,
        direct=False,
        wrap_arc=arc,
        tangent_point=boundary.points[tangent_index].copy(),
        arrival_direction=_boundary_tangent_at(head, boundary_index, travel_sign),
    )


def propagation_path(head: HeadGeometry, source: np.ndarray, ear: Ear) -> PathResult:
    """Shortest acoustic path from an external ``source`` to ``ear``.

    Raises
    ------
    GeometryError
        If the source lies inside the head.
    """
    return path_to_boundary_point(head, source, head.ear_index(ear))


def path_delay(
    head: HeadGeometry,
    source: np.ndarray,
    ear: Ear,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> float:
    """First-tap arrival delay (seconds) from ``source`` to ``ear``."""
    return propagation_path(head, source, ear).length / speed_of_sound


def binaural_delays(
    head: HeadGeometry,
    source: np.ndarray,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> tuple[float, float]:
    """(left, right) first-tap delays in seconds for one source position."""
    return (
        path_delay(head, source, Ear.LEFT, speed_of_sound),
        path_delay(head, source, Ear.RIGHT, speed_of_sound),
    )


def euclidean_delay(
    head: HeadGeometry,
    source: np.ndarray,
    ear: Ear,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> float:
    """Straight-line delay ignoring diffraction (ablation baseline).

    This is the "through the head" model the paper's Section 2 experiment
    rules out; localization built on it is benchmarked in
    ``benchmarks/bench_ablation_diffraction.py``.
    """
    source = np.asarray(source, dtype=float)
    return float(norm(source - head.ear_position(ear))) / speed_of_sound
