"""Far-field (plane wave) arrival geometry.

When an emulated or real source is far from the head (beyond ~1 m, paper
Section 1 footnote 1), its rays arrive essentially parallel.  The wavefront
is then a line sweeping across the head, and each ear's arrival time is set
by (i) where the ear sits along the propagation direction and (ii) — for the
shadowed ear — the extra wrap around the head from the grazing point, exactly
as in the near-field case but with a line source at infinity.

Delays returned here are *relative to the wavefront passing the head center*;
only inter-aural differences and tap structure are physically meaningful,
which is all the HRTF pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.geometry.paths import _boundary_tangent_at
from repro.geometry.vec import unit_from_angle_deg


@dataclass(frozen=True)
class PlaneWaveArrival:
    """Arrival of a plane wave at one ear.

    Attributes
    ----------
    delay:
        Arrival time (s) relative to the wavefront crossing the head center.
        May be negative for the illuminated ear.
    direct:
        Whether the ear is on the illuminated side.
    wrap_arc:
        Boundary arc length traveled in the shadow (0 if illuminated).
    grazing_point:
        Boundary point where the shadowed path leaves the wavefront.
    arrival_direction:
        Unit propagation direction at the ear (plane-wave direction when
        illuminated, boundary tangent when wrapped).
    """

    delay: float
    direct: bool
    wrap_arc: float
    grazing_point: Optional[np.ndarray]
    arrival_direction: np.ndarray


def plane_wave_arrival(
    head: HeadGeometry,
    theta_deg: float,
    ear: Ear,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> PlaneWaveArrival:
    """Arrival of a plane wave from source direction ``theta_deg`` at ``ear``.

    ``theta_deg`` is the direction the sound *comes from* (library
    convention: 0 = front, 90 = left, 180 = back), so the wave propagates
    along ``-unit(theta)``.
    """
    if not np.isfinite(theta_deg):
        raise GeometryError(f"theta_deg must be finite, got {theta_deg!r}")
    u = -unit_from_angle_deg(float(theta_deg))  # propagation direction
    ear_pos = head.ear_position(ear)

    # Illuminated when the outward normal faces the incoming wave.
    if float(np.dot(head.outward_normal(ear_pos), u)) < 0.0:
        return PlaneWaveArrival(
            delay=float(np.dot(ear_pos, u)) / speed_of_sound,
            direct=True,
            wrap_arc=0.0,
            grazing_point=None,
            arrival_direction=u,
        )

    boundary = head.boundary
    illuminated = np.einsum("ij,j->i", boundary.normals, u) < 0.0
    if not illuminated.any():
        raise GeometryError("degenerate boundary: no illuminated vertex")

    enters = illuminated & ~np.roll(illuminated, 1)
    exits = illuminated & ~np.roll(illuminated, -1)
    first_lit = int(np.flatnonzero(enters)[0])
    last_lit = int(np.flatnonzero(exits)[0])

    ear_index = head.ear_index(ear)
    candidates = []
    for grazing_index, travel_sign in ((last_lit, +1), (first_lit, -1)):
        grazing = boundary.points[grazing_index]
        arc = boundary.arc_between(grazing_index, ear_index, travel_sign)
        delay = (float(np.dot(grazing, u)) + arc) / speed_of_sound
        candidates.append((delay, arc, grazing_index, travel_sign))

    delay, arc, grazing_index, travel_sign = min(candidates, key=lambda c: c[0])
    return PlaneWaveArrival(
        delay=delay,
        direct=False,
        wrap_arc=arc,
        grazing_point=boundary.points[grazing_index].copy(),
        arrival_direction=_boundary_tangent_at(head, ear_index, travel_sign),
    )


def plane_wave_delays(
    head: HeadGeometry,
    theta_deg: float,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> tuple[float, float]:
    """(left, right) plane-wave arrival delays for one source direction."""
    left = plane_wave_arrival(head, theta_deg, Ear.LEFT, speed_of_sound)
    right = plane_wave_arrival(head, theta_deg, Ear.RIGHT, speed_of_sound)
    return (left.delay, right.delay)


def interaural_delay(
    head: HeadGeometry,
    theta_deg: float,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> float:
    """Far-field interaural time difference ``t_left - t_right`` (seconds).

    Negative when the source is on the left (the left ear hears it first).
    This is the ``t(theta)`` template the binaural AoA estimator matches the
    measured first-tap difference against (paper Section 4.5).
    """
    left, right = plane_wave_delays(head, theta_deg, speed_of_sound)
    return left - right
