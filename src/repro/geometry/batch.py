"""Vectorized diffraction-path lengths for many sources at once.

UNIQ's sensor-fusion stage re-localizes every probe for every candidate head
parameter vector the optimizer tries, which needs *tens of thousands* of
source-to-ear path evaluations per personalization.  This module reimplements
the wrap-around shortest-path logic of :mod:`repro.geometry.paths` as pure
array operations over a whole batch of source points: one ``(m_sources,
n_boundary)`` visibility matrix per ear instead of ``m`` Python-level scans.

Results agree with the scalar solver to boundary-sampling resolution (the
test suite asserts equality to < 0.1 mm).
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry


def _horizon_indices(
    head: HeadGeometry, sources: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-source visibility horizons over the sampled boundary.

    Returns ``(visible, first_visible, last_visible)`` where ``visible`` is
    the ``(m, n)`` vertex-visibility matrix and the index arrays give the
    endpoints of each source's contiguous visible arc.  Computed once and
    shared between both ears — the dominant cost of batch localization.
    """
    boundary = head.boundary
    diff = sources[:, None, :] - boundary.points[None, :, :]
    visible = np.einsum("nk,mnk->mn", boundary.normals, diff) > 0.0
    enters = visible & ~np.roll(visible, 1, axis=1)
    exits = visible & ~np.roll(visible, -1, axis=1)
    # Exactly one entry/exit per row for external points of a convex body.
    return visible, np.argmax(enters, axis=1), np.argmax(exits, axis=1)


def _ear_lengths(
    head: HeadGeometry,
    sources: np.ndarray,
    ear: Ear,
    visible: np.ndarray,
    first_visible: np.ndarray,
    last_visible: np.ndarray,
    inside: np.ndarray,
) -> np.ndarray:
    boundary = head.boundary
    points = boundary.points
    ear_pos = head.ear_position(ear)
    ear_index = head.ear_index(ear)
    ear_visible = visible[:, ear_index]
    direct_length = np.linalg.norm(sources - ear_pos[None, :], axis=1)

    cum = boundary.cumulative_arc
    perimeter = boundary.perimeter

    def wrap_length(tangent_index: np.ndarray, travel_sign: int) -> np.ndarray:
        straight = np.linalg.norm(sources - points[tangent_index], axis=1)
        forward = (cum[ear_index] - cum[tangent_index]) % perimeter
        arc = forward if travel_sign >= 0 else (perimeter - forward) % perimeter
        return straight + arc

    wrapped = np.minimum(
        wrap_length(last_visible, +1), wrap_length(first_visible, -1)
    )
    lengths = np.where(ear_visible, direct_length, wrapped)
    return np.where(inside, np.nan, lengths)


def path_lengths_batch(
    head: HeadGeometry, sources: np.ndarray, ear: Ear
) -> np.ndarray:
    """Shortest-path lengths (m) from each source row to ``ear``.

    Parameters
    ----------
    head:
        The head geometry (any boundary resolution).
    sources:
        Array of shape ``(m, 2)``.

    Returns
    -------
    Array of shape ``(m,)`` of path lengths.  Sources inside the head yield
    ``nan`` (the caller decides whether that is an error or an out-of-domain
    grid cell).
    """
    sources = np.asarray(sources, dtype=float)
    if sources.ndim != 2 or sources.shape[1] != 2:
        raise GeometryError(f"sources must have shape (m, 2), got {sources.shape}")
    inside = head.contains(sources)
    visible, first_visible, last_visible = _horizon_indices(head, sources)
    return _ear_lengths(
        head, sources, ear, visible, first_visible, last_visible, inside
    )


def binaural_delays_batch(
    head: HeadGeometry,
    sources: np.ndarray,
    speed_of_sound: float = SPEED_OF_SOUND,
) -> tuple[np.ndarray, np.ndarray]:
    """(left, right) first-tap delays in seconds for each source row.

    The visibility scan — the expensive part — is computed once and shared
    between the two ears.
    """
    sources = np.asarray(sources, dtype=float)
    if sources.ndim != 2 or sources.shape[1] != 2:
        raise GeometryError(f"sources must have shape (m, 2), got {sources.shape}")
    inside = head.contains(sources)
    visible, first_visible, last_visible = _horizon_indices(head, sources)
    left = _ear_lengths(
        head, sources, Ear.LEFT, visible, first_visible, last_visible, inside
    )
    right = _ear_lengths(
        head, sources, Ear.RIGHT, visible, first_visible, last_visible, inside
    )
    return left / speed_of_sound, right / speed_of_sound
