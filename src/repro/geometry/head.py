"""The paper's two-half-ellipse head model (Section 4.1, Figure 8).

The head cross-section (the horizontal plane through both ears) is modeled as
two half-ellipses joined at the ear line:

- the *front* half (nose side, ``y >= 0``) is half of an ellipse with
  semi-axes ``(a, b)``,
- the *back* half (``y <= 0``) is half of an ellipse with semi-axes
  ``(a, c)``.

``a`` is the half-width of the head, so both ears lie exactly on the boundary
at ``(+a, 0)`` (left) and ``(-a, 0)`` (right).  The composite is convex and
C0-continuous, with matching vertical tangents at the ears, which is exactly
what the wrap-around diffraction path computation in
:mod:`repro.geometry.paths` relies on.

The paper avoids spherical models because heads are not front/back symmetric;
the three scalars ``E = (a, b, c)`` are the "head parameters" that UNIQ's
sensor-fusion stage estimates per user.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.errors import GeometryError

#: Number of boundary samples used for wrap-path computation.  720 samples on
#: a ~60 cm circumference is <1 mm spacing — far below a 48 kHz sample period
#: (~7 mm of travel), so discretization never moves a channel tap.
DEFAULT_BOUNDARY_SAMPLES = 720

_MIN_AXIS_M = 0.02
_MAX_AXIS_M = 0.30


class Ear(enum.Enum):
    """Which ear a path or channel refers to."""

    LEFT = "left"
    RIGHT = "right"

    @property
    def sign(self) -> int:
        """+1 for the left ear (at ``(+a, 0)``), -1 for the right."""
        return 1 if self is Ear.LEFT else -1

    @property
    def opposite(self) -> "Ear":
        return Ear.RIGHT if self is Ear.LEFT else Ear.LEFT


@dataclass(frozen=True)
class _Boundary:
    """Densely sampled head boundary with cached per-vertex data.

    Vertices run counter-clockwise in the library frame starting at the nose
    (``psi = 0``), i.e. in order of increasing polar angle psi: nose ->
    left ear (index ``n/4``) -> back (``n/2``) -> right ear (``3n/4``).
    """

    points: np.ndarray  # (n, 2) vertices
    normals: np.ndarray  # (n, 2) outward unit normals
    cumulative_arc: np.ndarray  # (n + 1,) arc length from vertex 0, closed
    left_ear_index: int
    right_ear_index: int

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def perimeter(self) -> float:
        return float(self.cumulative_arc[-1])

    def arc_between(self, i: int, j: int, direction: int) -> float:
        """Arc length walking from vertex ``i`` to vertex ``j``.

        ``direction`` is +1 to walk in order of increasing index (counter-
        clockwise) and -1 for the other way.  The result is in
        ``[0, perimeter)``.
        """
        forward = (self.cumulative_arc[j] - self.cumulative_arc[i]) % self.perimeter
        if direction >= 0:
            return float(forward)
        return float((self.perimeter - forward) % self.perimeter)


@dataclass(frozen=True)
class HeadGeometry:
    """Composite two-half-ellipse head with parameters ``E = (a, b, c)``.

    Parameters
    ----------
    a:
        Head half-width (m); the ears sit at ``(+-a, 0)``.
    b:
        Front half-ellipse depth (m): head center to nose-tip plane.
    c:
        Back half-ellipse depth (m): head center to the back of the head.
    n_boundary:
        Number of boundary samples (must be a multiple of 4 so both ears
        fall exactly on sample vertices).
    """

    a: float
    b: float
    c: float
    n_boundary: int = DEFAULT_BOUNDARY_SAMPLES
    _boundary: _Boundary = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name, value in (("a", self.a), ("b", self.b), ("c", self.c)):
            if not np.isfinite(value) or not _MIN_AXIS_M <= value <= _MAX_AXIS_M:
                raise GeometryError(
                    f"head axis {name}={value!r} outside plausible range "
                    f"[{_MIN_AXIS_M}, {_MAX_AXIS_M}] m"
                )
        if self.n_boundary < 16 or self.n_boundary % 4 != 0:
            raise GeometryError(
                f"n_boundary must be a multiple of 4 and >= 16, got {self.n_boundary}"
            )
        object.__setattr__(self, "_boundary", self._build_boundary())

    @classmethod
    def average(cls, n_boundary: int = DEFAULT_BOUNDARY_SAMPLES) -> "HeadGeometry":
        """The population-average head used for the global HRTF template."""
        return cls(
            a=constants.AVERAGE_HEAD_HALF_WIDTH_M,
            b=constants.AVERAGE_HEAD_FRONT_DEPTH_M,
            c=constants.AVERAGE_HEAD_BACK_DEPTH_M,
            n_boundary=n_boundary,
        )

    @property
    def parameters(self) -> tuple[float, float, float]:
        """The head parameter vector ``E = (a, b, c)``."""
        return (self.a, self.b, self.c)

    def with_parameters(self, a: float, b: float, c: float) -> "HeadGeometry":
        """A new geometry with the same resolution and new axes."""
        return HeadGeometry(a=a, b=b, c=c, n_boundary=self.n_boundary)

    def ear_position(self, ear: Ear) -> np.ndarray:
        """Cartesian position of an ear on the boundary."""
        return np.array([ear.sign * self.a, 0.0])

    def radius_at(self, psi_deg: float | np.ndarray) -> np.ndarray:
        """Boundary radius at polar angle(s) ``psi`` (degrees, nose = 0)."""
        psi = np.deg2rad(np.asarray(psi_deg, dtype=float))
        s, co = np.sin(psi), np.cos(psi)
        depth = np.where(co >= 0.0, self.b, self.c)
        return 1.0 / np.sqrt((s / self.a) ** 2 + (co / depth) ** 2)

    def boundary_point(self, psi_deg: float | np.ndarray) -> np.ndarray:
        """Boundary point(s) at polar angle(s) ``psi`` (degrees)."""
        psi = np.deg2rad(np.asarray(psi_deg, dtype=float))
        r = self.radius_at(np.rad2deg(psi))
        return np.stack([r * np.sin(psi), r * np.cos(psi)], axis=-1)

    def outward_normal(self, point: np.ndarray) -> np.ndarray:
        """Outward unit normal of the boundary at/near ``point``.

        Uses the analytic ellipse gradient of whichever half contains the
        point's ``y`` sign; at the ear line both halves agree.
        """
        p = np.asarray(point, dtype=float)
        depth = np.where(p[..., 1] >= 0.0, self.b, self.c)
        grad = np.stack([p[..., 0] / self.a**2, p[..., 1] / depth**2], axis=-1)
        length = np.linalg.norm(grad, axis=-1, keepdims=True)
        return grad / length

    def contains(self, point: np.ndarray, margin: float = 0.0) -> bool | np.ndarray:
        """Whether point(s) lie strictly inside the head (shrunk by ``margin``).

        ``margin`` > 0 treats a thin shell inside the boundary as outside,
        which the path solver uses to keep grazing rays numerically stable.
        """
        p = np.asarray(point, dtype=float)
        depth = np.where(p[..., 1] >= 0.0, self.b, self.c)
        level = (p[..., 0] / self.a) ** 2 + (p[..., 1] / depth) ** 2
        inside = level < (1.0 - margin) ** 2
        return bool(inside) if np.ndim(inside) == 0 else inside

    @property
    def boundary(self) -> _Boundary:
        """The cached dense boundary sampling."""
        return self._boundary

    def _build_boundary(self) -> _Boundary:
        n = self.n_boundary
        psi_deg = np.arange(n) * (360.0 / n)
        points = self.boundary_point(psi_deg)
        normals = self.outward_normal(points)
        closed = np.vstack([points, points[:1]])
        seglen = np.linalg.norm(np.diff(closed, axis=0), axis=1)
        cumulative = np.concatenate([[0.0], np.cumsum(seglen)])
        return _Boundary(
            points=points,
            normals=normals,
            cumulative_arc=cumulative,
            left_ear_index=n // 4,
            right_ear_index=3 * n // 4,
        )

    def ear_index(self, ear: Ear) -> int:
        """Boundary vertex index of an ear."""
        b = self.boundary
        return b.left_ear_index if ear is Ear.LEFT else b.right_ear_index
