"""Small 2D vector helpers shared across the geometry package.

Points are ``numpy`` arrays of shape ``(2,)`` (or ``(n, 2)`` for batches).
Angles follow the library convention: ``theta`` in degrees, measured from the
nose direction (+y) toward the left ear (+x), so

- ``theta = 0``   -> straight ahead of the nose,
- ``theta = 90``  -> the left-ear direction,
- ``theta = 180`` -> directly behind the head.

This matches the paper's measurement sweep (sources on the user's left,
0 at the nose, 180 at the back of the head).
"""

from __future__ import annotations

import numpy as np


def unit_from_angle_deg(theta_deg: float | np.ndarray) -> np.ndarray:
    """Unit vector(s) pointing *away from the head center* at ``theta_deg``.

    >>> unit_from_angle_deg(0.0)          # nose direction
    array([0., 1.])
    >>> np.round(unit_from_angle_deg(90.0), 12)  # left-ear direction
    array([1., 0.])
    """
    theta = np.deg2rad(np.asarray(theta_deg, dtype=float))
    return np.stack([np.sin(theta), np.cos(theta)], axis=-1)


def angle_deg_of(point: np.ndarray) -> float | np.ndarray:
    """Polar angle (degrees, library convention) of point(s) about the origin.

    The result lies in ``(-180, 180]``; the left semicircle used by the paper
    maps to ``[0, 180]`` and the right semicircle to negative angles.
    """
    p = np.asarray(point, dtype=float)
    ang = np.rad2deg(np.arctan2(p[..., 0], p[..., 1]))
    return float(ang) if np.ndim(ang) == 0 else ang


def polar_to_cartesian(r: float | np.ndarray, theta_deg: float | np.ndarray) -> np.ndarray:
    """Convert polar ``(r, theta)`` to Cartesian ``(x, y)``."""
    return np.asarray(r, dtype=float)[..., None] * unit_from_angle_deg(theta_deg)


def norm(v: np.ndarray) -> float | np.ndarray:
    """Euclidean length of vector(s) along the last axis."""
    n = np.linalg.norm(np.asarray(v, dtype=float), axis=-1)
    return float(n) if np.ndim(n) == 0 else n


def normalize(v: np.ndarray) -> np.ndarray:
    """Unit vector(s) along ``v``; raises on zero vectors."""
    v = np.asarray(v, dtype=float)
    length = np.linalg.norm(v, axis=-1, keepdims=True)
    if np.any(length == 0.0):
        raise ValueError("cannot normalize a zero vector")
    return v / length


def wrap_angle_deg(angle: float | np.ndarray) -> float | np.ndarray:
    """Wrap angle(s) to ``(-180, 180]`` degrees."""
    a = np.asarray(angle, dtype=float)
    wrapped = -((-a + 180.0) % 360.0 - 180.0)
    return float(wrapped) if np.ndim(wrapped) == 0 else wrapped


def angular_difference_deg(a: float | np.ndarray, b: float | np.ndarray) -> float | np.ndarray:
    """Absolute smallest difference between two angles, in ``[0, 180]``."""
    d = np.abs(wrap_angle_deg(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))
    return float(d) if np.ndim(d) == 0 else d
