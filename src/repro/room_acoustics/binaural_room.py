"""Binaural rendering inside a room: every reflection gets its own HRTF.

A single RIR-then-HRTF convolution treats all reflections as arriving from
the direct-path direction, which is audibly wrong — a wall echo from behind
must be filtered by the *behind* HRTF.  This renderer therefore walks the
image-source list and accumulates, per ear,

    y_ear = sum_images  gain_i * delay(tau_i) * (HRIR_ear(angle_i) * s)

using the personal HRTF table for each image's arrival direction.  This is
the "RIR + HRTF" integration Section 7 of the paper calls the missing piece
for externalization.

The paper's 2D prototype covers the left semicircle; right-side arrivals
are rendered by mirror symmetry (swap the ear feeds for ``-theta``), the
same convention as the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.hrtf.table import HRTFTable
from repro.room_acoustics.image_source import ImageSource, ShoeboxRoom
from repro.signals.delays import apply_fractional_delay


@dataclass
class BinauralRoomRenderer:
    """Renders sources placed inside a room through a personal HRTF table.

    Parameters
    ----------
    table:
        The listener's HRTF table (far-field entries are used; room
        reflections travel meters, safely in the far field).
    room:
        The shoebox room both the source and listener live in.
    max_order:
        Maximum number of wall bounces to render.
    """

    table: HRTFTable
    room: ShoeboxRoom
    max_order: int = 3

    def _hrir_for_arrival(self, arrival_deg: float):
        """(left, right) HRIR for an arrival angle in (-180, 180].

        Left-semicircle angles use the table directly; right-side angles
        mirror (swap ears).  Angles behind the +-180 seam clamp to the
        table edge.
        """
        mirrored = arrival_deg < 0
        angle = float(np.clip(abs(arrival_deg), *self.table.angle_span()))
        entry = self.table.lookup(angle, "far")
        if mirrored:
            return entry.right, entry.left
        return entry.left, entry.right

    def render(
        self,
        signal: np.ndarray,
        source_position: np.ndarray,
        listener_position: np.ndarray,
        listener_facing_deg: float = 0.0,
        fs: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Binaural pair for a mono source at a position inside the room.

        Returns arrays long enough to hold the longest rendered reflection.
        """
        signal = np.asarray(signal, dtype=float)
        if signal.ndim != 1 or signal.shape[0] < 2:
            raise SignalError("signal must be a 1D array with >= 2 samples")
        fs = fs if fs is not None else self.table.fs
        if fs != self.table.fs:
            raise SignalError(f"fs {fs} != table rate {self.table.fs}")

        images = self.room.image_sources(
            np.asarray(source_position, dtype=float),
            np.asarray(listener_position, dtype=float),
            listener_facing_deg,
            self.max_order,
        )
        if not images:
            raise SignalError("no image sources above the gain floor")

        ir_len = self.table.far[0].n_samples
        max_delay = max(img.delay_s for img in images)
        n_out = signal.shape[0] + int(np.ceil(max_delay * fs)) + ir_len + 32
        out_left = np.zeros(n_out)
        out_right = np.zeros(n_out)
        for image in images:
            h_left, h_right = self._hrir_for_arrival(image.arrival_angle_deg)
            delay_samples = image.delay_s * fs
            for h, out in ((h_left, out_left), (h_right, out_right)):
                contribution = np.convolve(signal, image.gain * h)
                delayed = apply_fractional_delay(
                    contribution, delay_samples,
                    output_length=min(
                        n_out,
                        contribution.shape[0] + int(np.ceil(delay_samples)) + 32,
                    ),
                )
                out[: delayed.shape[0]] += delayed
        return out_left, out_right

    def echo_summary(
        self,
        source_position: np.ndarray,
        listener_position: np.ndarray,
        listener_facing_deg: float = 0.0,
    ) -> list[ImageSource]:
        """The image sources that :meth:`render` would use (for inspection)."""
        return self.room.image_sources(
            np.asarray(source_position, dtype=float),
            np.asarray(listener_position, dtype=float),
            listener_facing_deg,
            self.max_order,
        )
