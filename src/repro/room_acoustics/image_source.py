"""2D shoebox image-source model.

The classic Allen-Berkley construction, in the horizontal plane the rest of
the library lives in: reflections off the four walls of a rectangular room
are replaced by *image sources* — mirrored copies of the source — each an
independent free-field arrival with its own direction, delay, and
accumulated wall absorption.  Directionality is the point: a binaural
renderer must apply a *different* HRTF to every image.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_SOUND
from repro.errors import GeometryError
from repro.geometry.vec import angle_deg_of
from repro.physics import spreading_gain


@dataclass(frozen=True)
class ImageSource:
    """One virtual source: a specific sequence of wall reflections.

    Attributes
    ----------
    position:
        Image location in room coordinates (m).
    order:
        Number of wall bounces (0 = the direct sound).
    gain:
        Amplitude factor: accumulated wall reflection coefficients times
        spherical spreading to the listener.
    delay_s:
        Propagation time to the listener.
    arrival_angle_deg:
        Direction of arrival *in the listener's head frame* (library
        convention: 0 = the way the listener faces, 90 = their left).
    """

    position: np.ndarray
    order: int
    gain: float
    delay_s: float
    arrival_angle_deg: float


@dataclass(frozen=True)
class ShoeboxRoom:
    """A rectangular room: ``[0, width] x [0, depth]`` meters.

    Parameters
    ----------
    width, depth:
        Room dimensions (m).
    absorption:
        Wall energy absorption coefficient in (0, 1]; the amplitude
        reflection coefficient is ``sqrt(1 - absorption)``.
    """

    width: float
    depth: float
    absorption: float = 0.35

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth <= 0:
            raise GeometryError(
                f"room dimensions must be positive, got {self.width}x{self.depth}"
            )
        if not 0.0 < self.absorption <= 1.0:
            raise GeometryError(
                f"absorption must be in (0, 1], got {self.absorption}"
            )

    @property
    def reflection_coefficient(self) -> float:
        return float(np.sqrt(1.0 - self.absorption))

    def _contains(self, point: np.ndarray) -> bool:
        return bool(
            0.0 < point[0] < self.width and 0.0 < point[1] < self.depth
        )

    def image_sources(
        self,
        source: np.ndarray,
        listener: np.ndarray,
        listener_facing_deg: float = 0.0,
        max_order: int = 3,
        min_gain: float = 1e-3,
    ) -> list[ImageSource]:
        """Enumerate image sources up to ``max_order`` reflections.

        Parameters
        ----------
        source, listener:
            Positions in room coordinates; both must be inside the room.
        listener_facing_deg:
            Which way the listener faces, measured in room coordinates the
            same way the library measures theta (0 = +y, 90 = +x).  Arrival
            angles are returned relative to this facing.
        min_gain:
            Images weaker than this are dropped.

        Returns
        -------
        Image sources sorted by delay (the direct sound first).
        """
        source = np.asarray(source, dtype=float)
        listener = np.asarray(listener, dtype=float)
        if not self._contains(source):
            raise GeometryError(f"source {source} outside the room")
        if not self._contains(listener):
            raise GeometryError(f"listener {listener} outside the room")
        if max_order < 0:
            raise GeometryError(f"max_order must be >= 0, got {max_order}")

        reflection = self.reflection_coefficient
        images = []
        span = range(-max_order, max_order + 1)
        for nx, ny in itertools.product(span, span):
            # Mirror count along each axis; the image position follows the
            # standard unfolding of the room lattice.
            order = abs(nx) + abs(ny)
            if order > max_order:
                continue
            x = self._image_coordinate(source[0], self.width, nx)
            y = self._image_coordinate(source[1], self.depth, ny)
            position = np.array([x, y])
            offset = position - listener
            distance = float(np.linalg.norm(offset))
            if distance < 1e-6:
                continue
            gain = float(reflection**order * spreading_gain(distance))
            if gain < min_gain:
                continue
            room_bearing = float(angle_deg_of(offset))
            arrival = room_bearing - listener_facing_deg
            # Wrap to (-180, 180].
            arrival = float(-((-arrival + 180.0) % 360.0 - 180.0))
            images.append(
                ImageSource(
                    position=position,
                    order=order,
                    gain=gain,
                    delay_s=distance / SPEED_OF_SOUND,
                    arrival_angle_deg=arrival,
                )
            )
        images.sort(key=lambda img: img.delay_s)
        return images

    @staticmethod
    def _image_coordinate(coordinate: float, size: float, n: int) -> float:
        """Mirrored coordinate after the ``n``-th lattice unfolding.

        Even ``n`` translates the room; odd ``n`` additionally mirrors, so
        e.g. ``n = -1`` reflects across the wall at 0 and ``n = +1`` across
        the wall at ``size``.
        """
        if n % 2 == 0:
            return n * size + coordinate
        return n * size + (size - coordinate)

    def reverberation_time_s(self) -> float:
        """Crude Sabine RT60 estimate for sanity checks (2D adaptation)."""
        area = self.width * self.depth
        perimeter = 2 * (self.width + self.depth)
        return float(0.16 * area / max(self.absorption * perimeter, 1e-9))
