"""Room acoustics: image-source room impulse responses + binaural rendering.

Paper Section 7, "Integrating Room Multipath": "a real immersive experience
can only be achieved by filtering the earphone sound with both the room
impulse response (RIR) and the HRTF."  This package implements that
integration — the piece the paper leaves as future work:

- :mod:`~repro.room_acoustics.image_source` — a 2D shoebox image-source
  model that enumerates wall reflections as *directional* virtual sources;
- :mod:`~repro.room_acoustics.binaural_room` — renders a source inside a
  room by passing **each image source through the HRTF for its own arrival
  direction**, which is precisely why a plain (single-direction) RIR
  convolution is not enough for externalization.
"""

from repro.room_acoustics.image_source import ImageSource, ShoeboxRoom
from repro.room_acoustics.binaural_room import BinauralRoomRenderer

__all__ = ["ImageSource", "ShoeboxRoom", "BinauralRoomRenderer"]
