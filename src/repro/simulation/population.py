"""Subject cohorts and the average subject behind the global template.

The paper evaluates on 5 volunteers; :func:`make_population` builds any
number of reproducible virtual volunteers, and :func:`average_subject` is the
"one person measured in the lab" whose HRTF every product ships as the
global template.
"""

from __future__ import annotations

from repro.simulation.person import VirtualSubject

#: Seed offset so population subjects never collide with ad-hoc test seeds.
_POPULATION_SEED_BASE = 1_000


def make_population(n: int, base_seed: int = _POPULATION_SEED_BASE) -> list[VirtualSubject]:
    """``n`` reproducible virtual volunteers named like the paper's.

    >>> [s.name for s in make_population(2)]
    ['volunteer-1', 'volunteer-2']
    """
    if n < 1:
        raise ValueError(f"population size must be >= 1, got {n}")
    return [
        VirtualSubject.random(base_seed + i, name=f"volunteer-{i + 1}")
        for i in range(n)
    ]


def average_subject() -> VirtualSubject:
    """The population-average subject (source of the global HRTF template)."""
    return VirtualSubject.average()
