"""One full personalization capture: the phone sweep around the head.

:class:`MeasurementSession` plays the role of the paper's measurement
procedure: the user sweeps the phone along a (hand-perturbed) arc while the
phone chirps every ~quarter second and logs its gyroscope.  Its
:meth:`~MeasurementSession.run` method returns a :class:`SessionData` holding
exactly the three inputs UNIQ's algorithm is allowed to see — the earbud
recordings, the IMU trace, and the played probe — plus a ``truth`` block
(phone positions, the subject model) that only evaluation code may touch,
standing in for the paper's overhead ground-truth camera.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_SAMPLE_RATE
from repro.errors import SignalError
from repro.geometry.trajectory import Trajectory, hand_motion_trajectory
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.simulation.hardware import SpeakerMicResponse
from repro.simulation.imu import GyroscopeModel, IMUTrace
from repro.simulation.person import VirtualSubject
from repro.simulation.propagation import record_near_field
from repro.simulation.room import RoomModel
from repro.signals.waveforms import probe_chirp


@dataclass(frozen=True)
class ProbeMeasurement:
    """Earbud recordings of one probe emission."""

    time: float
    left: np.ndarray
    right: np.ndarray


@dataclass(frozen=True)
class SessionTruth:
    """Ground truth for evaluation only (the 'overhead camera').

    Algorithm code must never read this — it is what UNIQ estimates.
    """

    subject: VirtualSubject
    trajectory: Trajectory
    probe_sample_indices: np.ndarray

    def probe_angles_deg(self) -> np.ndarray:
        """True polar angle of the phone at each probe emission."""
        return self.trajectory.angles_deg[self.probe_sample_indices]

    def probe_radii(self) -> np.ndarray:
        """True phone distance from the head center at each probe."""
        return self.trajectory.radii[self.probe_sample_indices]

    def probe_positions(self) -> np.ndarray:
        """True Cartesian phone positions at each probe, shape ``(n, 2)``."""
        return self.trajectory.positions()[self.probe_sample_indices]


@dataclass(frozen=True)
class SessionData:
    """Everything one capture produced.

    ``probes``, ``imu``, ``probe_signal`` and ``fs`` are the algorithm's
    inputs; ``truth`` is evaluation-only.
    """

    fs: int
    probe_signal: np.ndarray
    probes: tuple[ProbeMeasurement, ...]
    imu: IMUTrace
    truth: SessionTruth

    @property
    def n_probes(self) -> int:
        return len(self.probes)


@dataclass
class MeasurementSession:
    """Configuration and execution of one simulated capture.

    Parameters mirror the physical setup: which subject wears the earbuds,
    how their arm moves, the probe repetition interval, hardware coloration,
    room acoustics, microphone noise, and gyro quality.  All randomness
    flows from ``seed``.
    """

    subject: VirtualSubject
    seed: int = 0
    fs: int = DEFAULT_SAMPLE_RATE
    probe_interval_s: float = 0.25
    trajectory: Trajectory | None = None
    gyro: GyroscopeModel = field(default_factory=GyroscopeModel)
    hardware: SpeakerMicResponse | None = None
    room: RoomModel | None = field(default_factory=RoomModel.typical_living_room)
    noise_std: float = 0.005
    probe_signal: np.ndarray | None = None

    def run(self) -> SessionData:
        """Simulate the capture and return the session data."""
        rng = np.random.default_rng(self.seed)
        trajectory = self.trajectory
        if trajectory is None:
            trajectory = hand_motion_trajectory(rng)
        probe = (
            self.probe_signal
            if self.probe_signal is not None
            else probe_chirp(self.fs)
        )
        if self.probe_interval_s <= 0:
            raise SignalError("probe_interval_s must be positive")

        emission_times = np.arange(
            trajectory.times[0], trajectory.times[-1], self.probe_interval_s
        )
        if emission_times.shape[0] < 3:
            raise SignalError(
                "trajectory too short for the probe interval; need >= 3 probes"
            )
        indices = np.searchsorted(trajectory.times, emission_times)
        indices = np.clip(indices, 0, len(trajectory) - 1)
        positions = trajectory.positions()

        probes = []
        with obs_trace.span(
            "session.run",
            n_probes=int(indices.shape[0]),
            fs=self.fs,
            sweep_s=float(trajectory.times[-1] - trajectory.times[0]),
        ) as span:
            with obs_trace.span("session.render_probes"):
                for idx in indices:
                    left, right = record_near_field(
                        self.subject,
                        positions[idx],
                        probe,
                        fs=self.fs,
                        rng=rng,
                        hardware=self.hardware,
                        room=self.room,
                        noise_std=self.noise_std,
                    )
                    probes.append(
                        ProbeMeasurement(
                            time=float(trajectory.times[idx]), left=left, right=right
                        )
                    )
            obs_metrics.counter("session.probes_rendered").inc(len(probes))
            obs_metrics.counter("session.runs").inc()
            with obs_trace.span("session.imu"):
                imu = self.gyro.measure(trajectory, rng)
            span.set("n_rendered", len(probes))
        return SessionData(
            fs=self.fs,
            probe_signal=probe,
            probes=tuple(probes),
            imu=imu,
            truth=SessionTruth(
                subject=self.subject,
                trajectory=trajectory,
                probe_sample_indices=indices,
            ),
        )
