"""Parametric pinna multipath model.

Section 2 of the paper establishes two empirical facts about the pinna:

1. For one person, the pinna's impulse response varies smoothly and almost
   1:1 with the arrival angle (Figure 2a: strongly diagonal correlation
   matrix at ~20 degree resolution).
2. Across people, pinna responses at the same angle are markedly different
   (Figure 2b), which is the whole case for personalization.

We model the pinna as a train of micro-echoes added to the direct arrival.
Each echo ``j`` has a delay and gain that vary *smoothly* with the local
arrival direction ``gamma`` through low-order sinusoids whose coefficients
are drawn per subject and per ear:

    delay_j(gamma) = base_j + amp_j * sin(k_j * gamma + phase_j)
    gain_j(gamma)  = level_j * (0.7 + 0.3 * sin(m_j * gamma + psi_j))

Low harmonic orders ``k_j, m_j`` in {1, 2, 3} give the within-person angular
smoothness of fact (1); the random per-person coefficients give the
across-person dissimilarity of fact (2).  Echo delays span 0.05-0.9 ms, the
physical scale of pinna/head-surface micro-multipath.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

#: Default number of micro-echoes per pinna.  Six strong echoes whose combined
#: energy rivals the first tap's makes the HRIR *shape* (not the trivial
#: direct tap) dominate similarity metrics — real pinnae do the same, which
#: is why the paper's cross-user correlations sit around 0.3-0.7 (Fig. 2b).
DEFAULT_N_ECHOES = 6

_DELAY_MIN_S = 0.05e-3
_DELAY_MAX_S = 0.9e-3


@dataclass(frozen=True)
class PinnaModel:
    """Angle-dependent micro-echo train for one ear of one subject.

    All arrays have shape ``(n_echoes,)``.  Delays are seconds *after* the
    first (direct/diffracted) tap; gains are relative to the first tap's
    amplitude.
    """

    base_delays: np.ndarray
    delay_mod_amplitude: np.ndarray
    delay_mod_order: np.ndarray
    delay_mod_phase: np.ndarray
    levels: np.ndarray
    gain_mod_order: np.ndarray
    gain_mod_phase: np.ndarray

    def __post_init__(self) -> None:
        n = self.base_delays.shape[0]
        if n == 0:
            raise SignalError("pinna model needs at least one echo")
        for name in (
            "delay_mod_amplitude",
            "delay_mod_order",
            "delay_mod_phase",
            "levels",
            "gain_mod_order",
            "gain_mod_phase",
        ):
            if getattr(self, name).shape != (n,):
                raise SignalError(f"{name} must have shape ({n},)")
        if np.any(self.base_delays <= 0):
            raise SignalError("echo base delays must be positive")

    @property
    def n_echoes(self) -> int:
        return int(self.base_delays.shape[0])

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        n_echoes: int = DEFAULT_N_ECHOES,
        dispersion: float = 1.0,
    ) -> "PinnaModel":
        """Draw a random pinna.

        ``dispersion`` scales how far this pinna strays from the population
        center; 0 yields the population-average pinna used by the global
        template, 1 a typical individual.
        """
        if n_echoes < 1:
            raise SignalError("n_echoes must be >= 1")
        # Population-center echo train: roughly log-spaced delays with
        # decaying levels (early reflections from concha, helix, lobe...).
        # Individual pinna micro-geometry is essentially idiosyncratic, so at
        # full dispersion the echo delays are drawn afresh per subject rather
        # than perturbed around the center — this is what drives the paper's
        # low cross-user correlations (Fig. 2b).  Levels are set so the echo
        # train carries energy comparable to the first tap, as real pinna
        # resonances do.
        center_delays = np.geomspace(0.08e-3, 0.7e-3, n_echoes)
        blend = min(max(dispersion, 0.0), 1.0)
        personal_delays = np.sort(rng.uniform(_DELAY_MIN_S, 0.85e-3, n_echoes))
        base = (1.0 - blend) * center_delays + blend * personal_delays
        base = np.clip(base, _DELAY_MIN_S, _DELAY_MAX_S)
        center_levels = 1.45 * np.exp(-np.arange(n_echoes) / 4.0)
        levels = center_levels * np.exp(dispersion * rng.normal(0.0, 0.5, n_echoes))
        return cls(
            base_delays=base,
            delay_mod_amplitude=dispersion
            * rng.uniform(0.03e-3, 0.15e-3, n_echoes)
            + (1.0 - min(dispersion, 1.0)) * 0.05e-3,
            delay_mod_order=rng.integers(1, 4, n_echoes).astype(float),
            delay_mod_phase=rng.uniform(0.0, 2 * np.pi, n_echoes),
            levels=np.clip(levels, 0.02, 1.5),
            gain_mod_order=rng.integers(1, 4, n_echoes).astype(float),
            gain_mod_phase=rng.uniform(0.0, 2 * np.pi, n_echoes),
        )

    def echoes(self, arrival_angle_deg: float) -> tuple[np.ndarray, np.ndarray]:
        """(delays_s, gains) of the echo train for one arrival direction.

        ``arrival_angle_deg`` is the direction (library polar convention) of
        the propagation vector at the ear — near-field and far-field sources
        at the same nominal angle produce slightly different local arrival
        directions, which is precisely why near/far HRTFs differ.
        """
        if not np.isfinite(arrival_angle_deg):
            raise SignalError(f"arrival angle must be finite, got {arrival_angle_deg!r}")
        gamma = np.deg2rad(float(arrival_angle_deg))
        delays = self.base_delays + self.delay_mod_amplitude * np.sin(
            self.delay_mod_order * gamma + self.delay_mod_phase
        )
        gains = self.levels * (
            0.7 + 0.3 * np.sin(self.gain_mod_order * gamma + self.gain_mod_phase)
        )
        return np.clip(delays, _DELAY_MIN_S, _DELAY_MAX_S), gains
