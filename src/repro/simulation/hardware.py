"""Speaker / microphone hardware response and measurement noise.

The paper's Figure 16 shows the frequency response of its phone-speaker +
in-ear-microphone pair: unstable below ~50 Hz, reasonably flat (within a few
dB of ripple) across 100 Hz - 10 kHz, rolling off toward 20 kHz.  UNIQ
compensates this response by a co-located calibration measurement
(Section 4.6).  :class:`SpeakerMicResponse` synthesizes such a curve with
seeded ripple so the compensation stage has something real to undo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.signals.spectrum import apply_frequency_response

#: Frequencies at which the synthetic response is tabulated (log spaced).
_N_TABLE = 256
_F_MIN = 10.0
_F_MAX = 24_000.0


@dataclass(frozen=True)
class SpeakerMicResponse:
    """A magnitude-only transducer chain response.

    Attributes
    ----------
    freqs:
        Tabulated frequencies (Hz), strictly increasing.
    gains:
        Linear magnitude gains at ``freqs``.
    """

    freqs: np.ndarray
    gains: np.ndarray

    def __post_init__(self) -> None:
        if self.freqs.shape != self.gains.shape or self.freqs.ndim != 1:
            raise SignalError("freqs and gains must be matching 1D arrays")
        if np.any(np.diff(self.freqs) <= 0):
            raise SignalError("freqs must be strictly increasing")
        if np.any(self.gains < 0):
            raise SignalError("gains must be non-negative")

    @classmethod
    def ideal(cls) -> "SpeakerMicResponse":
        """A perfectly flat chain (for isolating algorithmic error)."""
        freqs = np.geomspace(_F_MIN, _F_MAX, _N_TABLE)
        return cls(freqs=freqs, gains=np.ones(_N_TABLE))

    @classmethod
    def typical(cls, rng: np.random.Generator | None = None) -> "SpeakerMicResponse":
        """A Figure-16-like response: LF instability, mid flatness, HF rolloff."""
        rng = rng if rng is not None else np.random.default_rng(2021)
        freqs = np.geomspace(_F_MIN, _F_MAX, _N_TABLE)
        # High-pass character of a tiny speaker: ~24 dB/oct below 80 Hz.
        highpass = 1.0 / np.sqrt(1.0 + (80.0 / freqs) ** 4)
        # Gentle top-end rolloff above 12 kHz.
        lowpass = 1.0 / np.sqrt(1.0 + (freqs / 15_000.0) ** 4)
        # Smooth +-3 dB ripple across the band plus wild sub-50 Hz wiggle.
        ripple_db = np.convolve(
            rng.normal(0.0, 5.0, _N_TABLE + 24), np.ones(25) / 25, mode="valid"
        )
        wild = np.where(freqs < 50.0, rng.normal(0.0, 8.0, _N_TABLE), 0.0)
        gains = highpass * lowpass * 10 ** ((ripple_db + wild) / 20.0)
        return cls(freqs=freqs, gains=gains)

    def gain_at(self, frequency: float | np.ndarray) -> np.ndarray:
        """Linear gain at arbitrary frequencies (interpolated, clamped ends)."""
        return np.interp(np.asarray(frequency, dtype=float), self.freqs, self.gains)

    def apply(self, signal: np.ndarray, fs: int) -> np.ndarray:
        """Filter a signal through the transducer chain."""
        return apply_frequency_response(signal, fs, self.freqs, self.gains)

    def response_db(self) -> tuple[np.ndarray, np.ndarray]:
        """(freqs, gain in dB) for plotting / Figure 16 reproduction."""
        with np.errstate(divide="ignore"):
            return self.freqs.copy(), 20.0 * np.log10(np.maximum(self.gains, 1e-12))
