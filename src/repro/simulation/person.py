"""Virtual subjects: a head geometry plus two pinnae.

A :class:`VirtualSubject` is the simulated stand-in for one of the paper's
volunteers.  Head axes are drawn from published anthropometric spreads
(half-width sigma ~4 mm, depth sigma ~5-6 mm); pinnae are drawn from
:class:`repro.simulation.pinna.PinnaModel`.  Everything is reproducible from
a single integer seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import GeometryError
from repro.geometry.head import Ear, HeadGeometry
from repro.simulation.pinna import PinnaModel

_HEAD_SIGMA = {"a": 0.004, "b": 0.006, "c": 0.005}


@dataclass(frozen=True)
class VirtualSubject:
    """One simulated person: head parameters plus left/right pinna models."""

    name: str
    head: HeadGeometry
    left_pinna: PinnaModel
    right_pinna: PinnaModel

    def pinna(self, ear: Ear) -> PinnaModel:
        """The pinna model for one ear."""
        return self.left_pinna if ear is Ear.LEFT else self.right_pinna

    @classmethod
    def random(
        cls,
        seed: int,
        name: str | None = None,
        head_dispersion: float = 1.0,
        pinna_dispersion: float = 1.0,
    ) -> "VirtualSubject":
        """Draw a reproducible random subject from the population model.

        ``head_dispersion`` / ``pinna_dispersion`` scale anatomical
        variability; both 0 yields exactly the average subject.
        """
        rng = np.random.default_rng(seed)
        axes = {}
        means = {
            "a": constants.AVERAGE_HEAD_HALF_WIDTH_M,
            "b": constants.AVERAGE_HEAD_FRONT_DEPTH_M,
            "c": constants.AVERAGE_HEAD_BACK_DEPTH_M,
        }
        for key, mean in means.items():
            axes[key] = float(mean + head_dispersion * rng.normal(0.0, _HEAD_SIGMA[key]))
        try:
            head = HeadGeometry(a=axes["a"], b=axes["b"], c=axes["c"])
        except GeometryError:
            # Extremely unlikely for sane dispersions; re-draw conservatively.
            head = HeadGeometry.average()
        return cls(
            name=name if name is not None else f"subject-{seed}",
            head=head,
            left_pinna=PinnaModel.random(rng, dispersion=pinna_dispersion),
            right_pinna=PinnaModel.random(rng, dispersion=pinna_dispersion),
        )

    @classmethod
    def average(cls, name: str = "average") -> "VirtualSubject":
        """The population-average subject.

        The global HRTF template — "carefully measured for one (or few
        people) in the lab and incorporated across all products" — is the
        far-field HRTF of this subject.
        """
        rng = np.random.default_rng(0)
        return cls(
            name=name,
            head=HeadGeometry.average(),
            left_pinna=PinnaModel.random(rng, dispersion=0.0),
            right_pinna=PinnaModel.random(rng, dispersion=0.0),
        )
