"""Late room reflections.

Home users measure in normal rooms, not anechoic chambers.  Room echoes
arrive well after the head/pinna multipath (a wall 1 m away adds >= 6 ms),
which is what lets UNIQ truncate them out (Section 4.6).  The model here is a
sparse exponentially decaying tap train — enough structure to verify that the
truncation stage actually protects the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


@dataclass(frozen=True)
class RoomModel:
    """Sparse specular room-echo generator.

    Attributes
    ----------
    first_echo_s:
        Earliest reflection arrival after the direct sound (s).
    decay_time_s:
        Exponential energy decay constant of the echo train.
    echo_density_hz:
        Average number of distinct echoes per second of IR tail.
    level:
        Amplitude of the first reflection relative to the direct tap.
    """

    first_echo_s: float = 0.007
    decay_time_s: float = 0.05
    echo_density_hz: float = 400.0
    level: float = 0.35
    max_tail_s: float = 0.08

    def __post_init__(self) -> None:
        if self.first_echo_s <= 0 or self.decay_time_s <= 0:
            raise SignalError("room time constants must be positive")
        if not 0 <= self.level <= 1:
            raise SignalError(f"room level must be in [0, 1], got {self.level}")

    @classmethod
    def anechoic(cls) -> "RoomModel | None":
        """No room at all (the paper's lab upper-bound condition)."""
        return None

    @classmethod
    def typical_living_room(cls) -> "RoomModel":
        """A reverberant but ordinary domestic room."""
        return cls()

    def echo_taps(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw one realization of room echoes: ``(delays_s, gains)``.

        Delays are relative to the direct-path arrival.  Gains alternate in
        sign randomly (wall reflections flip phase depending on impedance).
        """
        n = max(1, int(self.echo_density_hz * self.max_tail_s))
        delays = np.sort(
            rng.uniform(self.first_echo_s, self.first_echo_s + self.max_tail_s, n)
        )
        envelope = self.level * np.exp(-(delays - self.first_echo_s) / self.decay_time_s)
        gains = envelope * rng.uniform(0.4, 1.0, n) * rng.choice([-1.0, 1.0], n)
        return delays, gains
