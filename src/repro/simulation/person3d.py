"""3D virtual subjects and elevation-aware rendering.

Extends :class:`~repro.simulation.person.VirtualSubject` with the vertical
head axis and an elevation-dependent pinna: real pinna responses change
with elevation (that is how humans perceive it at all), modeled here as a
per-ear *elevation coupling* that shifts the echo train's angular argument
by ``coupling * tilt``.

The key trick: for any section plane (tilt) of the 3D head, an **effective
2D subject** is constructed whose head is the section cross-section and
whose pinnae absorb the tilt shift.  Every piece of the existing 2D
machinery — measurement sessions, fusion, interpolation, near-far
conversion, rendering — then runs unchanged inside that plane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.constants import DEFAULT_HRIR_DURATION_S, DEFAULT_SAMPLE_RATE
from repro.errors import GeometryError
from repro.geometry.head3d import HeadGeometry3D, direction_to_section
from repro.simulation.person import VirtualSubject
from repro.simulation.pinna import PinnaModel
from repro.simulation.propagation import render_far_field_hrir

_HEAD3D_SIGMA = {"a": 0.004, "b": 0.006, "c": 0.005, "d": 0.006}
_HEAD3D_MEAN = {"a": 0.0875, "b": 0.110, "c": 0.095, "d": 0.115}


def _tilted_pinna(pinna: PinnaModel, shift_deg: float) -> PinnaModel:
    """A pinna whose angular argument is shifted by ``shift_deg``.

    ``echoes(gamma)`` of the result equals ``echoes(gamma + shift)`` of the
    original: the shift folds into each sinusoid's phase (scaled by its
    harmonic order).
    """
    shift = np.deg2rad(shift_deg)
    return replace(
        pinna,
        delay_mod_phase=pinna.delay_mod_phase + pinna.delay_mod_order * shift,
        gain_mod_phase=pinna.gain_mod_phase + pinna.gain_mod_order * shift,
    )


@dataclass(frozen=True)
class VirtualSubject3D:
    """A simulated person with a 3D head and elevation-sensitive pinnae."""

    name: str
    head: HeadGeometry3D
    left_pinna: PinnaModel
    right_pinna: PinnaModel
    elevation_coupling_left: float
    elevation_coupling_right: float

    @classmethod
    def random(cls, seed: int, name: str | None = None) -> "VirtualSubject3D":
        """Draw a reproducible 3D subject from the population model."""
        rng = np.random.default_rng(seed)
        axes = {
            key: float(mean + rng.normal(0.0, _HEAD3D_SIGMA[key]))
            for key, mean in _HEAD3D_MEAN.items()
        }
        try:
            head = HeadGeometry3D(**axes)
        except GeometryError:
            head = HeadGeometry3D.average()
        return cls(
            name=name if name is not None else f"subject3d-{seed}",
            head=head,
            left_pinna=PinnaModel.random(rng),
            right_pinna=PinnaModel.random(rng),
            elevation_coupling_left=float(rng.uniform(0.4, 1.2)),
            elevation_coupling_right=float(rng.uniform(0.4, 1.2)),
        )

    def effective_subject(self, tilt_deg: float) -> VirtualSubject:
        """The 2D subject equivalent to this one inside a tilted section.

        All existing 2D machinery (sessions, the UNIQ pipeline, rendering)
        applies verbatim to the returned subject for sources lying in the
        tilted plane.
        """
        return VirtualSubject(
            name=f"{self.name}@tilt{tilt_deg:+.0f}",
            head=self.head.section(float(tilt_deg)),
            left_pinna=_tilted_pinna(
                self.left_pinna, self.elevation_coupling_left * float(tilt_deg)
            ),
            right_pinna=_tilted_pinna(
                self.right_pinna, self.elevation_coupling_right * float(tilt_deg)
            ),
        )


def render_far_field_hrir_3d(
    subject: VirtualSubject3D,
    azimuth_deg: float,
    elevation_deg: float,
    fs: int = DEFAULT_SAMPLE_RATE,
    duration_s: float = DEFAULT_HRIR_DURATION_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth far-field HRIR pair for a 3D source direction.

    Resolves the direction's ear-axis section plane and renders the plane
    wave inside it with the tilt-adjusted effective subject.
    """
    tilt, in_plane = direction_to_section(azimuth_deg, elevation_deg)
    effective = subject.effective_subject(tilt)
    return render_far_field_hrir(effective, in_plane, fs, duration_s)
