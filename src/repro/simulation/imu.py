"""Gyroscope simulation and the integration step UNIQ runs on real IMU data.

The phone's gyroscope senses the phone's *orientation* rate.  Because the
user keeps the screen facing their eyes, orientation tracks the polar angle
(paper Section 4.1 step 1) — up to the aiming error of a human arm, plus the
classic MEMS error terms: a slowly drifting bias, white rate noise, and a
small scale-factor error.  Integrating the measured rate accumulates the bias
into angle drift, which is exactly why the paper fuses acoustics instead of
trusting the IMU alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.geometry.trajectory import Trajectory


@dataclass(frozen=True)
class IMUTrace:
    """Timestamped gyroscope samples (the z-axis rate, deg/s)."""

    times: np.ndarray
    rate_dps: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.rate_dps.shape or self.times.ndim != 1:
            raise SignalError("times and rate_dps must be matching 1D arrays")
        if self.times.shape[0] >= 2 and not np.all(np.diff(self.times) > 0):
            raise SignalError("IMU timestamps must be strictly increasing")

    def __len__(self) -> int:
        return int(self.times.shape[0])


@dataclass(frozen=True)
class GyroscopeModel:
    """MEMS gyroscope error model.

    Attributes
    ----------
    bias_dps:
        Constant rate bias (deg/s).  Consumer MEMS parts sit around
        0.1-1 deg/s after factory calibration.
    bias_walk_dps:
        Standard deviation of the slowly wandering part of the bias.
    noise_std_dps:
        White rate noise standard deviation per sample.
    scale_error:
        Multiplicative scale factor error (0.01 = 1 % too fast).
    """

    bias_dps: float = 0.3
    bias_walk_dps: float = 0.05
    noise_std_dps: float = 0.4
    scale_error: float = 0.005

    @classmethod
    def ideal(cls) -> "GyroscopeModel":
        """A perfect gyroscope (for ablations)."""
        return cls(bias_dps=0.0, bias_walk_dps=0.0, noise_std_dps=0.0, scale_error=0.0)

    def measure(
        self, trajectory: Trajectory, rng: np.random.Generator | None = None
    ) -> IMUTrace:
        """Simulate gyro output for a phone following ``trajectory``."""
        rng = rng if rng is not None else np.random.default_rng()
        true_rate = trajectory.angular_velocity_dps()
        n = true_rate.shape[0]
        if n == 0:
            raise SignalError("cannot measure an empty trajectory")
        dt = np.gradient(trajectory.times) if n > 1 else np.ones(1)
        # Bias random-walks slowly around its constant part.
        walk = np.cumsum(rng.normal(0.0, self.bias_walk_dps, n) * np.sqrt(dt))
        measured = (
            (1.0 + self.scale_error) * true_rate
            + self.bias_dps
            + walk
            + rng.normal(0.0, self.noise_std_dps, n)
        )
        return IMUTrace(times=trajectory.times.copy(), rate_dps=measured)


def integrate_gyro(trace: IMUTrace, initial_angle_deg: float = 0.0) -> np.ndarray:
    """Trapezoidal integration of gyro rate into orientation angles (deg).

    This is UNIQ's step 1: "the IMU measurements are integrated to obtain
    the phone's orientation alpha".  The output has one angle per IMU sample;
    bias shows up as a linearly growing drift.
    """
    if len(trace) == 0:
        raise SignalError("cannot integrate an empty IMU trace")
    if len(trace) == 1:
        return np.array([initial_angle_deg])
    dt = np.diff(trace.times)
    increments = 0.5 * (trace.rate_dps[1:] + trace.rate_dps[:-1]) * dt
    return initial_angle_deg + np.concatenate([[0.0], np.cumsum(increments)])
