"""Tap-level binaural rendering: the simulator's acoustic ground truth.

Every recording the virtual earbuds make is a convolution of the played
signal with a *tap train* per ear:

1. the **first tap** at the diffraction-path delay, attenuated by spherical
   spreading and by an exponential shadow loss proportional to how far the
   wave had to creep around the head;
2. the **pinna micro-echoes** following the first tap (the personal part);
3. optional **room reflections** several milliseconds later.

Near-field sources are points (:func:`render_near_field_hrir`); far-field
sources are plane waves (:func:`render_far_field_hrir`).  The same code path
also produces the *ground-truth HRIRs* that evaluation compares against —
the simulator equivalent of the paper's anechoic-lab measurement.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    DEFAULT_HRIR_DURATION_S,
    DEFAULT_SAMPLE_RATE,
    SPEED_OF_SOUND,
)
from repro.errors import SignalError
from repro.geometry.head import Ear
from repro.geometry.paths import propagation_path
from repro.geometry.plane_wave import plane_wave_arrival
from repro.geometry.vec import angle_deg_of
from repro.physics import far_field_first_tap_gain, near_field_first_tap_gain
from repro.signals.delays import DEFAULT_KERNEL_HALF_WIDTH, add_tap
from repro.simulation.hardware import SpeakerMicResponse
from repro.simulation.person import VirtualSubject
from repro.simulation.room import RoomModel

#: Where the first tap sits inside a rendered HRIR window (s).  Leaves room
#: for the interpolation kernel's acausal skirt.
HRIR_PRE_DELAY_S = 0.4e-3


def _taps_for_ear(
    subject: VirtualSubject, source: np.ndarray, ear: Ear
) -> tuple[np.ndarray, np.ndarray]:
    """Absolute-time tap train (delays_s, gains) for a near-field point source."""
    path = propagation_path(subject.head, source, ear)
    if path.length <= 0:
        raise SignalError("source coincides with the ear")
    first_gain = float(near_field_first_tap_gain(path.length, path.wrap_arc))
    first_delay = path.length / SPEED_OF_SOUND
    arrival_angle = angle_deg_of(path.arrival_direction)
    echo_delays, echo_gains = subject.pinna(ear).echoes(arrival_angle)
    delays = np.concatenate([[first_delay], first_delay + echo_delays])
    gains = np.concatenate([[first_gain], first_gain * echo_gains])
    return delays, gains


def _far_taps_for_ear(
    subject: VirtualSubject, theta_deg: float, ear: Ear
) -> tuple[np.ndarray, np.ndarray]:
    """Tap train for a plane wave, delays relative to the head-center wavefront."""
    arrival = plane_wave_arrival(subject.head, theta_deg, ear)
    first_gain = float(far_field_first_tap_gain(arrival.wrap_arc))
    arrival_angle = angle_deg_of(arrival.arrival_direction)
    echo_delays, echo_gains = subject.pinna(ear).echoes(arrival_angle)
    delays = np.concatenate([[arrival.delay], arrival.delay + echo_delays])
    gains = np.concatenate([[first_gain], first_gain * echo_gains])
    return delays, gains


def taps_to_ir(
    delays_s: np.ndarray,
    gains: np.ndarray,
    fs: int,
    n_samples: int,
) -> np.ndarray:
    """Render a tap train into a sampled impulse response."""
    delays_s = np.asarray(delays_s, dtype=float)
    gains = np.asarray(gains, dtype=float)
    if delays_s.shape != gains.shape or delays_s.ndim != 1:
        raise SignalError("delays and gains must be matching 1D arrays")
    if np.any(delays_s < 0):
        raise SignalError("tap delays must be non-negative")
    out = np.zeros(n_samples)
    for delay, gain in zip(delays_s, gains):
        add_tap(out, delay * fs, gain)
    return out


def render_near_field_hrir(
    subject: VirtualSubject,
    source: np.ndarray,
    fs: int = DEFAULT_SAMPLE_RATE,
    duration_s: float = DEFAULT_HRIR_DURATION_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth near-field HRIR pair for a point source.

    Interaural timing is preserved; the earlier ear's first tap is placed at
    :data:`HRIR_PRE_DELAY_S` so the window is position-independent.
    """
    source = np.asarray(source, dtype=float)
    n = int(round(duration_s * fs))
    taps = {ear: _taps_for_ear(subject, source, ear) for ear in Ear}
    reference = min(taps[ear][0][0] for ear in Ear) - HRIR_PRE_DELAY_S
    left = taps_to_ir(taps[Ear.LEFT][0] - reference, taps[Ear.LEFT][1], fs, n)
    right = taps_to_ir(taps[Ear.RIGHT][0] - reference, taps[Ear.RIGHT][1], fs, n)
    return left, right


def render_far_field_hrir(
    subject: VirtualSubject,
    theta_deg: float,
    fs: int = DEFAULT_SAMPLE_RATE,
    duration_s: float = DEFAULT_HRIR_DURATION_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth far-field HRIR pair for a plane wave from ``theta_deg``."""
    n = int(round(duration_s * fs))
    taps = {ear: _far_taps_for_ear(subject, theta_deg, ear) for ear in Ear}
    reference = min(taps[ear][0][0] for ear in Ear) - HRIR_PRE_DELAY_S
    left = taps_to_ir(taps[Ear.LEFT][0] - reference, taps[Ear.LEFT][1], fs, n)
    right = taps_to_ir(taps[Ear.RIGHT][0] - reference, taps[Ear.RIGHT][1], fs, n)
    return left, right


def _record(
    tap_trains: dict[Ear, tuple[np.ndarray, np.ndarray]],
    signal: np.ndarray,
    fs: int,
    rng: np.random.Generator,
    hardware: SpeakerMicResponse | None,
    room: RoomModel | None,
    noise_std: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolve a signal with per-ear tap trains plus room/hardware/noise."""
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or signal.shape[0] < 2:
        raise SignalError("signal must be a 1D array with >= 2 samples")
    if noise_std < 0:
        raise SignalError(f"noise_std must be >= 0, got {noise_std}")

    max_delay = max(float(d.max()) for d, _ in tap_trains.values())
    tail = 0.0 if room is None else room.first_echo_s + room.max_tail_s
    ir_len = (
        int(np.ceil((max_delay + tail) * fs)) + 2 * DEFAULT_KERNEL_HALF_WIDTH + 4
    )
    outputs = {}
    for ear, (delays, gains) in tap_trains.items():
        if room is not None:
            echo_delays, echo_gains = room.echo_taps(rng)
            delays = np.concatenate([delays, delays[0] + echo_delays])
            gains = np.concatenate([gains, gains[0] * echo_gains])
        ir = taps_to_ir(delays, gains, fs, ir_len)
        recording = np.convolve(signal, ir)
        if hardware is not None:
            recording = hardware.apply(recording, fs)
        recording = recording + rng.normal(0.0, noise_std, recording.shape[0])
        outputs[ear] = recording
    return outputs[Ear.LEFT], outputs[Ear.RIGHT]


def record_at_boundary_point(
    subject: VirtualSubject,
    source: np.ndarray,
    boundary_index: int,
    signal: np.ndarray,
    fs: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
    noise_std: float = 0.005,
) -> np.ndarray:
    """Recording at a bare microphone pasted on the head surface.

    Used by the Section 2 diffraction experiment (paper Figure 4/5): a test
    microphone is moved along the cheek, so there is no pinna in the path —
    just the direct-or-diffracted first arrival.
    """
    from repro.geometry.paths import path_to_boundary_point

    rng = rng if rng is not None else np.random.default_rng()
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or signal.shape[0] < 2:
        raise SignalError("signal must be a 1D array with >= 2 samples")
    path = path_to_boundary_point(subject.head, np.asarray(source, float), boundary_index)
    gain = float(near_field_first_tap_gain(path.length, path.wrap_arc))
    delay = path.length / SPEED_OF_SOUND
    ir_len = int(np.ceil(delay * fs)) + 2 * DEFAULT_KERNEL_HALF_WIDTH + 4
    ir = taps_to_ir(np.array([delay]), np.array([gain]), fs, ir_len)
    recording = np.convolve(signal, ir)
    return recording + rng.normal(0.0, noise_std, recording.shape[0])


def record_near_field(
    subject: VirtualSubject,
    source: np.ndarray,
    signal: np.ndarray,
    fs: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
    hardware: SpeakerMicResponse | None = None,
    room: RoomModel | None = None,
    noise_std: float = 0.005,
) -> tuple[np.ndarray, np.ndarray]:
    """Binaural earbud recordings of ``signal`` played at a near-field point.

    Absolute propagation delay is preserved (phone and earbuds are
    synchronized in the paper's prototype), so first-tap *absolute* delays
    are meaningful to the localization stage.
    """
    rng = rng if rng is not None else np.random.default_rng()
    source = np.asarray(source, dtype=float)
    taps = {ear: _taps_for_ear(subject, source, ear) for ear in Ear}
    return _record(taps, signal, fs, rng, hardware, room, noise_std)


def record_far_field(
    subject: VirtualSubject,
    theta_deg: float,
    signal: np.ndarray,
    fs: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
    hardware: SpeakerMicResponse | None = None,
    room: RoomModel | None = None,
    noise_std: float = 0.005,
) -> tuple[np.ndarray, np.ndarray]:
    """Binaural recordings of a far-field (plane wave) source at ``theta_deg``.

    Delays are offset so the earliest tap lands at :data:`HRIR_PRE_DELAY_S`
    — only interaural structure is physical for a source at infinity.
    """
    rng = rng if rng is not None else np.random.default_rng()
    taps = {ear: _far_taps_for_ear(subject, theta_deg, ear) for ear in Ear}
    reference = min(taps[ear][0][0] for ear in Ear) - HRIR_PRE_DELAY_S
    shifted = {
        ear: (delays - reference, gains) for ear, (delays, gains) in taps.items()
    }
    return _record(shifted, signal, fs, rng, hardware, room, noise_std)
