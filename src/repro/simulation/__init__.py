"""The virtual acoustic world standing in for the paper's physical testbed.

The paper evaluates on 5 human volunteers wearing in-ear microphones, a
phone-mounted speaker, and an overhead ground-truth camera.  This package
simulates that entire physical layer with explicit, seeded randomness:

- :mod:`~repro.simulation.pinna` — parametric per-person pinna multipath;
- :mod:`~repro.simulation.person` — virtual subjects (head + two pinnae);
- :mod:`~repro.simulation.hardware` — speaker/microphone coloration & noise;
- :mod:`~repro.simulation.imu` — gyroscope error model and integration;
- :mod:`~repro.simulation.room` — late room reflections;
- :mod:`~repro.simulation.propagation` — tap-level binaural rendering for
  near-field point sources and far-field plane waves;
- :mod:`~repro.simulation.session` — one full personalization capture;
- :mod:`~repro.simulation.population` — subject cohorts and the average
  subject behind the "global HRTF" baseline.
"""

from repro.simulation.pinna import PinnaModel
from repro.simulation.person import VirtualSubject
from repro.simulation.person3d import VirtualSubject3D, render_far_field_hrir_3d
from repro.simulation.hardware import SpeakerMicResponse
from repro.simulation.imu import GyroscopeModel, IMUTrace, integrate_gyro
from repro.simulation.room import RoomModel
from repro.simulation.propagation import (
    render_near_field_hrir,
    render_far_field_hrir,
    record_near_field,
    record_far_field,
)
from repro.simulation.session import MeasurementSession, ProbeMeasurement, SessionData
from repro.simulation.population import make_population, average_subject

__all__ = [
    "PinnaModel",
    "VirtualSubject",
    "VirtualSubject3D",
    "render_far_field_hrir_3d",
    "SpeakerMicResponse",
    "GyroscopeModel",
    "IMUTrace",
    "integrate_gyro",
    "RoomModel",
    "render_near_field_hrir",
    "render_far_field_hrir",
    "record_near_field",
    "record_far_field",
    "MeasurementSession",
    "ProbeMeasurement",
    "SessionData",
    "make_population",
    "average_subject",
]
