"""The multi-tenant admission layer: quotas, fair dequeue, load shedding.

A :class:`FrontDoor` sits between job producers and a serving sink (a
:class:`~repro.serve.server.BatchServer` or a
:class:`~repro.serve.shard.ShardedServer` — anything with ``submit`` /
``drain`` / ``results``) and makes the three admission decisions a shared
tier owes its tenants:

- **quota** — each tenant's arrivals pass through a token bucket
  (:class:`TokenBucket`, refill ``rate_per_s``, capacity ``burst``);
  an empty bucket turns the job away immediately with a typed
  ``over_quota`` rejection.  Quotas bound *admission*, not throughput:
  a tenant under its rate is never throttled by another's burst;
- **fair dequeue** — admitted jobs wait in per-tenant FIFO backlogs and
  are released to the sink by stride scheduling: each tenant carries a
  virtual ``pass`` advanced by ``1 / weight`` per dispatch, the smallest
  pass (ties: tenant name) dispatches next.  Over any window, tenant
  throughput converges to the weight ratio regardless of arrival skew;
- **shedding** — the combined backlog is bounded; when it is full and
  shedding is enabled, the *lowest-value* job (:func:`repro.serve.shed
  .job_value`: priority first, then expected confidence) is dropped with
  a typed ``shed_overload`` rejection — whether that is the incoming job
  or one already waiting.  Every decision is recorded as a ``shed``
  flight-recorder event carrying the victim's value and the minimum value
  kept, so :func:`repro.serve.shed.verify_shed_ordering` can prove the
  run shed lowest-value-first.  With shedding off, a full backlog rejects
  the newcomer as ``queue_full`` (plain bounded-queue behavior).

**Zero-overhead default**: constructed with no quotas, no backlog bound,
and shedding off, the front door is a transparent pass-through — no
dispatcher thread, no backlog, every ``submit`` forwarded verbatim — so
single-tenant callers keep bit-identical behavior and pay nothing.

Time is injectable (``clock``) and ``submit`` accepts an explicit ``now``,
so quota and shed behavior is exactly reproducible in tests and in the
open-loop load generator (:mod:`repro.eval.loadgen`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.serve.job import Job, JobResult
from repro.serve.shed import job_value
from repro.serve.telemetry import ServeTelemetry

__all__ = ["FrontDoor", "TenantQuota", "TokenBucket"]

_log = get_logger("serve.frontdoor")


class TokenBucket:
    """A deterministic token bucket: ``rate_per_s`` refill, ``burst`` cap.

    Purely arithmetic — tokens accrue as ``rate * elapsed`` against the
    timestamps the caller supplies — so two replays of one arrival
    schedule admit exactly the same jobs.
    """

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ReproError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last: float | None = None

    def take(self, now: float) -> bool:
        """Consume one token at time ``now``; ``False`` when empty."""
        if self._last is not None and now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate_per_s
            )
        self._last = max(now, self._last or now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission contract.

    ``rate_per_s``/``burst`` parameterize the token bucket; ``weight``
    sets the tenant's share of dequeue bandwidth under contention (a
    weight-2 tenant drains twice as fast as a weight-1 one).
    """

    rate_per_s: float
    burst: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ReproError(f"weight must be > 0, got {self.weight}")

    def to_dict(self) -> dict[str, float]:
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TenantQuota":
        return cls(
            rate_per_s=float(record["rate_per_s"]),
            burst=float(record["burst"]),
            weight=float(record.get("weight", 1.0)),
        )


class FrontDoor:
    """Admission control over a serving sink (see module docstring).

    Parameters
    ----------
    sink:
        The server admitted jobs are released to — must provide
        ``submit(job, block=True) -> bool``, ``drain()``, ``results()``.
    quotas:
        Per-tenant :class:`TenantQuota` mapping.  Tenants absent from the
        mapping fall back to ``default_quota``; with neither, admission is
        unmetered for that tenant.
    default_quota:
        Quota applied to tenants without an explicit entry.
    backlog_limit:
        Bound on the combined (all-tenant) admitted-but-undispatched
        backlog — the shed point.  ``None`` leaves the backlog unbounded.
    shed:
        Enable value-based shedding at the backlog bound.  Off, a full
        backlog rejects newcomers as ``queue_full``.
    telemetry:
        A :class:`~repro.serve.telemetry.ServeTelemetry` to record
        ``rejected``/``shed`` events on — typically the same hub the sink
        records to, so one flight-recorder stream tells the whole story.
    clock:
        Time source for quota refill when ``submit`` is not given an
        explicit ``now`` (tests and the load generator inject virtual
        time).
    """

    def __init__(
        self,
        sink,
        *,
        quotas: Mapping[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        backlog_limit: int | None = None,
        shed: bool = False,
        telemetry: ServeTelemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if backlog_limit is not None and backlog_limit < 1:
            raise ReproError(f"backlog_limit must be >= 1, got {backlog_limit}")
        self.sink = sink
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.backlog_limit = backlog_limit
        self.shed = bool(shed)
        self._telemetry = telemetry
        self._clock = clock
        self.passthrough = (
            not self.quotas
            and default_quota is None
            and backlog_limit is None
            and not shed
        )
        self._state = threading.Condition()
        self._buckets: dict[str, TokenBucket] = {}
        self._weights: dict[str, float] = {}
        self._backlog: dict[str, deque[tuple[Job, int]]] = {}
        self._backlog_total = 0
        self._backlog_peak = 0
        self._passes: dict[str, float] = {}
        self._order: list[str] = []
        self._local: dict[str, JobResult] = {}
        self._seq = 0
        self._closed = False
        self._draining = False
        self._dispatching = False
        self.n_over_quota = 0
        self.n_shed = 0
        self._dispatcher: threading.Thread | None = None
        if not self.passthrough:
            self._dispatcher = threading.Thread(
                target=self._run_dispatcher,
                name="repro-serve-frontdoor",
                daemon=True,
            )
            self._dispatcher.start()

    # -- admission ----------------------------------------------------------

    def _record(self, event: str, **fields: Any) -> None:
        if self._telemetry is not None:
            self._telemetry.record(event, **fields)

    def _quota_for(self, tenant: str) -> TenantQuota | None:
        return self.quotas.get(tenant, self.default_quota)

    def _bucket_for(self, tenant: str) -> TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self._quota_for(tenant)
            if quota is None:
                return None
            bucket = TokenBucket(quota.rate_per_s, quota.burst)
            self._buckets[tenant] = bucket
        return bucket

    def _reject(self, job: Job, reason: str, error: str, **fields: Any) -> None:
        obs_metrics.counter("serve.rejected").inc()
        obs_metrics.counter(f"serve.frontdoor.{reason}").inc()
        self._record(
            "rejected", job_id=job.job_id, reason=reason, tenant=job.tenant,
            **fields,
        )
        with self._state:
            self._local[job.job_id] = JobResult(
                job_id=job.job_id,
                status="rejected",
                error=error,
                attempts=0,
                reason=reason,
            )
            self._state.notify_all()

    def submit(self, job: Job, block: bool = True, now: float | None = None) -> bool:
        """Admit one job.  Returns ``True`` when it will reach the sink.

        Pass-through mode forwards to the sink verbatim (including
        ``block``).  Managed mode never blocks the caller: the decision —
        admit to the backlog, ``over_quota``, ``shed_overload``, or
        ``queue_full`` — is immediate, which is what an open-loop arrival
        process requires.
        """
        if self.passthrough:
            with self._state:
                self._order.append(job.job_id)
            return self.sink.submit(job, block=block)
        if now is None:
            now = self._clock()
        with self._state:
            if self._closed:
                raise ReproError("FrontDoor is closed")
            if job.job_id in self._local or job.job_id in set(self._order):
                raise ReproError(f"duplicate job_id {job.job_id!r}")
            self._order.append(job.job_id)
            draining = self._draining
        if draining:
            with self._state:
                self._local[job.job_id] = JobResult(
                    job_id=job.job_id,
                    status="interrupted",
                    error="front door draining; job was not admitted",
                    attempts=0,
                )
                self._state.notify_all()
            return False
        bucket = self._bucket_for(job.tenant)
        if bucket is not None and not bucket.take(now):
            self.n_over_quota += 1
            self._reject(
                job, "over_quota",
                f"tenant {job.tenant!r} over admission quota",
            )
            return False
        with self._state:
            if (
                self.backlog_limit is not None
                and self._backlog_total >= self.backlog_limit
            ):
                if not self.shed:
                    rejected = job
                    shed_event = None
                else:
                    rejected, shed_event = self._shed_locked(job)
                    if rejected is not job:
                        self._admit_locked(job)
            else:
                rejected = None
                shed_event = None
                self._admit_locked(job)
        if rejected is None:
            obs_metrics.counter("serve.frontdoor.admitted").inc()
            return True
        if shed_event is None:
            self._reject(
                rejected, "queue_full",
                f"front-door backlog full (limit {self.backlog_limit})",
            )
        else:
            self.n_shed += 1
            obs_metrics.counter("serve.shed").inc()
            self._record("shed", **shed_event)
            self._reject(
                rejected, "shed_overload",
                "shed under overload (lowest value in a full backlog)",
                value=shed_event["value"],
            )
        return rejected is not job

    def _admit_locked(self, job: Job) -> None:
        self._seq += 1
        queue = self._backlog.setdefault(job.tenant, deque())
        if job.tenant not in self._passes:
            # A new tenant starts at the current minimum pass so it cannot
            # burst ahead of tenants that have been dispatching all along.
            floor = min(self._passes.values(), default=0.0)
            self._passes[job.tenant] = floor
            quota = self._quota_for(job.tenant)
            self._weights[job.tenant] = quota.weight if quota else 1.0
        queue.append((job, self._seq))
        self._backlog_total += 1
        self._backlog_peak = max(self._backlog_peak, self._backlog_total)
        self._state.notify_all()

    def _shed_locked(self, incoming: Job) -> tuple[Job, dict[str, Any]]:
        """Pick the overflow victim: the minimum-value job, incoming included.

        Ties break toward the newest admission (largest sequence number),
        so long-waiting work keeps its place.  Returns the victim and the
        ``shed`` event payload; the caller resolves the victim and, when
        it was a waiting job, admits the incoming one in its place.
        """
        victim_tenant: str | None = None
        victim = (incoming, self._seq + 1)
        victim_key = (job_value(incoming), -(self._seq + 1))
        for tenant, queue in self._backlog.items():
            for entry in queue:
                key = (job_value(entry[0]), -entry[1])
                if key < victim_key:
                    victim_key = key
                    victim = entry
                    victim_tenant = tenant
        if victim_tenant is not None:
            self._backlog[victim_tenant].remove(victim)
            self._backlog_total -= 1
        kept = [
            job_value(entry[0])
            for queue in self._backlog.values()
            for entry in queue
        ]
        if victim[0] is not incoming:
            kept.append(job_value(incoming))
        event: dict[str, Any] = {
            "job_id": victim[0].job_id,
            "tenant": victim[0].tenant,
            "value": job_value(victim[0]),
            "backlog": self._backlog_total,
        }
        if kept:
            event["backlog_min_value"] = min(kept)
        return victim[0], event

    # -- dispatch -----------------------------------------------------------

    def _next_tenant_locked(self) -> str | None:
        best: str | None = None
        for tenant, queue in self._backlog.items():
            if not queue:
                continue
            if best is None or (
                (self._passes[tenant], tenant)
                < (self._passes[best], best)
            ):
                best = tenant
        return best

    def _run_dispatcher(self) -> None:
        while True:
            with self._state:
                self._state.wait_for(
                    lambda: self._closed
                    or self._draining
                    or self._backlog_total > 0
                )
                if self._closed:
                    return
                if self._draining:
                    self._drain_backlog_locked()
                    continue
                tenant = self._next_tenant_locked()
                if tenant is None:
                    continue
                job, _ = self._backlog[tenant].popleft()
                self._backlog_total -= 1
                self._passes[tenant] += 1.0 / self._weights.get(tenant, 1.0)
                self._dispatching = True
            try:
                # Blocking submit: the sink's bounded queue is the
                # backpressure point; the backlog above it is the shed point.
                self.sink.submit(job, block=True)
            except ReproError as error:
                with self._state:
                    self._local[job.job_id] = JobResult(
                        job_id=job.job_id,
                        status="rejected",
                        error=str(error),
                        attempts=0,
                        reason="queue_full",
                    )
            finally:
                with self._state:
                    self._dispatching = False
                    self._state.notify_all()

    def _drain_backlog_locked(self) -> None:
        """Resolve every waiting job as interrupted (graceful drain)."""
        for queue in self._backlog.values():
            while queue:
                job, _ = queue.popleft()
                self._backlog_total -= 1
                obs_metrics.counter("serve.jobs_interrupted").inc()
                self._local[job.job_id] = JobResult(
                    job_id=job.job_id,
                    status="interrupted",
                    error="front door drained before this job was released",
                    attempts=0,
                )
        self._state.notify_all()

    # -- lifecycle ----------------------------------------------------------

    def interrupt(self) -> None:
        """Graceful drain: backlog resolves interrupted, sink drains too."""
        with self._state:
            if self._draining:
                return
            self._draining = True
            self._state.notify_all()
        self._record("drain", backlog=self.backlog_depth)
        _log.warning(kv("serve.frontdoor.interrupted"))
        if hasattr(self.sink, "interrupt"):
            self.sink.interrupt()

    def drain(self) -> None:
        """Block until the backlog is empty and the sink has resolved."""
        if not self.passthrough:
            with self._state:
                self._state.wait_for(
                    lambda: self._backlog_total == 0 and not self._dispatching
                )
        self.sink.drain()

    def results(self) -> tuple[JobResult, ...]:
        """All results — sink-resolved and locally rejected — in
        front-door submission order."""
        sink_results = {r.job_id: r for r in self.sink.results()}
        with self._state:
            merged = dict(sink_results)
            merged.update(self._local)
            return tuple(
                merged[job_id] for job_id in self._order if job_id in merged
            )

    @property
    def backlog_depth(self) -> int:
        with self._state:
            return self._backlog_total

    @property
    def backlog_peak(self) -> int:
        """High-water mark of the combined backlog (bounded-queue gate)."""
        with self._state:
            return self._backlog_peak

    def stats(self) -> dict[str, Any]:
        with self._state:
            return {
                "passthrough": self.passthrough,
                "backlog_depth": self._backlog_total,
                "backlog_peak": self._backlog_peak,
                "backlog_limit": self.backlog_limit,
                "n_over_quota": self.n_over_quota,
                "n_shed": self.n_shed,
                "tenants": sorted(self._passes),
            }

    def close(self) -> None:
        """Stop the dispatcher.  The sink stays the caller's to close."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._state.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
